"""Hot-path benchmark: serial throughput and execution-backend scaling.

Drives one 32-feed fleet (preloaded stores, mixed read/write synthetic
workloads) through the epoch engine, sweeping worker counts over the *thread*
backend and lane counts over the *process* backend at a fixed shard plan.
Reported per configuration: wall time, ops/sec, feed-layer gas/op and speedup
versus the serial run.  Three hard checks:

* **equivalence** — every thread and process run's telemetry fingerprint and
  per-feed gas bills must be bit-identical to the serial run's (the engine's
  core guarantee); a violation exits non-zero, which is what the CI perf-smoke
  job gates on;
* **trajectory** — results are written to ``BENCH_hotpath.json`` so future
  PRs have a recorded perf trajectory to beat.

Regression gating no longer lives here: the old single-sample
``--check-regression`` / ``--check-ipc-regression`` floors were replaced by
the statistical gate in ``benchmarks/runner.py`` (mean ± CI per cell,
Welch's t / bootstrap-CI separation; see ``repro.analysis.stats``).  The
runner drives this module's machinery through the importable entry points
(:func:`build_workloads`, :func:`build_registry`, :func:`run_fleet_once`)
rather than shelling out to the script.

Process-mode sweep records always carry the run's IPC meter summary (wire
bytes per epoch, encode/decode seconds, per-lane rows).  ``--profile-ipc``
additionally has each worker measure what the same epoch results would have
cost as a generic protocol-5 pickle, recording the codec's
``reduction_vs_pickle``.  On hosts granted a single effective CPU the
results carry ``"multicore_sweep": "pending"`` so a reader knows the
recorded process numbers measure boundary overhead, not scaling.

A note on scaling regimes: the *thread* backend is bounded by the GIL on
CPython — it can only match serial throughput, never multiply it.  The
*process* backend runs each shard's feeds in a separate worker process and is
bounded by the host's CPUs instead.  Results therefore record both
``host.cpus`` and ``host.effective_cpus`` (the scheduling affinity actually
granted to this process — CI containers routinely advertise many CPUs while
pinning the job to one), and every sweep record carries its
``execution_mode``, so a flat speedup curve on a single-CPU host is read as
"host had one CPU", not "parallelism doesn't help".

Runs under pytest (the repo's benchmark harness) or standalone::

    PYTHONPATH=src python benchmarks/bench_hotpath.py            # full sweep
    PYTHONPATH=src python benchmarks/bench_hotpath.py --quick    # <60s CI smoke
    PYTHONPATH=src python benchmarks/bench_hotpath.py --workers auto
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.types import KVRecord, Operation
from repro.core.config import GrubConfig
from repro.gateway import EpochScheduler, FeedRegistry, FeedSpec
from repro.analysis.reporting import format_rate, format_table
from repro.obs import Observability
from repro.obs.export import format_duration
from repro.workloads.synthetic import SyntheticWorkload

NUM_FEEDS = 32
NUM_SHARDS = 8
EPOCH_SIZE = 16
FULL_WORKERS = (1, 2, 4, 8)
QUICK_WORKERS = (1, 4, 8)
FULL_PROCESS_LANES = (2, 4, 8)
QUICK_PROCESS_LANES = (2,)
FULL_OPS_PER_FEED = 256
QUICK_OPS_PER_FEED = 96
FULL_REPEATS = 3
QUICK_REPEATS = 1
PRELOAD_KEYS = 128

#: Read/write mixes selectable by the experiment runner's ``workload`` factor.
PROFILE_RATIOS = {
    "mixed": 4.0,
    "read_heavy": 8.0,
    "write_heavy": 1.0,
}


def effective_cpus() -> int:
    """CPUs this process may actually schedule on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        return os.cpu_count() or 1


def auto_worker_counts() -> Tuple[int, ...]:
    """``--workers auto``: powers of two from 1 up to twice the affinity.

    Always includes an oversubscribed point (2× the effective CPUs) so the
    curve shows where scaling flattens rather than stopping at the knee.
    """
    cpus = effective_cpus()
    counts = [1]
    while counts[-1] < 2 * cpus:
        counts.append(counts[-1] * 2)
    return tuple(counts)


def host_facts() -> dict:
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "cpus": os.cpu_count(),
        "effective_cpus": effective_cpus(),
        "platform": platform.platform(),
    }


def build_workloads(
    ops_per_feed: int,
    *,
    num_feeds: int = NUM_FEEDS,
    profile: str = "mixed",
) -> Dict[str, List[Operation]]:
    """Per-feed synthetic workloads at one of the named read/write profiles."""
    if profile not in PROFILE_RATIOS:
        raise ValueError(
            f"unknown workload profile {profile!r}; "
            f"expected one of {sorted(PROFILE_RATIOS)}"
        )
    return {
        f"feed-{index:02d}": SyntheticWorkload(
            read_write_ratio=PROFILE_RATIOS[profile],
            num_operations=ops_per_feed,
            num_keys=32,
            key_prefix=f"asset{index:02d}-",
            seed=index + 1,
        ).operations()
        for index in range(num_feeds)
    }


def build_registry(
    *,
    num_feeds: int = NUM_FEEDS,
    preload_keys: int = PRELOAD_KEYS,
    epoch_size: int = EPOCH_SIZE,
) -> FeedRegistry:
    registry = FeedRegistry()
    config = GrubConfig(epoch_size=epoch_size, algorithm="memoryless", k=2)
    for index in range(num_feeds):
        preload = [
            KVRecord.make(f"asset{index:02d}-{j:04d}", bytes(32))
            for j in range(preload_keys)
        ]
        registry.create_feed(
            FeedSpec(feed_id=f"feed-{index:02d}", config=config, preload=preload)
        )
    return registry


def run_fleet_once(
    execution_mode: str,
    num_workers: int,
    workloads: Dict[str, List[Operation]],
    *,
    num_shards: int = NUM_SHARDS,
    epoch_size: int = EPOCH_SIZE,
    preload_keys: int = PRELOAD_KEYS,
    obs=None,
    ipc_profile: bool = False,
):
    """One measured fleet run; the importable unit the experiment runner drives.

    Returns ``(registry, fleet)`` so callers can read telemetry, gas bills and
    chain state.  The registry is built fresh per call (feed ids follow the
    ``feed-NN`` convention of :func:`build_workloads`).
    """
    registry = build_registry(
        num_feeds=len(workloads), preload_keys=preload_keys, epoch_size=epoch_size
    )
    scheduler = EpochScheduler(
        registry,
        num_shards=num_shards,
        num_workers=num_workers,
        execution_mode=execution_mode,
        obs=obs,
        ipc_profile=ipc_profile,
    )
    fleet = scheduler.run(workloads)
    return registry, fleet


def _ipc_record(summary: dict) -> dict:
    """The IPC meter summary rounded for the benchmark JSON."""
    record = {
        "epochs": summary["epochs"],
        "wire_bytes_total": summary["wire_bytes_total"],
        "bytes_per_epoch": round(summary["bytes_per_epoch"], 2),
        "encode_seconds": round(summary["encode_seconds"], 6),
        "decode_seconds": round(summary["decode_seconds"], 6),
        "lanes": {
            lane: {
                "epochs": row["epochs"],
                "wire_bytes": row["wire_bytes"],
                "encode_seconds": round(row["encode_seconds"], 6),
                "decode_seconds": round(row["decode_seconds"], 6),
            }
            for lane, row in summary["lanes"].items()
        },
    }
    for key in (
        "migrations_total",
        "migration_bytes_total",
        "installs_total",
        "install_bytes_total",
        "lane_spawns_total",
        "lane_retirements_total",
    ):
        if key in summary:
            record[key] = summary[key]
    if "migration_bytes_per_epoch" in summary:
        record["migration_bytes_per_epoch"] = round(
            summary["migration_bytes_per_epoch"], 2
        )
    if "legacy_pickle_bytes_total" in summary:
        record["legacy_pickle_bytes_total"] = summary["legacy_pickle_bytes_total"]
        record["legacy_bytes_per_epoch"] = round(summary["legacy_bytes_per_epoch"], 2)
        record["reduction_vs_pickle"] = round(summary["reduction_vs_pickle"], 4)
    return record


def run_configuration(
    execution_mode: str,
    num_workers: int,
    workloads: Dict[str, List[Operation]],
    repeats: int,
    profile_ipc: bool = False,
) -> dict:
    """Run the fleet at one configuration; keep the best wall time of ``repeats``."""
    best: Optional[dict] = None
    fingerprint = None
    gas_bills = None
    for _ in range(repeats):
        registry, fleet = run_fleet_once(
            execution_mode, num_workers, workloads, ipc_profile=profile_ipc
        )
        fingerprint = fleet.fingerprint()
        gas_bills = {
            feed_id: registry.chain.ledger.scope_total(feed_id)
            for feed_id in fleet.feeds
        }
        sample = {
            "execution_mode": execution_mode,
            "num_workers": num_workers,
            "wall_seconds": round(fleet.wall_seconds, 4),
            "ops_per_sec": round(fleet.ops_per_second, 1),
            "gas_per_op": round(fleet.gas_per_operation, 2),
            "operations": fleet.operations,
            "cache_hit_rate": round(fleet.cache_hit_rate, 4),
        }
        if fleet.ipc is not None:
            sample["ipc"] = _ipc_record(fleet.ipc)
        if best is None or sample["wall_seconds"] < best["wall_seconds"]:
            best = sample
    best["fingerprint"] = fingerprint
    best["gas_bills"] = gas_bills
    return best


def phase_latency_record(
    workloads: Dict[str, List[Operation]], serial: dict
) -> dict:
    """One extra *traced* serial run for the per-phase latency record.

    The measured sweep stays observability-off; this run exists only to put
    per-phase p50/p95/p99 into the benchmark JSON.  It must still land on the
    exact serial fingerprint — tracing that changed the run would make the
    latency record a lie about the sweep it annotates.
    """
    obs = Observability()
    registry = build_registry()
    scheduler = EpochScheduler(
        registry,
        num_shards=NUM_SHARDS,
        num_workers=1,
        execution_mode="serial",
        obs=obs,
    )
    fleet = scheduler.run(workloads)
    if fleet.fingerprint() != serial["fingerprint"]:
        raise AssertionError("traced serial run diverged from the untraced one")
    percentiles = obs.phase_percentiles()
    rows = [
        (
            phase,
            row["count"],
            format_duration(row["p50"]),
            format_duration(row["p95"]),
            format_duration(row["p99"]),
        )
        for phase, row in percentiles.items()
    ]
    print()
    print(
        format_table(
            ["phase", "n", "p50", "p95", "p99"],
            rows,
            title="Per-phase latency (traced serial run, excluded from the sweep)",
        )
    )
    span_count = sum(1 for root in obs.tracer.roots for _ in root.walk())
    return {
        "note": (
            "separate traced serial run; sweep timings above were taken with "
            "observability disabled"
        ),
        "traced_wall_seconds": round(fleet.wall_seconds, 4),
        "tracing_overhead_vs_serial": round(
            fleet.wall_seconds / serial["wall_seconds"], 3
        ),
        "span_count": span_count,
        "phase_percentiles": {
            phase: {
                "count": row["count"],
                "p50": round(row["p50"], 6),
                "p95": round(row["p95"], 6),
                "p99": round(row["p99"], 6),
            }
            for phase, row in percentiles.items()
        },
    }


def run_sweep(
    worker_counts: Sequence[int],
    process_lanes: Sequence[int],
    ops_per_feed: int,
    repeats: int,
    profile_ipc: bool = False,
) -> dict:
    workloads = build_workloads(ops_per_feed)
    configurations: List[Tuple[str, int]] = [("serial", 1)]
    configurations.extend(
        ("thread", workers) for workers in worker_counts if workers > 1
    )
    configurations.extend(("process", lanes) for lanes in process_lanes)
    results = [
        run_configuration(mode, workers, workloads, repeats, profile_ipc=profile_ipc)
        for mode, workers in configurations
    ]

    serial = results[0]
    assert serial["execution_mode"] == "serial", "sweep must start with the serial run"
    violations = []
    for result in results[1:]:
        label = f"{result['execution_mode']}/{result['num_workers']}"
        if result["fingerprint"] != serial["fingerprint"]:
            violations.append(f"{label}: telemetry differs")
        if result["gas_bills"] != serial["gas_bills"]:
            violations.append(f"{label}: gas bills differ")
    if violations:
        raise AssertionError(
            "parallel-vs-serial equivalence violated: " + "; ".join(violations)
        )

    rows = []
    sweep_records = []
    for result in results:
        speedup = serial["wall_seconds"] / result["wall_seconds"]
        rows.append(
            (
                result["execution_mode"],
                result["num_workers"],
                f"{result['wall_seconds']:.3f}s",
                format_rate(result["ops_per_sec"], "ops/s"),
                f"{speedup:.2f}x",
                result["gas_per_op"],
                f"{result['cache_hit_rate'] * 100:.1f}%",
            )
        )
        record = {
            "execution_mode": result["execution_mode"],
            "num_workers": result["num_workers"],
            "wall_seconds": result["wall_seconds"],
            "ops_per_sec": result["ops_per_sec"],
            "speedup_vs_serial": round(speedup, 3),
            "gas_per_op": result["gas_per_op"],
            "cache_hit_rate": result["cache_hit_rate"],
        }
        if "ipc" in result:
            record["ipc"] = result["ipc"]
        sweep_records.append(record)
    host = host_facts()
    print()
    print(
        format_table(
            ["mode", "workers", "wall", "throughput", "speedup", "gas/op", "cache hit"],
            rows,
            title=(
                f"Epoch engine backends — {NUM_FEEDS} feeds, "
                f"{ops_per_feed} ops/feed, {NUM_SHARDS} shards, "
                f"{host['effective_cpus']} effective CPU(s)"
            ),
        )
    )
    print(
        "equivalence: telemetry fingerprints and per-feed gas bills identical "
        "across all execution modes and worker counts"
    )
    if host["effective_cpus"] == 1:
        print(
            "note: this host granted ONE effective CPU — no backend can show "
            "speedup > 1 here; do not read the flat curve as 'parallelism "
            "does not help'"
        )
    ipc_rows = [
        (
            f"process/{record['num_workers']}",
            record["ipc"]["epochs"],
            f"{record['ipc']['bytes_per_epoch']:,.0f} B",
            format_duration(record["ipc"]["encode_seconds"]),
            format_duration(record["ipc"]["decode_seconds"]),
            (
                f"{record['ipc']['reduction_vs_pickle'] * 100:.1f}%"
                if "reduction_vs_pickle" in record["ipc"]
                else "—"
            ),
        )
        for record in sweep_records
        if "ipc" in record
    ]
    if ipc_rows:
        print()
        print(
            format_table(
                ["lanes", "epochs", "wire B/epoch", "encode", "decode", "vs pickle"],
                ipc_rows,
                title="Process-boundary IPC (per configuration, best repeat)",
            )
        )
    payload = {
        "benchmark": "hotpath",
        "source": "benchmarks/bench_hotpath.py",
        "config": {
            "num_feeds": NUM_FEEDS,
            "num_shards": NUM_SHARDS,
            "epoch_size": EPOCH_SIZE,
            "ops_per_feed": ops_per_feed,
            "preload_keys_per_feed": PRELOAD_KEYS,
            "repeats": repeats,
            "worker_counts": list(worker_counts),
            "process_lanes": list(process_lanes),
        },
        "host": host,
        "equivalence": "bit-identical across execution modes and worker counts",
        "sweep": sweep_records,
        "serial": {
            "ops_per_sec": serial["ops_per_sec"],
            "gas_per_op": serial["gas_per_op"],
        },
        "observability": phase_latency_record(workloads, serial),
        "migration": migration_record(),
    }
    if host["effective_cpus"] <= 1:
        # Honest label for the committed JSON: every multi-lane number in this
        # file was taken on a one-CPU host and measures boundary overhead, not
        # scaling.  Re-running the sweep on a real multicore host clears it.
        payload["multicore_sweep"] = "pending"
    return payload


def migration_record() -> dict:
    """The elastic backend's migration traffic, appended to the trajectory.

    The sweep above runs static pinned-lane fleets, so its per-configuration
    ``ipc`` records legitimately carry zero migrations; this extra record is
    one seeded churn + gas-aware-planner run on the elastic process backend
    (delegated to ``bench_migration``, whose hard checks also re-verify
    serial equivalence), so the committed JSON tracks what moving a feed
    between lanes actually costs per epoch.
    """
    bench_dir = str(Path(__file__).resolve().parent)
    if bench_dir not in sys.path:
        sys.path.insert(0, bench_dir)
    import bench_migration

    payload = bench_migration.run_benchmark(
        bench_migration.DEFAULT_SEED, bench_migration.OPS_PER_FEED
    )
    return {
        "source": payload["source"],
        "config": payload["config"],
        "equivalence": payload["equivalence"],
        "ipc": payload["results"]["ipc"],
    }


def write_results(payload: dict, output: Path) -> None:
    output.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"results written to {output}")


def test_hotpath(benchmark):
    """Pytest entry: quick sweep under the benchmark harness."""
    quick = os.environ.get("GRUB_BENCH_SCALE") == "quick"
    workers = QUICK_WORKERS if quick else FULL_WORKERS
    lanes = QUICK_PROCESS_LANES if quick else FULL_PROCESS_LANES
    ops = QUICK_OPS_PER_FEED if quick else FULL_OPS_PER_FEED
    repeats = QUICK_REPEATS if quick else FULL_REPEATS
    payload = benchmark.pedantic(
        run_sweep, args=(workers, lanes, ops, repeats), rounds=1, iterations=1
    )
    assert payload["sweep"], "sweep produced no records"


def _parse_workers(values: Optional[List[str]], default: Sequence[int]) -> Tuple[int, ...]:
    if not values:
        return tuple(default)
    if len(values) == 1 and values[0] == "auto":
        return auto_worker_counts()
    return tuple(int(value) for value in values)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small sweep for CI (<60s): fewer worker counts, 96 ops/feed, 1 repeat",
    )
    parser.add_argument(
        "--workers",
        nargs="*",
        default=None,
        help="thread worker counts to sweep, or 'auto' to derive the curve "
        "from the host's effective CPUs (default: 1 2 4 8)",
    )
    parser.add_argument(
        "--process-lanes",
        type=int,
        nargs="*",
        default=None,
        help="process-backend lane counts to sweep (default: 2 4 8; pass "
        "nothing after the flag to skip the process sweep)",
    )
    parser.add_argument(
        "--ops", type=int, default=None, help="operations per feed"
    )
    parser.add_argument(
        "--repeats", type=int, default=None, help="repeats per configuration (best kept)"
    )
    parser.add_argument(
        "--profile-ipc",
        action="store_true",
        help="also measure what each process-mode epoch would have cost as a "
        "generic protocol-5 pickle and record reduction_vs_pickle "
        "(regression gating lives in benchmarks/runner.py)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_hotpath.json",
        help="where to write the JSON results (default: repo-root BENCH_hotpath.json)",
    )
    args = parser.parse_args()
    if args.quick:
        workers = _parse_workers(args.workers, QUICK_WORKERS)
        lanes = tuple(args.process_lanes) if args.process_lanes is not None else QUICK_PROCESS_LANES
        ops = args.ops or QUICK_OPS_PER_FEED
        repeats = args.repeats or QUICK_REPEATS
    else:
        workers = _parse_workers(args.workers, FULL_WORKERS)
        lanes = tuple(args.process_lanes) if args.process_lanes is not None else FULL_PROCESS_LANES
        ops = args.ops or FULL_OPS_PER_FEED
        repeats = args.repeats or FULL_REPEATS
    started = time.perf_counter()
    payload = run_sweep(
        workers, lanes, ops, repeats, profile_ipc=args.profile_ipc
    )
    payload["config"]["quick"] = bool(args.quick)
    write_results(payload, args.output)
    print(f"sweep completed in {time.perf_counter() - started:.1f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
