"""Hot-path benchmark: worker scaling and serial throughput of the gateway.

Drives one 32-feed fleet (preloaded stores, mixed read/write synthetic
workloads) through the parallel epoch engine, sweeping ``num_workers`` from 1
to 8 at a fixed shard plan.  Reported per worker count: wall time, ops/sec,
feed-layer gas/op and speedup versus the serial run.  Two hard checks:

* **equivalence** — every parallel run's telemetry fingerprint and per-feed
  gas bills must be bit-identical to the serial run's (the engine's core
  guarantee); a violation exits non-zero, which is what the CI perf-smoke
  job gates on;
* **trajectory** — results are written to ``BENCH_hotpath.json`` so future
  PRs have a recorded perf trajectory to beat.

A note on scaling: the engine parallelises each shard's off-chain work on a
thread pool, so the measured speedup is bounded by the host — on a single
hardware thread (or a GIL-bound CPython without free threading) parallel runs
can only match the serial throughput, never multiply it; the recorded
``host.cpus`` field says which regime produced the numbers.

Runs under pytest (the repo's benchmark harness) or standalone::

    PYTHONPATH=src python benchmarks/bench_hotpath.py            # full sweep
    PYTHONPATH=src python benchmarks/bench_hotpath.py --quick    # <60s CI smoke
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.common.types import KVRecord, Operation
from repro.core.config import GrubConfig
from repro.gateway import EpochScheduler, FeedRegistry, FeedSpec
from repro.analysis.reporting import format_rate, format_table
from repro.workloads.synthetic import SyntheticWorkload

NUM_FEEDS = 32
NUM_SHARDS = 8
EPOCH_SIZE = 16
FULL_WORKERS = (1, 2, 4, 8)
QUICK_WORKERS = (1, 4, 8)
FULL_OPS_PER_FEED = 256
QUICK_OPS_PER_FEED = 96
FULL_REPEATS = 3
QUICK_REPEATS = 1
PRELOAD_KEYS = 128


def build_workloads(ops_per_feed: int) -> Dict[str, List[Operation]]:
    return {
        f"feed-{index:02d}": SyntheticWorkload(
            read_write_ratio=4.0,
            num_operations=ops_per_feed,
            num_keys=32,
            key_prefix=f"asset{index:02d}-",
            seed=index + 1,
        ).operations()
        for index in range(NUM_FEEDS)
    }


def build_registry() -> FeedRegistry:
    registry = FeedRegistry()
    config = GrubConfig(epoch_size=EPOCH_SIZE, algorithm="memoryless", k=2)
    for index in range(NUM_FEEDS):
        preload = [
            KVRecord.make(f"asset{index:02d}-{j:04d}", bytes(32))
            for j in range(PRELOAD_KEYS)
        ]
        registry.create_feed(
            FeedSpec(feed_id=f"feed-{index:02d}", config=config, preload=preload)
        )
    return registry


def run_configuration(
    num_workers: int, workloads: Dict[str, List[Operation]], repeats: int
) -> dict:
    """Run the fleet at one worker count; keep the best wall time of ``repeats``."""
    best: Optional[dict] = None
    fingerprint = None
    gas_bills = None
    for _ in range(repeats):
        registry = build_registry()
        scheduler = EpochScheduler(
            registry, num_shards=NUM_SHARDS, num_workers=num_workers
        )
        fleet = scheduler.run(workloads)
        fingerprint = fleet.fingerprint()
        gas_bills = {
            feed_id: registry.chain.ledger.scope_total(feed_id)
            for feed_id in fleet.feeds
        }
        sample = {
            "num_workers": num_workers,
            "wall_seconds": round(fleet.wall_seconds, 4),
            "ops_per_sec": round(fleet.ops_per_second, 1),
            "gas_per_op": round(fleet.gas_per_operation, 2),
            "operations": fleet.operations,
            "cache_hit_rate": round(fleet.cache_hit_rate, 4),
        }
        if best is None or sample["wall_seconds"] < best["wall_seconds"]:
            best = sample
    best["fingerprint"] = fingerprint
    best["gas_bills"] = gas_bills
    return best


def run_sweep(worker_counts: Sequence[int], ops_per_feed: int, repeats: int) -> dict:
    workloads = build_workloads(ops_per_feed)
    results = [
        run_configuration(workers, workloads, repeats) for workers in worker_counts
    ]

    serial = results[0]
    assert serial["num_workers"] == 1, "sweep must start with the serial run"
    violations = []
    for result in results[1:]:
        if result["fingerprint"] != serial["fingerprint"]:
            violations.append(f"num_workers={result['num_workers']}: telemetry differs")
        if result["gas_bills"] != serial["gas_bills"]:
            violations.append(f"num_workers={result['num_workers']}: gas bills differ")
    if violations:
        raise AssertionError(
            "parallel-vs-serial equivalence violated: " + "; ".join(violations)
        )

    rows = []
    sweep_records = []
    for result in results:
        speedup = serial["wall_seconds"] / result["wall_seconds"]
        rows.append(
            (
                result["num_workers"],
                f"{result['wall_seconds']:.3f}s",
                format_rate(result["ops_per_sec"], "ops/s"),
                f"{speedup:.2f}x",
                result["gas_per_op"],
                f"{result['cache_hit_rate'] * 100:.1f}%",
            )
        )
        sweep_records.append(
            {
                "num_workers": result["num_workers"],
                "wall_seconds": result["wall_seconds"],
                "ops_per_sec": result["ops_per_sec"],
                "speedup_vs_serial": round(speedup, 3),
                "gas_per_op": result["gas_per_op"],
                "cache_hit_rate": result["cache_hit_rate"],
            }
        )
    print()
    print(
        format_table(
            ["workers", "wall", "throughput", "speedup", "gas/op", "cache hit"],
            rows,
            title=(
                f"Parallel epoch engine — {NUM_FEEDS} feeds, "
                f"{ops_per_feed} ops/feed, {NUM_SHARDS} shards"
            ),
        )
    )
    print(
        "equivalence: telemetry fingerprints and per-feed gas bills identical "
        "across all worker counts"
    )
    return {
        "benchmark": "hotpath",
        "source": "benchmarks/bench_hotpath.py",
        "config": {
            "num_feeds": NUM_FEEDS,
            "num_shards": NUM_SHARDS,
            "epoch_size": EPOCH_SIZE,
            "ops_per_feed": ops_per_feed,
            "preload_keys_per_feed": PRELOAD_KEYS,
            "repeats": repeats,
            "worker_counts": list(worker_counts),
        },
        "host": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "cpus": os.cpu_count(),
            "platform": platform.platform(),
        },
        "equivalence": "bit-identical across worker counts",
        "sweep": sweep_records,
        "serial": {
            "ops_per_sec": serial["ops_per_sec"],
            "gas_per_op": serial["gas_per_op"],
        },
    }


def write_results(payload: dict, output: Path) -> None:
    output.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"results written to {output}")


def test_hotpath(benchmark):
    """Pytest entry: quick sweep under the benchmark harness."""
    quick = os.environ.get("GRUB_BENCH_SCALE") == "quick"
    workers = QUICK_WORKERS if quick else FULL_WORKERS
    ops = QUICK_OPS_PER_FEED if quick else FULL_OPS_PER_FEED
    repeats = QUICK_REPEATS if quick else FULL_REPEATS
    payload = benchmark.pedantic(
        run_sweep, args=(workers, ops, repeats), rounds=1, iterations=1
    )
    assert payload["sweep"], "sweep produced no records"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small sweep for CI (<60s): workers 1/4/8 at 96 ops/feed, 1 repeat",
    )
    parser.add_argument(
        "--workers",
        type=int,
        nargs="*",
        default=None,
        help="worker counts to sweep (default: 1 2 4 8)",
    )
    parser.add_argument(
        "--ops", type=int, default=None, help="operations per feed"
    )
    parser.add_argument(
        "--repeats", type=int, default=None, help="repeats per configuration (best kept)"
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_hotpath.json",
        help="where to write the JSON results (default: repo-root BENCH_hotpath.json)",
    )
    args = parser.parse_args()
    if args.quick:
        workers: Sequence[int] = tuple(args.workers) if args.workers else QUICK_WORKERS
        ops = args.ops or QUICK_OPS_PER_FEED
        repeats = args.repeats or QUICK_REPEATS
    else:
        workers = tuple(args.workers) if args.workers else FULL_WORKERS
        ops = args.ops or FULL_OPS_PER_FEED
        repeats = args.repeats or FULL_REPEATS
    started = time.perf_counter()
    payload = run_sweep(workers, ops, repeats)
    payload["config"]["quick"] = bool(args.quick)
    write_results(payload, args.output)
    print(f"sweep completed in {time.perf_counter() - started:.1f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
