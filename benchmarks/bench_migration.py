"""Feed-migration benchmark: churn + gas-aware re-sharding on the elastic
process backend.

Drives one seeded churn schedule (joins, leaves, burst tenants, quota caps)
through the :class:`~repro.gateway.planner.GasAwareShardPlanner` twice — once
inline serial, once on the elastic process backend — so feeds genuinely
migrate between worker lanes as snapshot frames while lanes spawn and retire
with the shard plan.  Reported: migration/install counts and wire bytes per
epoch, lane spawn/retire counts, and the wall-clock cost of the moving
boundary versus the serial reference.

Hard checks (exit non-zero on violation, which is what the CI
``migration-smoke`` job gates on):

* **equivalence** — the process run's telemetry fingerprint is bit-identical
  to the serial run's, migrations and lane churn notwithstanding;
* **mobility actually happened** — at least one snapshot-frame migration,
  one elastic lane spawn beyond the first lane, and one lane retirement were
  metered (a run that never moves a feed measures nothing);
* **block feasibility** — ``block_gas_limit_overflow`` is zero and no mined
  block exceeds the chain's gas limit.

Results land in ``BENCH_migration.json``; the schedule seed is recorded
there and in ``BENCH_migration_seed.txt`` (written *before* the run, so a
failing CI job can still upload it for reproduction).

Runs standalone::

    PYTHONPATH=src python benchmarks/bench_migration.py           # <60s
    PYTHONPATH=src python benchmarks/bench_migration.py --seed 7  # new schedule
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
if str(BENCH_DIR) not in sys.path:
    sys.path.insert(0, str(BENCH_DIR))

import bench_churn

from repro.analysis.reporting import format_rate

#: Smaller resident fleet than ``bench_churn``'s 32: with ``joins``/``leaves``
#: held at the churn benchmark's 10/10, a 12-feed base makes the fleet's
#: *relative* size swing hard enough that the elastic lane pool provably
#: spawns and retires within the horizon, while keeping both runs well under
#: the 60-second CI budget.  Six workers (not four) leaves the lane ceiling
#: above the shard-plan width at the fleet's churned-down tail, so the pool
#: genuinely shrinks instead of saturating at its cap.
BASE_FEEDS = 12
OPS_PER_FEED = 48
NUM_WORKERS = 6
DEFAULT_SEED = bench_churn.DEFAULT_SEED


def _timed_run(seed: int, ops_per_feed: int, num_workers: int, execution_mode: str):
    started = time.perf_counter()
    schedule, registry, fleet = bench_churn.run_fleet(
        seed,
        ops_per_feed,
        num_workers=num_workers,
        base_feeds=BASE_FEEDS,
        execution_mode=execution_mode,
    )
    return schedule, registry, fleet, time.perf_counter() - started


def check_invariants(registry, serial_fleet, process_fleet) -> list:
    violations = []
    if process_fleet.fingerprint() != serial_fleet.fingerprint():
        violations.append("process run's telemetry differs from serial")
    ipc = process_fleet.ipc or {}
    if ipc.get("migrations_total", 0) < 1:
        violations.append("no feed ever migrated between lanes")
    if not ipc.get("migration_bytes_per_epoch", 0) > 0:
        violations.append("migration traffic was not metered")
    if ipc.get("installs_total", 0) < 1:
        violations.append("no feed was ever installed into a lane")
    if ipc.get("lane_spawns_total", 0) < 2:
        violations.append("the lane pool never grew past one lane")
    if ipc.get("lane_retirements_total", 0) < 1:
        violations.append("no lane was ever retired")
    overflow = registry.chain.ledger.by_category.get("block_gas_limit_overflow", 0)
    if overflow:
        violations.append(f"block_gas_limit_overflow = {overflow}")
    limit = registry.chain.parameters.block_gas_limit
    oversized = [b.number for b in registry.chain.blocks if b.gas_used > limit]
    if oversized:
        violations.append(f"blocks over the gas limit: {oversized}")
    return violations


def run_benchmark(seed: int, ops_per_feed: int) -> dict:
    _, serial_registry, serial_fleet, serial_wall = _timed_run(
        seed, ops_per_feed, num_workers=1, execution_mode="serial"
    )
    _, _, process_fleet, process_wall = _timed_run(
        seed, ops_per_feed, num_workers=NUM_WORKERS, execution_mode="process"
    )

    violations = check_invariants(serial_registry, serial_fleet, process_fleet)
    if violations:
        raise AssertionError("migration invariants violated: " + "; ".join(violations))

    ipc = process_fleet.ipc
    epochs = serial_fleet.epochs_run
    print(
        f"fleet: {BASE_FEEDS} residents + {serial_fleet.admissions} joins / "
        f"{serial_fleet.departures} leaves over {epochs} epochs, "
        f"{serial_fleet.operations:,} ops, "
        f"{format_rate(serial_fleet.ops_per_second, 'ops/s')} serial"
    )
    print(
        f"migration: {ipc['migrations_total']} lane-to-lane moves "
        f"({ipc['migration_bytes_total']:,} B total, "
        f"{ipc['migration_bytes_per_epoch']:.0f} B/epoch), "
        f"{ipc['installs_total']} installs "
        f"({ipc['install_bytes_total']:,} B)"
    )
    print(
        f"lane pool: {ipc['lane_spawns_total']} spawns, "
        f"{ipc['lane_retirements_total']} retirements "
        f"({NUM_WORKERS} workers ceiling); per-epoch deltas "
        f"{ipc['bytes_per_epoch']:.0f} B/epoch across lanes"
    )
    print(
        f"wall: serial {serial_wall:.2f}s vs elastic process {process_wall:.2f}s "
        f"({process_wall / serial_wall:.2f}x; read multicore speedup only on "
        f"hosts with >1 effective CPU)"
    )
    print("equivalence: process fingerprint bit-identical to serial, churn and all")

    record = {
        "migrations_total": ipc["migrations_total"],
        "migration_bytes_total": ipc["migration_bytes_total"],
        "migration_bytes_per_epoch": round(ipc["migration_bytes_per_epoch"], 2),
        "installs_total": ipc["installs_total"],
        "install_bytes_total": ipc["install_bytes_total"],
        "lane_spawns_total": ipc["lane_spawns_total"],
        "lane_retirements_total": ipc["lane_retirements_total"],
        "wire_bytes_per_epoch": round(ipc["bytes_per_epoch"], 2),
    }
    return {
        "benchmark": "migration",
        "source": "benchmarks/bench_migration.py",
        "config": {
            "seed": seed,
            "base_feeds": BASE_FEEDS,
            "joins": bench_churn.JOINS,
            "leaves": bench_churn.LEAVES,
            "epoch_size": bench_churn.EPOCH_SIZE,
            "ops_per_feed": ops_per_feed,
            "num_workers": NUM_WORKERS,
            "block_gas_fraction": bench_churn.BLOCK_GAS_FRACTION,
        },
        "host": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "cpus": os.cpu_count(),
            "platform": platform.platform(),
        },
        "equivalence": (
            "process fingerprint bit-identical to serial with churn, gas-aware "
            "re-sharding, and elastic lanes"
        ),
        "results": {
            "operations": serial_fleet.operations,
            "epochs_run": epochs,
            "admissions": serial_fleet.admissions,
            "departures": serial_fleet.departures,
            "ops_per_sec_serial": round(serial_fleet.ops_per_second, 1),
            "wall_seconds_serial": round(serial_wall, 3),
            "wall_seconds_process": round(process_wall, 3),
            "ipc": record,
        },
    }


def write_seed_file(output: Path, seed: int, ops: int) -> Path:
    """Record the schedule seed before anything fallible runs (CI uploads it
    on failure for reproduction)."""
    seed_file = output.parent / "BENCH_migration_seed.txt"
    seed_file.write_text(
        f"seed={seed} ops_per_feed={ops} "
        f"repro: PYTHONPATH=src python benchmarks/bench_migration.py "
        f"--seed {seed} --ops {ops}\n"
    )
    return seed_file


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--seed", type=int, default=DEFAULT_SEED, help="churn schedule seed"
    )
    parser.add_argument(
        "--ops", type=int, default=OPS_PER_FEED, help="operations per resident feed"
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_migration.json",
        help="where to write the JSON results (default: repo-root BENCH_migration.json)",
    )
    args = parser.parse_args(argv)
    write_seed_file(args.output, args.seed, args.ops)
    started = time.perf_counter()
    payload = run_benchmark(args.seed, args.ops)
    args.output.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"results written to {args.output}")
    print(f"run completed in {time.perf_counter() - started:.1f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
