"""Figure 8a (algorithm comparison) and Figure 8b (record-size sweep)."""

from __future__ import annotations

from repro.analysis.experiments import run_algorithm_comparison, run_record_size_sweep
from repro.analysis.reporting import format_gas, format_series, format_table

from conftest import run_once


def test_fig08a_memoryless_vs_memorizing_vs_offline(benchmark, scale):
    result = run_once(benchmark, run_algorithm_comparison, k=8, window_d=1, scale=scale)
    print()
    print(
        format_table(
            ["algorithm", "total feed Gas"],
            [(name, format_gas(total)) for name, total in result.totals.items()],
            title="Figure 8a — memoryless (K=8) vs memorizing (K'=8, D=1) vs offline optimal",
        )
    )
    for name, series in result.epoch_series.items():
        print(format_series(f"Figure 8a series {name}", series, max_points=24))
    assert result.totals["memorizing"] < result.totals["memoryless"]
    assert result.totals["offline"] <= result.totals["memorizing"] * 1.05


def test_fig08b_record_size(benchmark, scale):
    result = run_once(benchmark, run_record_size_sweep, (1, 2, 4, 8, 16), scale=scale)
    print()
    print(
        format_table(
            ["record size (words)", "BL1", "BL2", "GRuB"],
            [
                (
                    words,
                    round(result.gas_per_operation["BL1"][i]),
                    round(result.gas_per_operation["BL2"][i]),
                    round(result.gas_per_operation["GRuB"][i]),
                )
                for i, words in enumerate(result.record_sizes_words)
            ],
            title="Figure 8b — Gas per operation vs record size",
        )
    )
    for name in ("BL1", "BL2", "GRuB"):
        series = result.gas_per_operation[name]
        assert series[0] < series[-1]
