"""Figure 3: per-operation Gas of the static baselines BL1/BL2 vs read-write ratio."""

from __future__ import annotations

from repro.analysis.experiments import run_ratio_sweep
from repro.analysis.reporting import format_table

from conftest import run_once

RATIOS = (0.0, 0.125, 0.5, 1.0, 4.0, 16.0, 64.0, 256.0)


def test_fig03_static_baselines(benchmark, scale):
    result = run_once(benchmark, run_ratio_sweep, RATIOS, scale=scale, record_size_bytes=32)
    print()
    print(
        format_table(
            ["read/write ratio", "BL1 (no replica)", "BL2 (always replica)"],
            [
                (ratio, round(result.series("BL1")[i]), round(result.series("BL2")[i]))
                for i, ratio in enumerate(result.ratios)
            ],
            title="Figure 3 — Gas per operation (static baselines)",
        )
    )
    print(f"BL1/BL2 crossover ratio ≈ {result.crossover_ratio:.2f} (paper: ≈1.5)")
    assert result.series("BL1")[0] < result.series("BL2")[0]
    assert result.series("BL2")[-1] < result.series("BL1")[-1]
