"""Figure 15 / Table 5: static K versus the adaptive K1/K2 policies on ethPriceOracle."""

from __future__ import annotations

from repro.analysis.experiments import run_adaptive_k_experiment
from repro.analysis.reporting import format_gas, format_series, format_table

from conftest import run_once


def test_fig15_table5_adaptive_k(benchmark, scale):
    result = run_once(benchmark, run_adaptive_k_experiment, scale=scale)
    print()
    rows = []
    for name, total in result.totals.items():
        delta = "—" if name == "static" else f"{result.relative_to_static(name):+.1f}%"
        rows.append((name, format_gas(total), delta))
    print(
        format_table(
            ["policy", "aggregate Gas", "vs static K"],
            rows,
            title="Table 5 — adaptive-K policies under the ethPriceOracle trace",
        )
    )
    for name, series in result.epoch_series.items():
        print(format_series(f"Figure 15 series {name}", series, max_points=24))
    assert all(total > 0 for total in result.totals.values())
