"""Live front-door benchmark: concurrent asyncio clients against the fleet.

Seeded clients drive the same request sequence through
:class:`~repro.frontdoor.door.FrontDoor` — one asyncio task per request,
admitted through the full middleware stack (security headers, per-tenant
rate limiting, request metrics) — while the epoch scheduler drains the door
from its own thread.  Reported: end-to-end request latency p50/p95/p99 and
throughput per execution mode, plus a rate-limited scenario showing the
token bucket turning away an over-quota burst at the door.

Hard checks (exit non-zero on violation, which is what the CI
``frontdoor-smoke`` job gates on):

* **live ≡ batch** — the live run's fleet fingerprint is bit-identical to
  the equivalent batch run's, in serial, thread AND process modes;
* **gas conservation** — per-request gas attributions sum exactly to the
  fleet's feed+application gas (every unit billed to exactly one request);
* **non-empty percentiles** — every mode reports real p50/p95/p99 numbers;
* **rate limiting** — the metered scenario rejects the over-quota tail at
  the door and the accepted head still settles.

Results land in ``BENCH_frontdoor.json``.  Runs under pytest (the repo's
benchmark harness) or standalone::

    PYTHONPATH=src python benchmarks/bench_frontdoor.py            # full run
    PYTHONPATH=src python benchmarks/bench_frontdoor.py --smoke    # <60s CI smoke
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import platform
import sys
import time
from pathlib import Path

from repro.analysis.reporting import format_rate, format_table
from repro.core.config import GrubConfig
from repro.frontdoor import FrontDoor, Request, STATUS_REJECTED
from repro.gateway import EpochScheduler, FeedRegistry, FeedSpec
from repro.obs.export import format_duration
from repro.workloads.synthetic import SyntheticWorkload

MODES = ("serial", "thread", "process")
EPOCH_SIZE = 8
NUM_WORKERS = 2
DEFAULT_SEED = 20260808
FULL_TENANTS, FULL_OPS = 8, 160
SMOKE_TENANTS, SMOKE_OPS = 4, 48
#: Metered scenario: ops/epoch quota and the door's burst allowance.
METERED_QUOTA = 4
METERED_BURST_EPOCHS = 2
METERED_REQUESTS = 24


def build_fleet(seed: int, tenants: int, ops: int):
    registry = FeedRegistry()
    workloads = {}
    for index in range(tenants):
        feed_id = f"tenant-{index:02d}"
        registry.create_feed(
            FeedSpec(
                feed_id=feed_id,
                config=GrubConfig(
                    epoch_size=EPOCH_SIZE, algorithm="memoryless", k=1
                ),
            )
        )
        workloads[feed_id] = list(
            SyntheticWorkload(
                read_write_ratio=2.0,
                num_operations=ops,
                num_keys=8,
                key_prefix=f"{feed_id}-k",
                seed=seed + index,
            ).operations()
        )
    return registry, workloads


def interleave(workloads):
    """Round-robin the tenants' request sequences — the admission order a
    pack of concurrent per-tenant clients produces, pinned so every mode
    (and every rerun) sees the identical sequence."""
    columns = [(feed_id, list(ops)) for feed_id, ops in workloads.items()]
    depth = max((len(ops) for _, ops in columns), default=0)
    for index in range(depth):
        for feed_id, ops in columns:
            if index < len(ops):
                yield Request(tenant=feed_id, operation=ops[index])


def drive_clients(door: FrontDoor, workloads) -> list:
    """One concurrent asyncio task per request, all racing one event loop.

    The deterministic recipe: every task runs straight to admission on the
    first ``sleep(0)`` (there is no suspension point before the settlement
    future), then the held door releases — so epoch membership depends only
    on the interleaved admission order, never on how the loop raced the
    epoch clock.
    """

    async def main():
        async with door.serving() as d:
            tasks = [
                asyncio.create_task(d.submit(request))
                for request in interleave(workloads)
            ]
            await asyncio.sleep(0)
            d.release()
            responses = await asyncio.gather(*tasks)
            d.close()
        return responses

    return asyncio.run(main())


def run_mode(mode: str, seed: int, tenants: int, ops: int):
    registry, workloads = build_fleet(seed, tenants, ops)
    kwargs = {} if mode == "serial" else {"num_workers": NUM_WORKERS}
    scheduler = EpochScheduler(
        registry, epoch_size=EPOCH_SIZE, execution_mode=mode, **kwargs
    )
    door = FrontDoor(scheduler, held=True)
    started = time.perf_counter()
    responses = drive_clients(door, workloads)
    elapsed = time.perf_counter() - started
    return door, responses, elapsed


def check_mode(mode: str, door: FrontDoor, responses, batch_fingerprint) -> list:
    violations = []
    if door.fleet.fingerprint() != batch_fingerprint:
        violations.append(f"{mode}: live fingerprint differs from batch")
    rejected = [r for r in responses if not r.ok]
    if rejected:
        violations.append(f"{mode}: {len(rejected)} unexpected rejections")
    attributed = sum(r.gas for r in responses)
    billed = sum(
        feed.gas_feed + feed.gas_application
        for feed in door.fleet.feeds.values()
    )
    if attributed != billed:
        violations.append(
            f"{mode}: request gas attributions sum to {attributed}, "
            f"fleet billed {billed}"
        )
    report = door.percentiles()
    if any(value is None for value in report.values()):
        violations.append(f"{mode}: empty latency percentiles")
    return violations


def run_metered_scenario(seed: int) -> dict:
    """An over-quota burst against one metered tenant: the token bucket must
    turn away the tail at the door and defer nothing it cannot afford."""
    registry = FeedRegistry()
    registry.create_feed(
        FeedSpec(
            feed_id="metered",
            config=GrubConfig(epoch_size=EPOCH_SIZE, algorithm="memoryless", k=1),
            max_ops_per_epoch=METERED_QUOTA,
        )
    )
    scheduler = EpochScheduler(registry, epoch_size=EPOCH_SIZE)
    door = FrontDoor(
        scheduler, burst_epochs=METERED_BURST_EPOCHS, held=True
    )
    operations = list(
        SyntheticWorkload(
            read_write_ratio=2.0,
            num_operations=METERED_REQUESTS,
            num_keys=8,
            key_prefix="metered-k",
            seed=seed,
        ).operations()
    )
    responses = drive_clients(door, {"metered": operations})
    capacity = METERED_QUOTA * METERED_BURST_EPOCHS
    accepted = [r for r in responses if r.ok]
    rejected = [r for r in responses if r.status == STATUS_REJECTED]
    stats = door.telemetry.tenant("metered")
    if len(accepted) != capacity or len(rejected) != METERED_REQUESTS - capacity:
        raise AssertionError(
            f"metered: bucket of {capacity} admitted {len(accepted)} and "
            f"rejected {len(rejected)} of {METERED_REQUESTS}"
        )
    if door.fleet.feed("metered").operations != capacity:
        raise AssertionError("metered: engine executed ops the door rejected")
    return {
        "requests": METERED_REQUESTS,
        "quota_ops_per_epoch": METERED_QUOTA,
        "burst_epochs": METERED_BURST_EPOCHS,
        "accepted": len(accepted),
        "rejected_at_door": len(rejected),
        "deferred_epochs_max": max(r.deferred_epochs for r in accepted),
        "settled_epochs": sorted({r.epoch for r in accepted}),
        "telemetry": stats.fingerprint(),
    }


def run_benchmark(seed: int, tenants: int, ops: int) -> dict:
    registry, workloads = build_fleet(seed, tenants, ops)
    batch = EpochScheduler(registry, epoch_size=EPOCH_SIZE).run(workloads)
    batch_fingerprint = batch.fingerprint()

    modes = {}
    violations = []
    telemetry_fingerprints = set()
    for mode in MODES:
        door, responses, elapsed = run_mode(mode, seed, tenants, ops)
        violations.extend(check_mode(mode, door, responses, batch_fingerprint))
        report = door.percentiles()
        telemetry_fingerprints.add(json.dumps(door.telemetry.fingerprint(), sort_keys=True))
        modes[mode] = {
            "requests": len(responses),
            "epochs_run": door.fleet.epochs_run,
            "wall_seconds": round(elapsed, 4),
            "requests_per_sec": round(len(responses) / elapsed, 1),
            "latency_seconds": {
                key: round(value, 6) if value is not None else None
                for key, value in report.items()
            },
        }
    if len(telemetry_fingerprints) != 1:
        violations.append("door telemetry fingerprints differ across modes")
    if violations:
        raise AssertionError("front-door invariants violated: " + "; ".join(violations))

    print()
    print(
        format_table(
            ["mode", "requests", "req/s", "p50", "p95", "p99"],
            [
                (
                    mode,
                    row["requests"],
                    format_rate(row["requests_per_sec"], "req/s"),
                    format_duration(row["latency_seconds"]["p50"]),
                    format_duration(row["latency_seconds"]["p95"]),
                    format_duration(row["latency_seconds"]["p99"]),
                )
                for mode, row in modes.items()
            ],
            title=(
                f"Live front door — {tenants} tenants x {ops} requests "
                f"(seed {seed}, epoch size {EPOCH_SIZE})"
            ),
        )
    )
    print(
        "equivalence: live fingerprints bit-identical to the batch run in "
        "serial, thread and process modes; per-request gas attributions sum "
        "to the fleet's bill in every mode"
    )
    metered = run_metered_scenario(seed)
    print(
        f"rate limiting: bucket of {metered['accepted']} admitted the head of "
        f"a {metered['requests']}-request burst, rejected "
        f"{metered['rejected_at_door']} at the door "
        f"(quota {METERED_QUOTA} ops/epoch x {METERED_BURST_EPOCHS} burst epochs)"
    )

    return {
        "benchmark": "frontdoor",
        "source": "benchmarks/bench_frontdoor.py",
        "config": {
            "seed": seed,
            "tenants": tenants,
            "requests_per_tenant": ops,
            "epoch_size": EPOCH_SIZE,
            "num_workers": NUM_WORKERS,
        },
        "host": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "cpus": os.cpu_count(),
            "platform": platform.platform(),
        },
        "equivalence": (
            "live fingerprints bit-identical to batch across "
            "serial/thread/process; gas attribution conserved"
        ),
        "modes": modes,
        "metered": metered,
    }


def test_frontdoor(benchmark):
    """Pytest entry: smoke-scale live run under the benchmark harness."""
    payload = benchmark.pedantic(
        run_benchmark,
        args=(DEFAULT_SEED, SMOKE_TENANTS, SMOKE_OPS),
        rounds=1,
        iterations=1,
    )
    assert payload["modes"]["serial"]["latency_seconds"]["p50"] is not None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=(
            f"CI-sized run (<60s): {SMOKE_TENANTS} tenants x {SMOKE_OPS} requests"
        ),
    )
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED, help="workload seed")
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_frontdoor.json",
        help="where to write the JSON results (default: repo-root BENCH_frontdoor.json)",
    )
    args = parser.parse_args(argv)
    tenants, ops = (
        (SMOKE_TENANTS, SMOKE_OPS) if args.smoke else (FULL_TENANTS, FULL_OPS)
    )
    started = time.perf_counter()
    payload = run_benchmark(args.seed, tenants, ops)
    payload["config"]["smoke"] = bool(args.smoke)
    args.output.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"results written to {args.output}")
    print(f"run completed in {time.perf_counter() - started:.1f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
