"""Observability smoke: tracing changes nothing, and the exports are sound.

Drives one small mixed fleet through all three execution backends with the
observability plane on and off, then validates every exit the plane has:

* **zero-entropy** — telemetry fingerprints, per-feed gas bills and chain
  state are bit-identical across serial/thread/process with tracing on or
  off; the plane observes the run, it never steers it;
* **span-tree completeness** — the traced serial run has one ``run`` root,
  every epoch under it, every phase under each epoch, and every shard under
  each fanned-out phase; the process run additionally grafts lane spans in
  fixed shard order with its ``merge`` phase last;
* **percentiles** — every instrumented phase reports non-empty p50/p95/p99;
* **JSONL** — every exported line passes the schema validator (meta line
  first, pre-order span ids, histogram bucket invariants);
* **Prometheus** — the text snapshot parses under the strict parser and
  round-trips the counter values.

Any violation exits non-zero, which is what the CI ``obs-smoke`` job gates
on.  Runs standalone::

    PYTHONPATH=src python benchmarks/obs_smoke.py
"""

from __future__ import annotations

import sys
import time
from typing import List, Optional, Tuple

from repro.common.types import KVRecord
from repro.core.config import GrubConfig
from repro.gateway import EpochScheduler, FeedRegistry, FeedSpec
from repro.obs import PHASE_ORDER, Observability
from repro.obs.export import parse_prometheus, validate_jsonl
from repro.workloads.synthetic import SyntheticWorkload

NUM_FEEDS = 8
NUM_SHARDS = 4
EPOCH_SIZE = 8
OPS_PER_FEED = 64
SERIAL_PHASES = ("drive", "deliver", "update", "settle")
MODES: Tuple[Tuple[str, int], ...] = (("serial", 1), ("thread", 4), ("process", 3))


def build_fleet():
    registry = FeedRegistry()
    workloads = {}
    for index in range(NUM_FEEDS):
        feed_id = f"feed-{index:02d}"
        config = GrubConfig(
            epoch_size=EPOCH_SIZE,
            algorithm=("memoryless", "memorizing", "adaptive-k1", "always")[index % 4],
            k=(1, 2, 4)[index % 3],
        )
        preload = [
            KVRecord.make(f"asset{index:02d}-{j:03d}", bytes(24)) for j in range(16)
        ]
        registry.create_feed(
            FeedSpec(feed_id=feed_id, config=config, preload=preload)
        )
        workloads[feed_id] = SyntheticWorkload(
            read_write_ratio=(8.0, 2.0, 0.5)[index % 3],
            num_operations=OPS_PER_FEED,
            num_keys=16,
            key_prefix=f"asset{index:02d}-",
            seed=index + 1,
        ).operations()
    return registry, workloads


def run_fleet(mode: str, workers: int, obs: Optional[Observability]):
    registry, workloads = build_fleet()
    scheduler = EpochScheduler(
        registry,
        num_shards=NUM_SHARDS,
        num_workers=workers,
        execution_mode=mode,
        obs=obs,
    )
    fleet = scheduler.run(workloads)
    gas_bills = {
        feed_id: (t.gas_feed, t.gas_application) for feed_id, t in fleet.feeds.items()
    }
    chain = registry.chain
    # Block hashes cover wall-clock timestamps, so the comparable chain state
    # is height, the event stream (with block stamps) and the gas ledger.
    chain_state = (
        chain.height,
        tuple(
            (e.contract, e.name, e.block_number, e.transaction_index)
            for e in chain.event_log
        ),
        chain.ledger.total,
        tuple(sorted(chain.ledger.by_scope.items())),
    )
    return fleet.fingerprint(), gas_bills, chain_state


def check_tree(obs: Observability, mode: str, violations: List[str]) -> None:
    label = f"span tree ({mode})"
    roots = obs.tracer.roots
    if len(roots) != 1 or roots[0].name != "run":
        violations.append(f"{label}: expected exactly one 'run' root")
        return
    epochs = roots[0].children
    expected_epochs = OPS_PER_FEED // EPOCH_SIZE
    if [span.attrs.get("epoch") for span in epochs] != list(range(expected_epochs)):
        violations.append(f"{label}: missing or misordered epoch spans")
        return
    expected_phases = list(PHASE_ORDER) if mode == "process" else list(SERIAL_PHASES)
    for epoch_span in epochs:
        phases = [span.attrs.get("phase") for span in epoch_span.children]
        if phases != expected_phases:
            violations.append(
                f"{label}: epoch {epoch_span.attrs['epoch']} phases {phases}"
            )
            return
        for phase_span in epoch_span.children:
            phase = phase_span.attrs["phase"]
            if phase == "merge" or (mode != "process" and phase == "settle"):
                continue  # not fanned out per shard
            shards = [span.attrs.get("shard") for span in phase_span.children]
            if shards != list(range(NUM_SHARDS)):
                violations.append(
                    f"{label}: phase {phase} shard spans out of order: {shards}"
                )
                return


def check_percentiles(obs: Observability, mode: str, violations: List[str]) -> None:
    expected = set(PHASE_ORDER) if mode == "process" else set(SERIAL_PHASES)
    percentiles = obs.phase_percentiles()
    if set(percentiles) != expected:
        violations.append(
            f"percentiles ({mode}): phases {sorted(percentiles)} != {sorted(expected)}"
        )
        return
    for phase, row in percentiles.items():
        if row["count"] == 0 or any(
            row[q] is None for q in ("p50", "p95", "p99")
        ):
            violations.append(f"percentiles ({mode}): {phase} is empty")


def check_exports(obs: Observability, mode: str, violations: List[str]) -> None:
    try:
        events = validate_jsonl(obs.export_jsonl(meta={"benchmark": "obs_smoke"}))
    except Exception as exc:  # validator raises ReproError with the bad line
        violations.append(f"jsonl ({mode}): {exc}")
        return
    kinds = {event["type"] for event in events}
    if not {"meta", "span", "counter", "histogram"} <= kinds:
        violations.append(f"jsonl ({mode}): event kinds incomplete: {sorted(kinds)}")
    try:
        samples = parse_prometheus(obs.export_prometheus())
    except Exception as exc:
        violations.append(f"prometheus ({mode}): {exc}")
        return
    counters = {
        event["name"]: event["value"] for event in events if event["type"] == "counter"
    }
    for name, value in counters.items():
        rows = samples.get(name)
        if not rows or abs(rows[0][1] - value) > 1e-9:
            violations.append(
                f"prometheus ({mode}): {name} does not round-trip the JSONL value"
            )


def main() -> int:
    started = time.perf_counter()
    violations: List[str] = []

    baseline = run_fleet("serial", 1, None)
    traced = {}
    for mode, workers in MODES:
        obs = Observability()
        outputs = run_fleet(mode, workers, obs)
        traced[mode] = obs
        if outputs != baseline:
            violations.append(
                f"zero-entropy: traced {mode}/{workers} diverged from untraced serial"
            )
    for mode, workers in MODES[1:]:
        if run_fleet(mode, workers, None) != baseline:
            violations.append(
                f"zero-entropy: untraced {mode}/{workers} diverged from serial"
            )

    for mode in ("serial", "process"):
        check_tree(traced[mode], mode, violations)
        check_percentiles(traced[mode], mode, violations)
    check_exports(traced["serial"], "serial", violations)
    check_exports(traced["process"], "process", violations)

    if violations:
        print("obs-smoke FAILED:")
        for violation in violations:
            print(f"  - {violation}")
        return 1

    print(traced["serial"].render_report(title="obs-smoke — traced serial run"))
    print()
    print(
        f"obs-smoke OK: {len(MODES)} traced + {len(MODES) - 1} untraced runs "
        "bit-identical to the serial baseline; span trees complete; JSONL and "
        f"Prometheus exports validated ({time.perf_counter() - started:.1f}s)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
