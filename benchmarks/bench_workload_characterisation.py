"""Tables 1 and 6 / Figures 2 and 16: workload characterisation of the two traces."""

from __future__ import annotations

from repro.analysis.experiments import run_workload_characterisation
from repro.analysis.reporting import format_distribution, format_series

from conftest import run_once


def test_tables1_and_6_workload_characterisation(benchmark, scale):
    result = run_once(benchmark, run_workload_characterisation, scale=scale)
    print()
    print(
        format_distribution(
            result.eth_price_oracle.reads_per_write_distribution(),
            title="Table 1 — ethPriceOracle reads-per-write distribution (synthetic trace)",
        )
    )
    print(
        format_distribution(
            result.btcrelay.reads_per_write_distribution(),
            title="Table 6 — BtcRelay reads-per-write distribution (synthetic trace)",
        )
    )
    print(
        format_series(
            "Figure 2 — reads following each write (ethPriceOracle)",
            result.eth_price_oracle.reads_per_write_series(),
            precision=0,
            max_points=48,
        )
    )
    print(
        format_series(
            "Figure 16a — reads following each write (BtcRelay)",
            result.btcrelay.reads_per_write_series(),
            precision=0,
            max_points=48,
        )
    )
    eth = result.eth_price_oracle.reads_per_write_distribution()
    btc = result.btcrelay.reads_per_write_distribution()
    assert abs(eth.get(0, 0) - 0.704) < 0.05
    assert abs(btc.get(0, 0) - 0.937) < 0.05
