"""Figure 13: per-epoch Gas series for the additional YCSB mixes (A,E and A,F)."""

from __future__ import annotations

import pytest

from repro.analysis.experiments import run_ycsb_experiment
from repro.analysis.reporting import format_gas, format_series

from conftest import run_once


@pytest.mark.parametrize(
    "mix,phases,record_size",
    [("A,E", ("A", "E", "A", "E"), None), ("A,F", ("A", "F", "A", "F"), 32)],
)
def test_fig13_ycsb_time_series(benchmark, scale, mix, phases, record_size):
    result = run_once(
        benchmark, run_ycsb_experiment, phases, scale=scale, record_size_bytes=record_size
    )
    print()
    print(f"Figure 13 — mixed YCSB workload {mix}")
    for name in ("BL1", "BL2", "GRuB"):
        print(
            format_series(
                f"  {name} ({format_gas(result.feed_gas(name))} total)",
                result.epoch_series[name],
                max_points=24,
            )
        )
    # GRuB beats the worse static placement on every mix; on the small-record
    # A,F mix it lands between the baselines (see EXPERIMENTS.md).
    assert result.feed_gas("GRuB") <= max(result.feed_gas("BL1"), result.feed_gas("BL2"))
    assert result.feed_gas("GRuB") <= min(result.feed_gas("BL1"), result.feed_gas("BL2")) * 1.5
