"""Shared configuration for the benchmark harness.

Each benchmark regenerates one table or figure of the paper's evaluation at a
laptop-friendly scale (``ExperimentScale.default()``), prints the rows/series
the paper reports, and records the wall-clock time of the experiment run via
pytest-benchmark.  Set ``GRUB_BENCH_SCALE=paper`` to run the paper's full
parameters (much slower).
"""

from __future__ import annotations

import os

import pytest

from repro.analysis.experiments import ExperimentScale


def _selected_scale() -> ExperimentScale:
    name = os.environ.get("GRUB_BENCH_SCALE", "default").lower()
    if name == "paper":
        return ExperimentScale.paper()
    if name == "quick":
        return ExperimentScale.quick()
    return ExperimentScale.default()


@pytest.fixture(scope="session")
def scale() -> ExperimentScale:
    return _selected_scale()


def run_once(benchmark, func, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
