"""Figure 9 / Table 4: GRuB vs baselines under mixed YCSB workloads (A,B / A,E / A,F)."""

from __future__ import annotations

import pytest

from repro.analysis.experiments import run_ycsb_experiment
from repro.analysis.reporting import format_gas, format_series, format_table

from conftest import run_once

MIXES = {
    "A,B": (("A", "B", "A", "B"), None),
    "A,E": (("A", "E", "A", "E"), None),
    "A,F": (("A", "F", "A", "F"), 32),
}


@pytest.mark.parametrize("mix", list(MIXES))
def test_fig09_table4_ycsb(benchmark, scale, mix):
    phases, record_size = MIXES[mix]
    result = run_once(
        benchmark,
        run_ycsb_experiment,
        phases,
        scale=scale,
        record_size_bytes=record_size,
    )
    print()
    rows = [
        (
            name,
            format_gas(result.feed_gas(name)),
            f"+{result.overhead_versus_grub(name):.1f}%" if name != "GRuB" else "—",
        )
        for name in ("BL1", "BL2", "GRuB")
    ]
    print(
        format_table(
            ["system", "aggregate Gas", "vs GRuB"],
            rows,
            title=f"Table 4 — mixed YCSB workload {mix}",
        )
    )
    print(format_series(f"Figure 9/13 series GRuB ({mix})", result.epoch_series["GRuB"], max_points=24))
    # GRuB stays below the worse static placement on every mix; on the
    # small-record A,F mix it lands between the two baselines rather than
    # below both (see EXPERIMENTS.md for the discussion).
    assert result.feed_gas("GRuB") <= max(result.feed_gas("BL1"), result.feed_gas("BL2"))
    best_baseline = min(result.feed_gas("BL1"), result.feed_gas("BL2"))
    assert result.feed_gas("GRuB") <= best_baseline * 1.5
