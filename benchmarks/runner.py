"""Declarative experiment runner with a statistical regression gate.

The muBench-style harness the ROADMAP called for: instead of each benchmark
script reporting a best-of-N point estimate, an *experiment spec* declares
factors × repetitions, the runner expands the factor grid into cells,
randomizes the run order (so drift on the host decorrelates from any one
cell), drives the existing ``bench_hotpath`` / ``bench_churn`` machinery as
importable functions, and retains **every sample** in one tidy
``BENCH_experiments.json``.  A statistics stage (:mod:`repro.analysis.stats`)
then reports mean ± 95% CI per cell and effect sizes between cells, and
``--check-regression`` flags a regression only when the baseline and current
sample distributions statistically separate (Welch's t or non-overlapping
bootstrap CIs) *and* the shift clears an explicit actionability floor —
replacing the old single-sample 20% threshold gates that used to live in
``bench_hotpath.py``.

Spec format (``--spec FILE`` accepts JSON always, YAML when PyYAML is
importable)::

    {
      "name": "nightly",
      "repetitions": 5,
      "order_seed": 20260808,
      "ops_per_feed": 96,
      "factors": {
        "execution_mode": ["serial", "thread", "process"],
        "workers": [2, 4],            # thread workers / process lanes; "auto"
                                      # expands from the host's effective CPUs
        "fleet_size": [16, 32],       # feeds (churn: resident base feeds)
        "workload": ["mixed", "read_heavy", "write_heavy", "churn"]
      }
    }

Grid canonicalization: ``serial`` always runs one worker and ``thread`` cells
need >= 2 workers (one thread worker is just serial with overhead).
``process × churn`` cells run like any others — the elastic process engine
migrates feeds between lanes at churn and re-shard boundaries — and their
fingerprints join the cross-backend equivalence check, so the migration path
is equivalence-gated on every CI run.  Every sample records per-run host
affinity (``effective_cpus`` and
the actual CPU set — CI containers routinely advertise many CPUs while
granting one) plus the run's per-phase latency percentiles from an attached
observability plane.  When the host grants more than one effective CPU the
default grids extend the process-lane axis to the affinity (``"auto"``) and
the payload records ``"multicore_sweep": "recorded"`` — otherwise it stays
``"pending"``, closing the known BENCH_hotpath gap only on capable hosts
instead of pretending a 1-CPU container measured scaling.

Usage::

    PYTHONPATH=src python benchmarks/runner.py --smoke     # <60s CI grid
    PYTHONPATH=src python benchmarks/runner.py             # full grid
    PYTHONPATH=src python benchmarks/runner.py --spec my_experiment.yaml
    PYTHONPATH=src python benchmarks/runner.py --smoke \
        --check-regression BENCH_experiments.json          # the CI gate
"""

from __future__ import annotations

import argparse
import hashlib
import itertools
import json
import os
import platform
import random
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

BENCH_DIR = Path(__file__).resolve().parent
if str(BENCH_DIR) not in sys.path:
    sys.path.insert(0, str(BENCH_DIR))

import bench_churn
import bench_hotpath

from repro.analysis import stats
from repro.analysis.reporting import format_rate, format_table
from repro.obs import Observability

HOTPATH_PROFILES = tuple(sorted(bench_hotpath.PROFILE_RATIOS))
WORKLOADS = HOTPATH_PROFILES + ("churn",)
EXECUTION_MODES = ("serial", "thread", "process")

#: Gated metrics: direction plus the per-metric actionability floor.
#: Throughput gets a generous floor because baseline and current routinely
#: come from different host classes; wire bytes/epoch are deterministic for a
#: fixed workload, so their floor only absorbs deliberate format evolution.
GATED_METRICS = {
    "ops_per_sec": {"higher_is_better": True, "min_relative_change": 0.15},
    "ipc_bytes_per_epoch": {"higher_is_better": False, "min_relative_change": 0.05},
}

#: Metrics summarized per cell in the analysis stage (gated or not).
SUMMARY_METRICS = ("ops_per_sec", "wall_seconds", "gas_per_op", "ipc_bytes_per_epoch")

SMOKE_SPEC = {
    "name": "smoke",
    "repetitions": 5,
    "order_seed": 20260808,
    "ops_per_feed": 48,
    "factors": {
        "execution_mode": ["serial", "thread", "process"],
        "workers": [1, 2],
        "fleet_size": [12],
        "workload": ["mixed", "churn"],
    },
}

FULL_SPEC = {
    "name": "full",
    "repetitions": 5,
    "order_seed": 20260808,
    "ops_per_feed": 96,
    "factors": {
        "execution_mode": ["serial", "thread", "process"],
        "workers": ["auto"],
        "fleet_size": [16, 32],
        "workload": ["mixed", "read_heavy", "write_heavy", "churn"],
    },
}

CHURN_SEED = bench_churn.DEFAULT_SEED


# ---------------------------------------------------------------------------
# Spec → cells
# ---------------------------------------------------------------------------


@dataclass(frozen=True, order=True)
class Cell:
    """One factor combination; ``repetitions`` samples are taken per cell."""

    workload: str
    fleet_size: int
    execution_mode: str
    workers: int
    ops_per_feed: int

    @property
    def key(self) -> str:
        return (
            f"workload={self.workload}|fleet={self.fleet_size}"
            f"|mode={self.execution_mode}|workers={self.workers}"
            f"|ops={self.ops_per_feed}"
        )

    @property
    def group(self) -> Tuple[str, int, int]:
        """Cells sharing a group run identical inputs → identical fingerprints."""
        return (self.workload, self.fleet_size, self.ops_per_feed)

    def as_dict(self) -> dict:
        return {
            "workload": self.workload,
            "fleet_size": self.fleet_size,
            "execution_mode": self.execution_mode,
            "workers": self.workers,
            "ops_per_feed": self.ops_per_feed,
        }


def auto_workers(cpus: Optional[int] = None) -> List[int]:
    """``"auto"`` worker axis: 1, 2 and powers of two up to the affinity."""
    cpus = cpus or bench_hotpath.effective_cpus()
    counts = {1, 2}
    lane = 4
    while lane <= cpus:
        counts.add(lane)
        lane *= 2
    return sorted(counts)


def load_spec(path: Path) -> dict:
    """Load a spec file: JSON always, YAML when PyYAML is available."""
    text = path.read_text()
    if path.suffix.lower() in (".yaml", ".yml"):
        try:
            import yaml
        except ImportError as exc:  # pragma: no cover - depends on host env
            raise RuntimeError(
                f"{path} is YAML but PyYAML is not installed; "
                "re-export the spec as JSON (the runner always accepts JSON)"
            ) from exc
        return yaml.safe_load(text)
    return json.loads(text)


def expand_cells(spec: dict) -> List[Cell]:
    """Expand a spec's factor grid into canonical, deduplicated cells.

    Canonicalization: serial forces one worker; thread keeps only >= 2
    workers.  The returned list is deterministically sorted — randomization
    happens at the *run order* level, not here.
    """
    factors = spec.get("factors", {})
    modes = list(factors.get("execution_mode", ["serial"]))
    workers_axis: List[int] = []
    for value in factors.get("workers", [1]):
        if value == "auto":
            workers_axis.extend(auto_workers())
        else:
            workers_axis.append(int(value))
    fleet_sizes = [int(v) for v in factors.get("fleet_size", [16])]
    workloads = list(factors.get("workload", ["mixed"]))
    ops_per_feed = int(spec.get("ops_per_feed", 96))

    for mode in modes:
        if mode not in EXECUTION_MODES:
            raise ValueError(f"unknown execution_mode {mode!r} in spec")
    for workload in workloads:
        if workload not in WORKLOADS:
            raise ValueError(
                f"unknown workload {workload!r} in spec; expected one of {WORKLOADS}"
            )

    cells = set()
    for mode, workers, fleet, workload in itertools.product(
        modes, workers_axis, fleet_sizes, workloads
    ):
        if mode == "serial":
            workers = 1
        elif mode == "thread" and workers < 2:
            continue
        elif mode == "process" and workers < 1:
            continue
        cells.add(
            Cell(
                workload=workload,
                fleet_size=fleet,
                execution_mode=mode,
                workers=workers,
                ops_per_feed=ops_per_feed,
            )
        )
    if not cells:
        raise ValueError("spec expanded to an empty factor grid")
    return sorted(cells)


def run_order(cells: Sequence[Cell], repetitions: int, order_seed: int) -> List[Tuple[Cell, int]]:
    """All (cell, repetition) runs in a seed-randomized order.

    Randomizing the order decorrelates slow host drift (thermal throttling,
    noisy neighbours on shared runners) from any one cell — the reason the
    runner does not simply loop cells in sequence.
    """
    runs = [(cell, rep) for cell in cells for rep in range(repetitions)]
    random.Random(order_seed).shuffle(runs)
    return runs


# ---------------------------------------------------------------------------
# Driving one run
# ---------------------------------------------------------------------------


def _fingerprint_digest(fingerprint: dict) -> str:
    """Short stable digest of a fleet fingerprint (a nested plain-data dict).

    The full dict is the bit-identical equivalence object; samples carry a
    sha256 prefix of its canonical JSON so the experiments file stays tidy
    while cross-backend equality remains checkable.
    """
    canonical = json.dumps(fingerprint, sort_keys=True, default=str)
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


def _host_affinity() -> dict:
    """Per-run affinity capture: what the scheduler actually granted."""
    try:
        cpus = sorted(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        cpus = list(range(os.cpu_count() or 1))
    return {"effective_cpus": len(cpus), "cpu_set": cpus}


def _phase_record(obs: Observability) -> dict:
    return {
        phase: {
            "count": row["count"],
            "p50": round(row["p50"], 6),
            "p95": round(row["p95"], 6),
            "p99": round(row["p99"], 6),
        }
        for phase, row in obs.phase_percentiles().items()
    }


def run_once(cell: Cell, workloads_cache: Dict[Tuple[str, int, int], dict]) -> dict:
    """Execute one sample of ``cell``; every run is traced (obs attached).

    All samples carry the same ~constant tracing overhead, so within-file
    comparisons stay like-for-like; the per-phase percentiles are folded into
    the sample rather than recorded from a separate annotation run.
    """
    obs = Observability()
    if cell.workload == "churn":
        _, registry, fleet = bench_churn.run_fleet(
            CHURN_SEED,
            cell.ops_per_feed,
            cell.workers,
            base_feeds=cell.fleet_size,
            obs=obs,
            execution_mode=cell.execution_mode,
        )
    else:
        if cell.group not in workloads_cache:
            workloads_cache[cell.group] = bench_hotpath.build_workloads(
                cell.ops_per_feed,
                num_feeds=cell.fleet_size,
                profile=cell.workload,
            )
        registry, fleet = bench_hotpath.run_fleet_once(
            cell.execution_mode,
            cell.workers,
            workloads_cache[cell.group],
            obs=obs,
        )
    sample = {
        **cell.as_dict(),
        "wall_seconds": round(fleet.wall_seconds, 4),
        "ops_per_sec": round(fleet.ops_per_second, 1),
        "gas_per_op": round(fleet.gas_per_operation, 2),
        "operations": fleet.operations,
        "cache_hit_rate": round(fleet.cache_hit_rate, 4),
        "fingerprint": _fingerprint_digest(fleet.fingerprint()),
        "host_affinity": _host_affinity(),
        "phases": _phase_record(obs),
    }
    if getattr(fleet, "ipc", None) is not None:
        sample["ipc_bytes_per_epoch"] = round(fleet.ipc["bytes_per_epoch"], 2)
    return sample


def check_equivalence(samples: Sequence[dict]) -> None:
    """Same inputs ⇒ same fingerprint, across every backend and repetition.

    The engine's bit-identical guarantee, enforced on the whole experiment:
    all samples of one (workload, fleet, ops) group must agree.
    """
    by_group: Dict[tuple, Dict[str, str]] = {}
    for sample in samples:
        group = (sample["workload"], sample["fleet_size"], sample["ops_per_feed"])
        label = f"{sample['execution_mode']}/{sample['workers']}"
        by_group.setdefault(group, {})[label] = sample["fingerprint"]
    violations = []
    for group, fingerprints in by_group.items():
        if len(set(fingerprints.values())) > 1:
            violations.append(f"{group}: {sorted(fingerprints)}")
    if violations:
        raise AssertionError(
            "cross-backend equivalence violated: " + "; ".join(violations)
        )


# ---------------------------------------------------------------------------
# Statistics stage
# ---------------------------------------------------------------------------


def _cell_samples(samples: Sequence[dict], key: str, metric: str) -> List[float]:
    return [
        sample[metric]
        for sample in samples
        if _sample_key(sample) == key and metric in sample
    ]


def _sample_key(sample: dict) -> str:
    return (
        f"workload={sample['workload']}|fleet={sample['fleet_size']}"
        f"|mode={sample['execution_mode']}|workers={sample['workers']}"
        f"|ops={sample['ops_per_feed']}"
    )


def analyze(samples: Sequence[dict], confidence: float = 0.95) -> dict:
    """Per-cell summaries (mean ± CI) and effect sizes versus the serial cell."""
    keys: List[str] = []
    for sample in samples:
        key = _sample_key(sample)
        if key not in keys:
            keys.append(key)

    cells: Dict[str, dict] = {}
    for key in keys:
        cells[key] = {}
        for metric in SUMMARY_METRICS:
            values = _cell_samples(samples, key, metric)
            if values:
                summary = stats.summarize(values, confidence)
                record = summary.as_dict()
                record["samples"] = values
                cells[key][metric] = record

    # Effect sizes: every non-serial cell versus the serial cell of its group.
    serial_by_group: Dict[tuple, str] = {}
    group_by_key: Dict[str, tuple] = {}
    for sample in samples:
        key = _sample_key(sample)
        group = (sample["workload"], sample["fleet_size"], sample["ops_per_feed"])
        group_by_key[key] = group
        if sample["execution_mode"] == "serial":
            serial_by_group[group] = key
    comparisons = []
    for key in keys:
        reference = serial_by_group.get(group_by_key[key])
        if reference is None or reference == key:
            continue
        base = _cell_samples(samples, reference, "ops_per_sec")
        curr = _cell_samples(samples, key, "ops_per_sec")
        if not base or not curr:
            continue
        comparison = stats.compare_cells(base, curr, confidence)
        speedup = (
            round(comparison.current.mean / comparison.baseline.mean, 3)
            if comparison.baseline.mean
            else None
        )
        comparisons.append(
            {
                "cell": key,
                "reference": reference,
                "metric": "ops_per_sec",
                "speedup_vs_serial": speedup,
                "cohen_d": _json_number(comparison.cohen_d, 3),
                "t_statistic": _json_number(comparison.t_statistic, 3),
                "welch_df": round(comparison.welch_df, 2),
                "welch_significant": comparison.welch_significant,
                "relative_change": round(comparison.relative_change, 4),
            }
        )
    return {"confidence": confidence, "cells": cells, "comparisons": comparisons}


def _json_number(value: float, digits: int):
    """Round for JSON, mapping ±inf (zero-variance separations) to strings."""
    if value == float("inf"):
        return "inf"
    if value == float("-inf"):
        return "-inf"
    return round(value, digits)


# ---------------------------------------------------------------------------
# The statistical regression gate
# ---------------------------------------------------------------------------


def check_regression(
    committed_payload: dict,
    current_payload: dict,
    *,
    confidence: float = 0.95,
    metrics: Optional[dict] = None,
) -> List[str]:
    """Gate ``current_payload`` against a committed baseline, cell by cell.

    Cells are matched by their full factor key; for each gated metric present
    on both sides, :func:`repro.analysis.stats.check_regression` decides — a
    regression needs the sample distributions to separate (Welch's t or
    non-overlapping bootstrap CIs) *and* the mean shift to clear the metric's
    actionability floor.  Returns the failure messages (empty = gate passed);
    raises if nothing was comparable, because a silently skipped gate is
    worse than a loud one.
    """
    metrics = metrics or GATED_METRICS
    committed_samples = committed_payload["samples"]
    current_samples = current_payload["samples"]
    committed_keys = {_sample_key(s) for s in committed_samples}
    current_keys = {_sample_key(s) for s in current_samples}
    failures: List[str] = []
    compared = 0
    for key in sorted(committed_keys & current_keys):
        for metric, config in metrics.items():
            baseline = _cell_samples(committed_samples, key, metric)
            current = _cell_samples(current_samples, key, metric)
            if len(baseline) < 2 or len(current) < 2:
                continue
            verdict = stats.check_regression(
                baseline,
                current,
                higher_is_better=config["higher_is_better"],
                confidence=confidence,
                min_relative_change=config["min_relative_change"],
            )
            compared += 1
            print(f"gate [{key}] {metric}: {verdict.reason}")
            if verdict.regressed:
                failures.append(f"[{key}] {metric}: {verdict.reason}")
    if compared == 0:
        raise AssertionError(
            "regression gate found no comparable cells (>= 2 samples per side) "
            "between the current run and the committed baseline — "
            "did the factor grid change without refreshing BENCH_experiments.json?"
        )
    skipped = sorted(committed_keys - current_keys)
    if skipped:
        print(f"gate: {len(skipped)} committed cell(s) not in this run: {skipped}")
    return failures


# ---------------------------------------------------------------------------
# Experiment driver
# ---------------------------------------------------------------------------


def run_experiments(spec: dict) -> dict:
    """Expand, randomize, run and analyze one experiment spec."""
    repetitions = int(spec.get("repetitions", 3))
    if repetitions < 3:
        raise ValueError(
            "repetitions must be >= 3 — the statistics stage needs a spread, "
            "not another point estimate"
        )
    order_seed = int(spec.get("order_seed", 0))
    cells = expand_cells(spec)
    runs = run_order(cells, repetitions, order_seed)
    host = bench_hotpath.host_facts()
    print(
        f"experiment '{spec.get('name', 'unnamed')}': {len(cells)} cells × "
        f"{repetitions} repetitions = {len(runs)} runs "
        f"(randomized order, seed {order_seed}; "
        f"{host['effective_cpus']} effective CPU(s))"
    )

    workloads_cache: Dict[Tuple[str, int, int], dict] = {}
    samples: List[dict] = []
    for order_index, (cell, rep) in enumerate(runs):
        sample = run_once(cell, workloads_cache)
        sample["repetition"] = rep
        sample["order_index"] = order_index
        sample["recorded_at_unix"] = round(time.time(), 3)
        samples.append(sample)
        print(
            f"  [{order_index + 1:>3}/{len(runs)}] {cell.key} rep={rep} "
            f"{sample['wall_seconds']:.3f}s "
            f"{format_rate(sample['ops_per_sec'], 'ops/s')}"
        )
    check_equivalence(samples)

    analysis = analyze(samples)
    rows = []
    for key, metrics_record in analysis["cells"].items():
        if "ops_per_sec" not in metrics_record:
            continue
        summary = metrics_record["ops_per_sec"]
        rows.append(
            (
                key,
                summary["n"],
                f"{summary['mean']:,.0f}",
                f"±{(summary['ci_high'] - summary['ci_low']) / 2:,.0f}",
                f"[{summary['ci_low']:,.0f}, {summary['ci_high']:,.0f}]",
                f"{summary['stddev']:,.0f}",
            )
        )
    print()
    print(
        format_table(
            ["cell", "n", "mean ops/s", "half-width", "95% CI", "stddev"],
            rows,
            title="Per-cell throughput, mean ± 95% CI (every sample retained)",
        )
    )
    print(
        "equivalence: fingerprints bit-identical across all backends within "
        "every (workload, fleet, ops) group"
    )

    multicore = (
        "recorded"
        if host["effective_cpus"] > 1
        and any(
            s["execution_mode"] == "process" and s["workers"] > 1 for s in samples
        )
        else "pending"
    )
    if multicore == "pending":
        print(
            "note: multicore_sweep = pending — this host granted one effective "
            "CPU, so process-mode samples measure boundary overhead, not scaling"
        )
    return {
        "benchmark": "experiments",
        "source": "benchmarks/runner.py",
        "spec": {
            "name": spec.get("name", "unnamed"),
            "repetitions": repetitions,
            "order_seed": order_seed,
            "ops_per_feed": int(spec.get("ops_per_feed", 96)),
            "factors": spec.get("factors", {}),
            "cells": [cell.key for cell in cells],
        },
        "host": host,
        "multicore_sweep": multicore,
        "methodology": (
            "factors × repetitions in randomized run order; every sample "
            "retained; all runs traced (constant overhead); regressions "
            "gated on CI separation, not single-sample thresholds"
        ),
        "samples": samples,
        "analysis": analysis,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small factor grid for CI (<60s): 1 fleet size, 1 workload, "
        "3 repetitions per cell",
    )
    parser.add_argument(
        "--spec",
        type=Path,
        default=None,
        metavar="FILE",
        help="experiment spec file (JSON always; YAML when PyYAML is installed); "
        "overrides --smoke/--full grids",
    )
    parser.add_argument(
        "--repetitions", type=int, default=None, help="override the spec's repetitions"
    )
    parser.add_argument(
        "--order-seed", type=int, default=None, help="override the run-order seed"
    )
    parser.add_argument(
        "--check-regression",
        type=Path,
        default=None,
        metavar="COMMITTED_JSON",
        help="gate this run's cells against a committed BENCH_experiments.json "
        "(statistical CI separation, per-metric actionability floors) and "
        "exit non-zero on any regression",
    )
    parser.add_argument(
        "--confidence",
        type=float,
        default=0.95,
        choices=(0.90, 0.95, 0.99),
        help="confidence level for intervals and the gate (default 0.95)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_experiments.json",
        help="where to write the results (default: repo-root BENCH_experiments.json)",
    )
    args = parser.parse_args(argv)

    if args.spec is not None:
        spec = load_spec(args.spec)
    else:
        spec = dict(SMOKE_SPEC if args.smoke else FULL_SPEC)
    if args.repetitions is not None:
        spec["repetitions"] = args.repetitions
    if args.order_seed is not None:
        spec["order_seed"] = args.order_seed

    started = time.perf_counter()
    payload = run_experiments(spec)
    args.output.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"results written to {args.output}")
    print(f"experiment completed in {time.perf_counter() - started:.1f}s")

    if args.check_regression is not None:
        committed = json.loads(args.check_regression.read_text())
        failures = check_regression(
            committed, payload, confidence=args.confidence
        )
        if failures:
            raise AssertionError(
                "statistical regression gate failed:\n" + "\n".join(failures)
            )
        print("regression gate: PASS (no cell's distribution separated downward)")
    return 0


def host_facts() -> dict:
    """Re-exported for callers that only import the runner."""
    return bench_hotpath.host_facts()


if __name__ == "__main__":
    sys.exit(main())
