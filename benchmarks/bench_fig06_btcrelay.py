"""Figure 6: GRuB vs BL1/BL2 under the BtcRelay side-chain feed workload."""

from __future__ import annotations

import statistics

from repro.analysis.experiments import run_btcrelay_experiment
from repro.analysis.reporting import format_gas, format_series, format_table

from conftest import run_once


def test_fig06_btcrelay(benchmark, scale):
    result = run_once(benchmark, run_btcrelay_experiment, scale=scale)
    print()
    rows = []
    for name in ("BL1", "BL2", "GRuB"):
        series = result.epoch_series[name]
        half = len(series) // 2
        rows.append(
            (
                name,
                format_gas(result.feed_gas(name)),
                f"+{result.overhead_versus_grub(name):.1f}%" if name != "GRuB" else "—",
                round(statistics.mean(series[:half])),
                round(statistics.mean(series[half:])),
            )
        )
    print(
        format_table(
            ["system", "total Gas", "vs GRuB", "phase-1 Gas/op", "phase-2 Gas/op"],
            rows,
            title="Figure 6 — BtcRelay trace (write-intensive phase, then read-intensive phase)",
        )
    )
    for name, series in result.epoch_series.items():
        print(format_series(f"Figure 6 series {name}", series, max_points=24))
    # Shape: BL1 wins the write-intensive phase, BL2 the read-intensive one;
    # GRuB stays competitive with the better baseline overall.
    bl1, bl2 = result.epoch_series["BL1"], result.epoch_series["BL2"]
    half = len(bl1) // 2
    assert statistics.mean(bl1[:half]) < statistics.mean(bl2[:half])
    assert statistics.mean(bl2[half:]) < statistics.mean(bl1[half:])
