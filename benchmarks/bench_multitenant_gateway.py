"""Multi-tenant gateway: N hosted feeds versus N isolated deployments.

Sweeps the fleet size from 1 to 64 feeds.  For each N, the same per-feed
workloads are driven (a) through one gateway — shared chain, shared watchdog,
cross-feed batched delivers/updates, consumer-side read cache — and (b)
through N isolated single-feed ``GrubSystem`` deployments.  Reported per N:
total feed-layer gas/op for both, the hosting saving, the gateway's wall-clock
ops/sec and cache hit rate; the 32-feed row additionally prints the per-feed
telemetry table (each tenant's exact bill, including its share of batched
transactions).

Runs under pytest (the repo's benchmark harness) or standalone::

    PYTHONPATH=src python benchmarks/bench_multitenant_gateway.py            # full sweep
    PYTHONPATH=src python benchmarks/bench_multitenant_gateway.py --smoke    # <60s CI smoke
"""

from __future__ import annotations

import argparse
import time
from typing import Dict, Sequence

from repro.analysis.experiments import (
    GatewayComparisonResult,
    run_multitenant_gateway_experiment,
)
from repro.analysis.reporting import format_rate, format_table

FULL_SWEEP = (1, 4, 8, 16, 32, 64)
SMOKE_SWEEP = (1, 4, 8)
DETAIL_FLEET = 32  # the acceptance-criterion fleet size


def run_sweep(
    feed_counts: Sequence[int],
    *,
    operations_per_feed: int = 256,
    num_shards: int = 1,
    detail_fleet: int = DETAIL_FLEET,
) -> Dict[int, GatewayComparisonResult]:
    results: Dict[int, GatewayComparisonResult] = {}
    for num_feeds in feed_counts:
        results[num_feeds] = run_multitenant_gateway_experiment(
            num_feeds,
            operations_per_feed=operations_per_feed,
            num_shards=num_shards,
        )
    print()
    rows = []
    for num_feeds, result in results.items():
        rows.append(
            (
                num_feeds,
                round(result.gateway_gas_per_operation),
                round(result.isolated_gas_per_operation),
                f"{result.saving * 100:+.1f}%",
                format_rate(result.fleet.ops_per_second, "ops/s"),
                f"{result.fleet.cache_hit_rate * 100:.1f}%",
            )
        )
    print(
        format_table(
            ["feeds", "gateway gas/op", "isolated gas/op", "saving", "throughput", "cache hit"],
            rows,
            title="Multi-tenant gateway vs isolated single-feed deployments",
        )
    )
    detail = results.get(detail_fleet)
    if detail is not None:
        print()
        print(detail.fleet.format_report(title=f"Per-feed telemetry — {detail_fleet} feeds"))
    return results


def check_expectations(results: Dict[int, GatewayComparisonResult]) -> None:
    """The properties the sweep must exhibit (assertion-checked in CI)."""
    # Hosting several feeds must beat isolating them: the batched base cost
    # is split N ways and hot replicated reads are served from the cache.
    for num_feeds, result in results.items():
        if num_feeds >= 4:
            assert result.gateway_gas_feed < result.isolated_gas_feed, (
                f"{num_feeds} hosted feeds should be cheaper than isolation"
            )
            assert result.fleet.cache_hit_rate > 0.0
    # Amortisation improves with fleet size: the largest fleet saves at least
    # as much as the smallest multi-feed fleet, within noise.
    multi = [results[n].saving for n in sorted(results) if n >= 4]
    if len(multi) >= 2:
        assert multi[-1] >= multi[0] - 0.02


def test_multitenant_gateway(benchmark):
    """Pytest entry: run the sweep once under the benchmark harness."""
    import os

    sweep = SMOKE_SWEEP if os.environ.get("GRUB_BENCH_SCALE") == "quick" else FULL_SWEEP
    results = benchmark.pedantic(run_sweep, args=(sweep,), rounds=1, iterations=1)
    check_expectations(results)
    if DETAIL_FLEET in results:
        result = results[DETAIL_FLEET]
        assert result.gateway_gas_per_operation < result.isolated_gas_per_operation


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--feeds",
        type=int,
        nargs="*",
        default=None,
        help="fleet sizes to sweep (default: 1 4 8 16 32 64)",
    )
    parser.add_argument(
        "--ops", type=int, default=256, help="operations per feed (default 256)"
    )
    parser.add_argument(
        "--shards", type=int, default=1, help="gateway shards (default 1)"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small sweep for CI (1, 4, 8 feeds at 128 ops/feed)",
    )
    args = parser.parse_args()
    if args.smoke:
        feed_counts: Sequence[int] = SMOKE_SWEEP
        operations = min(args.ops, 128)
        detail = SMOKE_SWEEP[-1]
    else:
        feed_counts = tuple(args.feeds) if args.feeds else FULL_SWEEP
        operations = args.ops
        detail = DETAIL_FLEET if DETAIL_FLEET in feed_counts else feed_counts[-1]
    started = time.perf_counter()
    results = run_sweep(
        feed_counts,
        operations_per_feed=operations,
        num_shards=args.shards,
        detail_fleet=detail,
    )
    check_expectations(results)
    print(f"\nsweep completed in {time.perf_counter() - started:.1f}s; expectations hold")


if __name__ == "__main__":
    main()
