"""Figure 12: threshold read/write ratio vs record size (12a) and data size (12b)."""

from __future__ import annotations

from repro.analysis.experiments import run_threshold_ratio_experiment
from repro.analysis.reporting import format_table

from conftest import run_once


def test_fig12_threshold_ratio(benchmark, scale):
    result = run_once(
        benchmark,
        run_threshold_ratio_experiment,
        (32, 512, 4096),
        (256, 4096, 16384),
        scale=scale,
    )
    print()
    print(
        format_table(
            ["record size (bytes)", "threshold read/write ratio"],
            [(size, f"{value:.2f}") for size, value in result.by_record_size.items()],
            title="Figure 12a — threshold ratio vs record size",
        )
    )
    print(
        format_table(
            ["data size (records)", "threshold read/write ratio"],
            [(size, f"{value:.2f}") for size, value in result.by_data_size.items()],
            title="Figure 12b — threshold ratio vs data size",
        )
    )
    record_sizes = sorted(result.by_record_size)
    assert result.by_record_size[record_sizes[0]] <= result.by_record_size[record_sizes[-1]]
    data_sizes = sorted(result.by_data_size)
    assert result.by_data_size[data_sizes[-1]] <= result.by_data_size[data_sizes[0]]
