"""Elastic-fleet churn benchmark: mid-run tenant arrivals/departures under
gas-limit-aware admission control.

Drives a 32-feed resident fleet through the elastic epoch engine while ≥8
tenants join mid-run (several of them NFT-mint-style burst tenants) and ≥8
leave, under the :class:`~repro.gateway.planner.GasAwareShardPlanner` with a
deliberately tight per-shard gas budget, so the plan genuinely bin-packs and
re-packs as the fleet churns.  Reported: serial throughput, churn counts,
quota deferrals, cancelled work, shard-plan width, and the largest settlement
block versus the chain's gas limit.

Hard checks (exit non-zero on violation, which is what the CI ``churn-smoke``
job gates on):

* **equivalence** — the parallel run's telemetry fingerprint is bit-identical
  to the serial run's, mid-run churn notwithstanding;
* **block feasibility** — ``block_gas_limit_overflow`` is zero and no mined
  block exceeds the limit;
* **churn actually happened** — at least 8 admissions and 8 departures were
  applied;
* **quota enforcement** — quota-capped tenants deferred work and still
  executed every admitted operation (none lost).

Results land in ``BENCH_churn.json``; the schedule seed is recorded there
and in ``BENCH_churn_seed.txt`` (written *before* the run, so a failing CI
job can still upload it for reproduction).

Runs under pytest (the repo's benchmark harness) or standalone::

    PYTHONPATH=src python benchmarks/bench_churn.py            # full run
    PYTHONPATH=src python benchmarks/bench_churn.py --smoke    # <60s CI smoke
    PYTHONPATH=src python benchmarks/bench_churn.py --seed 42  # new schedule
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

from repro.analysis.reporting import format_gas, format_rate, format_table
from repro.gateway import EpochScheduler, FeedRegistry, GasAwareShardPlanner
from repro.obs import Observability
from repro.obs.export import format_duration
from repro.workloads.fleet_churn import FleetChurnWorkload

#: Synchronized-burst scenario (the cross-feed correlation stub from the
#: roadmap): every resident shares a hot keyset and bursts in the same epochs.
HOT_KEYS = 4
HOT_BURST_EPOCHS = 3

NUM_BASE_FEEDS = 32
JOINS = 10
LEAVES = 10
BURST_TENANTS = 4
EPOCH_SIZE = 8
HORIZON_EPOCHS = 12
QUOTA_FEEDS = 2
FULL_OPS_PER_FEED = 128
SMOKE_OPS_PER_FEED = 48
#: Per-shard budget as a fraction of the 10M block gas limit.  Resident feeds
#: settle ~30–60k gas per epoch, so a 200k budget forces multi-feed packing
#: decisions every epoch instead of one degenerate mega-shard.
BLOCK_GAS_FRACTION = 0.02
DEFAULT_SEED = 20260730


def build_schedule(
    seed: int,
    ops_per_feed: int,
    *,
    base_feeds: int = NUM_BASE_FEEDS,
    correlated: bool = False,
) -> FleetChurnWorkload:
    return FleetChurnWorkload(
        seed=seed,
        base_feeds=base_feeds,
        joins=JOINS,
        leaves=LEAVES,
        burst_tenants=BURST_TENANTS,
        horizon_epochs=HORIZON_EPOCHS,
        epoch_size=EPOCH_SIZE,
        ops_per_feed=ops_per_feed,
        quota_feeds=QUOTA_FEEDS,
        correlated_hot_keys=correlated,
        hot_keys=HOT_KEYS,
        hot_burst_epochs=HOT_BURST_EPOCHS,
    )


def run_fleet(
    seed: int,
    ops_per_feed: int,
    num_workers: int,
    *,
    base_feeds: int = NUM_BASE_FEEDS,
    correlated: bool = False,
    obs: Observability | None = None,
    execution_mode: str | None = None,
):
    """One churn run; the importable unit the experiment runner drives.

    ``execution_mode`` defaults to the scheduler's thread backend (the
    benchmark's historical behaviour); pass ``"serial"`` for an inline run or
    ``"process"`` for the elastic multicore backend, where churn and the
    gas-aware re-shard migrate feeds between worker lanes as snapshot frames.
    """
    schedule = build_schedule(
        seed, ops_per_feed, base_feeds=base_feeds, correlated=correlated
    ).generate()
    registry = FeedRegistry()
    kwargs = {} if execution_mode is None else {"execution_mode": execution_mode}
    scheduler = EpochScheduler(
        registry,
        num_workers=num_workers,
        epoch_size=EPOCH_SIZE,
        planner=GasAwareShardPlanner(block_gas_fraction=BLOCK_GAS_FRACTION),
        obs=obs,
        **kwargs,
    )
    workloads = schedule.install(registry, scheduler)
    fleet = scheduler.run(workloads)
    return schedule, registry, fleet


def check_invariants(schedule, registry, serial_fleet, parallel_fleet) -> list:
    violations = []
    if parallel_fleet.fingerprint() != serial_fleet.fingerprint():
        violations.append("parallel run's telemetry differs from serial")
    overflow = registry.chain.ledger.by_category.get("block_gas_limit_overflow", 0)
    if overflow:
        violations.append(f"block_gas_limit_overflow = {overflow}")
    limit = registry.chain.parameters.block_gas_limit
    oversized = [b.number for b in registry.chain.blocks if b.gas_used > limit]
    if oversized:
        violations.append(f"blocks over the gas limit: {oversized}")
    if serial_fleet.admissions < 8:
        violations.append(f"only {serial_fleet.admissions} admissions (need >= 8)")
    if serial_fleet.departures < 8:
        violations.append(f"only {serial_fleet.departures} departures (need >= 8)")
    quota_ids = schedule.quota_feed_ids()
    admitted = schedule.admitted_op_counts()
    for feed_id in quota_ids:
        telemetry = serial_fleet.feeds[feed_id]
        if telemetry.deferred_ops == 0:
            violations.append(f"quota feed {feed_id} never deferred")
        if telemetry.operations + telemetry.cancelled_ops != admitted[feed_id]:
            violations.append(f"quota feed {feed_id} lost operations")
    for feed_id, count in admitted.items():
        telemetry = serial_fleet.feeds[feed_id]
        if telemetry.operations + telemetry.cancelled_ops != count:
            violations.append(f"op conservation violated for {feed_id}")
            break
    return violations


def observability_record(seed: int, ops_per_feed: int, serial_fleet) -> dict:
    """One extra *traced* serial run: per-phase latency + planner bin metrics.

    The measured runs above stay observability-off; the traced run must land
    on the same fingerprint or its numbers describe some other benchmark.
    """
    obs = Observability()
    _, _, fleet = run_fleet(seed, ops_per_feed, num_workers=1, obs=obs)
    if fleet.fingerprint() != serial_fleet.fingerprint():
        raise AssertionError("traced serial run diverged from the untraced one")
    percentiles = obs.phase_percentiles()
    snapshot = obs.snapshot()
    utilization = snapshot["histograms"]["planner_bin_utilization"]
    print()
    print(
        format_table(
            ["phase", "n", "p50", "p95", "p99"],
            [
                (
                    phase,
                    row["count"],
                    format_duration(row["p50"]),
                    format_duration(row["p95"]),
                    format_duration(row["p99"]),
                )
                for phase, row in percentiles.items()
            ],
            title="Per-phase latency (traced serial run, excluded from timings)",
        )
    )
    print(
        f"planner bins: {utilization['count']} packed under the gas budget, "
        f"utilization p50 {utilization['p50']:.2f} / p95 {utilization['p95']:.2f}, "
        f"peak {obs.histogram('planner_bin_utilization').percentile(100.0):.2f}"
    )
    return {
        "note": (
            "separate traced serial run; timings elsewhere in this file were "
            "taken with observability disabled"
        ),
        "phase_percentiles": {
            phase: {
                "count": row["count"],
                "p50": round(row["p50"], 6),
                "p95": round(row["p95"], 6),
                "p99": round(row["p99"], 6),
            }
            for phase, row in percentiles.items()
        },
        "planner": {
            "plans_total": snapshot["counters"]["planner_plans_total"],
            "overflow_bins_total": snapshot["counters"].get(
                "planner_overflow_bins_total", 0
            ),
            "bin_utilization": {
                "count": utilization["count"],
                "p50": round(utilization["p50"], 4),
                "p95": round(utilization["p95"], 4),
                "p99": round(utilization["p99"], 4),
                "max": round(
                    obs.histogram("planner_bin_utilization").percentile(100.0), 4
                ),
            },
        },
    }


def run_correlated_hot_keys(seed: int, ops_per_feed: int) -> dict:
    """Drive the ``correlated_hot_keys`` scenario through the churn engine.

    Every resident bursts over the same hot keyset in the same epochs, so the
    gas-aware planner sees every bin fill at once instead of independent noise
    averaging out.  Recorded: the burst epochs, the shard-plan width series,
    and how hot the bins ran.  Hard checks: parallel equivalence holds under
    the synchronized bursts, and no settlement block breaches the gas limit.
    """
    obs = Observability()
    schedule, registry, fleet = run_fleet(
        seed, ops_per_feed, num_workers=1, correlated=True, obs=obs
    )
    _, _, parallel_fleet = run_fleet(
        seed, ops_per_feed, num_workers=4, correlated=True
    )
    violations = []
    if parallel_fleet.fingerprint() != fleet.fingerprint():
        violations.append("correlated: parallel telemetry differs from serial")
    limit = registry.chain.parameters.block_gas_limit
    oversized = [b.number for b in registry.chain.blocks if b.gas_used > limit]
    if oversized:
        violations.append(f"correlated: blocks over the gas limit: {oversized}")
    if violations:
        raise AssertionError("; ".join(violations))

    snapshot = obs.snapshot()
    utilization = snapshot["histograms"]["planner_bin_utilization"]
    shards = list(fleet.shards_per_epoch)
    burst_epochs = [e for e in schedule.hot_burst_epochs if e < len(shards)]
    calm_epochs = [e for e in range(len(shards)) if e not in burst_epochs]

    def mean_width(epochs):
        return round(sum(shards[e] for e in epochs) / len(epochs), 2) if epochs else None

    max_block_gas = max(block.gas_used for block in registry.chain.blocks)
    print(
        f"correlated hot keys: {len(schedule.hot_suffixes)} shared keys, "
        f"bursts at epochs {burst_epochs}; shard plan width "
        f"{mean_width(burst_epochs)} (burst) vs {mean_width(calm_epochs)} (calm), "
        f"bin utilization p95 {utilization['p95']:.2f}; "
        f"largest block {format_gas(max_block_gas)} of {format_gas(limit)} "
        f"(overflow: 0); parallel fingerprint identical"
    )
    return {
        "hot_keys": len(schedule.hot_suffixes),
        "hot_burst_epochs": burst_epochs,
        "shards_per_epoch": shards,
        "mean_shards_burst_epochs": mean_width(burst_epochs),
        "mean_shards_calm_epochs": mean_width(calm_epochs),
        "bin_utilization": {
            "count": utilization["count"],
            "p50": round(utilization["p50"], 4),
            "p95": round(utilization["p95"], 4),
            "max": round(
                obs.histogram("planner_bin_utilization").percentile(100.0), 4
            ),
        },
        "overflow_bins_total": snapshot["counters"].get(
            "planner_overflow_bins_total", 0
        ),
        "cache_hit_rate": round(fleet.cache_hit_rate, 4),
        "max_block_gas": max_block_gas,
        "block_gas_limit": limit,
        "equivalence": "parallel fingerprint bit-identical under synchronized bursts",
    }


def run_benchmark(seed: int, ops_per_feed: int) -> dict:
    schedule, serial_registry, serial_fleet = run_fleet(seed, ops_per_feed, num_workers=1)
    _, _, parallel_fleet = run_fleet(seed, ops_per_feed, num_workers=4)

    violations = check_invariants(
        schedule, serial_registry, serial_fleet, parallel_fleet
    )
    if violations:
        raise AssertionError("churn invariants violated: " + "; ".join(violations))

    limit = serial_registry.chain.parameters.block_gas_limit
    max_block_gas = max(block.gas_used for block in serial_registry.chain.blocks)
    quota_ids = set(schedule.quota_feed_ids())
    rows = []
    for label, feed_ids in (
        ("residents", [j.feed_id for j in schedule.initial]),
        ("joiners", [j.feed_id for j in schedule.joins if not j.feed_id.startswith("mint")]),
        ("mint bursts", [j.feed_id for j in schedule.joins if j.feed_id.startswith("mint")]),
    ):
        feeds = [serial_fleet.feeds[f] for f in feed_ids]
        rows.append(
            (
                label,
                len(feeds),
                sum(f.operations for f in feeds),
                format_gas(sum(f.gas_feed for f in feeds)),
                sum(f.deferred_ops for f in feeds),
                sum(f.cancelled_ops for f in feeds),
                sum(1 for f in feeds if f.departed),
            )
        )
    print()
    print(
        format_table(
            ["tenant class", "feeds", "ops", "feed gas", "deferred", "cancelled", "left"],
            rows,
            title=(
                f"Elastic fleet — {NUM_BASE_FEEDS} residents, "
                f"{serial_fleet.admissions} joins, {serial_fleet.departures} leaves "
                f"(seed {seed})"
            ),
        )
    )
    print(
        f"fleet: {serial_fleet.operations:,} ops in {serial_fleet.epochs_run} epochs, "
        f"{format_rate(serial_fleet.ops_per_second, 'ops/s')} serial, "
        f"{format_gas(serial_fleet.gas_feed)} feed gas "
        f"({serial_fleet.gas_per_operation:,.1f} gas/op)"
    )
    print(
        f"planner: {min(serial_fleet.shards_per_epoch)}–{max(serial_fleet.shards_per_epoch)} "
        f"shards/epoch under a {format_gas(int(BLOCK_GAS_FRACTION * limit))} budget; "
        f"largest settlement block {format_gas(max_block_gas)} "
        f"of the {format_gas(limit)} limit (overflow: 0)"
    )
    print(
        f"quotas: {serial_fleet.deferred_ops} ops deferred "
        f"({len(quota_ids)} capped tenants), all eventually executed; "
        f"departures cancelled {serial_fleet.cancelled_ops} queued ops and "
        f"{serial_fleet.cancelled_requests} pending requests"
    )
    print("equivalence: parallel fingerprint bit-identical to serial")

    return {
        "benchmark": "churn",
        "source": "benchmarks/bench_churn.py",
        "config": {
            "seed": seed,
            "base_feeds": NUM_BASE_FEEDS,
            "joins": JOINS,
            "leaves": LEAVES,
            "burst_tenants": BURST_TENANTS,
            "epoch_size": EPOCH_SIZE,
            "ops_per_feed": ops_per_feed,
            "quota_feeds": QUOTA_FEEDS,
            "block_gas_fraction": BLOCK_GAS_FRACTION,
        },
        "host": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "cpus": os.cpu_count(),
            "platform": platform.platform(),
        },
        "equivalence": "bit-identical across worker counts (with churn)",
        "results": {
            "operations": serial_fleet.operations,
            "epochs_run": serial_fleet.epochs_run,
            "ops_per_sec_serial": round(serial_fleet.ops_per_second, 1),
            "gas_per_op": round(serial_fleet.gas_per_operation, 2),
            "admissions": serial_fleet.admissions,
            "departures": serial_fleet.departures,
            "deferred_ops": serial_fleet.deferred_ops,
            "cancelled_ops": serial_fleet.cancelled_ops,
            "cancelled_requests": serial_fleet.cancelled_requests,
            "shards_per_epoch_min": min(serial_fleet.shards_per_epoch),
            "shards_per_epoch_max": max(serial_fleet.shards_per_epoch),
            "max_block_gas": max_block_gas,
            "block_gas_limit": limit,
            "block_gas_limit_overflow": 0,
            "cache_hit_rate": round(serial_fleet.cache_hit_rate, 4),
        },
        "observability": observability_record(seed, ops_per_feed, serial_fleet),
        "correlated_hot_keys": run_correlated_hot_keys(seed, ops_per_feed),
    }


def test_churn(benchmark):
    """Pytest entry: smoke-scale churn run under the benchmark harness."""
    payload = benchmark.pedantic(
        run_benchmark, args=(DEFAULT_SEED, SMOKE_OPS_PER_FEED), rounds=1, iterations=1
    )
    assert payload["results"]["admissions"] >= 8


def write_seed_file(output: Path, seed: int, ops: int) -> Path:
    """Record the schedule seed and repro command next to the results file.

    Called *before* anything fallible runs, so a failing CI job always has a
    seed file to upload (the workflow's failure-artifact step depends on it).
    """
    seed_file = output.parent / "BENCH_churn_seed.txt"
    seed_file.write_text(
        f"seed={seed} ops_per_feed={ops} "
        f"repro: PYTHONPATH=src python benchmarks/bench_churn.py "
        f"--seed {seed} --ops {ops}\n"
    )
    return seed_file


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=f"CI-sized run (<60s): {SMOKE_OPS_PER_FEED} ops/feed",
    )
    parser.add_argument(
        "--seed", type=int, default=DEFAULT_SEED, help="churn schedule seed"
    )
    parser.add_argument("--ops", type=int, default=None, help="operations per resident feed")
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_churn.json",
        help="where to write the JSON results (default: repo-root BENCH_churn.json)",
    )
    args = parser.parse_args(argv)
    ops = args.ops or (SMOKE_OPS_PER_FEED if args.smoke else FULL_OPS_PER_FEED)
    # Guarantee the seed file exists before the run starts (and therefore
    # whenever the run fails), so a failed CI job can still upload it.
    write_seed_file(args.output, args.seed, ops)
    started = time.perf_counter()
    payload = run_benchmark(args.seed, ops)
    payload["config"]["smoke"] = bool(args.smoke)
    args.output.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"results written to {args.output}")
    print(f"run completed in {time.perf_counter() - started:.1f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
