"""Ablation benchmarks for the design choices called out in DESIGN.md.

* deliver batching — one epoch-batched deliver transaction vs one per request,
* storage refunds — Ethereum's storage-clear refund, which the paper's cost
  model ignores,
* replica-slot reuse — the BtcRelay experiment's "reusable storage".
"""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.core.config import GrubConfig
from repro.core.grub import GrubSystem
from repro.chain.gas import GasSchedule
from repro.workloads.synthetic import AlternatingPhaseWorkload, SyntheticWorkload

from conftest import run_once


def _run(config: GrubConfig, operations) -> float:
    return GrubSystem(config).run(list(operations)).gas_per_operation


def test_ablation_deliver_batching(benchmark, scale):
    operations = SyntheticWorkload(
        read_write_ratio=8, num_operations=scale.synthetic_operations, num_keys=4
    ).operations()

    def experiment():
        batched = _run(GrubConfig(epoch_size=scale.epoch_size, batch_deliver=True), operations)
        unbatched = _run(GrubConfig(epoch_size=scale.epoch_size, batch_deliver=False), operations)
        return batched, unbatched

    batched, unbatched = run_once(benchmark, experiment)
    print()
    print(
        format_table(
            ["deliver mode", "Gas/op"],
            [("epoch-batched", round(batched)), ("per-request", round(unbatched))],
            title="Ablation — SP deliver batching",
        )
    )
    assert batched < unbatched


def test_ablation_storage_refunds(benchmark, scale):
    operations = AlternatingPhaseWorkload(
        phase_ratios=(8.0, 0.0, 8.0, 0.0),
        operations_per_phase=scale.synthetic_operations // 4,
        num_keys=4,
    ).operations()

    def experiment():
        without = _run(GrubConfig(epoch_size=scale.epoch_size, algorithm="memoryless", k=2), operations)
        with_refunds = _run(
            GrubConfig(
                epoch_size=scale.epoch_size,
                algorithm="memoryless",
                k=2,
                gas_schedule=GasSchedule().with_refunds(),
            ),
            operations,
        )
        return without, with_refunds

    without, with_refunds = run_once(benchmark, experiment)
    print()
    print(
        format_table(
            ["schedule", "Gas/op"],
            [("no refunds (paper model)", round(without)), ("with clear refunds", round(with_refunds))],
            title="Ablation — storage-clear refunds",
        )
    )
    assert with_refunds <= without


def test_ablation_replica_slot_reuse(benchmark, scale):
    operations = AlternatingPhaseWorkload(
        phase_ratios=(8.0, 0.0, 8.0, 0.0),
        operations_per_phase=scale.synthetic_operations // 4,
        num_keys=6,
    ).operations()

    def experiment():
        fresh_slots = _run(GrubConfig(epoch_size=scale.epoch_size, reuse_replica_slots=False), operations)
        reused = _run(GrubConfig(epoch_size=scale.epoch_size, reuse_replica_slots=True), operations)
        return fresh_slots, reused

    fresh_slots, reused = run_once(benchmark, experiment)
    print()
    print(
        format_table(
            ["replica slots", "Gas/op"],
            [("fresh slot per replica", round(fresh_slots)), ("reused slot pool", round(reused))],
            title="Ablation — replica slot reuse (BtcRelay 'reusable storage')",
        )
    )
    assert reused <= fresh_slots
