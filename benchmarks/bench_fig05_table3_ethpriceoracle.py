"""Figure 5 / Table 3: GRuB vs BL1/BL2 under the ethPriceOracle trace with the stablecoin."""

from __future__ import annotations

from repro.analysis.experiments import run_eth_price_oracle_experiment
from repro.analysis.reporting import format_gas, format_series, format_table

from conftest import run_once


def test_fig05_table3_ethpriceoracle(benchmark, scale):
    result = run_once(
        benchmark, run_eth_price_oracle_experiment, scale=scale, with_stablecoin=True
    )
    print()
    rows = []
    for name in ("BL1", "BL2", "GRuB"):
        feed = result.feed_gas(name)
        total = result.reports[name].gas_total
        rows.append(
            (
                name,
                format_gas(feed),
                f"+{result.overhead_versus_grub(name):.1f}%" if name != "GRuB" else "—",
                format_gas(total),
            )
        )
    print(
        format_table(
            ["system", "price-feed Gas", "vs GRuB", "feed + SCoinIssuer Gas"],
            rows,
            title="Table 3 — Gas at the data-feed layer and with the stablecoin application",
        )
    )
    for name, series in result.epoch_series.items():
        print(format_series(f"Figure 5 series {name}", series, max_points=24))
    assert result.feed_gas("GRuB") < result.feed_gas("BL1")
    assert result.feed_gas("GRuB") < result.feed_gas("BL2")
