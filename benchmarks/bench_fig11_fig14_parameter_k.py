"""Figure 11 (parameter K under synthetic ratios) and Figure 14 (K under YCSB)."""

from __future__ import annotations

from repro.analysis.experiments import run_parameter_k_sweep, run_ycsb_parameter_k_sweep
from repro.analysis.reporting import format_table

from conftest import run_once

K_VALUES = (1, 2, 4, 8, 16, 32, 64)


def test_fig11_parameter_k_synthetic(benchmark, scale):
    result = run_once(
        benchmark, run_parameter_k_sweep, K_VALUES, (2.0, 4.0, 8.0), scale=scale
    )
    print()
    labels = list(result.gas_per_operation)
    rows = [
        (int(k), *[round(result.gas_per_operation[label][i]) for label in labels])
        for i, k in enumerate(result.k_values)
    ]
    print(
        format_table(
            ["K", *labels],
            rows,
            title="Figure 11 — memoryless GRuB Gas per operation vs parameter K",
        )
    )
    for label in labels:
        series = result.gas_per_operation[label]
        assert max(series) > min(series)


def test_fig14_parameter_k_ycsb(benchmark, scale):
    result = run_once(benchmark, run_ycsb_parameter_k_sweep, (1, 2, 4, 8, 16), scale=scale)
    print()
    rows = [
        (int(k), round(result.gas_per_operation["GRuB"][i]))
        for i, k in enumerate(result.k_values)
    ]
    print(
        format_table(
            ["K", "GRuB Gas/op"],
            rows,
            title="Figure 14 — GRuB Gas per operation vs K under mixed YCSB (A,B)",
        )
    )
    print(
        "baselines:",
        {name: round(value) for name, value in result.baselines.items()},
    )
    assert result.baselines["BL1"] > 0 and result.baselines["BL2"] > 0
