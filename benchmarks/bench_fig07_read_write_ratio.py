"""Figure 7: converged Gas vs read/write ratio, including dynamic on-chain-trace baselines."""

from __future__ import annotations

from repro.analysis.experiments import run_ratio_sweep
from repro.analysis.reporting import format_table

from conftest import run_once

RATIOS = (0.0, 0.5, 1.0, 2.0, 4.0, 16.0, 64.0, 256.0)


def test_fig07_read_write_ratio(benchmark, scale):
    result = run_once(
        benchmark,
        run_ratio_sweep,
        RATIOS,
        scale=scale,
        record_size_bytes=32,
        include_dynamic_baselines=True,
    )
    systems = list(result.gas_per_operation)
    print()
    print(
        format_table(
            ["read/write ratio", *systems],
            result.rows(),
            title="Figure 7 — Gas per operation with varying read-to-write ratio",
        )
    )
    print(f"BL1/BL2 crossover ratio ≈ {result.crossover_ratio:.2f} (paper: ≈2)")
    # GRuB tracks the cheaper static baseline at the extremes and the on-chain
    # trace baselines are strictly worse.
    assert result.series("GRuB")[0] <= result.series("BL2")[0]
    assert result.series("GRuB")[-1] <= result.series("BL1")[-1]
    for index in range(len(RATIOS)):
        assert result.series("BL3")[index] >= result.series("GRuB")[index]
