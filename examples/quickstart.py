"""Quickstart: run GRuB and the two static baselines on a small workload.

Builds a GRuB deployment (simulated Ethereum chain + off-chain storage
provider + data owner), drives a mixed read/write workload through it, and
compares the per-operation Gas against the never-replicate (BL1) and
always-replicate (BL2) baselines.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    AlwaysReplicateSystem,
    GrubConfig,
    GrubSystem,
    NoReplicationSystem,
)
from repro.analysis.reporting import format_table
from repro.workloads import SyntheticWorkload


def main() -> None:
    # A workload that shifts from write-heavy to read-heavy is exactly where a
    # static placement loses: generate 2 reads per write over four keys.
    workload = SyntheticWorkload(read_write_ratio=2, num_operations=512, num_keys=4)
    operations = workload.operations()

    rows = []
    for cls in (NoReplicationSystem, AlwaysReplicateSystem, GrubSystem):
        system = cls(GrubConfig(epoch_size=32))
        report = system.run(list(operations))
        rows.append(
            (
                system.name,
                round(report.gas_per_operation),
                report.replications,
                report.evictions,
                system.replicated_on_chain,
            )
        )

    print(
        format_table(
            ["system", "Gas per operation", "replications", "evictions", "replicas on chain"],
            rows,
            title="GRuB quickstart — read/write ratio 2, 512 operations",
        )
    )
    print()
    print("GRuB decides per record whether to keep an on-chain replica, so it")
    print("tracks whichever static placement is cheaper for the current workload.")


if __name__ == "__main__":
    main()
