"""Case study 1: an Ether-collateralised stablecoin on a GRuB price feed.

Deploys the SCoin token and its issuer contract on a GRuB system, feeds a
stream of Ether-price updates through the data owner, and drives buyers and
sellers that issue and redeem SCoin.  Every issue/redeem reads the current
price through the feed (a gGet with a callback into the issuer), so the script
also reports the feed-layer versus application-layer Gas split — the same
breakdown as Table 3 of the paper.

Run with:  python examples/stablecoin_price_feed.py
"""

from __future__ import annotations

import random

from repro import GrubConfig, GrubSystem
from repro.analysis.reporting import format_gas, format_table
from repro.apps.price_feed import encode_price
from repro.apps.stablecoin import build_stablecoin_deployment
from repro.common.types import KVRecord


def main() -> None:
    config = GrubConfig(epoch_size=8, algorithm="memoryless", k=1, continuous_decisions=True)
    system = GrubSystem(config, preload=[KVRecord.make("ETH-USD", encode_price(150.0))])
    deployment = build_stablecoin_deployment(system, collateral_ratio=1.5)
    deployment.accounts.create("alice", ether=50.0)
    deployment.accounts.create("bob", ether=20.0)

    rng = random.Random(7)
    price = 150.0
    issued_total = 0

    for day in range(10):
        # The off-chain producer pokes a fresh price every simulated day.
        price = max(50.0, price * (1 + rng.gauss(0, 0.02)))
        deployment.feed.poke("ETH-USD", price)

        # Buyers and sellers interact with the issuer, which peeks the feed.
        system.chain.execute_internal_call(
            "alice", "scoin-issuer", "issue", buyer="alice", ether_amount=2.0, layer="application"
        )
        if day >= 3:
            balance = deployment.token.peek_balance("alice")
            system.chain.execute_internal_call(
                "alice", "scoin-issuer", "redeem", seller="alice",
                scoin_cents=balance // 4, layer="application",
            )

        # End of the epoch: the SP answers outstanding requests, the DO updates.
        system.service_provider.service_epoch()
        system.data_owner.end_epoch()
        system.chain.mine_block()
        issued_total = deployment.token.total_supply

    ledger = system.chain.ledger
    print(
        format_table(
            ["metric", "value"],
            [
                ("final ETH price (USD)", f"{price:.2f}"),
                ("SCoin outstanding (cents)", issued_total),
                ("issuer operations", f"{deployment.issuer.issues} issues, {deployment.issuer.redeems} redeems"),
                ("collateral locked (wei)", deployment.issuer.locked_collateral_wei),
                ("feed-layer Gas", format_gas(ledger.feed_total)),
                ("application-layer Gas", format_gas(ledger.application_total)),
                ("replicas on chain", system.replicated_on_chain),
            ],
            title="SCoin stablecoin on a GRuB price feed (10 simulated days)",
        )
    )


if __name__ == "__main__":
    main()
