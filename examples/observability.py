"""Watching a fleet run: phase spans, latency histograms, exporters.

Attach an :class:`~repro.obs.Observability` plane to the epoch scheduler and
drive a small mixed fleet.  The plane records a span tree (run → epoch →
phase → shard), per-phase latency histograms with exact p50/p95/p99, and
counters/gauges for the chain, the read cache and the shard planner — all
without changing a single byte of the run: the same fleet driven with the
plane detached lands on the identical telemetry fingerprint.

The recorded run is then exported three ways: the operator report (human
eyes), a Prometheus text snapshot (scrapers), and a JSONL event stream
(trace tooling), the latter written next to this script.

Run with::

    PYTHONPATH=src python examples/observability.py
"""

from __future__ import annotations

from pathlib import Path

from repro.core.config import GrubConfig
from repro.gateway import EpochScheduler, FeedRegistry, FeedSpec, GasAwareShardPlanner
from repro.obs import Observability
from repro.obs.export import format_duration
from repro.workloads.synthetic import SyntheticWorkload

TENANTS = {
    "prices": dict(ratio=16.0, algorithm="memoryless"),
    "assets": dict(ratio=2.0, algorithm="memorizing"),
    "telemetry": dict(ratio=0.125, algorithm="memoryless"),
    "orders": dict(ratio=4.0, algorithm="adaptive-k1"),
}
OPERATIONS_PER_FEED = 128
EPOCH_SIZE = 16


def build_fleet():
    registry = FeedRegistry()
    workloads = {}
    for index, (feed_id, spec) in enumerate(TENANTS.items()):
        registry.create_feed(
            FeedSpec(
                feed_id=feed_id,
                config=GrubConfig(epoch_size=EPOCH_SIZE, algorithm=spec["algorithm"]),
            )
        )
        workloads[feed_id] = SyntheticWorkload(
            read_write_ratio=spec["ratio"],
            num_operations=OPERATIONS_PER_FEED,
            num_keys=4,
            key_prefix=feed_id,
            seed=index + 1,
        ).operations()
    return registry, workloads


def main() -> None:
    obs = Observability()

    registry, workloads = build_fleet()
    scheduler = EpochScheduler(
        registry,
        planner=GasAwareShardPlanner(block_gas_fraction=0.02),
        obs=obs,
    )
    fleet = scheduler.run(workloads)

    # --- the operator report: histograms, counters, gauges, trace summary --
    print(obs.render_report(title=f"Fleet run — {fleet.operations} operations"))
    print()

    # --- the span tree: walk one epoch's phases off the trace --------------
    (run,) = obs.tracer.roots
    epoch = run.children[0]
    print(f"epoch 0 took {format_duration(epoch.duration)}:")
    for phase_span in epoch.children:
        shard_count = len(phase_span.children)
        fanout = f", {shard_count} shard spans" if shard_count else ""
        print(
            f"  {phase_span.attrs['phase']:<8}"
            f" {format_duration(phase_span.duration)}{fanout}"
        )
    print()

    # --- machine exports ---------------------------------------------------
    jsonl_path = Path(__file__).resolve().parent / "observability_trace.jsonl"
    obs.export_jsonl_file(jsonl_path, meta={"example": "observability"})
    lines = jsonl_path.read_text().count("\n")
    print(f"JSONL event stream: {lines} events -> {jsonl_path.name}")
    prometheus = obs.export_prometheus()
    print(f"Prometheus snapshot: {len(prometheus.splitlines())} lines, e.g.")
    for line in prometheus.splitlines()[:4]:
        print(f"  {line}")

    # --- and the plane never steered the run -------------------------------
    untraced_registry, untraced_workloads = build_fleet()
    untraced = EpochScheduler(
        untraced_registry,
        planner=GasAwareShardPlanner(block_gas_fraction=0.02),
    ).run(untraced_workloads)
    assert untraced.fingerprint() == fleet.fingerprint()
    print()
    print(
        "zero-entropy check: the same fleet without the plane lands on the "
        "identical telemetry fingerprint"
    )


if __name__ == "__main__":
    main()
