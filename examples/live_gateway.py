"""A live gateway: asyncio clients submitting requests to a running fleet.

The batch examples hand the scheduler its whole workload up front; this one
serves requests as they arrive.  Three tenant clients share one event loop
and submit reads and writes through the front door's middleware stack —
auth tokens, security headers, a per-tenant token-bucket rate limiter fed
by the ``FeedSpec`` quota, request metrics — while the epoch scheduler
drains the door at every boundary from its own thread.  Each ``await``
resolves when the request's epoch settles, carrying the settled epoch, the
request's share of the epoch's gas bill, and how long its tenant's quota
deferred it.

Run with::

    PYTHONPATH=src python examples/live_gateway.py
"""

from __future__ import annotations

import asyncio

from repro.core.config import GrubConfig
from repro.frontdoor import FrontDoor, Request
from repro.gateway import EpochScheduler, FeedRegistry, FeedSpec
from repro.obs import Observability

EPOCH_SIZE = 4
TOKENS = {"alice": "alice-key", "bob": "bob-key", "carol": "carol-key"}


async def client(door: FrontDoor, tenant: str, requests: int) -> None:
    """One tenant's client: a write then repeated reads of its own key."""
    token = TOKENS[tenant]
    key = f"{tenant}-balance"
    response = await door.submit(
        Request.write(tenant, key, b"\x01" * 32, token=token, sequence=0)
    )
    print(
        f"  {tenant}: write settled at epoch {response.epoch} "
        f"(gas share {response.gas:,})"
    )
    for sequence in range(1, requests):
        response = await door.submit(
            Request.read(tenant, key, token=token, sequence=sequence)
        )
        status = response.status if not response.ok else f"epoch {response.epoch}"
        deferred = (
            f", deferred {response.deferred_epochs} epoch(s)"
            if response.deferred_epochs
            else ""
        )
        print(f"  {tenant}: read #{sequence} -> {status}{deferred}")


async def serve() -> FrontDoor:
    registry = FeedRegistry()
    config = GrubConfig(epoch_size=EPOCH_SIZE, algorithm="memoryless", k=1)
    registry.create_feed(FeedSpec(feed_id="alice", config=config))
    registry.create_feed(FeedSpec(feed_id="bob", config=config))
    # carol is quota-capped: 2 ops/epoch.  The door's token bucket admits a
    # small burst and turns the rest away before they touch the epoch queue.
    registry.create_feed(
        FeedSpec(feed_id="carol", config=config, max_ops_per_epoch=2)
    )

    obs = Observability(enabled=True)
    scheduler = EpochScheduler(registry, epoch_size=EPOCH_SIZE, obs=obs)
    door = FrontDoor(scheduler, tokens=TOKENS)

    async with door.serving() as d:
        print("serving; three clients submitting concurrently:")
        await asyncio.gather(
            client(d, "alice", 4),
            client(d, "bob", 4),
            client(d, "carol", 8),
        )
        # A stranger without a token is turned away at the door.
        stranger = await d.submit(Request.read("mallory", "alice-balance"))
        print(f"  mallory (no token): {stranger.status} ({stranger.reason})")
        d.close()
    return door


def main() -> None:
    door = asyncio.run(serve())

    fleet = door.fleet
    print()
    print(f"run: {fleet.operations} operations in {fleet.epochs_run} epochs")
    report = door.percentiles()
    print(
        "request latency: "
        + ", ".join(
            f"{name} {value * 1000.0:.2f}ms"
            for name, value in report.items()
            if value is not None
        )
    )
    for tenant in sorted(door.telemetry.tenants):
        stats = door.telemetry.tenant(tenant)
        print(
            f"  {tenant}: {stats.accepted} accepted, {stats.settled} settled, "
            f"{stats.rejected_total} rejected, {stats.deferrals} deferrals, "
            f"gas attributed {stats.gas_attributed:,}"
        )


if __name__ == "__main__":
    main()
