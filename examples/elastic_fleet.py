"""An elastic fleet: tenants that join, leave, and get throttled mid-run.

A walkthrough of the gateway's fleet controller: a small resident fleet runs
under the gas-aware shard planner while an NFT-mint burst tenant arrives at
epoch 2 and leaves at epoch 6, a resident departs mid-run (its queued work is
cancelled, its bill frozen), and a quota-capped tenant has its over-quota
operations deferred to later epochs — all without ever producing a settlement
block over the chain's gas limit.

The whole walkthrough runs on any execution backend — churn, the gas-aware
planner, and quota deferral included.  ``--execution-mode process`` runs it
on the elastic process backend, where the same feeds migrate between worker
lanes as snapshot frames (the report is bit-identical either way).

Run with::

    PYTHONPATH=src python examples/elastic_fleet.py
    PYTHONPATH=src python examples/elastic_fleet.py --execution-mode process
"""

from __future__ import annotations

import argparse

from repro.analysis.reporting import format_gas
from repro.common.types import Operation
from repro.core.config import GrubConfig
from repro.gateway import EpochScheduler, FeedRegistry, FeedSpec, GasAwareShardPlanner
from repro.workloads.synthetic import SyntheticWorkload

EPOCH_SIZE = 8


def synthetic(feed_id: str, ratio: float, count: int, seed: int):
    return SyntheticWorkload(
        read_write_ratio=ratio,
        num_operations=count,
        num_keys=4,
        key_prefix=feed_id,
        seed=seed,
    ).operations()


def mint_burst(feed_id: str):
    """An NFT mint: a burst of writes, then hot reads of the early tokens."""
    ops = [
        Operation.write(f"{feed_id}-{index:04d}", index.to_bytes(32, "big"))
        for index in range(12)
    ]
    ops += [Operation.read(f"{feed_id}-{index % 3:04d}") for index in range(24)]
    return ops


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--execution-mode",
        choices=("serial", "thread", "process"),
        default="thread",
        help="execution backend (process = elastic lanes with feed migration)",
    )
    args = parser.parse_args(argv)

    registry = FeedRegistry()
    config = GrubConfig(epoch_size=EPOCH_SIZE, algorithm="memoryless", k=1)

    # Resident tenants.  "throttled" carries a per-epoch ops quota: the
    # gateway defers its over-quota operations instead of letting it crowd
    # out the other tenants' epochs.
    registry.create_feed(FeedSpec(feed_id="prices", config=config))
    registry.create_feed(FeedSpec(feed_id="assets", config=config))
    registry.create_feed(
        FeedSpec(feed_id="throttled", config=config, max_ops_per_epoch=3)
    )

    scheduler = EpochScheduler(
        registry,
        num_workers=2,
        execution_mode=args.execution_mode,
        epoch_size=EPOCH_SIZE,
        # A tight per-shard budget so the planner visibly bin-packs: 100k of
        # the 10M block gas limit.
        planner=GasAwareShardPlanner(block_gas_fraction=0.01),
    )

    # Mid-run churn, queued before the run: an NFT mint arrives at epoch 2
    # and departs at epoch 6; the assets tenant leaves at epoch 4 with work
    # still queued (it is cancelled and counted, its bill frozen).
    scheduler.admit(
        FeedSpec(feed_id="mint", config=config), mint_burst("mint"), at_epoch=2
    )
    scheduler.evict("mint", at_epoch=6)
    scheduler.evict("assets", at_epoch=4)

    fleet = scheduler.run(
        {
            "prices": synthetic("prices", ratio=8.0, count=64, seed=1),
            "assets": synthetic("assets", ratio=2.0, count=64, seed=2),
            "throttled": synthetic("throttled", ratio=4.0, count=40, seed=3),
        }
    )

    print(fleet.format_report(title="Elastic fleet"))
    print()
    assets = fleet.feed("assets")
    throttled = fleet.feed("throttled")
    print(
        f"assets left at epoch {assets.departed_epoch}: "
        f"{assets.operations} ops executed, {assets.cancelled_ops} cancelled, "
        f"final bill {format_gas(assets.gas_feed)} (frozen)"
    )
    print(
        f"throttled ran {throttled.operations} ops at <=3/epoch "
        f"({throttled.deferred_ops} deferrals), finishing in "
        f"{len(throttled.epochs)} epochs instead of "
        f"{(40 + EPOCH_SIZE - 1) // EPOCH_SIZE}"
    )
    print(
        f"shard plans: {fleet.shards_per_epoch} "
        f"(overflow gas: "
        f"{registry.chain.ledger.by_category.get('block_gas_limit_overflow', 0)})"
    )


if __name__ == "__main__":
    main()
