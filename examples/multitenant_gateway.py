"""Hosting many GRuB feeds on one gateway.

A walkthrough of the multi-tenant gateway: register a small fleet of feeds
with different workloads and decision algorithms, drive them in lockstep
through the epoch scheduler, and read the per-tenant bill off the fleet
telemetry — then compare against what the same tenants would have paid as
isolated single-feed deployments.

Run with::

    PYTHONPATH=src python examples/multitenant_gateway.py
"""

from __future__ import annotations

from repro.analysis.reporting import format_gas
from repro.core.config import GrubConfig
from repro.core.grub import GrubSystem
from repro.gateway import EpochScheduler, FeedRegistry, FeedSpec
from repro.workloads.synthetic import SyntheticWorkload

# Tenants with very different traffic: a hot price feed read constantly, a
# balanced asset feed, and a telemetry feed that is almost write-only.
TENANTS = {
    "prices": dict(ratio=16.0, algorithm="memoryless"),
    "assets": dict(ratio=2.0, algorithm="memorizing"),
    "telemetry": dict(ratio=0.125, algorithm="memoryless"),
}
OPERATIONS_PER_FEED = 192
EPOCH_SIZE = 16


def build_workloads():
    return {
        feed_id: SyntheticWorkload(
            read_write_ratio=spec["ratio"],
            num_operations=OPERATIONS_PER_FEED,
            num_keys=2,
            key_prefix=feed_id,
            seed=index + 1,
        ).operations()
        for index, (feed_id, spec) in enumerate(TENANTS.items())
    }


def main() -> None:
    workloads = build_workloads()

    # --- hosted: one chain, one watchdog, batched cross-feed settlement ----
    registry = FeedRegistry()
    for feed_id, spec in TENANTS.items():
        registry.create_feed(
            FeedSpec(
                feed_id=feed_id,
                config=GrubConfig(epoch_size=EPOCH_SIZE, algorithm=spec["algorithm"]),
            )
        )
    scheduler = EpochScheduler(registry, num_shards=1)
    fleet = scheduler.run(workloads)
    print(fleet.format_report(title="Hosted on one gateway"))

    # --- isolated: each tenant pays its own deliver/update transactions ----
    isolated_gas = 0
    for feed_id, spec in TENANTS.items():
        config = GrubConfig(epoch_size=EPOCH_SIZE, algorithm=spec["algorithm"])
        report = GrubSystem(config).run(workloads[feed_id])
        isolated_gas += report.gas_feed
        print(
            f"isolated {feed_id:>10}: {format_gas(report.gas_feed)} feed gas "
            f"({report.gas_per_operation:,.0f} gas/op)"
        )

    saving = 1.0 - fleet.gas_feed / isolated_gas
    print(
        f"\nhosting the fleet costs {format_gas(fleet.gas_feed)} vs "
        f"{format_gas(isolated_gas)} isolated — {saving * 100:.1f}% saved by "
        "cross-feed batching and the gateway read cache"
    )


if __name__ == "__main__":
    main()
