"""Example 3: watching GRuB adapt to a phase-shifting YCSB workload.

Preloads a record population, runs a four-phase mixed YCSB workload
(A → B → A → B, i.e. update-heavy then read-heavy), and prints the per-epoch
Gas of GRuB next to the static baselines so the adaptation is visible as a
time series — the same view as Figure 9 of the paper.

Run with:  python examples/ycsb_adaptive_replication.py
"""

from __future__ import annotations

from repro import AlwaysReplicateSystem, GrubConfig, GrubSystem, NoReplicationSystem
from repro.analysis.reporting import format_gas, format_series, format_table
from repro.workloads import MixedYCSBWorkload


def main() -> None:
    workload = MixedYCSBWorkload(
        phases=("A", "B", "A", "B"),
        record_count=512,
        record_size_bytes=256,
        operations_per_phase=512,
    )
    operations = workload.operations()
    markers = workload.phase_markers()

    reports = {}
    for cls in (NoReplicationSystem, AlwaysReplicateSystem, GrubSystem):
        config = GrubConfig(epoch_size=32, record_size_bytes=256)
        system = cls(config, preload=workload.preload_records())
        reports[system.name] = system.run(list(operations), phase_markers=markers)

    print(
        format_table(
            ["system", "aggregate feed Gas", "Gas per operation"],
            [
                (name, format_gas(report.gas_feed), round(report.gas_per_operation))
                for name, report in reports.items()
            ],
            title="Mixed YCSB workload A,B — aggregate Gas (cf. Table 4)",
        )
    )
    print()
    for name, report in reports.items():
        print(format_series(name, report.epoch_series(), max_points=32))
    print()
    print("Phases:", ", ".join(f"op {index}: {label}" for index, label in markers.items()))


if __name__ == "__main__":
    main()
