"""Case study 2: a Bitcoin-pegged ERC20 token on a BtcRelay-style side-chain feed.

Runs a simulated Bitcoin network, relays its block headers into the GRuB feed,
and drives deposit/mint and redeem/burn flows on the pegged token: every mint
and burn verifies an SPV inclusion proof against headers read from the feed.

Run with:  python examples/btcrelay_pegged_token.py
"""

from __future__ import annotations

from repro import GrubConfig, GrubSystem
from repro.analysis.reporting import format_gas, format_table
from repro.apps.btc.pegged_token import build_pegged_token_deployment


def main() -> None:
    config = GrubConfig(
        epoch_size=4,
        algorithm="memorizing",
        k_prime=2,
        record_size_bytes=96,
        reuse_replica_slots=True,
        continuous_decisions=True,
        evict_unused_after_epochs=8,
    )
    system = GrubSystem(config)
    deployment = build_pegged_token_deployment(system, confirmations=3)
    bitcoin, relay, pegged = deployment.bitcoin, deployment.relay, deployment.pegged

    def relay_and_settle() -> None:
        relay.relay_new_blocks()
        system.service_provider.service_epoch()
        system.data_owner.end_epoch()
        system.chain.mine_block()

    # Alice deposits 0.5 BTC on Bitcoin and mints pegged tokens on Ethereum.
    deposit = bitcoin.deposit(amount_btc=0.5, ethereum_recipient="alice")
    deposit_block = bitcoin.mine_block()
    for _ in range(pegged.confirmations):
        bitcoin.mine_block()
    relay_and_settle()
    system.chain.execute_internal_call(
        "alice", "pegged-btc-gateway", "request_mint", recipient="alice",
        amount_satoshi=deposit.amount_satoshi, proof=bitcoin.spv_proof(deposit.txid),
        block_height=deposit_block.height, layer="application",
    )
    system.service_provider.service_epoch()
    system.chain.mine_block()

    # Later, Alice redeems 0.2 BTC back on Bitcoin and burns the pegged tokens.
    redeem = bitcoin.redeem(amount_btc=0.2, bitcoin_recipient="alice-btc-address")
    redeem_block = bitcoin.mine_block()
    for _ in range(pegged.confirmations):
        bitcoin.mine_block()
    relay_and_settle()
    system.chain.execute_internal_call(
        "alice", "pegged-btc-gateway", "request_burn", holder="alice",
        amount_satoshi=redeem.amount_satoshi, proof=bitcoin.spv_proof(redeem.txid),
        block_height=redeem_block.height, layer="application",
    )
    system.service_provider.service_epoch()
    system.chain.mine_block()

    ledger = system.chain.ledger
    print(
        format_table(
            ["metric", "value"],
            [
                ("Bitcoin chain height", bitcoin.tip.height),
                ("headers relayed into the feed", len(relay.relayed_heights)),
                ("pegged mints / burns", f"{pegged.mints} / {pegged.burns}"),
                ("alice pBTC balance (satoshi)", deployment.token.peek_balance("alice")),
                ("rejected verifications", pegged.rejected),
                ("feed-layer Gas", format_gas(ledger.feed_total)),
                ("application-layer Gas", format_gas(ledger.application_total)),
                ("replicas on chain", system.replicated_on_chain),
            ],
            title="Bitcoin-pegged token on a BtcRelay-style GRuB feed",
        )
    )


if __name__ == "__main__":
    main()
