"""Unit and property tests for the off-chain key-value stores (LSM and in-memory)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import StorageError
from repro.storage.kvstore import InMemoryKVStore
from repro.storage.lsm import LSMConfig, LSMStore
from repro.storage.memtable import MemTable, TOMBSTONE
from repro.storage.sstable import SSTable, merge_tables


@pytest.fixture(params=["memory", "lsm", "lsm-disk"])
def store(request, tmp_path):
    if request.param == "memory":
        return InMemoryKVStore()
    if request.param == "lsm":
        return LSMStore(config=LSMConfig(memtable_flush_bytes=256))
    return LSMStore(directory=tmp_path / "db", config=LSMConfig(memtable_flush_bytes=256))


class TestKVStoreInterface:
    """The same behaviours must hold for every store implementation."""

    def test_put_get_round_trip(self, store):
        store.put("key", b"value")
        assert store.get("key") == b"value"

    def test_missing_key_returns_none(self, store):
        assert store.get("ghost") is None

    def test_overwrite_returns_latest(self, store):
        store.put("key", b"v1")
        store.put("key", b"v2")
        assert store.get("key") == b"v2"
        assert len(store) == 1

    def test_delete_removes_key(self, store):
        store.put("key", b"v")
        assert store.delete("key") is True
        assert store.get("key") is None
        assert store.delete("key") is False

    def test_items_are_key_ordered(self, store):
        for key in ["delta", "alpha", "charlie", "bravo"]:
            store.put(key, key.encode())
        assert [k for k, _ in store.items()] == ["alpha", "bravo", "charlie", "delta"]

    def test_scan_range_and_limit(self, store):
        for index in range(10):
            store.put(f"key-{index:02d}", bytes([index]))
        scanned = store.scan("key-03", "key-07")
        assert [k for k, _ in scanned] == ["key-03", "key-04", "key-05", "key-06"]
        assert len(store.scan("key-00", limit=3)) == 3

    def test_non_bytes_value_rejected(self, store):
        with pytest.raises(StorageError):
            store.put("key", "not-bytes")  # type: ignore[arg-type]

    def test_require_raises_on_missing(self, store):
        with pytest.raises(StorageError):
            store.require("missing")

    def test_put_many_and_clear(self, store):
        store.put_many({"a": b"1", "b": b"2"})
        assert len(store) == 2
        store.clear()
        assert len(store) == 0


class TestMemTable:
    def test_tombstone_reported_as_found_none(self):
        table = MemTable()
        table.put("k", b"v")
        table.delete("k")
        found, value = table.get("k")
        assert found and value is None

    def test_size_tracking_updates_on_overwrite(self):
        table = MemTable()
        table.put("k", b"abcd")
        size_one = table.approximate_size_bytes
        table.put("k", b"ab")
        assert table.approximate_size_bytes < size_one

    def test_items_sorted(self):
        table = MemTable()
        for key in ["c", "a", "b"]:
            table.put(key, b"x")
        assert [k for k, _ in table.items()] == ["a", "b", "c"]


class TestSSTable:
    def test_requires_sorted_unique_keys(self):
        with pytest.raises(ValueError):
            SSTable(entries=[("b", b"1"), ("a", b"2")])
        with pytest.raises(ValueError):
            SSTable(entries=[("a", b"1"), ("a", b"2")])

    def test_get_and_bounds(self):
        table = SSTable(entries=[("a", b"1"), ("c", None), ("e", b"3")])
        assert table.get("a") == (True, b"1")
        assert table.get("c") == (True, None)
        assert table.get("b") == (False, None)
        assert table.min_key == "a" and table.max_key == "e"

    def test_persistence_round_trip(self, tmp_path):
        table = SSTable(entries=[("a", b"1"), ("b", None), ("c", b"\x00" * 100)])
        path = table.write_to(tmp_path / "t.sst")
        loaded = SSTable.read_from(path)
        assert list(loaded.items()) == list(table.items())
        assert loaded.sequence == table.sequence

    def test_merge_newest_wins_and_drops_tombstones(self):
        old = SSTable(entries=[("a", b"old"), ("b", b"keep")])
        new = SSTable(entries=[("a", b"new"), ("c", None)])
        merged = merge_tables([old, new], drop_tombstones=True)
        assert merged.get("a") == (True, b"new")
        assert merged.get("b") == (True, b"keep")
        assert merged.get("c") == (False, None)


class TestLSMMechanics:
    def test_flush_creates_sstable_and_empties_memtable(self):
        store = LSMStore(config=LSMConfig(memtable_flush_bytes=10**9))
        store.put("a", b"1")
        table = store.flush()
        assert table is not None
        assert store.memtable.is_empty
        assert store.get("a") == b"1"

    def test_automatic_flush_on_threshold(self):
        store = LSMStore(config=LSMConfig(memtable_flush_bytes=64))
        for index in range(50):
            store.put(f"key-{index}", b"x" * 16)
        assert store.flushes > 0
        assert store.get("key-0") == b"x" * 16

    def test_compaction_bounds_table_count(self):
        config = LSMConfig(memtable_flush_bytes=32, max_sstables_before_compaction=2)
        store = LSMStore(config=config)
        for index in range(60):
            store.put(f"key-{index}", b"y" * 16)
        assert len(store.sstables) <= config.max_sstables_before_compaction + 1
        assert store.compactions > 0

    def test_delete_shadowed_by_tombstone_across_flushes(self):
        store = LSMStore(config=LSMConfig(memtable_flush_bytes=10**9))
        store.put("a", b"1")
        store.flush()
        store.delete("a")
        store.flush()
        assert store.get("a") is None
        store.compact()
        assert store.get("a") is None

    def test_recovery_from_disk(self, tmp_path):
        directory = tmp_path / "db"
        store = LSMStore(directory=directory, config=LSMConfig(memtable_flush_bytes=128))
        for index in range(20):
            store.put(f"key-{index:02d}", f"value-{index}".encode())
        store.delete("key-05")
        reopened = LSMStore(directory=directory, config=LSMConfig(memtable_flush_bytes=128))
        assert reopened.get("key-01") == b"value-1"
        assert reopened.get("key-05") is None
        assert len(reopened) == 19

    def test_compact_empty_store_rejected(self):
        store = LSMStore()
        with pytest.raises(StorageError):
            store.compact()


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.sampled_from(["put", "delete"]),
            st.text(alphabet="abcdef", min_size=1, max_size=3),
            st.binary(max_size=8),
        ),
        max_size=60,
    )
)
def test_lsm_store_matches_dict_model(script):
    """Property: the LSM store behaves exactly like a plain dict."""
    store = LSMStore(config=LSMConfig(memtable_flush_bytes=64))
    model = {}
    for action, key, value in script:
        if action == "put":
            store.put(key, value)
            model[key] = value
        else:
            store.delete(key)
            model.pop(key, None)
    assert dict(store.items()) == model
    assert len(store) == len(model)
    for key, value in model.items():
        assert store.get(key) == value
