"""Run the shared KV conformance suite over every backend.

One test class per backend, all inheriting the behavioural contract from
``kv_suite.KVStoreContract`` — a regression in any store (or a divergence
between them) fails here with the backend's name in the test id.
"""

from __future__ import annotations

from kv_suite import KVStoreContract, MemTableKVAdapter, _small_lsm

from repro.storage.kvstore import InMemoryKVStore


class TestInMemoryKVStoreContract(KVStoreContract):
    make = staticmethod(InMemoryKVStore)


class TestLSMStoreContract(KVStoreContract):
    make = staticmethod(_small_lsm)


class TestMemTableContract(KVStoreContract):
    make = staticmethod(MemTableKVAdapter)


class TestLSMStoreFlushesDuringSuite:
    """The suite's LSM configuration actually exercises flush/compaction."""

    def test_small_flush_threshold_triggers_sstables(self):
        store = _small_lsm()
        for index in range(64):
            store.put(f"key-{index:04d}", b"x" * 16)
        assert store.flushes > 0
        assert store.get("key-0000") == b"x" * 16
        assert len(store) == 64
