"""Run the shared KV conformance suite over every backend.

One test class per backend, all inheriting the behavioural contract from
``kv_suite.KVStoreContract`` — a regression in any store (or a divergence
between them) fails here with the backend's name in the test id.
"""

from __future__ import annotations

from kv_suite import (
    KVStoreContract,
    MemTableKVAdapter,
    _persistent_lsm,
    _small_lsm,
    populate,
    reopen_lsm,
)

from repro.storage.kvstore import InMemoryKVStore
from repro.storage.lsm import LSMStore


class TestInMemoryKVStoreContract(KVStoreContract):
    make = staticmethod(InMemoryKVStore)


class TestLSMStoreContract(KVStoreContract):
    make = staticmethod(_small_lsm)


class TestLSMStorePersistentContract(KVStoreContract):
    """The full contract again, against a disk-backed ``LSMStore(directory=…)``
    — groundwork for persistent per-feed SP stores."""

    make = staticmethod(_persistent_lsm)


class TestMemTableContract(KVStoreContract):
    make = staticmethod(MemTableKVAdapter)


class TestLSMStoreFlushesDuringSuite:
    """The suite's LSM configuration actually exercises flush/compaction."""

    def test_small_flush_threshold_triggers_sstables(self):
        store = _small_lsm()
        for index in range(64):
            store.put(f"key-{index:04d}", b"x" * 16)
        assert store.flushes > 0
        assert store.get("key-0000") == b"x" * 16
        assert len(store) == 64


class TestLSMStorePersistence:
    """Close/reopen round-trips of the persistent store."""

    def test_reopen_recovers_sstables_and_wal(self):
        store = _persistent_lsm()
        keys = populate(store, 48)  # enough to flush SSTables to disk...
        store.put("wal-only", b"unflushed")  # ...plus a write still in the WAL
        assert store.flushes > 0

        reopened = reopen_lsm(store)
        assert reopened.get("wal-only") == b"unflushed"
        for index, key in enumerate(keys):
            assert reopened.get(key) == f"value-{index}".encode()
        assert len(reopened) == len(keys) + 1
        assert [key for key, _ in reopened.scan("")] == sorted(keys + ["wal-only"])

    def test_reopen_preserves_deletes_and_overwrites(self):
        store = _persistent_lsm()
        keys = populate(store, 24)
        store.delete(keys[3])
        store.put(keys[5], b"rewritten")
        store.flush()
        store.delete(keys[7])  # tombstone only in the WAL at close time

        reopened = reopen_lsm(store)
        assert reopened.get(keys[3]) is None
        assert reopened.get(keys[7]) is None
        assert reopened.get(keys[5]) == b"rewritten"
        assert len(reopened) == len(keys) - 2

    def test_reopened_store_stays_usable(self):
        store = _persistent_lsm()
        populate(store, 8)
        reopened = reopen_lsm(store)
        reopened.put("post-restart", b"new")
        assert reopened.get("post-restart") == b"new"
        # And survives a second restart.
        assert reopen_lsm(reopened).get("post-restart") == b"new"

    def test_pure_memory_store_has_no_directory(self):
        assert _small_lsm().directory is None
        assert isinstance(_persistent_lsm(), LSMStore)
