"""Shared conformance suite for every ordered KV backend in the repo.

The paper claims GRuB works over "any off-chain storage service supporting KV
storage"; this suite makes that interchangeability a tested contract.  It is
parametrized over the dict-backed :class:`InMemoryKVStore`, the LSM tree
(:class:`LSMStore`) and the :class:`MemTable` write buffer (adapted to the
store interface), and covers roundtrip, overwrite, delete, and the ``scan``
edge cases (empty range, ``limit=0``, unbounded end).

Import :data:`BACKENDS` and decorate with ``@pytest.mark.parametrize`` (see
``test_kv_suite.py``), or subclass :class:`KVStoreContract` with a ``make``
classmethod for a new backend.
"""

from __future__ import annotations

import atexit
import shutil
import tempfile
from pathlib import Path
from typing import Callable, Iterator, List, Optional, Tuple

from repro.storage.kvstore import InMemoryKVStore, KVStore
from repro.storage.lsm import LSMConfig, LSMStore
from repro.storage.memtable import TOMBSTONE, MemTable


class MemTableKVAdapter(KVStore):
    """Adapt the LSM write buffer to the :class:`KVStore` contract.

    The memtable is the mutable head of the LSM store; wrapping it lets the
    shared suite assert that its visible behaviour (tombstones shadowing
    earlier values, sorted iteration) matches the full stores.
    """

    def __init__(self) -> None:
        self.memtable = MemTable()

    def get(self, key: str) -> Optional[bytes]:
        found, value = self.memtable.get(key)
        return value if found else None

    def put(self, key: str, value: bytes) -> None:
        self.memtable.put(key, value)

    def delete(self, key: str) -> bool:
        existed = self.get(key) is not None
        self.memtable.delete(key)
        return existed

    def scan(
        self,
        start_key: str,
        end_key: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> List[Tuple[str, bytes]]:
        if limit is not None and limit <= 0:
            return []
        result: List[Tuple[str, bytes]] = []
        for key, value in self.items():
            if key < start_key:
                continue
            if end_key is not None and key >= end_key:
                break
            result.append((key, value))
            if limit is not None and len(result) >= limit:
                break
        return result

    def items(self) -> Iterator[Tuple[str, bytes]]:
        for key, value in self.memtable.items():
            if value is not TOMBSTONE:
                yield key, value  # type: ignore[misc]

    def __len__(self) -> int:
        return sum(1 for _ in self.items())


def _small_lsm() -> LSMStore:
    """An in-memory LSM tuned to actually flush/compact under suite-sized data."""
    return LSMStore(config=LSMConfig(memtable_flush_bytes=256, write_ahead_log=False))


def _persistent_lsm_config() -> LSMConfig:
    """Persistent-mode tuning: small flushes so SSTables hit disk, WAL on so
    unflushed writes survive a close/reopen."""
    return LSMConfig(memtable_flush_bytes=256, write_ahead_log=True)


#: Scratch directories handed out by :func:`_persistent_lsm`, removed at
#: interpreter exit so repeated test runs do not litter the temp root.
_SCRATCH_DIRS: List[Path] = []


@atexit.register
def _cleanup_scratch_dirs() -> None:
    for directory in _SCRATCH_DIRS:
        shutil.rmtree(directory, ignore_errors=True)


def _persistent_lsm() -> LSMStore:
    """A disk-backed LSM in a fresh scratch directory.

    Each call gets its own directory (pytest's per-test ``tmp_path`` cannot
    reach a module-level factory), created under the system temp root and
    removed at process exit; the conformance tests only ever write a few
    hundred bytes per store.  Reopen the same directory with
    ``LSMStore(directory=store.directory)`` to exercise recovery — see
    ``TestLSMStorePersistence``.
    """
    directory = Path(tempfile.mkdtemp(prefix="grub-lsm-suite-"))
    _SCRATCH_DIRS.append(directory)
    return LSMStore(directory=directory, config=_persistent_lsm_config())


def reopen_lsm(store: LSMStore) -> LSMStore:
    """Simulate a process restart: a new store over the same directory."""
    assert store.directory is not None, "only persistent stores can be reopened"
    return LSMStore(directory=store.directory, config=store.config)


#: name → factory, the backends every conformance test runs against.
BACKENDS: List[Tuple[str, Callable[[], KVStore]]] = [
    ("inmemory", InMemoryKVStore),
    ("lsm", _small_lsm),
    ("lsm-persistent", _persistent_lsm),
    ("memtable", MemTableKVAdapter),
]

BACKEND_IDS = [name for name, _ in BACKENDS]
BACKEND_FACTORIES = [factory for _, factory in BACKENDS]


def populate(store: KVStore, count: int = 8, prefix: str = "key") -> List[str]:
    """Insert ``count`` records with deterministic keys; returns the keys."""
    keys = [f"{prefix}-{index:04d}" for index in range(count)]
    for index, key in enumerate(keys):
        store.put(key, f"value-{index}".encode())
    return keys


class KVStoreContract:
    """The behavioural contract; ``make()`` is provided by parametrization."""

    make: Callable[[], KVStore]

    # -- roundtrip -----------------------------------------------------------

    def test_roundtrip(self):
        store = self.make()
        store.put("alpha", b"1")
        assert store.get("alpha") == b"1"
        assert store.contains("alpha")
        assert len(store) == 1

    def test_get_missing_returns_none(self):
        store = self.make()
        assert store.get("ghost") is None
        assert not store.contains("ghost")

    def test_iteration_is_key_sorted(self):
        store = self.make()
        for key in ("delta", "alpha", "charlie", "bravo"):
            store.put(key, key.encode())
        assert [key for key, _ in store.items()] == ["alpha", "bravo", "charlie", "delta"]

    # -- overwrite -----------------------------------------------------------

    def test_overwrite_replaces_value_without_duplicating_key(self):
        store = self.make()
        store.put("alpha", b"old")
        store.put("alpha", b"new")
        assert store.get("alpha") == b"new"
        assert len(store) == 1
        assert store.keys() == ["alpha"]

    # -- delete --------------------------------------------------------------

    def test_delete_existing_returns_true_and_removes(self):
        store = self.make()
        store.put("alpha", b"1")
        assert store.delete("alpha") is True
        assert store.get("alpha") is None
        assert len(store) == 0

    def test_delete_missing_returns_false(self):
        store = self.make()
        assert store.delete("ghost") is False

    def test_delete_then_reinsert(self):
        store = self.make()
        store.put("alpha", b"1")
        store.delete("alpha")
        store.put("alpha", b"2")
        assert store.get("alpha") == b"2"
        assert len(store) == 1

    # -- scan ----------------------------------------------------------------

    def test_scan_from_start_key_is_inclusive(self):
        store = self.make()
        keys = populate(store, 6)
        result = store.scan(keys[2])
        assert [key for key, _ in result] == keys[2:]

    def test_scan_end_key_is_exclusive(self):
        store = self.make()
        keys = populate(store, 6)
        result = store.scan(keys[1], end_key=keys[4])
        assert [key for key, _ in result] == keys[1:4]

    def test_scan_empty_range_returns_nothing(self):
        store = self.make()
        keys = populate(store, 4)
        assert store.scan(keys[2], end_key=keys[2]) == []
        assert store.scan("zzzz") == []

    def test_scan_limit_zero_returns_nothing(self):
        store = self.make()
        populate(store, 4)
        assert store.scan("key-0000", limit=0) == []

    def test_scan_limit_caps_results(self):
        store = self.make()
        keys = populate(store, 8)
        result = store.scan(keys[0], limit=3)
        assert [key for key, _ in result] == keys[:3]

    def test_scan_unbounded_end_reaches_last_key(self):
        store = self.make()
        keys = populate(store, 5)
        result = store.scan(keys[0], end_key=None)
        assert [key for key, _ in result] == keys

    def test_scan_skips_deleted_records(self):
        store = self.make()
        keys = populate(store, 5)
        store.delete(keys[2])
        result = store.scan(keys[0])
        assert keys[2] not in [key for key, _ in result]
        assert len(result) == 4

    def test_scan_start_before_first_key(self):
        store = self.make()
        keys = populate(store, 3)
        result = store.scan("")
        assert [key for key, _ in result] == keys
