"""Competitiveness checks for the online algorithms (Appendix A of the paper).

These tests compare the gas-relevant cost of the online algorithms against the
clairvoyant offline optimum on adversarial and random workloads, using the
abstract per-word cost model (the same quantities the paper's analysis uses),
so the bounds of Theorems A.1 and A.2 can be checked exactly without running
the full system.
"""

from __future__ import annotations

from typing import List

import pytest
from hypothesis import given, settings, strategies as st

from repro.chain.gas import GasSchedule
from repro.common.types import Operation, ReplicationState
from repro.core.decision.base import CostModel, DecisionAlgorithm
from repro.core.decision.memoryless import MemorylessAlgorithm
from repro.core.decision.memorizing import MemorizingAlgorithm
from repro.core.decision.offline import OfflineOptimalAlgorithm
from repro.workloads.synthetic import WorstCaseMemorylessWorkload

COST = CostModel.from_schedule(GasSchedule())
R = ReplicationState.REPLICATED


def simulate_cost(algorithm: DecisionAlgorithm, trace: List[Operation]) -> int:
    """Replay a single-key trace, charging the abstract per-word costs.

    This mirrors the accounting in the paper's competitiveness analysis
    (Appendix A): a read of a non-replicated record costs
    ``off_chain_read_cost`` (the calldata to bring it on chain), a read of a
    replicated record costs ``on_chain_read_cost``, and every interval the
    record spends replicated costs one ``update_cost`` (the storage write that
    places/refreshes the replica).  Writes of non-replicated records only
    touch the digest and are treated as free, as in the analysis.
    """
    total = 0
    state = {"replicated": False}
    for op in trace:
        previously = state["replicated"]
        algorithm.observe([op])
        now = algorithm.state_of(op.key) is R
        if op.is_read:
            total += COST.on_chain_read_cost if previously else COST.off_chain_read_cost
            if now and not previously:
                total += COST.update_cost
        else:
            if now:
                total += COST.update_cost
        state["replicated"] = now
    return total


def offline_cost(trace: List[Operation]) -> int:
    return simulate_cost(OfflineOptimalAlgorithm(COST, trace), trace)


class TestMemorylessCompetitiveness:
    def test_worst_case_sequence_within_two_competitive(self):
        """Theorem A.1: with K from Equation 1, the memoryless algorithm is
        2-competitive on its own worst-case sequence (every write followed by
        exactly K reads).

        The theorem compares against an offline algorithm that pays
        ``C_update`` per interval, so the bound is checked in exactly those
        terms; the truly optimal offline cost (which may pick the cheaper of
        ``C_update`` and ``K * C_read_off`` per interval) is also checked with
        the correspondingly adjusted factor.
        """
        k = COST.equation_one_k
        cycles = 64
        trace = WorstCaseMemorylessWorkload(k=k, cycles=cycles).operations()
        online = simulate_cost(MemorylessAlgorithm(k=k), trace)
        paper_offline = cycles * COST.update_cost
        bound = 1 + k * COST.off_chain_read_cost / COST.update_cost
        assert bound <= 2.0
        assert online <= bound * paper_offline * 1.01
        true_optimal = offline_cost(trace)
        assert online <= bound * true_optimal * (COST.update_cost / min(COST.update_cost, k * COST.off_chain_read_cost)) * 1.05

    @pytest.mark.parametrize("k", [1, 2, 4, 8])
    def test_bound_formula_matches_theorem(self, k):
        bound = MemorylessAlgorithm(k=k).worst_case_competitiveness(
            COST.update_cost, COST.off_chain_read_cost
        )
        assert bound == pytest.approx(1 + k * COST.off_chain_read_cost / COST.update_cost)

    def test_read_heavy_workload_near_optimal(self):
        """On a long read run the memoryless algorithm loses only the first K reads."""
        k = COST.equation_one_k
        trace = [Operation.write("a", b"v")] + [Operation.read("a") for _ in range(200)]
        online = simulate_cost(MemorylessAlgorithm(k=k), trace)
        optimal = offline_cost(trace)
        assert online <= optimal + k * COST.off_chain_read_cost + COST.update_cost


class TestMemorizingCompetitiveness:
    def test_repeating_workload_converges_to_optimal(self):
        """On a repeated pattern the memorizing algorithm approaches the offline cost."""
        cycle = [Operation.write("a", b"v")] + [Operation.read("a") for _ in range(9)]
        trace = cycle * 30
        online = simulate_cost(MemorizingAlgorithm(k_prime=2, window_d=1), trace)
        optimal = offline_cost(trace)
        assert online <= optimal * 1.5

    def test_memorizing_beats_memoryless_on_temporal_locality(self):
        """Figure 8a's story: with locality the memorizing algorithm wins."""
        k = 8
        cycle = [Operation.write("a", b"v")] + [Operation.read("a") for _ in range(k + 1)]
        trace = cycle * 40
        memoryless = simulate_cost(MemorylessAlgorithm(k=k), trace)
        memorizing = simulate_cost(MemorizingAlgorithm(k_prime=k, window_d=1), trace)
        assert memorizing < memoryless


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=12), min_size=2, max_size=30),
)
def test_online_never_beats_offline(read_counts):
    """Property: the offline optimum is a lower bound for every online algorithm."""
    trace: List[Operation] = []
    for count in read_counts:
        trace.append(Operation.write("a", b"v"))
        trace.extend(Operation.read("a") for _ in range(count))
    optimal = offline_cost(trace)
    for algorithm in (
        MemorylessAlgorithm(k=COST.equation_one_k),
        MemorizingAlgorithm(k_prime=COST.equation_one_k, window_d=1),
    ):
        assert simulate_cost(algorithm, trace) >= optimal


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=8), min_size=2, max_size=25))
def test_memoryless_respects_theoretical_bound_on_random_interval_workloads(read_counts):
    """Property: online cost ≤ bound × offline cost + an additive start-up term."""
    k = COST.equation_one_k
    trace: List[Operation] = []
    for count in read_counts:
        trace.append(Operation.write("a", b"v"))
        trace.extend(Operation.read("a") for _ in range(count))
    online = simulate_cost(MemorylessAlgorithm(k=k), trace)
    optimal = offline_cost(trace)
    bound = 1 + k * COST.off_chain_read_cost / COST.update_cost
    slack = COST.update_cost + k * COST.off_chain_read_cost
    assert online <= bound * optimal + slack
