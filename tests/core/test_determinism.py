"""Deterministic-seed audit: identical runs must produce identical reports.

Every stochastic component threads an explicit ``seed``/``rng`` (the workload
generators, the adversarial SP's omit attack); nothing in the stack consults
module-level randomness or wall-clock state for decisions.  These tests pin
that property end to end: running the same seeded configuration twice yields
bit-identical ``RunReport``s / fleet telemetry.
"""

from __future__ import annotations

from dataclasses import asdict

from repro.core.config import GrubConfig
from repro.core.grub import GrubSystem, RunReport
from repro.core.service_provider import TamperingServiceProvider
from repro.gateway import EpochScheduler, FeedRegistry, FeedSpec
from repro.workloads.synthetic import AlternatingPhaseWorkload, SyntheticWorkload
from repro.workloads.ycsb import MixedYCSBWorkload


def report_fingerprint(report: RunReport) -> dict:
    """Every field of a report (epoch summaries included) as plain data."""
    data = {
        "system_name": report.system_name,
        "operations": report.operations,
        "reads": report.reads,
        "writes": report.writes,
        "gas_feed": report.gas_feed,
        "gas_application": report.gas_application,
        "replications": report.replications,
        "evictions": report.evictions,
        "deliveries": report.deliveries,
        "update_transactions": report.update_transactions,
        "gas_by_category": dict(report.gas_by_category),
        "epochs": [asdict(epoch) for epoch in report.epochs],
    }
    return data


class TestWorkloadDeterminism:
    def test_synthetic_workload_is_seed_deterministic(self):
        first = SyntheticWorkload(read_write_ratio=4, num_operations=64, seed=3).operations()
        second = SyntheticWorkload(read_write_ratio=4, num_operations=64, seed=3).operations()
        assert first == second
        different = SyntheticWorkload(read_write_ratio=4, num_operations=64, seed=4).operations()
        assert first != different

    def test_ycsb_workload_is_seed_deterministic(self):
        first = MixedYCSBWorkload(record_count=64, operations_per_phase=32, seed=9)
        second = MixedYCSBWorkload(record_count=64, operations_per_phase=32, seed=9)
        assert first.operations() == second.operations()
        assert [r.key for r in first.preload_records()] == [
            r.key for r in second.preload_records()
        ]


class TestSystemRunDeterminism:
    def test_identical_grub_runs_produce_identical_reports(self):
        config = GrubConfig(epoch_size=16, algorithm="memoryless")
        workload = MixedYCSBWorkload(
            record_count=128, operations_per_phase=64, record_size_bytes=64, seed=42
        )
        reports = []
        for _ in range(2):
            system = GrubSystem(config, preload=workload.preload_records())
            reports.append(system.run(workload.operations()))
        assert report_fingerprint(reports[0]) == report_fingerprint(reports[1])

    def test_identical_phase_workload_runs_match(self):
        config = GrubConfig(epoch_size=8, algorithm="memorizing")
        operations = AlternatingPhaseWorkload(
            operations_per_phase=32, num_keys=2, seed=5
        ).operations()
        first = GrubSystem(config).run(operations)
        second = GrubSystem(config).run(operations)
        assert report_fingerprint(first) == report_fingerprint(second)


class TestGatewayDeterminism:
    def test_identical_fleet_runs_produce_identical_telemetry(self):
        def run_fleet():
            registry = FeedRegistry()
            for index in range(4):
                registry.create_feed(
                    FeedSpec(feed_id=f"feed-{index}", config=GrubConfig(epoch_size=8))
                )
            workloads = {
                f"feed-{index}": SyntheticWorkload(
                    read_write_ratio=2.0,
                    num_operations=48,
                    num_keys=2,
                    seed=index + 10,
                ).operations()
                for index in range(4)
            }
            return EpochScheduler(registry, num_shards=2).run(workloads)

        first, second = run_fleet(), run_fleet()
        for feed_id in first.feeds:
            a, b = first.feed(feed_id), second.feed(feed_id)
            assert (a.gas_feed, a.gas_application) == (b.gas_feed, b.gas_application)
            assert (a.cache_hits, a.cache_misses) == (b.cache_hits, b.cache_misses)
            assert (a.replications, a.evictions) == (b.replications, b.evictions)
            assert [asdict(e) for e in a.epochs] == [asdict(e) for e in b.epochs]
        assert first.deliver_batches == second.deliver_batches
        assert first.update_batches == second.update_batches


def make_adversary(**overrides) -> TamperingServiceProvider:
    """A tampering SP with the collaborators the rng tests don't exercise stubbed."""
    from repro.ads.authenticated_kv import AuthenticatedKVStore

    defaults = dict(
        address="sp", chain=None, storage_manager=None, store=AuthenticatedKVStore()
    )
    defaults.update(overrides)
    return TamperingServiceProvider(**defaults)


class TestAdversarySeedThreading:
    def test_omit_attack_is_reproducible_for_equal_seeds(self):
        def omit_pattern(seed: int) -> list:
            provider = make_adversary(attack="omit", omit_probability=0.5, seed=seed)
            return [provider.rng.random() < provider.omit_probability for _ in range(32)]

        assert omit_pattern(7) == omit_pattern(7)
        assert omit_pattern(7) != omit_pattern(8)

    def test_explicit_rng_still_injectable(self):
        import random

        provider = make_adversary(attack="omit", rng=random.Random(99))
        assert provider.rng.getstate() == random.Random(99).getstate()
