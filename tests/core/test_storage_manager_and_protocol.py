"""Tests for the storage-manager contract and the DO/SP protocol components."""

from __future__ import annotations

import pytest

from repro.ads.authenticated_kv import AuthenticatedKVStore
from repro.chain.chain import Blockchain, ChainParameters
from repro.common.types import KVRecord, Operation, ReplicationState
from repro.core.config import GrubConfig
from repro.core.control_plane import ControlPlane, DecisionActuator, WorkloadMonitor
from repro.core.data_consumer import DataConsumerContract
from repro.core.data_owner import DataOwner
from repro.core.decision.memoryless import MemorylessAlgorithm
from repro.core.grub import GrubSystem
from repro.core.service_provider import ServiceProvider, TamperingServiceProvider
from repro.core.storage_manager import INVALID_REPLICA, StorageManagerContract


@pytest.fixture
def protocol_system():
    """A small GRuB system with a preloaded store, convenient for protocol tests."""
    config = GrubConfig(epoch_size=4, algorithm="memoryless", k=1)
    preload = [
        KVRecord.make("alpha", b"A" * 32),
        KVRecord.make("bravo", b"B" * 32),
        KVRecord.make("charlie", b"C" * 32),
    ]
    return GrubSystem(config, preload=preload)


class TestStorageManagerContract:
    def test_preload_publishes_root_hash(self, protocol_system):
        assert protocol_system.storage_manager.root_hash() is not None

    def test_gget_miss_emits_request_and_returns_none(self, protocol_system):
        chain = protocol_system.chain
        value = chain.execute_internal_call(
            "user", "data-consumer", "query_feed", key="alpha"
        )
        assert value is None
        assert chain.event_log.latest("request") is not None
        assert protocol_system.storage_manager.requests_emitted == 1

    def test_deliver_then_hit(self, protocol_system):
        chain = protocol_system.chain
        chain.execute_internal_call("user", "data-consumer", "query_feed", key="alpha")
        protocol_system.service_provider.decision_lookup = lambda key: ReplicationState.REPLICATED
        protocol_system.service_provider.service_epoch()
        chain.mine_block()
        assert protocol_system.storage_manager.has_replica("alpha")
        value = chain.execute_internal_call(
            "user", "data-consumer", "query_feed", key="alpha"
        )
        assert value == b"A" * 32

    def test_update_requires_data_owner(self, protocol_system):
        from repro.chain.transaction import Transaction

        chain = protocol_system.chain
        tx = Transaction(
            sender="mallory",
            contract="storage-manager",
            function="update",
            args={"entries": [], "digest": b"\x01" * 32},
            calldata_bytes=64,
        )
        chain.submit(tx)
        receipt = chain.mine_block().receipts[0]
        assert not receipt.success
        assert "data owner" in receipt.error

    def test_invalidated_replica_treated_as_miss(self, protocol_system):
        manager = protocol_system.storage_manager
        manager.storage.slots["replica:alpha"] = INVALID_REPLICA
        assert not manager.has_replica("alpha")
        assert manager.replica_count() == 0
        value = protocol_system.chain.execute_internal_call(
            "user", "data-consumer", "query_feed", key="alpha"
        )
        assert value is None

    def test_call_history_records_hits_and_misses(self, protocol_system):
        chain = protocol_system.chain
        chain.execute_internal_call("user", "data-consumer", "query_feed", key="alpha")
        history = protocol_system.storage_manager.calls_since(0)
        assert len(history) == 1
        assert history[0].key == "alpha" and history[0].hit_replica is False

    def test_on_chain_trace_tracking_costs_gas(self):
        config = GrubConfig(epoch_size=4)
        from repro.core.baselines import OnChainTraceSystem, OnChainReadTraceSystem

        bl3 = OnChainTraceSystem(config, preload=[KVRecord.make("a", b"v" * 32)])
        bl4 = OnChainReadTraceSystem(config, preload=[KVRecord.make("a", b"v" * 32)])
        plain = GrubSystem(config, preload=[KVRecord.make("a", b"v" * 32)])
        ops = [Operation.read("a") for _ in range(8)]
        gas_bl3 = bl3.run(list(ops)).gas_feed
        gas_bl4 = bl4.run(list(ops)).gas_feed
        gas_plain = plain.run(list(ops)).gas_feed
        assert gas_bl3 > gas_bl4 > gas_plain


class TestWritePath:
    def test_epoch_update_refreshes_root_and_skips_empty_epochs(self, protocol_system):
        owner = protocol_system.data_owner
        root_before = protocol_system.storage_manager.root_hash()
        result = owner.end_epoch()
        assert result.transaction is None  # nothing buffered, no transaction
        owner.put("alpha", b"X" * 32)
        result = owner.end_epoch()
        protocol_system.chain.mine_block()
        assert result.transaction is not None
        assert protocol_system.storage_manager.root_hash() != root_before

    def test_replicated_write_carried_in_update(self, protocol_system):
        owner = protocol_system.data_owner
        # Force the decision to R by reading twice (K=1 → replicate after 1 read).
        protocol_system.chain.execute_internal_call(
            "user", "data-consumer", "query_feed", key="bravo"
        )
        owner.control_plane.monitor.fetch_chain_reads()  # consumed below via run_epoch
        owner.put("bravo", b"Y" * 32)
        result = owner.end_epoch()
        protocol_system.chain.mine_block()
        replicated_entries = [e for e in result.entries if e.new_state is ReplicationState.REPLICATED]
        assert protocol_system.data_owner.control_plane.decision_for("bravo") in ReplicationState
        assert result.buffered_writes == 1
        # Whether or not the read was observed in time, the update must keep
        # the SP store and the on-chain digest consistent.
        assert protocol_system.sp_store.get_record("bravo").value == b"Y" * 32

    def test_witness_verification_path(self):
        config = GrubConfig(epoch_size=2)
        system = GrubSystem(config, preload=[KVRecord.make("a", b"v" * 32)])
        system.data_owner.verify_witnesses = True
        system.data_owner.put("a", b"w" * 32)
        result = system.data_owner.end_epoch()
        assert result.buffered_writes == 1


class TestReadPathAndWatchdog:
    def test_watchdog_polls_only_new_events(self, protocol_system):
        chain = protocol_system.chain
        sp = protocol_system.service_provider
        chain.execute_internal_call("user", "data-consumer", "query_feed", key="alpha")
        assert sp.poll_requests() == 1
        assert sp.poll_requests() == 0

    def test_batched_deliver_answers_all_pending(self, protocol_system):
        chain = protocol_system.chain
        sp = protocol_system.service_provider
        for key in ("alpha", "bravo", "charlie"):
            chain.execute_internal_call("user", "data-consumer", "query_feed", key=key)
        transactions = sp.service_epoch()
        assert len(transactions) == 1  # batched
        chain.mine_block()
        assert protocol_system.consumer.deliveries() == 3

    def test_unbatched_deliver_sends_one_transaction_per_request(self, protocol_system):
        chain = protocol_system.chain
        sp = protocol_system.service_provider
        sp.batch_deliver = False
        for key in ("alpha", "bravo"):
            chain.execute_internal_call("user", "data-consumer", "query_feed", key=key)
        transactions = sp.service_epoch()
        assert len(transactions) == 2

    def test_unknown_key_request_is_skipped(self, protocol_system):
        chain = protocol_system.chain
        sp = protocol_system.service_provider
        chain.execute_internal_call("user", "data-consumer", "query_feed", key="ghost")
        transactions = sp.service_epoch()
        assert transactions == []


class TestSecurityAgainstTamperingSP:
    @pytest.mark.parametrize("attack", ["forge", "replay", "fork"])
    def test_tampered_deliveries_are_rejected_on_chain(self, attack):
        config = GrubConfig(epoch_size=4)
        preload = [KVRecord.make("alpha", b"A" * 32), KVRecord.make("bravo", b"B" * 32)]
        system = GrubSystem(config, preload=preload)
        evil = TamperingServiceProvider(
            address="storage-provider",
            chain=system.chain,
            storage_manager=system.storage_manager,
            store=system.sp_store,
            attack=attack,
        )
        evil.capture_snapshot()
        if attack == "replay":
            # Change the value after the snapshot so the replayed value is stale.
            system.data_owner.put("alpha", b"NEW" + b"A" * 29)
            system.data_owner.end_epoch()
            system.chain.mine_block()
        system.chain.execute_internal_call("user", "data-consumer", "query_feed", key="alpha")
        evil.service_epoch()
        receipts = system.chain.mine_block().receipts
        deliver_receipts = [r for r in receipts if r.transaction.function == "deliver"]
        assert deliver_receipts, "the adversarial SP should have sent a deliver"
        assert all(not r.success for r in deliver_receipts)
        # The callback must never observe tampered data.
        assert system.consumer.deliveries() == 0

    def test_omission_attack_denies_service_but_not_integrity(self):
        config = GrubConfig(epoch_size=4)
        system = GrubSystem(config, preload=[KVRecord.make("alpha", b"A" * 32)])
        evil = TamperingServiceProvider(
            address="storage-provider",
            chain=system.chain,
            storage_manager=system.storage_manager,
            store=system.sp_store,
            attack="omit",
        )
        system.chain.execute_internal_call("user", "data-consumer", "query_feed", key="alpha")
        assert evil.service_epoch() == []
        assert system.consumer.deliveries() == 0

    def test_honest_delivery_succeeds_for_comparison(self, protocol_system):
        chain = protocol_system.chain
        chain.execute_internal_call("user", "data-consumer", "query_feed", key="alpha")
        protocol_system.service_provider.service_epoch()
        receipts = chain.mine_block().receipts
        deliver_receipts = [r for r in receipts if r.transaction.function == "deliver"]
        assert deliver_receipts and all(r.success for r in deliver_receipts)
        assert protocol_system.consumer.deliveries() == 1


class TestControlPlane:
    def _make(self, continuous=False, k=2):
        manager = StorageManagerContract("sm", "do")
        plane = ControlPlane(
            monitor=WorkloadMonitor(storage_manager=manager),
            algorithm=MemorylessAlgorithm(k=k),
            actuator=DecisionActuator(),
            continuous=continuous,
        )
        return manager, plane

    def test_monitor_preserves_interleaving(self):
        manager, plane = self._make(k=2)
        from repro.core.storage_manager import GGetCall

        # read, write, read: the consecutive-read count after the write is 1, not 2.
        manager.call_history.append(GGetCall("a", False, 0, "du"))
        plane.record_local_write(Operation.write("a", b"v"))
        manager.call_history.append(GGetCall("a", False, 0, "du"))
        transitions = plane.run_epoch(replicated_keys=[])
        assert plane.algorithm.read_count("a") == 1
        assert transitions.get("a", ReplicationState.NOT_REPLICATED) is ReplicationState.NOT_REPLICATED

    def test_continuous_mode_flips_decision_mid_epoch(self):
        manager, plane = self._make(continuous=True, k=1)
        from repro.core.storage_manager import GGetCall

        manager.call_history.append(GGetCall("a", False, 0, "du"))
        plane.observe_chain_reads()
        assert plane.decision_for("a") is ReplicationState.REPLICATED

    def test_eviction_policy_demotes_idle_replicas(self):
        manager, plane = self._make(k=1)
        plane.evict_unused_after_epochs = 2
        # Make "a" replicated by observing reads.
        from repro.core.storage_manager import GGetCall

        manager.call_history.append(GGetCall("a", False, 0, "du"))
        plane.run_epoch(replicated_keys=[])
        # Two idle epochs later the key is demoted.
        plane.run_epoch(replicated_keys=["a"])
        transitions = plane.run_epoch(replicated_keys=["a"])
        assert transitions.get("a") is ReplicationState.NOT_REPLICATED
