"""Unit and property tests for the online replication decision algorithms."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.chain.gas import GasSchedule
from repro.common.errors import ConfigurationError
from repro.common.types import Operation, ReplicationState
from repro.core.decision.adaptive import AdaptiveKAlgorithm
from repro.core.decision.base import CostModel, make_algorithm
from repro.core.decision.memorizing import MemorizingAlgorithm
from repro.core.decision.memoryless import MemorylessAlgorithm
from repro.core.decision.offline import OfflineOptimalAlgorithm
from repro.core.decision.static import StaticAlgorithm

R = ReplicationState.REPLICATED
NR = ReplicationState.NOT_REPLICATED
COST_MODEL = CostModel.from_schedule(GasSchedule())


def writes_then_reads(key: str, writes: int, reads: int) -> list:
    ops = [Operation.write(key, b"v") for _ in range(writes)]
    ops.extend(Operation.read(key) for _ in range(reads))
    return ops


class TestMemoryless:
    def test_replicates_after_k_consecutive_reads(self):
        algo = MemorylessAlgorithm(k=3)
        algo.observe(writes_then_reads("a", 1, 2))
        assert algo.state_of("a") is NR
        algo.observe([Operation.read("a")])
        assert algo.state_of("a") is R

    def test_write_resets_counter_and_state(self):
        algo = MemorylessAlgorithm(k=2)
        algo.observe(writes_then_reads("a", 1, 2))
        assert algo.state_of("a") is R
        algo.observe([Operation.write("a", b"v")])
        assert algo.state_of("a") is NR
        assert algo.read_count("a") == 0

    def test_keys_are_independent(self):
        algo = MemorylessAlgorithm(k=1)
        algo.observe([Operation.read("a"), Operation.write("b", b"v")])
        assert algo.state_of("a") is R
        assert algo.state_of("b") is NR

    def test_changed_decisions_only_reported_on_change(self):
        algo = MemorylessAlgorithm(k=1)
        first = algo.observe([Operation.read("a")])
        second = algo.observe([Operation.read("a")])
        assert [d.key for d in first] == ["a"]
        assert second == []

    def test_invalid_k_rejected(self):
        with pytest.raises(ConfigurationError):
            MemorylessAlgorithm(k=0)

    def test_competitiveness_bound_with_equation_one(self):
        k = COST_MODEL.equation_one_k
        algo = MemorylessAlgorithm(k=k)
        bound = algo.worst_case_competitiveness(
            COST_MODEL.update_cost, COST_MODEL.off_chain_read_cost
        )
        # Equation 1 makes the algorithm (about) 2-competitive.
        assert bound == pytest.approx(1 + k * COST_MODEL.off_chain_read_cost / COST_MODEL.update_cost)
        assert bound <= 2.05

    def test_reset_clears_state(self):
        algo = MemorylessAlgorithm(k=1)
        algo.observe([Operation.read("a")])
        algo.reset()
        assert algo.state_of("a") is NR
        assert algo.read_count("a") == 0


class TestMemorizing:
    def test_replicates_once_reads_outpace_writes(self):
        algo = MemorizingAlgorithm(k_prime=2, window_d=1)
        algo.observe(writes_then_reads("a", 1, 3))
        assert algo.state_of("a") is R

    def test_stays_replicated_across_occasional_writes(self):
        """Temporal locality: one write does not evict a read-heavy record."""
        algo = MemorizingAlgorithm(k_prime=2, window_d=1)
        algo.observe(writes_then_reads("a", 1, 6))
        assert algo.state_of("a") is R
        algo.observe([Operation.write("a", b"v")])
        assert algo.state_of("a") is R

    def test_unreplicates_after_sustained_writes(self):
        algo = MemorizingAlgorithm(k_prime=2, window_d=1)
        algo.observe(writes_then_reads("a", 1, 3))
        assert algo.state_of("a") is R
        algo.observe([Operation.write("a", b"v") for _ in range(4)])
        assert algo.state_of("a") is NR

    def test_counters_visible_for_inspection(self):
        algo = MemorizingAlgorithm(k_prime=2, window_d=1)
        algo.observe(writes_then_reads("a", 2, 1))
        counters = algo.counters("a")
        assert counters["writes"] == 2 and counters["reads"] == 1

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            MemorizingAlgorithm(k_prime=0)
        with pytest.raises(ConfigurationError):
            MemorizingAlgorithm(k_prime=2, window_d=-1)

    def test_competitiveness_formula(self):
        algo = MemorizingAlgorithm(k_prime=8, window_d=1)
        assert algo.worst_case_competitiveness() == pytest.approx((4 * 1 + 2) / 8)


class TestAdaptiveK:
    def test_k1_replicates_when_history_predicts_reads(self):
        algo = AdaptiveKAlgorithm(base_k=2, history=3, repeat_history=True)
        # Three intervals with 4 reads each build up a high prediction.
        for _ in range(3):
            algo.observe(writes_then_reads("a", 1, 4))
        algo.observe([Operation.write("a", b"v")])
        assert algo.state_of("a") is R

    def test_k2_is_dual_of_k1(self):
        trace = []
        for _ in range(3):
            trace.extend(writes_then_reads("a", 1, 4))
        trace.append(Operation.write("a", b"v"))
        k1 = AdaptiveKAlgorithm(base_k=2, repeat_history=True)
        k2 = AdaptiveKAlgorithm(base_k=2, repeat_history=False)
        k1.observe(list(trace))
        k2.observe(list(trace))
        assert k1.state_of("a") != k2.state_of("a")

    def test_consecutive_read_safety_net(self):
        algo = AdaptiveKAlgorithm(base_k=2, repeat_history=True)
        algo.observe([Operation.read("a"), Operation.read("a")])
        assert algo.state_of("a") is R

    def test_prediction_window_limits_history(self):
        algo = AdaptiveKAlgorithm(base_k=2, history=2, repeat_history=True)
        algo.observe(writes_then_reads("a", 1, 10))
        algo.observe(writes_then_reads("a", 1, 0))
        algo.observe(writes_then_reads("a", 1, 0))
        algo.observe([Operation.write("a", b"v")])
        assert algo.predicted_reads_per_write("a") == 0.0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            AdaptiveKAlgorithm(base_k=0)
        with pytest.raises(ConfigurationError):
            AdaptiveKAlgorithm(base_k=2, history=0)


class TestOfflineOptimal:
    def test_replicates_only_profitable_intervals(self):
        # Interval 1 has 1 read (not worth replicating at K=2); interval 2 has 5.
        trace = writes_then_reads("a", 1, 1) + writes_then_reads("a", 1, 5)
        algo = OfflineOptimalAlgorithm(COST_MODEL, trace)
        algo.observe([trace[0]])
        assert algo.state_of("a") is NR
        algo.observe(trace[1:3])  # the read + second write
        assert algo.state_of("a") is R

    def test_write_only_trace_never_replicates(self):
        trace = [Operation.write("a", b"v") for _ in range(5)]
        algo = OfflineOptimalAlgorithm(COST_MODEL, trace)
        algo.observe(trace)
        assert algo.state_of("a") is NR

    def test_read_heavy_trace_replicates_immediately(self):
        trace = writes_then_reads("a", 1, 50)
        algo = OfflineOptimalAlgorithm(COST_MODEL, trace)
        algo.observe([trace[0]])
        assert algo.state_of("a") is R


class TestStaticAndFactory:
    def test_static_always(self):
        algo = StaticAlgorithm(R)
        algo.observe([Operation.write("a", b"v")])
        assert algo.state_of("a") is R
        assert algo.state_of("never-seen") is R

    def test_static_never(self):
        algo = StaticAlgorithm(NR)
        algo.observe(writes_then_reads("a", 1, 100))
        assert algo.state_of("a") is NR

    @pytest.mark.parametrize(
        "name,expected",
        [
            ("memoryless", MemorylessAlgorithm),
            ("memorizing", MemorizingAlgorithm),
            ("adaptive-k1", AdaptiveKAlgorithm),
            ("adaptive-k2", AdaptiveKAlgorithm),
            ("offline", OfflineOptimalAlgorithm),
            ("always", StaticAlgorithm),
            ("never", StaticAlgorithm),
        ],
    )
    def test_factory_builds_each_algorithm(self, name, expected):
        assert isinstance(make_algorithm(name, COST_MODEL), expected)

    def test_factory_rejects_unknown(self):
        with pytest.raises(ConfigurationError):
            make_algorithm("quantum", COST_MODEL)

    def test_factory_derives_k_from_equation_one(self):
        algo = make_algorithm("memoryless", COST_MODEL)
        assert algo.k == COST_MODEL.equation_one_k


# -- property tests ---------------------------------------------------------

operations_strategy = st.lists(
    st.tuples(st.sampled_from(["r", "w"]), st.sampled_from(["a", "b", "c"])),
    max_size=80,
).map(
    lambda pairs: [
        Operation.read(key) if kind == "r" else Operation.write(key, b"v")
        for kind, key in pairs
    ]
)


@settings(max_examples=50, deadline=None)
@given(operations_strategy, st.integers(min_value=1, max_value=5))
def test_memoryless_invariant_replicated_implies_k_recent_reads(trace, k):
    """Property: a key is R iff its last k operations (since the last write) are reads."""
    algo = MemorylessAlgorithm(k=k)
    algo.observe(trace)
    since_last_write: dict = {}
    for op in trace:
        if op.is_write:
            since_last_write[op.key] = 0
        else:
            since_last_write[op.key] = since_last_write.get(op.key, 0) + 1
    for key, count in since_last_write.items():
        expected = R if count >= k else NR
        assert algo.state_of(key) is expected


@settings(max_examples=50, deadline=None)
@given(operations_strategy)
def test_incremental_observation_equals_batch_observation(trace):
    """Property: feeding operations one at a time gives the same final decisions."""
    for factory in (
        lambda: MemorylessAlgorithm(k=2),
        lambda: MemorizingAlgorithm(k_prime=2, window_d=1),
        lambda: AdaptiveKAlgorithm(base_k=2),
    ):
        batch, incremental = factory(), factory()
        batch.observe(list(trace))
        for op in trace:
            incremental.observe([op])
        assert batch.states() == incremental.states()
