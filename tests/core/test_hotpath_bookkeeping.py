"""Hot-path bookkeeping: cursor views, history compaction, replica counter."""

from __future__ import annotations

from repro.common.types import KVRecord, Operation, ReplicationState
from repro.core.config import GrubConfig
from repro.core.grub import GrubSystem
from repro.core.storage_manager import GGetCall, StorageManagerContract
from repro.workloads.synthetic import SyntheticWorkload


class TestCallHistoryCursor:
    def test_drain_yields_absolute_positions(self):
        manager = StorageManagerContract("sm", "do")
        cursor = manager.open_history_cursor()
        manager.call_history.append(GGetCall("a", False, 0, "du"))
        manager.call_history.append(GGetCall("b", True, 0, "du"))
        drained = list(cursor.drain())
        assert [(position, call.key) for position, call in drained] == [
            (0, "a"),
            (1, "b"),
        ]
        # Draining again yields nothing until new calls arrive.
        assert list(cursor.drain()) == []
        manager.call_history.append(GGetCall("c", False, 0, "du"))
        assert [key for _, key in ((p, c.key) for p, c in cursor.drain())] == ["c"]

    def test_positions_survive_compaction(self):
        manager = StorageManagerContract("sm", "do")
        cursor = manager.open_history_cursor()
        for key in ("a", "b", "c"):
            manager.call_history.append(GGetCall(key, False, 0, "du"))
        assert [p for p, _ in cursor.drain()] == [0, 1, 2]
        dropped = manager.compact_call_history()
        assert dropped == 3
        assert manager.history_base == 3
        assert manager.call_history == []
        manager.call_history.append(GGetCall("d", False, 1, "du"))
        assert [(p, c.key) for p, c in cursor.drain()] == [(3, "d")]
        assert manager.history_end == 4

    def test_compaction_waits_for_slowest_cursor(self):
        manager = StorageManagerContract("sm", "do")
        fast = manager.open_history_cursor()
        slow = manager.open_history_cursor()
        for key in ("a", "b"):
            manager.call_history.append(GGetCall(key, False, 0, "du"))
        list(fast.drain())
        # The slow consumer has not drained: nothing may be dropped.
        assert manager.compact_call_history() == 0
        list(slow.drain())
        assert manager.compact_call_history() == 2

    def test_no_registered_cursor_means_no_compaction(self):
        manager = StorageManagerContract("sm", "do")
        manager.call_history.append(GGetCall("a", False, 0, "du"))
        assert manager.compact_call_history() == 0
        assert manager.calls_since(0)[0].key == "a"

    def test_closed_cursor_stops_pinning_compaction(self):
        manager = StorageManagerContract("sm", "do")
        active = manager.open_history_cursor()
        stale = manager.open_history_cursor()
        manager.call_history.append(GGetCall("a", False, 0, "du"))
        active.drain()
        assert manager.compact_call_history() == 0  # stale pins the prefix
        stale.close()
        assert manager.compact_call_history() == 1

    def test_abandoned_cursor_is_weakly_registered(self):
        import gc

        manager = StorageManagerContract("sm", "do")
        active = manager.open_history_cursor()
        manager.open_history_cursor()  # abandoned immediately
        gc.collect()
        manager.call_history.append(GGetCall("a", False, 0, "du"))
        active.drain()
        # The collected cursor must not pin compaction forever.
        assert manager.compact_call_history() == 1

    def test_drain_is_materialised_against_compaction(self):
        manager = StorageManagerContract("sm", "do")
        cursor = manager.open_history_cursor()
        for key in ("a", "b", "c"):
            manager.call_history.append(GGetCall(key, False, 0, "du"))
        drained = cursor.drain()
        # Everything returned counts as consumed; compaction may run while
        # the caller still holds the batch, without corrupting it.
        assert manager.compact_call_history() == 3
        assert [(p, c.key) for p, c in drained] == [(0, "a"), (1, "b"), (2, "c")]


class TestHistoryStaysBounded:
    def test_long_run_keeps_epoch_sized_history(self):
        config = GrubConfig(epoch_size=8, algorithm="memoryless", k=2)
        system = GrubSystem(
            config, preload=[KVRecord.make(f"k{i}", bytes(32)) for i in range(4)]
        )
        operations = SyntheticWorkload(
            read_write_ratio=4.0, num_operations=256, num_keys=4, key_prefix="k", seed=3
        ).operations()
        system.run(operations)
        # Every epoch's record_epoch compacts the consumed prefix, so the
        # retained history is at most one epoch's reads — not the whole run's.
        assert len(system.storage_manager.call_history) <= config.epoch_size
        assert system.storage_manager.history_base > 0
        # The absolute counter still covers everything the run produced.
        assert system.storage_manager.history_end >= 100

    def test_compaction_does_not_change_decisions(self):
        def run(compact: bool):
            config = GrubConfig(epoch_size=8, algorithm="memoryless", k=2)
            system = GrubSystem(
                config, preload=[KVRecord.make(f"k{i}", bytes(32)) for i in range(4)]
            )
            pinned = None
            if not compact:
                # Pin an extra cursor that never drains: compaction becomes a
                # no-op, emulating the old unbounded-history behaviour.  (The
                # local reference keeps the weakly-registered cursor alive.)
                pinned = system.storage_manager.open_history_cursor()
            operations = SyntheticWorkload(
                read_write_ratio=4.0,
                num_operations=128,
                num_keys=4,
                key_prefix="k",
                seed=5,
            ).operations()
            report = system.run(operations)
            if pinned is not None:
                assert system.storage_manager.history_base == 0
            return report

        compacted = run(compact=True)
        uncompacted = run(compact=False)
        assert compacted.gas_feed == uncompacted.gas_feed
        assert compacted.replications == uncompacted.replications
        assert compacted.evictions == uncompacted.evictions


class TestIncrementalReplicaCount:
    def test_counter_matches_scan_after_a_run(self):
        config = GrubConfig(epoch_size=8, algorithm="memoryless", k=1,
                            evict_unused_after_epochs=2)
        system = GrubSystem(
            config, preload=[KVRecord.make(f"k{i}", bytes(32)) for i in range(8)]
        )
        operations = SyntheticWorkload(
            read_write_ratio=4.0, num_operations=128, num_keys=8, key_prefix="k", seed=7
        ).operations()
        system.run(operations)
        manager = system.storage_manager
        scanned = sum(
            1
            for slot, value in manager.storage.slots.items()
            if slot.startswith("replica:") and value != b"\x00"
        )
        assert manager.replica_count() == scanned

    def test_revert_marks_counter_dirty_and_rescans(self):
        from repro.chain.transaction import Transaction

        config = GrubConfig(epoch_size=4, algorithm="always")
        system = GrubSystem(config)
        system.run([Operation.write("k", b"v" * 32), Operation.read("k")])
        count_before = system.storage_manager.replica_count()
        assert count_before >= 1
        # A reverting transaction (unauthorised update) rolls storage back;
        # the counter must resync, not drift.
        system.chain.submit(
            Transaction(
                sender="mallory",
                contract=system.storage_manager.address,
                function="update",
                args={"entries": [], "digest": b"\x01" * 32},
                calldata_bytes=64,
            )
        )
        receipt = system.chain.mine_block().receipts[0]
        assert not receipt.success
        assert system.storage_manager.replica_count() == count_before
