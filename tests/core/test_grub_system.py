"""End-to-end tests for the GRuB system facade and the baselines.

These are the shape tests: they assert the qualitative results of the paper's
evaluation (who wins under which workload, that GRuB adapts, that gas grows
with record size, that the consistency bounds hold) without pinning absolute
gas values.
"""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigurationError
from repro.common.types import KVRecord, Operation, ReplicationState
from repro.core.baselines import (
    AlwaysReplicateSystem,
    NoReplicationSystem,
    build_system,
)
from repro.core.config import GrubConfig
from repro.core.consistency import ConsistencyModel, OrderingRegime
from repro.core.grub import GrubSystem
from repro.workloads.synthetic import AlternatingPhaseWorkload, SyntheticWorkload


def run_system(cls, ops, **config_kwargs):
    config = GrubConfig(epoch_size=16, **config_kwargs)
    return cls(config).run(ops)


class TestConfigValidation:
    def test_epoch_size_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            GrubConfig(epoch_size=0)

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ConfigurationError):
            GrubConfig(algorithm="magic")

    def test_effective_k_defaults_to_equation_one(self):
        assert GrubConfig().effective_k == 2
        assert GrubConfig(k=7).effective_k == 7

    def test_with_algorithm_returns_new_config(self):
        config = GrubConfig()
        other = config.with_algorithm("memorizing", window_d=3)
        assert other.algorithm == "memorizing" and other.window_d == 3
        assert config.algorithm == "memoryless"

    def test_build_system_factory(self):
        assert isinstance(build_system("bl1"), NoReplicationSystem)
        assert isinstance(build_system("bl2"), AlwaysReplicateSystem)
        assert isinstance(build_system("grub"), GrubSystem)
        with pytest.raises(ValueError):
            build_system("bl9")


class TestRunReports:
    def test_report_counts_operations_and_epochs(self, grub_system, mixed_workload):
        report = grub_system.run(mixed_workload)
        assert report.operations == len(mixed_workload)
        assert report.reads + report.writes == report.operations
        assert len(report.epochs) == (len(mixed_workload) + 7) // 8
        assert report.gas_feed > 0
        assert report.gas_per_operation == pytest.approx(
            report.gas_feed / report.operations
        )

    def test_epoch_series_matches_epoch_summaries(self, grub_system, mixed_workload):
        report = grub_system.run(mixed_workload)
        series = report.epoch_series()
        assert len(series) == len(report.epochs)
        assert series[0] == report.epochs[0].gas_per_operation

    def test_gas_by_category_populated(self, grub_system, mixed_workload):
        report = grub_system.run(mixed_workload)
        assert "transaction" in report.gas_by_category
        assert sum(report.gas_by_category.values()) >= report.gas_feed

    def test_saving_versus(self):
        ops = SyntheticWorkload(read_write_ratio=8, num_operations=128).operations()
        grub = run_system(GrubSystem, list(ops))
        bl1 = run_system(NoReplicationSystem, list(ops))
        assert grub.saving_versus(bl1) == pytest.approx(1 - grub.gas_feed / bl1.gas_feed)


class TestPaperShapeStaticBaselines:
    """The Figure 3 / Figure 7 shape: BL1 wins write-heavy, BL2 wins read-heavy."""

    def test_bl1_cheaper_for_write_only(self):
        ops = SyntheticWorkload(read_write_ratio=0, num_operations=256).operations()
        bl1 = run_system(NoReplicationSystem, list(ops))
        bl2 = run_system(AlwaysReplicateSystem, list(ops))
        assert bl1.gas_per_operation < bl2.gas_per_operation / 3

    def test_bl2_cheaper_for_read_heavy(self):
        ops = SyntheticWorkload(read_write_ratio=64, num_operations=256).operations()
        bl1 = run_system(NoReplicationSystem, list(ops))
        bl2 = run_system(AlwaysReplicateSystem, list(ops))
        assert bl2.gas_per_operation < bl1.gas_per_operation / 3

    def test_crossover_between_half_and_four(self):
        """The BL1/BL2 crossover falls in the paper's neighbourhood (ratio ≈ 1–2)."""
        cheaper_at = {}
        for ratio in (0.5, 4.0):
            ops = SyntheticWorkload(read_write_ratio=ratio, num_operations=256).operations()
            bl1 = run_system(NoReplicationSystem, list(ops))
            bl2 = run_system(AlwaysReplicateSystem, list(ops))
            cheaper_at[ratio] = "BL1" if bl1.gas_feed < bl2.gas_feed else "BL2"
        assert cheaper_at[0.5] == "BL1"
        assert cheaper_at[4.0] == "BL2"

    def test_grub_tracks_the_cheaper_baseline(self):
        for ratio in (0.0, 64.0):
            ops = SyntheticWorkload(read_write_ratio=ratio, num_operations=256).operations()
            grub = run_system(GrubSystem, list(ops))
            bl1 = run_system(NoReplicationSystem, list(ops))
            bl2 = run_system(AlwaysReplicateSystem, list(ops))
            assert grub.gas_feed <= min(bl1.gas_feed, bl2.gas_feed) * 1.25

    def test_gas_grows_with_record_size(self):
        """Figure 8b: per-operation gas grows with the record size."""
        results = []
        for words in (1, 4, 16):
            ops = SyntheticWorkload(
                read_write_ratio=2, num_operations=128, record_size_bytes=32 * words
            ).operations()
            results.append(run_system(GrubSystem, ops, record_size_bytes=32 * words).gas_per_operation)
        assert results[0] < results[1] < results[2]


class TestAdaptivity:
    def test_grub_adapts_across_phases(self):
        """On a write-heavy → read-heavy workload GRuB beats both static baselines."""
        workload = AlternatingPhaseWorkload(
            phase_ratios=(0.0, 16.0, 0.0, 16.0), operations_per_phase=96, num_keys=3
        )
        ops = workload.operations()
        grub = run_system(GrubSystem, list(ops), algorithm="memoryless", k=2)
        bl1 = run_system(NoReplicationSystem, list(ops))
        bl2 = run_system(AlwaysReplicateSystem, list(ops))
        assert grub.gas_feed < bl1.gas_feed
        assert grub.gas_feed < bl2.gas_feed

    def test_replication_happens_under_read_bursts(self):
        config = GrubConfig(epoch_size=8, algorithm="memoryless", k=1)
        system = GrubSystem(config, preload=[KVRecord.make("hot", b"x" * 32)])
        ops = [Operation.read("hot") for _ in range(24)]
        report = system.run(ops)
        assert system.replicated_on_chain == 1
        assert report.deliveries >= 1

    def test_never_replicate_system_keeps_chain_empty(self):
        config = GrubConfig(epoch_size=8)
        system = NoReplicationSystem(config, preload=[KVRecord.make("hot", b"x" * 32)])
        system.run([Operation.read("hot") for _ in range(24)])
        assert system.replicated_on_chain == 0

    def test_always_replicate_system_replicates_every_written_key(self):
        config = GrubConfig(epoch_size=8)
        system = AlwaysReplicateSystem(config)
        system.run([Operation.write(f"k{i}", b"v" * 32) for i in range(8)])
        assert system.replicated_on_chain == 8

    def test_eviction_bounds_onchain_footprint(self):
        config = GrubConfig(
            epoch_size=4, algorithm="memoryless", k=1, evict_unused_after_epochs=2
        )
        system = GrubSystem(config)
        ops = []
        for index in range(12):
            key = f"k{index}"
            ops.append(Operation.write(key, b"v" * 32))
            ops.append(Operation.read(key))
            ops.append(Operation.read(key))
        report = system.run(ops)
        assert report.evictions > 0
        assert system.replicated_on_chain < 12


class TestScansAndApplicationGas:
    def test_scan_operations_supported(self):
        preload = [KVRecord.make(f"key-{i:03d}", b"v" * 32) for i in range(16)]
        system = GrubSystem(GrubConfig(epoch_size=8), preload=preload)
        report = system.run([Operation.scan("key-004", 4)])
        assert report.reads == 1
        assert report.gas_feed > 0

    def test_application_gas_tracked_separately(self):
        preload = [KVRecord.make("hot", b"x" * 32)]
        system = GrubSystem(GrubConfig(epoch_size=4), preload=preload)
        report = system.run([Operation.read("hot") for _ in range(8)])
        assert report.gas_application > 0
        assert report.gas_total == report.gas_feed + report.gas_application


class TestConsistencyModel:
    def test_freshness_bound_formula(self):
        system = GrubSystem(GrubConfig(epoch_size=4))
        model = system.consistency
        expected = (
            model.epoch_seconds
            + model.chain.propagation_delay
            + model.chain.block_interval * model.chain.finality_depth
        )
        assert model.freshness_bound == pytest.approx(expected)

    def test_classification_concurrent_vs_sequential(self):
        from repro.chain.chain import ChainParameters

        model = ConsistencyModel(
            epoch_seconds=60, chain=ChainParameters(block_interval=10, propagation_delay=1, finality_depth=5)
        )
        bound = model.freshness_bound
        assert model.classify(0.0, bound / 2) is OrderingRegime.CONCURRENT
        assert model.classify(0.0, bound + 1) is OrderingRegime.SEQUENTIAL
        assert model.guarantees_freshness(0.0, bound + 1)
        assert not model.guarantees_freshness(0.0, bound - 1)

    def test_sequential_gget_observes_prior_gput(self):
        """Theorem 3.2 checked end to end: after the epoch update is mined and
        finalized, a read returns the updated value."""
        from repro.chain.chain import ChainParameters

        config = GrubConfig(
            epoch_size=2,
            chain_parameters=ChainParameters(finality_depth=2, block_interval=5.0),
        )
        system = GrubSystem(config, preload=[KVRecord.make("k", b"old" + b"\x00" * 29)])
        put_time = system.clock.now
        system.data_owner.put("k", b"new" + b"\x00" * 29)
        system.data_owner.end_epoch()
        block = system.chain.mine_block()
        system.chain.mine_until_finalized(block.number)
        # Wait out the full epoch-bounded freshness window before reading.
        system.clock.advance(system.consistency.freshness_bound)
        get_time = system.clock.now
        assert system.consistency.guarantees_freshness(put_time, get_time)
        system.chain.execute_internal_call("user", "data-consumer", "query_feed", key="k")
        system.service_provider.service_epoch()
        system.chain.mine_block()
        assert system.consumer.last_value("k").startswith(b"new")

    def test_immediate_feed_freshness_is_tighter(self):
        system = GrubSystem(GrubConfig(epoch_size=32))
        assert system.consistency.immediate_feed_freshness() < system.consistency.freshness_bound
