"""Tests for the ERC20 token and the SCoin stablecoin case study."""

from __future__ import annotations

import pytest

from repro.apps.erc20 import ERC20Token
from repro.apps.price_feed import PriceFeed, decode_price, encode_price
from repro.apps.stablecoin import SCOIN_DECIMALS, build_stablecoin_deployment
from repro.chain.chain import Blockchain, ChainParameters
from repro.chain.accounts import WEI_PER_ETHER
from repro.common.types import KVRecord, Operation
from repro.core.config import GrubConfig
from repro.core.grub import GrubSystem


@pytest.fixture
def token_chain():
    chain = Blockchain(parameters=ChainParameters(finality_depth=2))
    token = ERC20Token("token", name="Test", symbol="TST", minter="issuer")
    chain.deploy(token)
    return chain, token


class TestERC20:
    def test_mint_and_balance(self, token_chain):
        chain, token = token_chain
        chain.execute_internal_call("issuer", "token", "mint", recipient="alice", amount=100)
        assert token.peek_balance("alice") == 100
        assert token.total_supply == 100

    def test_only_minter_may_mint(self, token_chain):
        chain, token = token_chain
        from repro.common.errors import ContractError

        with pytest.raises(ContractError):
            chain.execute_internal_call("mallory", "token", "mint", recipient="mallory", amount=1)

    def test_transfer_moves_balances(self, token_chain):
        chain, token = token_chain
        chain.execute_internal_call("issuer", "token", "mint", recipient="alice", amount=100)
        chain.execute_internal_call("alice", "token", "transfer", recipient="bob", amount=40)
        assert token.peek_balance("alice") == 60
        assert token.peek_balance("bob") == 40

    def test_transfer_exceeding_balance_reverts(self, token_chain):
        chain, token = token_chain
        from repro.common.errors import ContractError

        chain.execute_internal_call("issuer", "token", "mint", recipient="alice", amount=10)
        with pytest.raises(ContractError):
            chain.execute_internal_call("alice", "token", "transfer", recipient="bob", amount=20)

    def test_approve_and_transfer_from(self, token_chain):
        chain, token = token_chain
        chain.execute_internal_call("issuer", "token", "mint", recipient="alice", amount=100)
        chain.execute_internal_call("alice", "token", "approve", spender="broker", amount=50)
        chain.execute_internal_call(
            "broker", "token", "transfer_from", owner="alice", recipient="carol", amount=30
        )
        assert token.peek_balance("carol") == 30
        assert chain.execute_call("x", "token", "allowance", owner="alice", spender="broker") == 20

    def test_burn_reduces_supply(self, token_chain):
        chain, token = token_chain
        chain.execute_internal_call("issuer", "token", "mint", recipient="alice", amount=100)
        chain.execute_internal_call("issuer", "token", "burn", owner="alice", amount=60)
        assert token.total_supply == 40

    def test_balance_changes_cost_storage_gas(self, token_chain):
        chain, token = token_chain
        before = chain.ledger.total
        chain.execute_internal_call("issuer", "token", "mint", recipient="alice", amount=100)
        assert chain.ledger.total - before >= 20_000  # at least one storage insert


class TestPriceEncoding:
    def test_round_trip(self):
        assert decode_price(encode_price(151.25)) == pytest.approx(151.25)

    def test_encoding_is_fixed_size(self):
        assert len(encode_price(1.0, 32)) == 32
        assert len(encode_price(99999.99, 64)) == 64


@pytest.fixture
def stablecoin():
    config = GrubConfig(epoch_size=4, algorithm="memoryless", k=1)
    system = GrubSystem(config, preload=[KVRecord.make("ETH-USD", encode_price(150.0))])
    deployment = build_stablecoin_deployment(system)
    deployment.accounts.create("buyer", ether=10.0)
    deployment.accounts.create("seller", ether=0.0)
    return deployment


def settle(deployment):
    """Flush the feed's deliver/update transactions so callbacks run."""
    deployment.system.service_provider.service_epoch()
    deployment.system.chain.mine_block()


class TestSCoinIssuer:
    def test_issue_mints_collateralised_scoin(self, stablecoin):
        chain = stablecoin.system.chain
        chain.execute_internal_call(
            "buyer", "scoin-issuer", "issue", buyer="buyer", ether_amount=3.0, layer="application"
        )
        settle(stablecoin)
        minted = stablecoin.token.peek_balance("buyer")
        expected = int(3.0 * 150.0 / stablecoin.issuer.collateral_ratio * SCOIN_DECIMALS)
        assert minted == expected
        assert stablecoin.issuer.issues == 1
        assert stablecoin.issuer.locked_collateral_wei == 3 * WEI_PER_ETHER

    def test_redeem_returns_one_usd_of_ether_per_scoin(self, stablecoin):
        chain = stablecoin.system.chain
        chain.execute_internal_call(
            "buyer", "scoin-issuer", "issue", buyer="buyer", ether_amount=3.0, layer="application"
        )
        settle(stablecoin)
        scoin = stablecoin.token.peek_balance("buyer")
        chain.execute_internal_call(
            "buyer", "scoin-issuer", "redeem", seller="buyer", scoin_cents=scoin, layer="application"
        )
        settle(stablecoin)
        assert stablecoin.token.peek_balance("buyer") == 0
        returned_wei = stablecoin.accounts.balance_of("buyer") - 7 * WEI_PER_ETHER
        expected_wei = int(scoin / SCOIN_DECIMALS / 150.0 * WEI_PER_ETHER)
        assert returned_wei == pytest.approx(expected_wei, rel=1e-6)
        assert stablecoin.issuer.redeems == 1

    def test_issuance_tracks_price_changes(self, stablecoin):
        chain = stablecoin.system.chain
        stablecoin.feed.poke("ETH-USD", 300.0)
        stablecoin.system.data_owner.end_epoch()
        chain.mine_block()
        chain.execute_internal_call(
            "buyer", "scoin-issuer", "issue", buyer="buyer", ether_amount=1.0, layer="application"
        )
        settle(stablecoin)
        assert stablecoin.token.peek_balance("buyer") == int(
            1.0 * 300.0 / stablecoin.issuer.collateral_ratio * SCOIN_DECIMALS
        )

    def test_over_collateralisation_maintained(self, stablecoin):
        chain = stablecoin.system.chain
        chain.execute_internal_call(
            "buyer", "scoin-issuer", "issue", buyer="buyer", ether_amount=2.0, layer="application"
        )
        settle(stablecoin)
        ratio = stablecoin.issuer.collateralisation(current_price=150.0)
        assert ratio == pytest.approx(stablecoin.issuer.collateral_ratio, rel=1e-3)

    def test_redeem_without_balance_reverts(self, stablecoin):
        from repro.common.errors import ContractError

        with pytest.raises(ContractError):
            stablecoin.system.chain.execute_internal_call(
                "seller", "scoin-issuer", "redeem", seller="seller", scoin_cents=100, layer="application"
            )

    def test_feed_reads_generate_feed_layer_gas(self, stablecoin):
        system = stablecoin.system
        before_feed = system.chain.ledger.feed_total
        before_app = system.chain.ledger.application_total
        system.chain.execute_internal_call(
            "buyer", "scoin-issuer", "issue", buyer="buyer", ether_amount=1.0, layer="application"
        )
        settle(stablecoin)
        assert system.chain.ledger.feed_total > before_feed
        assert system.chain.ledger.application_total > before_app


class TestStablecoinOnWorkload:
    def test_end_to_end_trace_run_with_stablecoin_consumer(self):
        config = GrubConfig(epoch_size=8, algorithm="memoryless", k=1)
        system = GrubSystem(config, preload=[KVRecord.make("ETH-USD", encode_price(150.0))])
        deployment = build_stablecoin_deployment(system)
        deployment.accounts.create("buyer", ether=100.0)
        ops = []
        for index in range(6):
            ops.append(Operation.write("ETH-USD", encode_price(150.0 + index)))
            ops.append(Operation.read("ETH-USD"))
        report = system.run(ops)
        assert report.operations == 12
        assert report.gas_feed > 0
        # The default on_data callback of the issuer records generic reads.
        assert deployment.issuer.deliveries() >= 1
