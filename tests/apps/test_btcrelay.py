"""Tests for the Bitcoin simulator, BtcRelay feed and the pegged-token case study."""

from __future__ import annotations

import pytest

from repro.apps.btc.bitcoin import BitcoinBlock, BitcoinSimulator, SATOSHI_PER_BTC
from repro.apps.btc.btcrelay import block_key
from repro.apps.btc.pegged_token import build_pegged_token_deployment
from repro.common.errors import ReproError
from repro.core.config import GrubConfig
from repro.core.grub import GrubSystem


@pytest.fixture
def bitcoin():
    return BitcoinSimulator(block_interval_seconds=600)


class TestBitcoinSimulator:
    def test_genesis_exists(self, bitcoin):
        assert bitcoin.tip.height == 0

    def test_mining_links_headers(self, bitcoin):
        bitcoin.mine_block()
        bitcoin.mine_block()
        assert bitcoin.verify_header_chain()
        assert bitcoin.tip.height == 2

    def test_deposit_transaction_included_and_confirmed(self, bitcoin):
        tx = bitcoin.deposit(amount_btc=0.5, ethereum_recipient="alice")
        block = bitcoin.mine_block()
        assert tx in block.transactions
        assert bitcoin.confirmation_depth(tx.txid) == 0
        bitcoin.mine_block()
        assert bitcoin.confirmation_depth(tx.txid) == 1

    def test_spv_proof_verifies_against_header_merkle_root(self, bitcoin):
        tx = bitcoin.deposit(amount_btc=1.0, ethereum_recipient="alice")
        bitcoin.deposit(amount_btc=2.0, ethereum_recipient="bob")
        block = bitcoin.mine_block()
        proof = bitcoin.spv_proof(tx.txid)
        assert proof.verify(block.merkle_root)
        assert not proof.verify(b"\x00" * 32)

    def test_spv_proof_for_unconfirmed_transaction_rejected(self, bitcoin):
        tx = bitcoin.deposit(amount_btc=1.0, ethereum_recipient="alice")
        with pytest.raises(ReproError):
            bitcoin.spv_proof(tx.txid)

    def test_header_bytes_round_trip(self, bitcoin):
        bitcoin.mine_block()
        block = bitcoin.tip
        header = block.header_bytes()
        assert len(header) == 80
        parsed = BitcoinBlock.parse_header(header)
        assert parsed["height"] == block.height

    def test_block_at_out_of_range(self, bitcoin):
        with pytest.raises(ReproError):
            bitcoin.block_at(99)

    def test_amounts_in_satoshi(self, bitcoin):
        tx = bitcoin.deposit(amount_btc=0.25, ethereum_recipient="alice")
        assert tx.amount_satoshi == SATOSHI_PER_BTC // 4


@pytest.fixture
def pegged():
    config = GrubConfig(epoch_size=4, algorithm="memoryless", k=1)
    system = GrubSystem(config)
    deployment = build_pegged_token_deployment(system, confirmations=3)
    return deployment


def relay_and_flush(deployment):
    """Relay all new Bitcoin blocks into the feed and land the epoch update."""
    deployment.relay.relay_new_blocks()
    deployment.system.data_owner.end_epoch()
    deployment.system.chain.mine_block()


def settle_feed(deployment):
    deployment.system.service_provider.service_epoch()
    deployment.system.chain.mine_block()


class TestBtcRelayFeed:
    def test_relay_publishes_headers_into_store(self, pegged):
        for _ in range(3):
            pegged.bitcoin.mine_block()
        relay_and_flush(pegged)
        record = pegged.system.sp_store.get_record(block_key(2))
        assert record is not None
        assert record.value == pegged.bitcoin.block_at(2).header_bytes()
        assert pegged.relay.latest_relayed_height() == 3

    def test_relay_is_incremental(self, pegged):
        pegged.bitcoin.mine_block()
        assert pegged.relay.relay_new_blocks() == 1
        assert pegged.relay.relay_new_blocks() == 0
        pegged.bitcoin.mine_block()
        assert pegged.relay.relay_new_blocks() == 1


class TestPeggedToken:
    def _confirmed_deposit(self, pegged, amount=1.0):
        tx = pegged.bitcoin.deposit(amount_btc=amount, ethereum_recipient="alice")
        deposit_block = pegged.bitcoin.mine_block()
        # Mine enough confirmations for the verification window.
        for _ in range(pegged.pegged.confirmations):
            pegged.bitcoin.mine_block()
        relay_and_flush(pegged)
        return tx, deposit_block

    def test_mint_after_verified_deposit(self, pegged):
        tx, deposit_block = self._confirmed_deposit(pegged, amount=0.5)
        proof = pegged.bitcoin.spv_proof(tx.txid)
        pegged.system.chain.execute_internal_call(
            "alice",
            "pegged-btc-gateway",
            "request_mint",
            recipient="alice",
            amount_satoshi=tx.amount_satoshi,
            proof=proof,
            block_height=deposit_block.height,
            layer="application",
        )
        settle_feed(pegged)
        assert pegged.pegged.mints == 1
        assert pegged.token.peek_balance("alice") == tx.amount_satoshi

    def test_mint_with_forged_proof_rejected(self, pegged):
        tx, deposit_block = self._confirmed_deposit(pegged)
        other = pegged.bitcoin.deposit(amount_btc=9.0, ethereum_recipient="mallory")
        pegged.bitcoin.mine_block()
        for _ in range(pegged.pegged.confirmations):
            pegged.bitcoin.mine_block()
        relay_and_flush(pegged)
        forged_proof = pegged.bitcoin.spv_proof(other.txid)
        pegged.system.chain.execute_internal_call(
            "mallory",
            "pegged-btc-gateway",
            "request_mint",
            recipient="mallory",
            amount_satoshi=other.amount_satoshi,
            proof=forged_proof,
            block_height=deposit_block.height,  # wrong block for this proof
            layer="application",
        )
        settle_feed(pegged)
        assert pegged.pegged.mints == 0
        assert pegged.pegged.rejected == 1
        assert pegged.token.peek_balance("mallory") == 0

    def test_burn_after_verified_redeem(self, pegged):
        tx, deposit_block = self._confirmed_deposit(pegged, amount=1.0)
        proof = pegged.bitcoin.spv_proof(tx.txid)
        pegged.system.chain.execute_internal_call(
            "alice", "pegged-btc-gateway", "request_mint", recipient="alice",
            amount_satoshi=tx.amount_satoshi, proof=proof, block_height=deposit_block.height,
            layer="application",
        )
        settle_feed(pegged)
        redeem = pegged.bitcoin.redeem(amount_btc=1.0, bitcoin_recipient="alice-btc")
        redeem_block = pegged.bitcoin.mine_block()
        for _ in range(pegged.pegged.confirmations):
            pegged.bitcoin.mine_block()
        relay_and_flush(pegged)
        pegged.system.chain.execute_internal_call(
            "alice", "pegged-btc-gateway", "request_burn", holder="alice",
            amount_satoshi=redeem.amount_satoshi, proof=pegged.bitcoin.spv_proof(redeem.txid),
            block_height=redeem_block.height, layer="application",
        )
        settle_feed(pegged)
        assert pegged.pegged.burns == 1
        assert pegged.token.peek_balance("alice") == 0

    def test_verification_reads_feed_headers(self, pegged):
        tx, deposit_block = self._confirmed_deposit(pegged)
        calls_before = len(pegged.system.storage_manager.call_history)
        pegged.system.chain.execute_internal_call(
            "alice", "pegged-btc-gateway", "request_mint", recipient="alice",
            amount_satoshi=tx.amount_satoshi, proof=pegged.bitcoin.spv_proof(tx.txid),
            block_height=deposit_block.height, layer="application",
        )
        calls_after = len(pegged.system.storage_manager.call_history)
        assert calls_after - calls_before == pegged.pegged.confirmations
