"""Parallel epoch engine: bit-identical to serial, deterministic, warm cache.

The engine's contract is strict: ``num_workers`` may only change wall-clock
time.  Telemetry, per-feed gas bills and final chain state must be equal to
the bit for any worker count, and two parallel runs must be identical to each
other.  These tests pin that over a mixed fleet (different algorithms, k
values, record sizes and workload shapes per feed).
"""

from __future__ import annotations

import pytest

from repro.chain.gas import LAYER_APPLICATION, LAYER_FEED
from repro.common.errors import ConfigurationError
from repro.common.types import KVRecord, Operation
from repro.core.config import GrubConfig
from repro.gateway import EpochScheduler, FeedRegistry, FeedSpec
from repro.workloads.synthetic import SyntheticWorkload


def _mixed_fleet_configs():
    """Eight deliberately heterogeneous tenant configurations."""
    return [
        GrubConfig(epoch_size=8, algorithm="memoryless", k=1),
        GrubConfig(epoch_size=8, algorithm="memoryless", k=4),
        GrubConfig(epoch_size=8, algorithm="always"),
        GrubConfig(epoch_size=8, algorithm="never"),
        GrubConfig(epoch_size=8, algorithm="adaptive-k1"),
        GrubConfig(epoch_size=8, algorithm="memoryless", k=2, record_size_bytes=64),
        GrubConfig(epoch_size=8, algorithm="memoryless", k=2,
                   evict_unused_after_epochs=2),
        GrubConfig(epoch_size=8, algorithm="memorizing"),
    ]


def build_mixed_fleet():
    registry = FeedRegistry()
    workloads = {}
    for index, config in enumerate(_mixed_fleet_configs()):
        feed_id = f"feed-{index:02d}"
        preload = [
            KVRecord.make(f"k{index:02d}-{j:02d}", bytes(32)) for j in range(8)
        ]
        registry.create_feed(FeedSpec(feed_id=feed_id, config=config, preload=preload))
        workloads[feed_id] = SyntheticWorkload(
            read_write_ratio=2.0 + index,
            num_operations=64,
            num_keys=6,
            key_prefix=f"k{index:02d}-",
            seed=index + 1,
        ).operations()
    return registry, workloads


def chain_state_fingerprint(registry: FeedRegistry) -> dict:
    """Everything observable about the shared chain after a run."""
    ledger = registry.chain.ledger
    return {
        "height": registry.chain.height,
        "events": [
            (e.contract, e.name, sorted(e.payload.items(), key=repr))
            for e in registry.chain.event_log
        ],
        "ledger_total": ledger.total,
        "by_scope": {
            f"{scope}/{layer}": amount
            for (scope, layer), amount in sorted(ledger.by_scope.items())
        },
        "by_category": dict(sorted(ledger.by_category.items())),
        "contracts": {
            handle.feed_id: sorted(
                (slot, value) for slot, value in handle.storage_manager.storage.slots.items()
            )
            for handle in registry.handles
        },
        "roots": {
            handle.feed_id: handle.storage_manager.root_hash()
            for handle in registry.handles
        },
        "replicas": {
            handle.feed_id: handle.storage_manager.replica_count()
            for handle in registry.handles
        },
    }


def run_fleet(num_workers: int, num_shards: int = 4):
    registry, workloads = build_mixed_fleet()
    scheduler = EpochScheduler(
        registry, num_shards=num_shards, num_workers=num_workers
    )
    fleet = scheduler.run(workloads)
    return fleet, registry


class TestParallelSerialEquivalence:
    def test_parallel_run_is_bit_identical_to_serial(self):
        serial_fleet, serial_registry = run_fleet(num_workers=1)
        parallel_fleet, parallel_registry = run_fleet(num_workers=4)

        # Telemetry (every counter, every epoch summary of every feed).
        assert parallel_fleet.fingerprint() == serial_fleet.fingerprint()
        # Per-feed gas bills straight from the ledger's scopes.
        for feed_id in serial_fleet.feeds:
            for layer in (LAYER_FEED, LAYER_APPLICATION):
                assert parallel_registry.chain.ledger.scope_total(
                    feed_id, layer
                ) == serial_registry.chain.ledger.scope_total(feed_id, layer)
        # Final chain state: storage slots, roots, events, heights, ledger.
        assert chain_state_fingerprint(parallel_registry) == chain_state_fingerprint(
            serial_registry
        )

    def test_two_parallel_runs_are_identical(self):
        first_fleet, first_registry = run_fleet(num_workers=4)
        second_fleet, second_registry = run_fleet(num_workers=4)
        assert first_fleet.fingerprint() == second_fleet.fingerprint()
        assert chain_state_fingerprint(first_registry) == chain_state_fingerprint(
            second_registry
        )

    def test_oversubscribed_workers_still_identical(self):
        serial_fleet, _ = run_fleet(num_workers=1)
        oversubscribed_fleet, _ = run_fleet(num_workers=16, num_shards=8)
        serial_shardmatched_fleet, _ = run_fleet(num_workers=1, num_shards=8)
        # Worker count never changes output; shard count legitimately does
        # (it changes the batching), so compare like with like.
        assert oversubscribed_fleet.fingerprint() == serial_shardmatched_fleet.fingerprint()
        assert serial_fleet.fingerprint() != {}

    def test_invalid_worker_count_rejected(self):
        registry, _ = build_mixed_fleet()[0], None
        with pytest.raises(ConfigurationError):
            EpochScheduler(registry, num_workers=0)


class TestDeliverCacheWarmUp:
    def _registry_with_preloaded_feed(self, **config_overrides):
        registry = FeedRegistry()
        config = GrubConfig(
            epoch_size=2, algorithm="memoryless", k=1, **config_overrides
        )
        registry.create_feed(
            FeedSpec(
                feed_id="alpha",
                config=config,
                preload=[KVRecord.make("k", b"V" * 32)],
            )
        )
        return registry

    def test_deliver_payload_populates_cache(self):
        # Continuous decisions flip "k" to R mid-epoch, so the epoch-0 deliver
        # carries replicate=True — the deliver-time replication the warm-up
        # memoises.
        registry = self._registry_with_preloaded_feed(continuous_decisions=True)
        scheduler = EpochScheduler(registry)
        operations = [
            # Epoch 0: both reads miss (no replica yet); the epoch-end deliver
            # verifies and replicates "k", which must warm the cache.
            Operation.read("k"),
            Operation.read("k"),
            # Epoch 1: with warm-up BOTH reads are cache hits; without it the
            # first read would have to touch the on-chain replica first.
            Operation.read("k"),
            Operation.read("k"),
        ]
        fleet = scheduler.run({"alpha": operations})
        assert fleet.feed("alpha").cache_hits == 2
        assert fleet.feed("alpha").cache_misses == 2

    def test_dirty_keys_are_not_warmed(self):
        registry = self._registry_with_preloaded_feed()
        scheduler = EpochScheduler(registry)
        operations = [
            # Epoch 0: read misses (request), then a write dirties "k".  The
            # epoch-end deliver still carries the OLD value; warming it would
            # serve a stale record in epoch 1.
            Operation.read("k"),
            Operation.write("k", b"N" * 32),
            # Epoch 1: the read must observe the new value.
            Operation.read("k"),
            Operation.read("k"),
        ]
        scheduler.run({"alpha": operations})
        assert registry.get("alpha").consumer.last_value("k") == b"N" * 32
