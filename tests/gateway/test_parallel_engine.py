"""Parallel epoch engine: bit-identical to serial, deterministic, warm cache.

The engine's contract is strict: neither ``num_workers`` nor the execution
backend (``serial`` / ``thread`` / ``process``) may change anything but
wall-clock time.  Telemetry, per-feed gas bills and final chain state must be
equal to the bit for any backend and worker count, and two runs of the same
configuration must be identical to each other.  These tests pin that over a
mixed fleet (different algorithms, k values, record sizes and workload shapes
per feed) — including the process backend, whose feeds execute in separate
worker processes and whose results are spliced back in shard order.
"""

from __future__ import annotations

import pytest

from repro.chain.chain import ChainParameters
from repro.chain.gas import LAYER_APPLICATION, LAYER_FEED
from repro.common.errors import ConfigurationError
from repro.common.types import KVRecord, Operation
from repro.core.config import GrubConfig
from repro.gateway import EpochScheduler, FeedRegistry, FeedSpec, GasAwareShardPlanner
from repro.obs import Observability
from repro.workloads.synthetic import SyntheticWorkload


def _mixed_fleet_configs():
    """Eight deliberately heterogeneous tenant configurations."""
    return [
        GrubConfig(epoch_size=8, algorithm="memoryless", k=1),
        GrubConfig(epoch_size=8, algorithm="memoryless", k=4),
        GrubConfig(epoch_size=8, algorithm="always"),
        GrubConfig(epoch_size=8, algorithm="never"),
        GrubConfig(epoch_size=8, algorithm="adaptive-k1"),
        GrubConfig(epoch_size=8, algorithm="memoryless", k=2, record_size_bytes=64),
        GrubConfig(epoch_size=8, algorithm="memoryless", k=2,
                   evict_unused_after_epochs=2),
        GrubConfig(epoch_size=8, algorithm="memorizing"),
    ]


def build_mixed_fleet():
    registry = FeedRegistry()
    workloads = {}
    for index, config in enumerate(_mixed_fleet_configs()):
        feed_id = f"feed-{index:02d}"
        preload = [
            KVRecord.make(f"k{index:02d}-{j:02d}", bytes(32)) for j in range(8)
        ]
        registry.create_feed(FeedSpec(feed_id=feed_id, config=config, preload=preload))
        workloads[feed_id] = SyntheticWorkload(
            read_write_ratio=2.0 + index,
            num_operations=64,
            num_keys=6,
            key_prefix=f"k{index:02d}-",
            seed=index + 1,
        ).operations()
    return registry, workloads


def chain_state_fingerprint(registry: FeedRegistry) -> dict:
    """Everything observable about the shared chain after a run."""
    ledger = registry.chain.ledger
    return {
        "height": registry.chain.height,
        "events": [
            # Block stamps included deliberately: the process backend must
            # reproduce not just the event stream but the very block numbers
            # a serial run records (workers pad their local chains to the
            # main chain's height before driving).
            (
                e.contract,
                e.name,
                e.block_number,
                e.transaction_index,
                sorted(e.payload.items(), key=repr),
            )
            for e in registry.chain.event_log
        ],
        "ledger_total": ledger.total,
        "by_scope": {
            f"{scope}/{layer}": amount
            for (scope, layer), amount in sorted(ledger.by_scope.items())
        },
        "by_category": dict(sorted(ledger.by_category.items())),
        "contracts": {
            handle.feed_id: sorted(
                (slot, value) for slot, value in handle.storage_manager.storage.slots.items()
            )
            for handle in registry.handles
        },
        "roots": {
            handle.feed_id: handle.storage_manager.root_hash()
            for handle in registry.handles
        },
        "replicas": {
            handle.feed_id: handle.storage_manager.replica_count()
            for handle in registry.handles
        },
    }


def run_fleet(
    num_workers: int,
    num_shards: int = 4,
    execution_mode: str = "thread",
    with_obs: bool = False,
    ipc_profile: bool = False,
):
    registry, workloads = build_mixed_fleet()
    scheduler = EpochScheduler(
        registry,
        num_shards=num_shards,
        num_workers=num_workers,
        execution_mode=execution_mode,
        obs=Observability() if with_obs else None,
        ipc_profile=ipc_profile,
    )
    fleet = scheduler.run(workloads)
    return fleet, registry


class TestParallelSerialEquivalence:
    def test_parallel_run_is_bit_identical_to_serial(self):
        serial_fleet, serial_registry = run_fleet(num_workers=1)
        parallel_fleet, parallel_registry = run_fleet(num_workers=4)

        # Telemetry (every counter, every epoch summary of every feed).
        assert parallel_fleet.fingerprint() == serial_fleet.fingerprint()
        # Per-feed gas bills straight from the ledger's scopes.
        for feed_id in serial_fleet.feeds:
            for layer in (LAYER_FEED, LAYER_APPLICATION):
                assert parallel_registry.chain.ledger.scope_total(
                    feed_id, layer
                ) == serial_registry.chain.ledger.scope_total(feed_id, layer)
        # Final chain state: storage slots, roots, events, heights, ledger.
        assert chain_state_fingerprint(parallel_registry) == chain_state_fingerprint(
            serial_registry
        )

    def test_two_parallel_runs_are_identical(self):
        first_fleet, first_registry = run_fleet(num_workers=4)
        second_fleet, second_registry = run_fleet(num_workers=4)
        assert first_fleet.fingerprint() == second_fleet.fingerprint()
        assert chain_state_fingerprint(first_registry) == chain_state_fingerprint(
            second_registry
        )

    def test_oversubscribed_workers_still_identical(self):
        serial_fleet, _ = run_fleet(num_workers=1)
        oversubscribed_fleet, _ = run_fleet(num_workers=16, num_shards=8)
        serial_shardmatched_fleet, _ = run_fleet(num_workers=1, num_shards=8)
        # Worker count never changes output; shard count legitimately does
        # (it changes the batching), so compare like with like.
        assert oversubscribed_fleet.fingerprint() == serial_shardmatched_fleet.fingerprint()
        assert serial_fleet.fingerprint() != {}

    def test_invalid_worker_count_rejected(self):
        registry, _ = build_mixed_fleet()[0], None
        with pytest.raises(ConfigurationError):
            EpochScheduler(registry, num_workers=0)


class TestExecutionModeEquivalence:
    """serial / thread / process must be indistinguishable in every output."""

    def test_three_modes_bit_identical(self):
        serial_fleet, serial_registry = run_fleet(1, execution_mode="serial")
        thread_fleet, thread_registry = run_fleet(4, execution_mode="thread")
        process_fleet, process_registry = run_fleet(2, execution_mode="process")

        serial_print = serial_fleet.fingerprint()
        assert thread_fleet.fingerprint() == serial_print
        assert process_fleet.fingerprint() == serial_print

        serial_chain = chain_state_fingerprint(serial_registry)
        assert chain_state_fingerprint(thread_registry) == serial_chain
        assert chain_state_fingerprint(process_registry) == serial_chain

        # Per-feed gas bills straight from the ledger's scopes.
        for feed_id in serial_fleet.feeds:
            for layer in (LAYER_FEED, LAYER_APPLICATION):
                expected = serial_registry.chain.ledger.scope_total(feed_id, layer)
                assert process_registry.chain.ledger.scope_total(feed_id, layer) == expected

    def test_block_gas_overflow_accounting_identical_across_modes(self):
        """Overflow is derived from a block's gas on whichever chain mines
        it; the worker's local derivation must not also ship in the ledger
        delta (that double-counted it once)."""

        def run(mode, workers):
            parameters = ChainParameters(block_gas_limit=50_000)
            registry = FeedRegistry(parameters=parameters)
            config = GrubConfig(
                epoch_size=8,
                algorithm="memoryless",
                k=1,
                chain_parameters=parameters,
            )
            workloads = {}
            for index in range(4):
                feed_id = f"feed-{index:02d}"
                registry.create_feed(
                    FeedSpec(
                        feed_id=feed_id,
                        config=config,
                        preload=[
                            KVRecord.make(f"f{index}-{j:02d}", bytes(32))
                            for j in range(8)
                        ],
                    )
                )
                workloads[feed_id] = SyntheticWorkload(
                    read_write_ratio=1.0,
                    num_operations=32,
                    num_keys=6,
                    key_prefix=f"f{index}-",
                    seed=index + 1,
                ).operations()
            scheduler = EpochScheduler(
                registry, num_shards=2, num_workers=workers, execution_mode=mode
            )
            scheduler.run(workloads)
            return dict(registry.chain.ledger.by_category)

        serial = run("serial", 1)
        process = run("process", 2)
        # The scenario must actually overflow the tiny limit, else it tests
        # nothing.
        assert serial.get("block_gas_limit_overflow", 0) > 0
        assert process == serial

    def test_process_lane_count_never_changes_output(self):
        one_lane, _ = run_fleet(1, execution_mode="process")
        many_lanes, _ = run_fleet(4, execution_mode="process")
        assert one_lane.fingerprint() == many_lanes.fingerprint()

    def test_process_mode_syncs_mirrors_for_post_run_inspection(self):
        serial_fleet, serial_registry = run_fleet(1, execution_mode="serial")
        process_fleet, process_registry = run_fleet(2, execution_mode="process")
        for feed_id in serial_fleet.feeds:
            serial_handle = serial_registry.get(feed_id)
            process_handle = process_registry.get(feed_id)
            # Contract mirrors: storage, root, replica count, call history.
            assert (
                process_handle.storage_manager.storage.slots
                == serial_handle.storage_manager.storage.slots
            )
            assert (
                process_handle.storage_manager.root_hash()
                == serial_handle.storage_manager.root_hash()
            )
            assert process_handle.replicated_on_chain == serial_handle.replicated_on_chain
            # Off-chain mirrors: report, SP store root, DO trusted root.
            assert process_handle.report.gas_feed == serial_handle.report.gas_feed
            assert process_handle.report.operations == serial_handle.report.operations
            assert (
                process_handle.system.sp_store.root == serial_handle.system.sp_store.root
            )
            assert (
                process_handle.data_owner.trusted_root
                == serial_handle.data_owner.trusted_root
            )
            # Consumer state (callbacks received) synced from the worker.
            assert (
                process_handle.consumer.deliveries() == serial_handle.consumer.deliveries()
            )


class TestWireCodecEquivalence:
    """The compact wire boundary must be invisible in every output —
    with and without observability attached, in both seed modes."""

    def test_three_modes_bit_identical_with_obs_enabled(self):
        serial_fleet, serial_registry = run_fleet(
            1, execution_mode="serial", with_obs=True
        )
        thread_fleet, thread_registry = run_fleet(
            4, execution_mode="thread", with_obs=True
        )
        process_fleet, process_registry = run_fleet(
            2, execution_mode="process", with_obs=True
        )
        serial_print = serial_fleet.fingerprint()
        assert thread_fleet.fingerprint() == serial_print
        assert process_fleet.fingerprint() == serial_print
        serial_chain = chain_state_fingerprint(serial_registry)
        assert chain_state_fingerprint(thread_registry) == serial_chain
        assert chain_state_fingerprint(process_registry) == serial_chain

    def test_obs_enabled_matches_obs_disabled(self):
        quiet_fleet, quiet_registry = run_fleet(2, execution_mode="process")
        traced_fleet, traced_registry = run_fleet(
            2, execution_mode="process", with_obs=True
        )
        assert traced_fleet.fingerprint() == quiet_fleet.fingerprint()
        assert chain_state_fingerprint(traced_registry) == chain_state_fingerprint(
            quiet_registry
        )

    def test_wire_seed_mode_bit_identical_to_serial(self, monkeypatch):
        """Force the explicit wire seed path (fork inheritance is the Linux
        default, so without the override it never runs here)."""
        serial_fleet, serial_registry = run_fleet(1, execution_mode="serial")
        monkeypatch.setenv("GRUB_PROCESS_SEED", "wire")
        process_fleet, process_registry = run_fleet(2, execution_mode="process")
        assert process_fleet.fingerprint() == serial_fleet.fingerprint()
        assert chain_state_fingerprint(process_registry) == chain_state_fingerprint(
            serial_registry
        )

    def test_ipc_meter_reports_traffic_and_stays_out_of_fingerprint(self):
        quiet_fleet, _ = run_fleet(2, execution_mode="process")
        profiled_fleet, _ = run_fleet(
            2, execution_mode="process", ipc_profile=True
        )
        assert profiled_fleet.fingerprint() == quiet_fleet.fingerprint()
        for summary in (quiet_fleet.ipc, profiled_fleet.ipc):
            assert summary is not None
            assert summary["wire_bytes_total"] > 0
            assert summary["bytes_per_epoch"] > 0
            assert summary["epochs"] > 0
        # profiling adds the pickle comparison; the plain run omits it
        assert "reduction_vs_pickle" not in quiet_fleet.ipc
        assert 0.0 < profiled_fleet.ipc["reduction_vs_pickle"] < 1.0
        # serial runs have no process boundary, hence no IPC record
        serial_fleet, _ = run_fleet(1, execution_mode="serial")
        assert serial_fleet.ipc is None


class TestProcessModeConstraints:
    def test_serial_mode_rejects_extra_workers(self):
        registry, _ = build_mixed_fleet()
        with pytest.raises(ConfigurationError):
            EpochScheduler(registry, num_workers=4, execution_mode="serial")

    def test_unknown_mode_rejected(self):
        registry, _ = build_mixed_fleet()
        with pytest.raises(ConfigurationError):
            EpochScheduler(registry, execution_mode="fiber")

    def _run_with_churn(self, execution_mode, num_workers):
        registry, workloads = build_mixed_fleet()
        scheduler = EpochScheduler(
            registry,
            num_shards=4,
            num_workers=num_workers,
            execution_mode=execution_mode,
        )
        scheduler.admit(
            FeedSpec(feed_id="late", config=GrubConfig(epoch_size=8)),
            [Operation.read("k")] * 12,
            at_epoch=1,
        )
        scheduler.evict("feed-03", at_epoch=2)
        return scheduler.run(workloads), registry

    def test_process_mode_runs_churn_bit_identical_to_serial(self):
        """Historically rejected; now routed to the elastic engine, where the
        admitted feed installs into a lane and the evicted one tears down."""
        serial_fleet, serial_registry = self._run_with_churn("serial", 1)
        process_fleet, process_registry = self._run_with_churn("process", 2)
        assert process_fleet.fingerprint() == serial_fleet.fingerprint()
        assert chain_state_fingerprint(process_registry) == chain_state_fingerprint(
            serial_registry
        )
        assert process_fleet.ipc["installs_total"] > 0

    def _run_with_gas_aware_planner(self, execution_mode, num_workers):
        registry, workloads = build_mixed_fleet()
        scheduler = EpochScheduler(
            registry,
            num_workers=num_workers,
            execution_mode=execution_mode,
            planner=GasAwareShardPlanner(block_gas_fraction=0.02),
        )
        return scheduler.run(workloads), registry

    def test_process_mode_runs_gas_aware_planner_bit_identical_to_serial(self):
        """Historically rejected (a re-sharding plan moves feeds between
        lanes); now the moves happen, as snapshot-frame migrations."""
        serial_fleet, serial_registry = self._run_with_gas_aware_planner("serial", 1)
        process_fleet, process_registry = self._run_with_gas_aware_planner(
            "process", 3
        )
        assert process_fleet.fingerprint() == serial_fleet.fingerprint()
        assert chain_state_fingerprint(process_registry) == chain_state_fingerprint(
            serial_registry
        )

    def _run_with_persistent_store(self, execution_mode, num_workers, directory):
        registry = FeedRegistry()
        preload = [KVRecord.make(f"key-{i:02d}", bytes(32)) for i in range(8)]
        registry.create_feed(
            FeedSpec(
                feed_id="lsm-feed",
                config=GrubConfig(epoch_size=8, algorithm="memoryless", k=1),
                preload=preload,
                store_backend="lsm",
                store_directory=directory,
            )
        )
        registry.create_feed(
            FeedSpec(feed_id="mem-feed", config=GrubConfig(epoch_size=8))
        )
        workloads = {
            "lsm-feed": SyntheticWorkload(
                read_write_ratio=2.0,
                num_operations=32,
                num_keys=8,
                key_prefix="key-",
                seed=3,
            ).operations(),
            "mem-feed": [Operation.read("k")] * 8,
        }
        scheduler = EpochScheduler(
            registry, num_workers=num_workers, execution_mode=execution_mode
        )
        return scheduler.run(workloads), registry

    def test_process_mode_runs_persistent_stores_bit_identical_to_serial(self, tmp_path):
        """Historically rejected (two processes must never open one LSM
        directory); the single-opener close/reopen handoff makes it legal —
        and the lane's final store contents land back in the directory."""
        serial_fleet, serial_registry = self._run_with_persistent_store(
            "serial", 1, tmp_path / "serial"
        )
        process_fleet, process_registry = self._run_with_persistent_store(
            "process", 2, tmp_path / "process"
        )
        assert process_fleet.fingerprint() == serial_fleet.fingerprint()
        assert chain_state_fingerprint(process_registry) == chain_state_fingerprint(
            serial_registry
        )
        serial_store = serial_registry.get("lsm-feed").system.sp_store
        process_store = process_registry.get("lsm-feed").system.sp_store
        assert process_store.root == serial_store.root
        # The reopened main-side backing holds the lane's final records.
        backing = process_store.backing
        for record in process_store.records():
            assert backing.get(record.prefixed_key) == record.value


class TestDeliverCacheWarmUp:
    def _registry_with_preloaded_feed(self, **config_overrides):
        registry = FeedRegistry()
        config = GrubConfig(
            epoch_size=2, algorithm="memoryless", k=1, **config_overrides
        )
        registry.create_feed(
            FeedSpec(
                feed_id="alpha",
                config=config,
                preload=[KVRecord.make("k", b"V" * 32)],
            )
        )
        return registry

    def test_deliver_payload_populates_cache(self):
        # Continuous decisions flip "k" to R mid-epoch, so the epoch-0 deliver
        # carries replicate=True — the deliver-time replication the warm-up
        # memoises.
        registry = self._registry_with_preloaded_feed(continuous_decisions=True)
        scheduler = EpochScheduler(registry)
        operations = [
            # Epoch 0: both reads miss (no replica yet); the epoch-end deliver
            # verifies and replicates "k", which must warm the cache.
            Operation.read("k"),
            Operation.read("k"),
            # Epoch 1: with warm-up BOTH reads are cache hits; without it the
            # first read would have to touch the on-chain replica first.
            Operation.read("k"),
            Operation.read("k"),
        ]
        fleet = scheduler.run({"alpha": operations})
        assert fleet.feed("alpha").cache_hits == 2
        assert fleet.feed("alpha").cache_misses == 2

    def test_dirty_keys_are_not_warmed(self):
        registry = self._registry_with_preloaded_feed()
        scheduler = EpochScheduler(registry)
        operations = [
            # Epoch 0: read misses (request), then a write dirties "k".  The
            # epoch-end deliver still carries the OLD value; warming it would
            # serve a stale record in epoch 1.
            Operation.read("k"),
            Operation.write("k", b"N" * 32),
            # Epoch 1: the read must observe the new value.
            Operation.read("k"),
            Operation.read("k"),
        ]
        scheduler.run({"alpha": operations})
        assert registry.get("alpha").consumer.last_value("k") == b"N" * 32
