"""FeedSpec-selected SP-store backends.

``FeedSpec(store_backend="lsm", store_directory=...)`` must wire an
:class:`~repro.storage.lsm.LSMStore` under the feed's authenticated SP store.
The shared KV conformance suite (``tests/storage/kv_suite.py``) runs against
the exact store instance a spec builds, so the gateway-wired backend honours
the same behavioural contract as every stand-alone backend, and an end-to-end
run shows the feed's records actually landing in (and surviving under) the
persistent store.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "storage"))

from kv_suite import KVStoreContract  # noqa: E402 - path set up above
from repro.common.errors import ConfigurationError
from repro.common.types import KVRecord
from repro.core.config import GrubConfig
from repro.gateway import EpochScheduler, FeedRegistry, FeedSpec
from repro.storage.kvstore import InMemoryKVStore
from repro.storage.lsm import LSMStore
from repro.workloads.synthetic import SyntheticWorkload


def _lsm_feed_store(**spec_overrides):
    """The backing store a fresh lsm-backed feed spec actually wires."""
    registry = FeedRegistry()
    handle = registry.create_feed(
        FeedSpec(
            feed_id="lsm-feed",
            config=GrubConfig(epoch_size=8),
            store_backend="lsm",
            **spec_overrides,
        )
    )
    return handle.system.sp_store.backing


class TestLSMFeedStoreConformance(KVStoreContract):
    """The shared KV contract, run against a FeedSpec-built LSM store."""

    @staticmethod
    def make():
        store = _lsm_feed_store()
        assert isinstance(store, LSMStore)
        return store


class TestFeedSpecStoreBackend:
    def test_memory_is_the_default(self):
        registry = FeedRegistry()
        handle = registry.create_feed(
            FeedSpec(feed_id="mem", config=GrubConfig(epoch_size=8))
        )
        assert isinstance(handle.system.sp_store.backing, InMemoryKVStore)

    def test_lsm_backend_with_directory_is_persistent(self, tmp_path):
        directory = tmp_path / "feed-store"
        store = _lsm_feed_store(store_directory=directory)
        assert isinstance(store, LSMStore)
        assert store.directory == directory
        assert directory.exists()

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError, match="store_backend"):
            FeedSpec(feed_id="x", store_backend="redis")

    def test_directory_without_lsm_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError, match="store_directory"):
            FeedSpec(feed_id="x", store_directory=tmp_path)

    def test_run_lands_records_in_persistent_store_and_survives_reopen(self, tmp_path):
        directory = tmp_path / "lsm-feed"
        registry = FeedRegistry()
        preload = [KVRecord.make(f"key-{i:02d}", bytes(32)) for i in range(8)]
        registry.create_feed(
            FeedSpec(
                feed_id="lsm-feed",
                config=GrubConfig(epoch_size=8, algorithm="memoryless", k=1),
                preload=preload,
                store_backend="lsm",
                store_directory=directory,
            )
        )
        workload = SyntheticWorkload(
            read_write_ratio=2.0,
            num_operations=32,
            num_keys=8,
            key_prefix="key-",
            seed=3,
        ).operations()
        scheduler = EpochScheduler(registry)
        fleet = scheduler.run({"lsm-feed": workload})
        assert fleet.feed("lsm-feed").operations == 32

        live = registry.get("lsm-feed").system.sp_store
        # Preloaded records plus whatever keys the workload minted.
        assert len(live) >= 8
        assert {f"key-{i:02d}" for i in range(8)} <= set(live.keys())
        # A process restart: reopen the directory and find every record the
        # authenticated store holds, under its replication-prefixed key.
        reopened = LSMStore(directory=directory)
        for record in live.records():
            assert reopened.get(record.prefixed_key) == record.value
