"""Feed registry: namespacing, isolation and tenant lifecycle."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigurationError
from repro.common.types import KVRecord, ReplicationState
from repro.core.config import GrubConfig
from repro.gateway import FeedRegistry, FeedSpec


@pytest.fixture
def registry() -> FeedRegistry:
    return FeedRegistry()


def test_feeds_share_one_chain_with_namespaced_addresses(registry):
    alpha = registry.create_feed(FeedSpec(feed_id="alpha"))
    bravo = registry.create_feed(FeedSpec(feed_id="bravo"))
    assert alpha.system.chain is registry.chain
    assert bravo.system.chain is registry.chain
    assert alpha.storage_manager.address == "alpha/storage-manager"
    assert bravo.storage_manager.address == "bravo/storage-manager"
    assert alpha.consumer.address == "alpha/data-consumer"
    assert alpha.data_owner.address == "alpha/data-owner"
    # All four contracts plus the router live on the shared chain.
    assert "gateway-router" in registry.chain.contracts
    assert "alpha/storage-manager" in registry.chain.contracts
    assert "bravo/storage-manager" in registry.chain.contracts


def test_feeds_are_gateway_authorised(registry):
    handle = registry.create_feed(FeedSpec(feed_id="alpha"))
    assert handle.storage_manager.gateway == registry.router.address


def test_duplicate_feed_id_rejected(registry):
    registry.create_feed(FeedSpec(feed_id="alpha"))
    with pytest.raises(ConfigurationError):
        registry.create_feed(FeedSpec(feed_id="alpha"))


def test_feed_id_validation():
    with pytest.raises(ConfigurationError):
        FeedSpec(feed_id="")
    with pytest.raises(ConfigurationError):
        FeedSpec(feed_id="bad/id")


def test_per_feed_config_and_preload(registry):
    preload = [KVRecord.make("asset", b"seed-value", ReplicationState.REPLICATED)]
    handle = registry.create_feed(
        FeedSpec(
            feed_id="alpha",
            config=GrubConfig(epoch_size=4, algorithm="always"),
            preload=preload,
        )
    )
    assert handle.system.config.algorithm == "always"
    assert handle.storage_manager.replica_of("asset") == b"seed-value"


def test_feed_state_is_isolated(registry):
    alpha = registry.create_feed(FeedSpec(feed_id="alpha"))
    bravo = registry.create_feed(FeedSpec(feed_id="bravo"))
    alpha.data_owner.preload([KVRecord.make("asset", b"alpha-value")])
    assert alpha.service_provider.store.get_record("asset") is not None
    assert bravo.service_provider.store.get_record("asset") is None
    assert bravo.storage_manager.root_hash() is None


def test_remove_feed_deregisters(registry):
    registry.create_feed(FeedSpec(feed_id="alpha"))
    handle = registry.remove_feed("alpha")
    assert "alpha" not in registry
    assert len(registry) == 0
    assert handle.storage_manager.address not in registry.watchdog._routes
    assert handle.storage_manager.address not in registry.chain.contracts
    with pytest.raises(ConfigurationError):
        registry.get("alpha")


def test_removed_feed_id_can_be_recreated(registry):
    registry.create_feed(FeedSpec(feed_id="alpha"))
    registry.remove_feed("alpha")
    recreated = registry.create_feed(FeedSpec(feed_id="alpha"))
    # The new tenant starts from a clean slate at the same addresses.
    assert recreated.storage_manager.root_hash() is None
    assert "alpha" in registry


def test_remove_feed_notifies_listeners(registry):
    removed = []
    registry.removal_listeners.append(removed.append)
    registry.create_feed(FeedSpec(feed_id="alpha"))
    registry.remove_feed("alpha")
    assert removed == ["alpha"]


def test_feed_ids_preserve_creation_order(registry):
    for name in ("zulu", "alpha", "mike"):
        registry.create_feed(FeedSpec(feed_id=name))
    assert registry.feed_ids == ["zulu", "alpha", "mike"]
