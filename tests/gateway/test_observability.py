"""The observability plane against the real engine: zero-entropy, complete.

The tentpole invariant: fingerprints, per-feed gas bills and chain state are
bit-identical across serial/thread/process with tracing on or off — the
plane observes the run, it never steers it.  And a traced run must actually
be worth exporting: a complete span tree (every epoch, phase and shard
present) with non-empty p50/p95/p99 for every instrumented phase.
"""

from __future__ import annotations

import pytest

from repro.obs import PHASE_ORDER, Observability
from repro.obs.export import validate_jsonl

from test_parallel_engine import build_mixed_fleet, chain_state_fingerprint

from repro.gateway import EpochScheduler, FeedRegistry, FeedSpec
from repro.core.config import GrubConfig
from repro.common.types import KVRecord
from repro.workloads.synthetic import SyntheticWorkload

SERIAL_PHASES = ("drive", "deliver", "update", "settle")


def run_fleet(mode: str, workers: int, obs: Observability | None):
    registry, workloads = build_mixed_fleet()
    scheduler = EpochScheduler(
        registry,
        num_shards=4,
        num_workers=workers,
        execution_mode=mode,
        obs=obs,
    )
    fleet = scheduler.run(workloads)
    gas_bills = {
        feed_id: (t.gas_feed, t.gas_application) for feed_id, t in fleet.feeds.items()
    }
    return fleet.fingerprint(), gas_bills, chain_state_fingerprint(registry)


class TestZeroEntropy:
    """Observability on/off changes nothing, in any execution mode."""

    @pytest.fixture(scope="class")
    def baseline(self):
        return run_fleet("serial", 1, None)

    @pytest.mark.parametrize(
        "mode,workers",
        [("serial", 1), ("thread", 4), ("process", 3)],
        ids=["serial", "thread", "process"],
    )
    def test_traced_run_is_bit_identical_to_untraced_serial(
        self, baseline, mode, workers
    ):
        traced = run_fleet(mode, workers, Observability())
        assert traced == baseline

    @pytest.mark.parametrize(
        "mode,workers",
        [("thread", 4), ("process", 3)],
        ids=["thread", "process"],
    )
    def test_untraced_parallel_still_matches(self, baseline, mode, workers):
        assert run_fleet(mode, workers, None) == baseline


class TestSpanTreeCompleteness:
    @pytest.fixture(scope="class")
    def traced_serial(self):
        obs = Observability()
        run_fleet("serial", 1, obs)
        return obs

    @pytest.fixture(scope="class")
    def traced_process(self):
        obs = Observability()
        run_fleet("process", 3, obs)
        return obs

    def test_serial_tree_has_every_epoch_phase_and_shard(self, traced_serial):
        tracer = traced_serial.tracer
        (run,) = tracer.roots
        assert run.name == "run" and run.attrs["mode"] == "serial"
        epochs = run.children
        assert [span.attrs["epoch"] for span in epochs] == list(range(len(epochs)))
        assert len(epochs) == 8  # 64 ops per feed / epoch_size 8
        for epoch_span in epochs:
            phases = [span.attrs["phase"] for span in epoch_span.children]
            assert phases == list(SERIAL_PHASES)
            # Shard spans under the fan-out phases, in fixed shard order.
            for phase_span in epoch_span.children:
                if phase_span.attrs["phase"] == "settle":
                    continue  # settle is per feed, not fanned out per shard
                shards = [span.attrs["shard"] for span in phase_span.children]
                assert shards == list(range(4))

    def test_process_tree_grafts_lane_spans_in_shard_order(self, traced_process):
        tracer = traced_process.tracer
        (run,) = tracer.roots
        assert run.attrs["mode"] == "process"
        for epoch_span in run.children:
            phases = [span.attrs["phase"] for span in epoch_span.children]
            # Lane phases in canonical order, then the main-side merge.
            assert phases == list(PHASE_ORDER)
            for phase_span in epoch_span.children:
                if phase_span.attrs["phase"] == "merge":
                    continue
                assert [span.attrs["shard"] for span in phase_span.children] == list(
                    range(4)
                )
                lanes = [span.attrs["lane"] for span in phase_span.children]
                assert lanes == [shard % 3 for shard in range(4)]
                assert all(span.duration >= 0.0 for span in phase_span.children)

    def test_every_phase_has_nonempty_percentiles(self, traced_serial, traced_process):
        for obs, expected in (
            (traced_serial, set(SERIAL_PHASES)),
            (traced_process, set(PHASE_ORDER)),
        ):
            percentiles = obs.phase_percentiles()
            assert set(percentiles) == expected
            for phase, row in percentiles.items():
                assert row["count"] > 0, phase
                assert row["p50"] is not None and row["p50"] >= 0.0
                assert row["p95"] is not None and row["p99"] is not None
                assert row["p50"] <= row["p95"] <= row["p99"]

    def test_instrument_catalog_populated(self, traced_serial):
        snapshot = traced_serial.snapshot()
        assert snapshot["counters"]["chain_blocks_total"] > 0
        assert snapshot["counters"]["chain_transactions_total"] > 0
        assert snapshot["counters"]["chain_verify_total"] > 0
        assert snapshot["histograms"]["chain_mine_seconds"]["count"] > 0
        assert snapshot["histograms"]["chain_verify_seconds"]["count"] > 0
        # Pull-collected cache gauges reflect the run's cache activity.
        assert snapshot["gauges"]["cache_hits"] > 0
        assert snapshot["gauges"]["cache_entries"] >= 0

    def test_jsonl_export_of_a_real_run_validates(self, traced_serial):
        events = validate_jsonl(traced_serial.export_jsonl(meta={"mode": "serial"}))
        spans = [event for event in events if event["type"] == "span"]
        assert any(span["name"] == "run" for span in spans)
        assert any(span["name"] == "shard" for span in spans)


class TestDisabledOverhead:
    def test_disabled_scheduler_touches_no_instruments(self):
        registry, workloads = build_mixed_fleet()
        scheduler = EpochScheduler(
            registry, num_shards=4, num_workers=1, execution_mode="serial"
        )
        scheduler.run(workloads)
        assert scheduler.obs.enabled is False
        assert scheduler.obs.registry.instruments() == []
        assert scheduler.obs.tracer.roots == []
        assert registry.chain.obs is None

    def test_threaded_trace_is_deterministic_in_shape(self):
        """Two traced thread runs build structurally identical trees
        (durations differ; names, attrs and ordering must not)."""

        def shape(obs):
            def strip(span):
                return (span.name, tuple(sorted(span.attrs.items())),
                        tuple(strip(child) for child in span.children))

            return [strip(root) for root in obs.tracer.roots]

        obs_a, obs_b = Observability(), Observability()
        run_fleet("thread", 4, obs_a)
        run_fleet("thread", 4, obs_b)
        assert shape(obs_a) == shape(obs_b)


class TestGasAwarePlannerMetrics:
    def test_bin_decisions_recorded(self):
        from repro.gateway import GasAwareShardPlanner

        registry = FeedRegistry()
        workloads = {}
        for index in range(6):
            feed_id = f"feed-{index}"
            config = GrubConfig(epoch_size=8, algorithm="memoryless", k=2)
            preload = [KVRecord.make(f"p{index}-{j}", bytes(16)) for j in range(4)]
            registry.create_feed(
                FeedSpec(feed_id=feed_id, config=config, preload=preload)
            )
            workloads[feed_id] = SyntheticWorkload(
                read_write_ratio=3.0,
                num_operations=32,
                num_keys=4,
                key_prefix=f"p{index}-",
                seed=index + 1,
            ).operations()
        obs = Observability()
        scheduler = EpochScheduler(
            registry,
            num_workers=1,
            execution_mode="serial",
            planner=GasAwareShardPlanner(block_gas_fraction=0.05),
            obs=obs,
        )
        scheduler.run(workloads)
        snapshot = obs.snapshot()
        assert snapshot["counters"]["planner_plans_total"] > 0
        shards_hist = snapshot["histograms"]["planner_shards_per_plan"]
        assert shards_hist["count"] == snapshot["counters"]["planner_plans_total"]
        utilization = snapshot["histograms"]["planner_bin_utilization"]
        assert utilization["count"] > 0
        assert utilization["p50"] is not None
