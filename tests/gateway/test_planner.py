"""Shard planners: round-robin compatibility, gas-aware packing, EWMA."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigurationError
from repro.gateway import GasAwareShardPlanner, RoundRobinPlanner

LIMIT = 10_000_000


class TestRoundRobinPlanner:
    def test_deals_feeds_in_order(self):
        planner = RoundRobinPlanner(num_shards=2)
        feeds = [f"feed-{i}" for i in range(5)]
        assert planner.plan(feeds, block_gas_limit=LIMIT) == [
            ["feed-0", "feed-2", "feed-4"],
            ["feed-1", "feed-3"],
        ]

    def test_empty_shards_dropped(self):
        planner = RoundRobinPlanner(num_shards=8)
        assert planner.plan(["a", "b"], block_gas_limit=LIMIT) == [["a"], ["b"]]

    def test_invalid_shard_count_rejected(self):
        with pytest.raises(ConfigurationError):
            RoundRobinPlanner(num_shards=0)


class TestGasAwareShardPlanner:
    def test_unobserved_feeds_use_bootstrap_estimate(self):
        planner = GasAwareShardPlanner(bootstrap_gas=100)
        assert planner.estimate("new-feed") == 100.0

    def test_first_observation_replaces_bootstrap(self):
        planner = GasAwareShardPlanner(bootstrap_gas=100, ewma_alpha=0.5)
        planner.observe("f", 1_000)
        assert planner.estimate("f") == 1_000.0

    def test_ewma_tracks_trailing_gas(self):
        planner = GasAwareShardPlanner(ewma_alpha=0.5)
        planner.observe("f", 1_000)
        planner.observe("f", 2_000)
        assert planner.estimate("f") == 1_500.0

    def test_forget_resets_to_bootstrap(self):
        planner = GasAwareShardPlanner(bootstrap_gas=100)
        planner.observe("f", 9_999)
        planner.forget("f")
        assert planner.estimate("f") == 100.0

    def test_packs_under_budget(self):
        planner = GasAwareShardPlanner(block_gas_fraction=0.5)
        for feed, gas in [("a", 3_000_000), ("b", 2_000_000), ("c", 2_000_000),
                          ("d", 1_000_000), ("e", 500_000)]:
            planner.observe(feed, gas)
        plan = planner.plan(["a", "b", "c", "d", "e"], block_gas_limit=LIMIT)
        budget = 0.5 * LIMIT
        for shard in plan:
            assert sum(planner.estimate(feed) for feed in shard) <= budget
        assert sorted(feed for shard in plan for feed in shard) == ["a", "b", "c", "d", "e"]

    def test_ffd_puts_heaviest_first(self):
        planner = GasAwareShardPlanner(block_gas_fraction=0.5)
        planner.observe("light", 1_000)
        planner.observe("heavy", 4_900_000)
        plan = planner.plan(["light", "heavy"], block_gas_limit=LIMIT)
        assert plan == [["heavy", "light"]]

    def test_oversized_feed_gets_own_shard(self):
        planner = GasAwareShardPlanner(block_gas_fraction=0.1)
        planner.observe("whale", 5_000_000)  # above the 1M budget
        planner.observe("minnow", 100_000)
        plan = planner.plan(["whale", "minnow"], block_gas_limit=LIMIT)
        assert ["whale"] in plan
        assert ["minnow"] in plan

    def test_plan_is_deterministic(self):
        def build():
            planner = GasAwareShardPlanner(block_gas_fraction=0.2)
            for index in range(12):
                planner.observe(f"feed-{index:02d}", 300_000 + 50_000 * (index % 5))
            return planner.plan(
                [f"feed-{index:02d}" for index in range(12)], block_gas_limit=LIMIT
            )

        assert build() == build()

    def test_empty_fleet_plans_nothing(self):
        assert GasAwareShardPlanner().plan([], block_gas_limit=LIMIT) == []

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            GasAwareShardPlanner(block_gas_fraction=0.0)
        with pytest.raises(ConfigurationError):
            GasAwareShardPlanner(block_gas_fraction=1.5)
        with pytest.raises(ConfigurationError):
            GasAwareShardPlanner(ewma_alpha=0.0)
        with pytest.raises(ConfigurationError):
            GasAwareShardPlanner(bootstrap_gas=0)
