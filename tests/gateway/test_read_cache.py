"""The consumer-side read cache: hits, invalidation, LRU bounds, gas effect."""

from __future__ import annotations

import pytest

from repro.common.types import Operation
from repro.core.config import GrubConfig
from repro.gateway import EpochScheduler, FeedRegistry, FeedSpec, ReadCache
from repro.gateway.cache import CacheStats


class TestReadCacheUnit:
    def test_hit_after_put(self):
        cache = ReadCache()
        cache.put("feed", "k", b"v")
        assert cache.get("feed", "k") == b"v"
        assert cache.stats.hits == 1
        assert cache.stats.misses == 0

    def test_miss_is_counted(self):
        cache = ReadCache()
        assert cache.get("feed", "k") is None
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.0

    def test_entries_are_per_feed(self):
        cache = ReadCache()
        cache.put("alpha", "k", b"alpha-value")
        assert cache.get("bravo", "k") is None
        assert cache.get("alpha", "k") == b"alpha-value"

    def test_invalidate_drops_one_entry(self):
        cache = ReadCache()
        cache.put("feed", "k", b"v")
        assert cache.invalidate("feed", "k") is True
        assert cache.invalidate("feed", "k") is False
        assert cache.get("feed", "k") is None
        assert cache.stats.invalidations == 1

    def test_invalidate_feed_drops_only_that_feed(self):
        cache = ReadCache()
        cache.put("alpha", "k1", b"1")
        cache.put("alpha", "k2", b"2")
        cache.put("bravo", "k1", b"3")
        assert cache.invalidate_feed("alpha") == 2
        assert len(cache) == 1
        assert cache.get("bravo", "k1") == b"3"

    def test_lru_capacity_evicts_oldest(self):
        cache = ReadCache(capacity=2)
        cache.put("feed", "a", b"1")
        cache.put("feed", "b", b"2")
        cache.get("feed", "a")  # refresh a; b is now the LRU entry
        cache.put("feed", "c", b"3")
        assert cache.get("feed", "b") is None
        assert cache.get("feed", "a") == b"1"
        assert cache.stats.evictions == 1

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            ReadCache(capacity=0)


def _single_feed_fixture(enable_cache: bool):
    registry = FeedRegistry()
    registry.create_feed(
        FeedSpec(feed_id="alpha", config=GrubConfig(epoch_size=4, algorithm="memoryless", k=1))
    )
    # One write then a long run of reads of the same key: the key replicates,
    # after which every further read can be served from the cache.
    operations = [Operation.write("hot", b"hot-value")]
    operations += [Operation.read("hot") for _ in range(23)]
    scheduler = EpochScheduler(registry, enable_cache=enable_cache)
    fleet = scheduler.run({"alpha": operations})
    return registry, fleet


class TestReadCacheInScheduler:
    def test_repeated_replicated_reads_hit_the_cache(self):
        _, fleet = _single_feed_fixture(enable_cache=True)
        telemetry = fleet.feed("alpha")
        assert telemetry.cache_hits > 0
        assert fleet.cache_hit_rate > 0.5
        # Cached reads still count as operations for the tenant.
        assert telemetry.operations == 24

    def test_cache_lowers_feed_gas(self):
        _, with_cache = _single_feed_fixture(enable_cache=True)
        _, without_cache = _single_feed_fixture(enable_cache=False)
        assert with_cache.gas_feed < without_cache.gas_feed

    def test_write_invalidates_and_next_read_sees_new_value(self):
        registry = FeedRegistry()
        registry.create_feed(
            FeedSpec(feed_id="alpha", config=GrubConfig(epoch_size=2, algorithm="always"))
        )
        cache = ReadCache()
        scheduler = EpochScheduler(registry, read_cache=cache)
        operations = [
            Operation.write("k", b"v1"),
            Operation.write("pad", b"p"),
            # Epoch 1: the replica now exists; the read populates the cache.
            Operation.read("k"),
            Operation.read("k"),
            # Epoch 2: a write invalidates; the trailing read must go back to
            # the chain and observe v2, not the stale memo.
            Operation.write("k", b"v2"),
            Operation.read("k"),
            Operation.read("k"),
            Operation.read("k"),
        ]
        scheduler.run({"alpha": operations})
        assert registry.get("alpha").consumer.last_value("k") == b"v2"
        assert cache.stats.invalidations >= 1

    def test_feed_removal_drops_the_feeds_entries(self):
        registry = FeedRegistry()
        registry.create_feed(
            FeedSpec(feed_id="alpha", config=GrubConfig(epoch_size=2, algorithm="always"))
        )
        cache = ReadCache()
        scheduler = EpochScheduler(registry, read_cache=cache)
        scheduler.run(
            {
                "alpha": [
                    Operation.write("k", b"v1"),
                    Operation.write("pad", b"p"),
                    Operation.read("k"),
                    Operation.read("k"),
                ]
            }
        )
        assert len(cache) > 0
        registry.remove_feed("alpha")
        assert len(cache) == 0

    def test_eviction_invalidates_cache_entry(self):
        registry = FeedRegistry()
        registry.create_feed(
            FeedSpec(
                feed_id="alpha",
                config=GrubConfig(epoch_size=2, algorithm="memoryless", k=1,
                                  evict_unused_after_epochs=1),
            )
        )
        cache = ReadCache()
        scheduler = EpochScheduler(registry, read_cache=cache)
        operations = [
            Operation.write("k", b"v1"),
            Operation.read("k"),
            Operation.read("k"),
            Operation.read("k"),
            # Epochs with no reads of "k": the idle-eviction policy demotes it
            # R→NR, which must also drop the gateway's cached copy.
            Operation.write("other", b"o1"),
            Operation.write("other", b"o2"),
            Operation.write("other", b"o3"),
            Operation.write("other", b"o4"),
        ]
        scheduler.run({"alpha": operations})
        assert cache.get("alpha", "k") is None


class TestTenantChurn:
    """Shard lifecycle under feed removal (PR 2: per-feed-sharded cache)."""

    def test_removed_feed_shard_is_deregistered_but_stats_survive(self):
        cache = ReadCache()
        cache.put("alpha", "k", b"1")
        assert cache.get("alpha", "k") == b"1"
        hits_before = cache.stats.hits
        dropped = cache.invalidate_feed("alpha")
        assert dropped == 1
        # The aggregate keeps the removed tenant's counters...
        assert cache.stats.hits == hits_before
        assert cache.stats.invalidations >= 1
        # ...but a tenant reusing the feed id starts from zero.
        assert cache.shard_stats("alpha").hits == 0
        assert len(cache) == 0

    def test_clear_preserves_aggregate_statistics(self):
        cache = ReadCache()
        cache.put("alpha", "k", b"1")
        cache.get("alpha", "k")
        cache.get("alpha", "other")
        before = (cache.stats.hits, cache.stats.misses)
        cache.clear()
        assert len(cache) == 0
        assert (cache.stats.hits, cache.stats.misses) == before

    def test_probe_of_unknown_feed_counts_miss_without_allocating(self):
        cache = ReadCache()
        assert cache.get("ghost", "k") is None
        assert cache.stats.misses == 1
        assert len(cache) == 0


class TestSchedulerEvictionTeardown:
    """Cache teardown through the fleet controller's eviction path."""

    def _spec(self) -> FeedSpec:
        return FeedSpec(
            feed_id="alpha", config=GrubConfig(epoch_size=2, algorithm="always")
        )

    def _warming_ops(self, value: bytes):
        return [
            Operation.write("k", value),
            Operation.write("pad", b"p"),
            Operation.read("k"),
            Operation.read("k"),
        ]

    def test_evicted_feeds_shard_is_dropped_and_stats_frozen(self):
        registry = FeedRegistry()
        registry.create_feed(self._spec())
        cache = ReadCache()
        scheduler = EpochScheduler(registry, read_cache=cache)
        scheduler.run({"alpha": self._warming_ops(b"v1")})
        assert len(cache) > 0
        hits_before = cache.stats.hits
        assert hits_before > 0

        scheduler.evict("alpha", at_epoch=0)
        scheduler.run({})

        # Shard gone, per-feed counters reset, aggregate counters survive.
        assert len(cache) == 0
        assert cache.shard_stats("alpha").hits == 0
        assert cache.stats.hits == hits_before
        assert cache.stats.invalidations >= 1  # the dropped entries

    def test_no_stale_reads_survive_readmission_of_same_feed_id(self):
        registry = FeedRegistry()
        registry.create_feed(self._spec())
        cache = ReadCache()
        scheduler = EpochScheduler(registry, read_cache=cache)
        scheduler.run({"alpha": self._warming_ops(b"old-value")})
        assert cache.get("alpha", "k") == b"old-value"

        # Tenant leaves; a NEW tenant reuses the feed id in the next run with
        # a different value under the same key — on the same gateway and cache.
        scheduler.evict("alpha", at_epoch=0)
        scheduler.run({})
        registry.create_feed(self._spec())
        fleet = scheduler.run({"alpha": self._warming_ops(b"new-value")})

        # The re-admitted tenant's consumer observed its own value, never the
        # predecessor's memo, and the cache now holds only the new value.
        assert registry.get("alpha").consumer.last_value("k") == b"new-value"
        assert cache.get("alpha", "k") == b"new-value"
        assert fleet.feed("alpha").operations == 4


class TestStatsHygiene:
    """CacheStats arithmetic: the regression pair for the zero-lookup
    hit_rate and the install-time retirement of replaced shard counters."""

    def test_zero_lookup_hit_rate_is_zero_not_nan(self):
        stats = CacheStats()
        assert stats.lookups == 0
        assert stats.hit_rate == 0.0
        # A fresh cache (pre-created shards, no traffic) quotes the same.
        cache = ReadCache()
        cache.ensure_shard("alpha")
        assert cache.stats.hit_rate == 0.0

    def test_merge_folds_every_counter(self):
        into = CacheStats(hits=1, misses=2, invalidations=3, evictions=4)
        into.merge(CacheStats(hits=10, misses=20, invalidations=30, evictions=40))
        assert (into.hits, into.misses, into.invalidations, into.evictions) == (
            11,
            22,
            33,
            44,
        )

    def test_install_shard_retires_replaced_counters_exactly_once(self):
        cache = ReadCache()
        # Main-side shard observes some traffic before the worker's shard
        # ships back (a reused cache; a fresh run's shard counts nothing).
        cache.put("alpha", "k", b"main")
        cache.get("alpha", "k")  # hit
        cache.get("alpha", "ghost")  # miss
        worker_stats = CacheStats(hits=5, misses=3)
        cache.install_shard("alpha", [("k", b"worker")], worker_stats)
        # Aggregate = retired main-side counters + installed worker counters,
        # each exactly once.
        assert cache.stats.hits == 1 + 5
        assert cache.stats.misses == 1 + 3
        # The live shard carries only what the worker observed.
        assert cache.shard_stats("alpha").hits == 5
        assert cache.get("alpha", "k") == b"worker"

    def test_install_over_missing_shard_retires_nothing(self):
        cache = ReadCache()
        cache.install_shard("alpha", [("k", b"v")], CacheStats(hits=2, misses=1))
        assert cache.stats.hits == 2 and cache.stats.misses == 1
        assert cache.stats.hit_rate == pytest.approx(2 / 3)
