"""Round-trip tests for the lane epoch/seed wire codec.

The process backend's correctness rests on one property: whatever a worker
lane packs with :func:`encode_lane_epoch` / :func:`encode_lane_seed`, the main
process unpacks to *equal* Python values — randomized drive buffers, ledger
deltas (including empty and zero-omitting ones), settlement records, unicode
keys and all.  These tests drive the codec with generated payloads shaped
like real engine traffic, plus the cross-version guard at this layer.
"""

from __future__ import annotations

import random

import pytest

from repro.chain.chain import ExecutionBuffer
from repro.chain.events import LogEvent
from repro.chain.gas import (
    GasLedger,
    ledger_delta_wire,
    ledger_from_wire,
    ledger_to_wire,
)
from repro.common.types import KVRecord, Operation, OperationKind, ReplicationState
from repro.common.wire import (
    WIRE_SCHEMA_VERSION,
    WireDecoder,
    WireEncoder,
    WireFrame,
    WireSchemaError,
)
from repro.gateway.executor import (
    SettlementResult,
    ShardEpochResult,
    decode_lane_epoch,
    decode_lane_seed,
    encode_lane_epoch,
    encode_lane_seed,
)

FEEDS = ["feed-00", "feed-01", "fèed-ünïcode", "피드-03"]
CATEGORIES = ["sload", "sstore", "log", "calldata"]
LAYERS = ["feed", "settlement"]


def random_ledger(rng: random.Random) -> GasLedger:
    ledger = GasLedger()
    for _ in range(rng.randrange(0, 6)):
        ledger.charge(
            rng.randrange(1, 50_000),
            rng.choice(CATEGORIES),
            layer=rng.choice(LAYERS),
            scope=rng.choice(FEEDS),
        )
    return ledger


def random_events(rng: random.Random) -> list:
    names = ["request", "deliver", "üpdate"]
    return [
        (
            f"0xcontract{rng.randrange(3)}",
            rng.choice(names),
            {
                "key": f"ässet-{rng.randrange(100):04d}",
                "version": rng.randrange(1_000),
                "size": rng.choice([32, 64, 4096]),
            },
        )
        for _ in range(rng.randrange(0, 5))
    ]


def random_settlement(rng: random.Random) -> SettlementResult:
    feed_ids = tuple(rng.sample(FEEDS, rng.randrange(1, len(FEEDS))))
    before = ledger_to_wire(GasLedger())
    ledger = random_ledger(rng)
    return SettlementResult(
        function=rng.choice(["deliver", "update", "settle"]),
        feed_ids=feed_ids,
        scopes={feed_id: rng.randrange(1, 9) for feed_id in feed_ids},
        calldata_bytes=rng.randrange(0, 10_000),
        gas_used=rng.randrange(0, 500_000),
        success=rng.random() < 0.9,
        error=None if rng.random() < 0.8 else "réverted: künçe",
        events=tuple(random_events(rng)),
        ledger_delta=ledger_delta_wire(before, ledger),
    )


def random_shard_result(rng: random.Random, shard_index: int) -> ShardEpochResult:
    buffer = ExecutionBuffer(ledger=random_ledger(rng))
    for contract, name, payload in random_events(rng):
        buffer.events.append(
            LogEvent(
                contract=contract,
                name=name,
                payload=payload,
                block_number=rng.randrange(50),
                transaction_index=0,
                log_index=rng.randrange(500),
            )
        )
    return ShardEpochResult(
        shard_index=shard_index,
        drive=buffer.to_wire(),
        deliver=None if rng.random() < 0.3 else random_settlement(rng),
        update=None if rng.random() < 0.3 else random_settlement(rng),
        remaining={
            feed_id: rng.randrange(0, 300)
            for feed_id in rng.sample(FEEDS, rng.randrange(0, 3))
        },
        spans=tuple(
            {"phase": rng.choice(["drive", "update"]), "seconds": rng.random()}
            for _ in range(rng.randrange(0, 3))
        ),
    )


class TestLaneEpochRoundTrip:
    def test_randomized_epochs_round_trip_on_one_channel(self):
        """Many epochs over one persistent channel — the real traffic shape."""
        rng = random.Random(21)
        encoder, decoder = WireEncoder(), WireDecoder()
        for epoch in range(40):
            results = [
                random_shard_result(rng, shard_index)
                for shard_index in range(rng.randrange(1, 4))
            ]
            frame = encode_lane_epoch(encoder, epoch, results)
            out_epoch, out_results = decode_lane_epoch(decoder, frame)
            assert out_epoch == epoch
            assert out_results == results

    def test_empty_epoch(self):
        encoder, decoder = WireEncoder(), WireDecoder()
        frame = encode_lane_epoch(encoder, 0, [])
        assert decode_lane_epoch(decoder, frame) == (0, [])

    def test_empty_buffer_and_zero_omitting_delta(self):
        """A quiet shard: untouched ledger, no events, empty delta dicts."""
        encoder, decoder = WireEncoder(), WireDecoder()
        quiet = ShardEpochResult(
            shard_index=0,
            drive=ExecutionBuffer().to_wire(),
            deliver=SettlementResult(
                function="deliver",
                feed_ids=("feed-00",),
                scopes={"feed-00": 1},
                calldata_bytes=0,
                gas_used=0,
                success=True,
                error=None,
                events=(),
                # zero-omitting delta of a no-op settlement: all empty
                ledger_delta=ledger_delta_wire(
                    ledger_to_wire(GasLedger()), GasLedger()
                ),
            ),
            update=None,
            remaining={},
            spans=(),
        )
        frame = encode_lane_epoch(encoder, 7, [quiet])
        _, results = decode_lane_epoch(decoder, frame)
        assert results == [quiet]
        delta = results[0].deliver.ledger_delta
        assert delta["total"] == 0
        assert delta["by_category"] == {}
        assert delta["by_scope"] == []

    def test_delta_merges_like_direct_charging(self):
        """Decoded deltas must merge into exactly the ledger the worker had."""
        rng = random.Random(5)
        encoder, decoder = WireEncoder(), WireDecoder()
        worker = random_ledger(rng)
        before = ledger_to_wire(GasLedger())
        result = ShardEpochResult(
            shard_index=0,
            drive={"ledger": ledger_delta_wire(before, worker), "events": []},
            deliver=None,
            update=None,
            remaining={},
            spans=(),
        )
        frame = encode_lane_epoch(encoder, 0, [result])
        _, [decoded] = decode_lane_epoch(decoder, frame)
        merged = GasLedger()
        merged.merge(ledger_from_wire(decoded.drive["ledger"]))
        assert ledger_to_wire(merged) == ledger_to_wire(worker)

    def test_steady_state_frames_shrink(self):
        """Interning must make later epochs cheaper than the first."""
        rng = random.Random(3)
        encoder = WireEncoder()
        results = [random_shard_result(rng, 0)]
        first = encode_lane_epoch(encoder, 0, results).nbytes
        repeat = encode_lane_epoch(encoder, 1, results).nbytes
        assert repeat < first

    def test_cross_version_frame_rejected(self):
        encoder, decoder = WireEncoder(), WireDecoder()
        frame = encode_lane_epoch(encoder, 0, [])
        skewed = WireFrame(
            body=bytes([frame.body[0], WIRE_SCHEMA_VERSION + 3]) + frame.body[2:],
            blobs=frame.blobs,
        )
        with pytest.raises(WireSchemaError):
            decode_lane_epoch(decoder, skewed)


class TestLaneSeedRoundTrip:
    def test_seed_round_trip(self):
        rng = random.Random(11)
        operations = [
            Operation(
                kind=rng.choice(list(OperationKind)),
                key=f"ässet-{rng.randrange(50):04d}",
                value=None if rng.random() < 0.5 else bytes(rng.randrange(0, 600)),
                size_bytes=rng.randrange(0, 5_000),
                scan_length=rng.randrange(1, 5),
                sequence=rng.randrange(10_000),
            )
            for _ in range(30)
        ]
        preload = [
            KVRecord(
                key=f"ässet-{index:04d}",
                value=bytes(rng.randrange(0, 600)),
                state=rng.choice(list(ReplicationState)),
                version=rng.randrange(20),
            )
            for index in range(10)
        ]
        seed_items = [
            (0, [(operations[:15], preload)]),
            (3, [(operations[15:], None), ([], [])]),
        ]
        encoder, decoder = WireEncoder(), WireDecoder()
        frame = encode_lane_seed(encoder, seed_items)
        decoded = decode_lane_seed(decoder, frame)
        assert decoded == {
            0: [(operations[:15], preload)],
            3: [(operations[15:], None), ([], [])],
        }

    def test_bulk_preload_values_travel_out_of_band(self):
        records = [
            KVRecord.make(f"asset-{index:04d}", bytes(4096)) for index in range(8)
        ]
        encoder, _ = WireEncoder(), WireDecoder()
        frame = encode_lane_seed(encoder, [(0, [([], records)])])
        assert len(frame.blobs) == len(records)
        assert len(frame.body) < 4096  # values are not in the body
