"""Fleet controller: epoch-boundary admission/eviction, quotas, drain."""

from __future__ import annotations

import pytest

from repro.chain.gas import LAYER_FEED
from repro.common.errors import ConfigurationError
from repro.common.types import KVRecord, Operation
from repro.core.config import GrubConfig
from repro.gateway import EpochScheduler, FeedRegistry, FeedSpec
from repro.workloads.synthetic import SyntheticWorkload


EPOCH = 4


def make_spec(feed_id: str, **spec_overrides) -> FeedSpec:
    return FeedSpec(
        feed_id=feed_id,
        config=GrubConfig(epoch_size=EPOCH, algorithm="memoryless", k=1),
        preload=[KVRecord.make(f"{feed_id}-k{j}", bytes(32)) for j in range(4)],
        **spec_overrides,
    )


def make_ops(feed_id: str, count: int, *, seed: int = 1):
    return SyntheticWorkload(
        read_write_ratio=2.0,
        num_operations=count,
        num_keys=3,
        key_prefix=f"{feed_id}-k",
        seed=seed,
    ).operations()


class TestAdmission:
    def test_feed_joins_at_requested_boundary(self):
        registry = FeedRegistry()
        registry.create_feed(make_spec("alpha"))
        scheduler = EpochScheduler(registry, epoch_size=EPOCH)
        scheduler.admit(make_spec("bravo"), make_ops("bravo", 8), at_epoch=2)
        fleet = scheduler.run({"alpha": make_ops("alpha", 16)})

        bravo = fleet.feed("bravo")
        assert fleet.admissions == 1
        assert bravo.admitted_epoch == 2
        assert bravo.operations == 8
        assert all(summary.index >= 2 for summary in bravo.epochs)
        rosters = dict(fleet.rosters)
        assert "bravo" not in rosters[0] and "bravo" not in rosters[1]
        assert "bravo" in rosters[2]
        # The arrival extended the run: bravo's 8 ops start at epoch 2.
        assert fleet.epochs_run == 4

    def test_run_can_start_empty_and_fill_by_admission(self):
        registry = FeedRegistry()
        scheduler = EpochScheduler(registry, epoch_size=EPOCH)
        scheduler.admit(make_spec("solo"), make_ops("solo", 8))
        fleet = scheduler.run()
        assert fleet.feed("solo").operations == 8
        assert fleet.admissions == 1

    def test_duplicate_feed_id_within_run_rejected(self):
        registry = FeedRegistry()
        registry.create_feed(make_spec("alpha"))
        scheduler = EpochScheduler(registry, epoch_size=EPOCH)
        scheduler.admit(make_spec("alpha"), make_ops("alpha", 4), at_epoch=1)
        with pytest.raises(ConfigurationError):
            scheduler.run({"alpha": make_ops("alpha", 8)})

    def test_duplicate_admission_fails_fast_at_queue_time(self):
        registry = FeedRegistry()
        scheduler = EpochScheduler(registry, epoch_size=EPOCH)
        scheduler.admit(make_spec("twin"), make_ops("twin", 4))
        with pytest.raises(ConfigurationError, match="already queued"):
            scheduler.admit(make_spec("twin"), make_ops("twin", 4), at_epoch=3)

    def test_non_positive_epoch_size_rejected(self):
        registry = FeedRegistry()
        with pytest.raises(ConfigurationError):
            EpochScheduler(registry, epoch_size=0)
        with pytest.raises(ConfigurationError):
            EpochScheduler(registry, epoch_size=-4)

    def test_per_request_delivery_admission_rejected(self):
        registry = FeedRegistry()
        scheduler = EpochScheduler(registry, epoch_size=EPOCH)
        spec = FeedSpec(feed_id="bad", config=GrubConfig(batch_deliver=False))
        with pytest.raises(ConfigurationError):
            scheduler.admit(spec, [])


class TestEviction:
    def _run_with_departure(self, at_epoch: int):
        registry = FeedRegistry()
        registry.create_feed(make_spec("alpha"))
        registry.create_feed(make_spec("bravo"))
        scheduler = EpochScheduler(registry, epoch_size=EPOCH)
        scheduler.evict("bravo", at_epoch=at_epoch)
        fleet = scheduler.run(
            {"alpha": make_ops("alpha", 16), "bravo": make_ops("bravo", 16)}
        )
        return registry, fleet

    def test_departed_feed_runs_no_later_epochs(self):
        registry, fleet = self._run_with_departure(at_epoch=2)
        bravo = fleet.feed("bravo")
        assert fleet.departures == 1
        assert bravo.departed_epoch == 2
        assert all(summary.index < 2 for summary in bravo.epochs)
        assert all(
            "bravo" not in roster for epoch, roster in fleet.rosters if epoch >= 2
        )
        assert "bravo" not in registry
        assert "bravo/storage-manager" not in registry.chain.contracts

    def test_unexecuted_operations_are_cancelled_and_counted(self):
        _, fleet = self._run_with_departure(at_epoch=2)
        bravo = fleet.feed("bravo")
        # 16 admitted, 2 epochs × 4 ops executed, the rest cancelled.
        assert bravo.operations == 8
        assert bravo.cancelled_ops == 8
        assert bravo.operations + bravo.cancelled_ops == 16

    def test_final_gas_bill_is_frozen(self):
        registry, fleet = self._run_with_departure(at_epoch=2)
        bravo = fleet.feed("bravo")
        base = 0  # preload gas predates the run and is excluded from telemetry
        ledger_total = registry.chain.ledger.scope_total("bravo", LAYER_FEED)
        preload_gas = ledger_total - bravo.gas_feed
        assert bravo.gas_feed > 0
        assert preload_gas >= base  # nothing after departure touched the scope
        # Running further epochs (alpha continues) added nothing to bravo.
        assert sum(s.gas_feed for s in bravo.epochs) == bravo.gas_feed

    def test_admit_and_evict_at_same_boundary_is_a_cancelled_tenancy(self):
        # Arrivals apply before departures, so an admit/evict pair due at the
        # same epoch is well-defined: the tenant joins and immediately leaves
        # with its whole workload cancelled.
        registry = FeedRegistry()
        registry.create_feed(make_spec("alpha"))
        scheduler = EpochScheduler(registry, epoch_size=EPOCH)
        scheduler.admit(make_spec("flash"), make_ops("flash", 8), at_epoch=1)
        scheduler.evict("flash", at_epoch=1)
        fleet = scheduler.run({"alpha": make_ops("alpha", 8)})
        flash = fleet.feed("flash")
        assert flash.admitted_epoch == 1
        assert flash.departed_epoch == 1
        assert flash.operations == 0
        assert flash.cancelled_ops == 8
        assert all("flash" not in roster for _, roster in fleet.rosters)
        assert "flash" not in registry

    def test_eviction_dated_before_admission_defers_until_arrival(self):
        registry = FeedRegistry()
        registry.create_feed(make_spec("alpha"))
        scheduler = EpochScheduler(registry, epoch_size=EPOCH)
        scheduler.admit(make_spec("flash"), make_ops("flash", 8), at_epoch=3)
        scheduler.evict("flash", at_epoch=1)  # outruns the admission
        fleet = scheduler.run({"alpha": make_ops("alpha", 8)})
        flash = fleet.feed("flash")
        assert flash.admitted_epoch == 3
        assert flash.departed_epoch == 3
        assert flash.operations == 0 and flash.cancelled_ops == 8
        assert scheduler.pending_churn == 0

    def test_waiting_for_far_future_churn_skips_idle_epochs_cheaply(self):
        registry = FeedRegistry()
        registry.create_feed(make_spec("alpha"))
        scheduler = EpochScheduler(registry, epoch_size=EPOCH)
        scheduler.admit(make_spec("late"), make_ops("late", 4), at_epoch=9)
        fleet = scheduler.run({"alpha": make_ops("alpha", 8)})
        assert fleet.epochs_run == 10
        # Epochs 2–8 were pure waiting: the run jumps straight to the
        # arrival — only epochs 0, 1 and 9 execute (the idle resident gets a
        # summary again at epoch 9, when the arrival makes the epoch run).
        assert [epoch for epoch, _ in fleet.rosters] == [0, 1, 9]
        assert [s.index for s in fleet.feed("alpha").epochs] == [0, 1, 9]
        assert fleet.feed("late").operations == 4

    def test_evicting_unknown_feed_rejected(self):
        registry = FeedRegistry()
        registry.create_feed(make_spec("alpha"))
        scheduler = EpochScheduler(registry, epoch_size=EPOCH)
        scheduler.evict("ghost", at_epoch=1)
        with pytest.raises(ConfigurationError):
            scheduler.run({"alpha": make_ops("alpha", 8)})

    def test_double_eviction_fails_fast_at_queue_time(self):
        registry = FeedRegistry()
        registry.create_feed(make_spec("alpha"))
        scheduler = EpochScheduler(registry, epoch_size=EPOCH)
        scheduler.evict("alpha", at_epoch=1)
        with pytest.raises(ConfigurationError, match="already queued"):
            scheduler.evict("alpha", at_epoch=3)

    def test_num_shards_conflicts_with_explicit_planner(self):
        from repro.gateway import GasAwareShardPlanner

        registry = FeedRegistry()
        with pytest.raises(ConfigurationError):
            EpochScheduler(registry, num_shards=8, planner=GasAwareShardPlanner())


class TestWatchdogDrain:
    def test_pending_requests_cancelled_not_silently_dropped(self):
        registry = FeedRegistry()
        handle = registry.create_feed(make_spec("alpha"))
        # A consumer read of an unreplicated key emits a request event; the
        # watchdog routes it to alpha's SP, where it sits pending.
        registry.chain.execute_internal_call(
            sender="end-user",
            contract_address=handle.consumer.address,
            function="query_feed",
            scope="alpha",
            key="alpha-k0",
        )
        registry.watchdog.poll()
        assert len(handle.service_provider.pending) == 1

        scheduler = EpochScheduler(registry, epoch_size=EPOCH)
        scheduler.evict("alpha", at_epoch=0)
        fleet = scheduler.run({"alpha": []})

        assert fleet.feed("alpha").cancelled_requests == 1
        assert registry.watchdog.requests_cancelled == 1
        assert handle.service_provider.pending == []

    def test_unpolled_events_are_pulled_before_departure(self):
        registry = FeedRegistry()
        handle = registry.create_feed(make_spec("alpha"))
        registry.chain.execute_internal_call(
            sender="end-user",
            contract_address=handle.consumer.address,
            function="query_feed",
            scope="alpha",
            key="alpha-k0",
        )
        # No explicit poll: the event is still only in the chain's log.  The
        # eviction path must pull it (final poll) and cancel it explicitly.
        scheduler = EpochScheduler(registry, epoch_size=EPOCH)
        scheduler.evict("alpha", at_epoch=0)
        fleet = scheduler.run({"alpha": []})
        assert fleet.feed("alpha").cancelled_requests == 1

    def test_deregistered_route_no_longer_receives_requests(self):
        registry = FeedRegistry()
        handle = registry.create_feed(make_spec("alpha"))
        manager_address = handle.storage_manager.address
        registry.remove_feed("alpha")
        # A late event from the departed feed's old address is skipped.
        registry.chain.event_log.append(
            contract=manager_address,
            name="request",
            payload={"key": "k", "consumer": "c", "callback": "on_data"},
            block_number=registry.chain.height,
            transaction_index=0,
        )
        routed = registry.watchdog.poll()
        assert routed == 0
        assert handle.service_provider.pending == []


class TestQuotas:
    def test_ops_quota_defers_and_eventually_executes(self):
        registry = FeedRegistry()
        registry.create_feed(make_spec("capped", max_ops_per_epoch=2))
        registry.create_feed(make_spec("free"))
        scheduler = EpochScheduler(registry, epoch_size=EPOCH)
        fleet = scheduler.run(
            {"capped": make_ops("capped", 16), "free": make_ops("free", 16)}
        )
        capped = fleet.feed("capped")
        # 16 ops at 2/epoch: the run stretches to 8 epochs, nothing is lost.
        assert capped.operations == 16
        assert capped.deferred_ops > 0
        assert all(summary.operations <= 2 for summary in capped.epochs)
        assert fleet.epochs_run == 8
        # The uncapped feed finished in 4 epochs and idles afterwards.
        assert fleet.feed("free").operations == 16

    def test_gas_quota_throttles_but_never_wedges(self):
        registry = FeedRegistry()
        # A cap below any single read's gas: the post-op check trips after
        # every operation, so exactly one op per epoch runs.  The cache is
        # off (a cache hit charges no gas and would slip past the cap) and
        # the workload is read-only (writes buffer at the DO and pay their
        # gas at the epoch update, not during driving).
        registry.create_feed(make_spec("throttled", max_gas_per_epoch=1))
        scheduler = EpochScheduler(registry, epoch_size=EPOCH, enable_cache=False)
        operations = [Operation.read("throttled-k0") for _ in range(6)]
        fleet = scheduler.run({"throttled": operations})
        throttled = fleet.feed("throttled")
        assert throttled.operations == 6
        assert fleet.epochs_run == 6
        assert all(summary.operations == 1 for summary in throttled.epochs)
        assert throttled.deferred_ops > 0

    def test_quota_validation(self):
        with pytest.raises(ConfigurationError):
            FeedSpec(feed_id="x", max_ops_per_epoch=0)
        with pytest.raises(ConfigurationError):
            FeedSpec(feed_id="x", max_gas_per_epoch=-5)


class TestElasticDeterminism:
    def test_churn_run_parallel_matches_serial(self):
        def run(workers: int):
            registry = FeedRegistry()
            for index in range(4):
                registry.create_feed(make_spec(f"res-{index}"))
            scheduler = EpochScheduler(
                registry, num_shards=2, num_workers=workers, epoch_size=EPOCH
            )
            scheduler.admit(make_spec("late"), make_ops("late", 8), at_epoch=1)
            scheduler.evict("res-1", at_epoch=2)
            return scheduler.run(
                {f"res-{index}": make_ops(f"res-{index}", 16, seed=index + 1)
                 for index in range(4)}
            )

        assert run(1).fingerprint() == run(4).fingerprint()


class TestFlashTenancy:
    """Same-boundary admit→evict regression sweep.

    The flash path runs the full admission (contracts, cache shard, watchdog
    route, telemetry row) and the full departure inside one ``_apply_churn``
    call; these pin down that it tears down exactly what it set up, touches
    no other tenant, and stays bit-deterministic across backends.
    """

    def _flash_scheduler(self, registry, **kwargs):
        scheduler = EpochScheduler(registry, epoch_size=EPOCH, **kwargs)
        scheduler.admit(make_spec("flash"), make_ops("flash", 8), at_epoch=1)
        scheduler.evict("flash", at_epoch=1)
        return scheduler

    def test_flash_departure_leaves_other_tenants_watchdog_traffic_alone(self):
        registry = FeedRegistry()
        alpha = registry.create_feed(make_spec("alpha"))
        # An unpolled consumer request for the *resident* tenant sits in the
        # chain log when the flash boundary fires.  The departure's final
        # watchdog poll must route it to alpha — still hosted — and the
        # flash teardown must not cancel it.
        registry.chain.execute_internal_call(
            sender="end-user",
            contract_address=alpha.consumer.address,
            function="query_feed",
            scope="alpha",
            key="alpha-k0",
        )
        scheduler = self._flash_scheduler(registry)
        fleet = scheduler.run({"alpha": make_ops("alpha", 16)})

        assert fleet.feed("flash").cancelled_requests == 0
        assert fleet.feed("alpha").cancelled_requests == 0
        assert registry.watchdog.requests_cancelled == 0
        assert alpha.service_provider.pending == []  # serviced, not dropped

    def test_flash_cache_shard_is_torn_down(self):
        from repro.gateway import ReadCache

        registry = FeedRegistry()
        registry.create_feed(make_spec("alpha"))
        cache = ReadCache()
        scheduler = EpochScheduler(registry, epoch_size=EPOCH, read_cache=cache)
        scheduler.admit(make_spec("flash"), make_ops("flash", 8), at_epoch=1)
        scheduler.evict("flash", at_epoch=1)
        scheduler.run({"alpha": make_ops("alpha", 16)})
        # The admission pre-created flash's shard; the same-boundary eviction
        # must deregister it — a churning gateway must not leak ghost shards.
        assert "flash" not in cache._shards
        assert "alpha" in cache._shards

    def test_flash_bill_is_frozen_at_preload(self):
        registry = FeedRegistry()
        registry.create_feed(make_spec("alpha"))
        scheduler = self._flash_scheduler(registry)
        fleet = scheduler.run({"alpha": make_ops("alpha", 16)})

        flash = fleet.feed("flash")
        # Zero epochs ran between the admission and the eviction, so the
        # telemetry bill is empty and immutable...
        assert flash.epochs == []
        assert flash.gas_feed == 0 and flash.gas_application == 0
        # ...and the on-chain scope holds exactly the tenancy's setup gas
        # (contract deployment + preload), which later epochs never touched:
        # an identical tenancy on a fresh chain pays the identical amount.
        control = FeedRegistry()
        control.create_feed(make_spec("flash"))
        assert registry.chain.ledger.scope_total(
            "flash", LAYER_FEED
        ) == control.chain.ledger.scope_total("flash", LAYER_FEED)

    def test_flash_churn_parallel_matches_serial(self):
        def run(workers: int):
            registry = FeedRegistry()
            for index in range(3):
                registry.create_feed(make_spec(f"res-{index}"))
            scheduler = EpochScheduler(
                registry, num_shards=2, num_workers=workers, epoch_size=EPOCH
            )
            scheduler.admit(make_spec("flash"), make_ops("flash", 8), at_epoch=1)
            scheduler.evict("flash", at_epoch=1)
            return scheduler.run(
                {f"res-{index}": make_ops(f"res-{index}", 12, seed=index + 1)
                 for index in range(3)}
            )

        serial, threaded = run(1), run(4)
        assert serial.fingerprint() == threaded.fingerprint()
        assert serial.feed("flash").cancelled_ops == 8
