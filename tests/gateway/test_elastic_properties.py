"""Property/differential harness for the elastic gateway.

Randomized (seeded) churn schedules are driven through the fleet controller
three times — serial (``num_workers=1``), thread-parallel (``num_workers=4``)
and process-parallel (``num_workers=4``, elastic lanes with feed migration) —
under the gas-aware shard planner, and a set of invariants is asserted on
every schedule:

* **differential determinism** — the parallel run's
  ``FleetTelemetry.fingerprint()`` is identical to the serial run's (churn
  processing, quota deferral and per-epoch re-planning all preserve the
  engine's bit-identical guarantee);
* **block feasibility** — no settlement block exceeds the chain's
  ``block_gas_limit``: the ``block_gas_limit_overflow`` ledger category stays
  zero even though the planner is given a budget two orders of magnitude
  below the limit (forcing real bin-packing);
* **op conservation** — every admitted operation is eventually executed or
  explicitly cancelled at its tenant's departure; quota-deferred operations
  re-run in later epochs rather than vanishing;
* **departure hygiene** — an evicted feed never appears in a later epoch's
  roster or summaries, and its final gas bill equals the ledger's scoped
  total (frozen, exact);
* **quota enforcement** — a tenant with ``max_ops_per_epoch`` never runs
  more than that many operations in any epoch.

The seed count defaults to 20 (the CI contract) and can be raised via the
``GRUB_PROPERTY_SEEDS`` environment variable; a failing parametrized test id
carries the schedule seed, which is all that is needed to reproduce the run.
"""

from __future__ import annotations

import os

import pytest

from repro.chain.gas import LAYER_APPLICATION, LAYER_FEED
from repro.gateway import EpochScheduler, FeedRegistry, GasAwareShardPlanner
from repro.workloads.fleet_churn import FleetChurnWorkload

NUM_SCHEDULES = int(os.environ.get("GRUB_PROPERTY_SEEDS", "20"))
SEEDS = list(range(101, 101 + NUM_SCHEDULES))

EPOCH_SIZE = 4
#: Two orders of magnitude under the 10M default limit: estimates (~30–60k
#: per feed-epoch) genuinely contend for the 100k budget, so plans have
#: several shards and the overflow invariant is non-trivial.
BLOCK_GAS_FRACTION = 0.01


def build_schedule(seed: int):
    return FleetChurnWorkload(
        seed=seed,
        base_feeds=4,
        joins=3,
        leaves=3,
        burst_tenants=1,
        horizon_epochs=8,
        epoch_size=EPOCH_SIZE,
        ops_per_feed=24,
        quota_feeds=1,
    ).generate()


def run_schedule(seed: int, num_workers: int, execution_mode: str = "thread"):
    schedule = build_schedule(seed)
    registry = FeedRegistry()
    scheduler = EpochScheduler(
        registry,
        num_workers=num_workers,
        execution_mode=execution_mode,
        epoch_size=EPOCH_SIZE,
        planner=GasAwareShardPlanner(block_gas_fraction=BLOCK_GAS_FRACTION),
    )
    workloads = schedule.install(registry, scheduler)
    # Resident feeds charge their preload gas to their scope before the run;
    # snapshot it so the billing invariant compares run deltas.
    ledger = registry.chain.ledger
    baseline = {
        feed_id: (
            ledger.scope_total(feed_id, LAYER_FEED),
            ledger.scope_total(feed_id, LAYER_APPLICATION),
        )
        for feed_id in schedule.admitted_op_counts()
    }
    fleet = scheduler.run(workloads)
    return schedule, registry, fleet, baseline


@pytest.mark.parametrize("seed", SEEDS)
def test_churn_schedule_invariants(seed):
    schedule, serial_registry, serial_fleet, baseline = run_schedule(seed, num_workers=1)
    _, parallel_registry, parallel_fleet, _ = run_schedule(seed, num_workers=4)
    _, _, process_fleet, _ = run_schedule(seed, num_workers=4, execution_mode="process")

    # Differential determinism: neither worker count nor execution backend
    # changes any output — including the process backend, whose feeds churn
    # into, migrate between, and tear down from worker lanes.
    assert parallel_fleet.fingerprint() == serial_fleet.fingerprint()
    assert process_fleet.fingerprint() == serial_fleet.fingerprint()

    # Block feasibility under the gas-aware plan, in both runs.
    for registry in (serial_registry, parallel_registry):
        assert registry.chain.ledger.by_category.get("block_gas_limit_overflow", 0) == 0
        limit = registry.chain.parameters.block_gas_limit
        assert all(block.gas_used <= limit for block in registry.chain.blocks)

    # The schedule actually churned.
    assert serial_fleet.admissions == len(schedule.joins)
    assert serial_fleet.departures == len(schedule.leaves)

    # Op conservation: executed + cancelled == admitted, per tenant.
    for feed_id, admitted in schedule.admitted_op_counts().items():
        telemetry = serial_fleet.feeds[feed_id]
        assert telemetry.operations + telemetry.cancelled_ops == admitted

    # Departure hygiene: no post-departure epochs, rosters, or gas drift.
    departures = schedule.departures
    for feed_id, telemetry in serial_fleet.feeds.items():
        if feed_id in departures:
            assert telemetry.departed_epoch == departures[feed_id]
            assert all(
                summary.index < telemetry.departed_epoch for summary in telemetry.epochs
            )
        else:
            assert telemetry.departed_epoch is None
        for epoch, roster in serial_fleet.rosters:
            hosted = telemetry.admitted_epoch <= epoch and (
                telemetry.departed_epoch is None or epoch < telemetry.departed_epoch
            )
            assert (feed_id in roster) == hosted
        # The telemetry bill is exactly the ledger's scoped gas beyond the
        # preload baseline — frozen for departed feeds, live for residents.
        ledger = serial_registry.chain.ledger
        feed_base, app_base = baseline[feed_id]
        assert telemetry.gas_feed == ledger.scope_total(feed_id, LAYER_FEED) - feed_base
        assert telemetry.gas_application == (
            ledger.scope_total(feed_id, LAYER_APPLICATION) - app_base
        )

    # Quota enforcement: capped tenants never exceed their per-epoch ops cap.
    quota_specs = {
        join.feed_id: join.spec for join in (*schedule.initial, *schedule.joins)
    }
    for feed_id in schedule.quota_feed_ids():
        cap = quota_specs[feed_id].max_ops_per_epoch
        if cap is None:
            continue
        telemetry = serial_fleet.feeds[feed_id]
        assert all(summary.operations <= cap for summary in telemetry.epochs)


def test_same_seed_reruns_are_bit_identical():
    first = run_schedule(SEEDS[0], num_workers=4)[2]
    second = run_schedule(SEEDS[0], num_workers=4)[2]
    assert first.fingerprint() == second.fingerprint()


def test_process_mode_forces_migration_spawn_and_retirement():
    """The churn schedules genuinely exercise feed mobility: at least one
    snapshot-frame migration between lanes, one elastic lane spawn beyond the
    first, and one lane retirement once the fleet shrinks — all metered on
    ``FleetTelemetry.ipc`` (never fingerprinted)."""
    fleet = run_schedule(SEEDS[0], num_workers=4, execution_mode="process")[2]
    ipc = fleet.ipc
    assert ipc["migrations_total"] >= 1
    assert ipc["migration_bytes_total"] > 0
    assert ipc["migration_bytes_per_epoch"] > 0
    assert ipc["installs_total"] >= 1
    assert ipc["install_bytes_total"] > 0
    assert ipc["lane_spawns_total"] >= 2
    assert ipc["lane_retirements_total"] >= 1


def test_gas_aware_plans_use_multiple_shards():
    # With the tight budget the planner must split the fleet — otherwise the
    # overflow invariant above would be vacuous.
    fleet = run_schedule(SEEDS[0], num_workers=1)[2]
    assert max(fleet.shards_per_epoch) > 1
