"""A failing group must revert the whole batched router transaction."""

from __future__ import annotations

from repro.chain.transaction import Transaction
from repro.common.types import KVRecord, ReplicationState
from repro.core.storage_manager import UpdateEntry
from repro.gateway import FeedRegistry, FeedSpec
from repro.gateway.router import UpdateGroup, scope_weights_for_update


def test_failing_group_reverts_earlier_groups_storage():
    registry = FeedRegistry()
    alpha = registry.create_feed(FeedSpec(feed_id="alpha"))
    bravo = registry.create_feed(FeedSpec(feed_id="bravo"))
    groups = [
        UpdateGroup(
            feed_id="alpha",
            manager=alpha.storage_manager.address,
            entries=[UpdateEntry("k", b"v", ReplicationState.REPLICATED)],
            digest=b"\x01" * 32,
        ),
        # Invalid: a replicated entry must carry its value.
        UpdateGroup(
            feed_id="bravo",
            manager=bravo.storage_manager.address,
            entries=[UpdateEntry("k", None, ReplicationState.REPLICATED)],
            digest=b"\x02" * 32,
        ),
    ]
    transaction = Transaction(
        sender="gateway-operator",
        contract=registry.router.address,
        function="update_batch",
        args={"groups": groups},
        calldata_bytes=sum(group.calldata_bytes for group in groups),
        scopes=scope_weights_for_update(groups),
    )
    registry.chain.submit(transaction)
    registry.chain.mine_block()
    receipt = registry.chain.receipt_for(transaction.txid)
    assert not receipt.success
    # Alpha's group executed before bravo's failed one, but the batch is
    # atomic: no root, no replica survives the revert.
    assert alpha.storage_manager.root_hash() is None
    assert alpha.storage_manager.replica_of("k") is None
    assert registry.router.update_batches == 0


def test_receipt_gas_covers_batched_group_execution():
    registry = FeedRegistry()
    alpha = registry.create_feed(
        FeedSpec(
            feed_id="alpha",
            preload=[KVRecord.make("k", b"v", ReplicationState.NOT_REPLICATED)],
        )
    )
    groups = [
        UpdateGroup(
            feed_id="alpha",
            manager=alpha.storage_manager.address,
            entries=[UpdateEntry("k", b"v2", ReplicationState.REPLICATED, is_transition=True)],
            digest=b"\x03" * 32,
        )
    ]
    ledger_before = registry.chain.ledger.total
    transaction = Transaction(
        sender="gateway-operator",
        contract=registry.router.address,
        function="update_batch",
        args={"groups": groups},
        calldata_bytes=groups[0].calldata_bytes,
        scopes=scope_weights_for_update(groups),
    )
    registry.chain.submit(transaction)
    registry.chain.mine_block()
    receipt = registry.chain.receipt_for(transaction.txid)
    assert receipt.success
    # Everything the batch charged to the ledger — including the group's
    # execution inside the storage manager, metered under alpha's scope —
    # shows up in the transaction's own gas_used.
    assert receipt.gas_used == registry.chain.ledger.total - ledger_before
    # And the per-feed bill contains the group's storage write, not just the
    # intrinsic share.
    assert registry.chain.ledger.scope_total("alpha") > 20_000
