"""Telemetry aggregation and operator-report formatting."""

from __future__ import annotations

from repro.analysis.reporting import format_rate
from repro.common.types import EpochSummary
from repro.gateway import EpochScheduler, FeedRegistry, FeedSpec, FeedTelemetry, FleetTelemetry
from repro.core.config import GrubConfig
from repro.workloads.synthetic import SyntheticWorkload


def make_telemetry(feed_id: str, gas: int, ops: int, hits: int, misses: int) -> FeedTelemetry:
    telemetry = FeedTelemetry(feed_id=feed_id)
    telemetry.operations = ops
    telemetry.reads = ops
    telemetry.gas_feed = gas
    telemetry.cache_hits = hits
    telemetry.cache_misses = misses
    telemetry.epochs.append(EpochSummary(index=0, operations=ops, gas_feed=gas))
    return telemetry


class TestFeedTelemetry:
    def test_gas_per_operation(self):
        telemetry = make_telemetry("a", gas=1000, ops=10, hits=0, misses=10)
        assert telemetry.gas_per_operation == 100.0
        assert telemetry.gas_total == 1000

    def test_cache_hit_rate(self):
        telemetry = make_telemetry("a", gas=0, ops=8, hits=6, misses=2)
        assert telemetry.cache_hit_rate == 0.75

    def test_zero_division_guards(self):
        telemetry = FeedTelemetry(feed_id="a")
        assert telemetry.gas_per_operation == 0.0
        assert telemetry.cache_hit_rate == 0.0
        assert telemetry.replication_churn == 0.0

    def test_epoch_series_matches_summaries(self):
        telemetry = FeedTelemetry(feed_id="a")
        telemetry.epochs.append(EpochSummary(index=0, operations=4, gas_feed=400))
        telemetry.epochs.append(EpochSummary(index=1, operations=4, gas_feed=100))
        assert telemetry.epoch_series() == [100.0, 25.0]


class TestFleetTelemetry:
    def test_fleet_aggregates_sum_feeds(self):
        fleet = FleetTelemetry(
            feeds={
                "a": make_telemetry("a", gas=1000, ops=10, hits=5, misses=5),
                "b": make_telemetry("b", gas=3000, ops=10, hits=0, misses=10),
            },
            epochs_run=1,
        )
        assert fleet.operations == 20
        assert fleet.gas_feed == 4000
        assert fleet.gas_per_operation == 200.0
        assert fleet.cache_hit_rate == 0.25

    def test_ops_per_second_uses_wall_clock(self):
        fleet = FleetTelemetry(
            feeds={"a": make_telemetry("a", gas=0, ops=100, hits=0, misses=0)},
            wall_seconds=2.0,
        )
        assert fleet.ops_per_second == 50.0
        fleet.wall_seconds = 0.0
        assert fleet.ops_per_second == 0.0

    def test_report_contains_every_feed_and_fleet_lines(self):
        registry = FeedRegistry()
        for index in range(3):
            registry.create_feed(
                FeedSpec(feed_id=f"feed-{index}", config=GrubConfig(epoch_size=8))
            )
        workloads = {
            f"feed-{index}": SyntheticWorkload(
                read_write_ratio=2, num_operations=24, seed=index
            ).operations()
            for index in range(3)
        }
        fleet = EpochScheduler(registry).run(workloads)
        report = fleet.format_report()
        for feed_id in workloads:
            assert feed_id in report
        assert "fleet:" in report
        assert "cache hit rate" in report
        assert "deliver batches" in report


class TestFormatRate:
    def test_plain_and_si_suffixed(self):
        assert format_rate(12.0, "ops/s") == "12.0 ops/s"
        assert format_rate(12_340.0, "ops/s") == "12.3k ops/s"
        assert format_rate(3_400_000.0, "ops/s") == "3.4M ops/s"
