"""Epoch scheduler: lockstep driving, cross-feed batching, exact billing."""

from __future__ import annotations

import pytest

from repro.chain.gas import LAYER_FEED
from repro.common.errors import ConfigurationError
from repro.common.types import Operation
from repro.core.config import GrubConfig
from repro.core.grub import GrubSystem
from repro.gateway import EpochScheduler, FeedRegistry, FeedSpec
from repro.workloads.synthetic import SyntheticWorkload


def make_fleet(num_feeds: int, *, epoch_size: int = 8, algorithm: str = "memoryless"):
    registry = FeedRegistry()
    config = GrubConfig(epoch_size=epoch_size, algorithm=algorithm)
    for index in range(num_feeds):
        registry.create_feed(FeedSpec(feed_id=f"feed-{index:02d}", config=config))
    return registry, config


def make_workloads(num_feeds: int, *, ratio: float = 4.0, operations: int = 64):
    return {
        f"feed-{index:02d}": SyntheticWorkload(
            read_write_ratio=ratio,
            num_operations=operations,
            num_keys=2,
            key_prefix=f"asset{index:02d}",
            seed=index + 1,
        ).operations()
        for index in range(num_feeds)
    }


class TestCorrectness:
    def test_consumers_receive_the_owners_values(self):
        registry, _ = make_fleet(2, epoch_size=2)
        # Epoch 0 buffers the write (the SP store only learns it at the epoch
        # update, as in standalone GRuB); the epoch-1 reads are answered by a
        # batched deliver carrying each feed's own record.
        workloads = {
            "feed-00": [
                Operation.write("k", b"value-zero-1"),
                Operation.write("pad", b"pad"),
                Operation.read("k"),
                Operation.read("k"),
            ],
            "feed-01": [
                Operation.write("k", b"value-one-1"),
                Operation.write("pad", b"pad"),
                Operation.read("k"),
                Operation.read("k"),
            ],
        }
        scheduler = EpochScheduler(registry)
        fleet = scheduler.run(workloads)
        # Each feed's consumer saw its own feed's value, never the other's.
        assert registry.get("feed-00").consumer.last_value("k") == b"value-zero-1"
        assert registry.get("feed-01").consumer.last_value("k") == b"value-one-1"
        assert fleet.deliver_batches >= 1

    def test_fleet_report_counts_every_operation(self):
        registry, _ = make_fleet(3)
        workloads = make_workloads(3, operations=40)
        fleet = EpochScheduler(registry).run(workloads)
        assert fleet.operations == 120
        for feed_id, ops in workloads.items():
            assert fleet.feed(feed_id).operations == len(ops)
            assert fleet.feed(feed_id).reads + fleet.feed(feed_id).writes == len(ops)

    def test_uneven_workload_lengths_are_tolerated(self):
        registry, _ = make_fleet(2, epoch_size=8)
        workloads = make_workloads(2, operations=8)
        workloads["feed-01"] = workloads["feed-01"] + make_workloads(2, operations=16)["feed-01"]
        fleet = EpochScheduler(registry).run(workloads)
        assert fleet.feed("feed-00").operations == 8
        assert fleet.feed("feed-01").operations == 24


class TestBatching:
    def test_one_deliver_and_update_batch_per_shard_per_epoch(self):
        registry, _ = make_fleet(4, epoch_size=8)
        workloads = make_workloads(4, operations=16)  # 2 epochs
        fleet = EpochScheduler(registry, num_shards=2, enable_cache=False).run(workloads)
        assert fleet.epochs_run == 2
        # Every feed is active in every epoch, so each of the 2 shards sends
        # at most one deliver and one update batch per epoch.
        assert fleet.deliver_batches <= 2 * 2
        assert fleet.update_batches == 2 * 2
        assert registry.router.update_batches == fleet.update_batches

    def test_cross_feed_batching_beats_isolated_deployments(self):
        num_feeds = 8
        registry, config = make_fleet(num_feeds, epoch_size=8)
        workloads = make_workloads(num_feeds, ratio=4.0, operations=64)
        fleet = EpochScheduler(registry, num_shards=1, enable_cache=False).run(workloads)

        isolated_gas = 0
        for feed_id, operations in workloads.items():
            isolated_gas += GrubSystem(config).run(operations).gas_feed
        # Even without the read cache, amortising the transaction base across
        # the fleet makes hosting strictly cheaper than isolation.
        assert fleet.gas_feed < isolated_gas

    def test_single_feed_gateway_overhead_is_bounded(self):
        # With one feed there is nothing to amortise across tenants, so the
        # router's overhead (one calldata word and one CALL per routed group)
        # is visible — it must stay a small constant factor, not a blow-up.
        registry, config = make_fleet(1, epoch_size=8)
        workloads = make_workloads(1, operations=64)
        fleet = EpochScheduler(registry, enable_cache=False).run(workloads)
        isolated = GrubSystem(config).run(workloads["feed-00"])
        assert fleet.gas_feed <= isolated.gas_feed * 1.10


class TestBilling:
    def test_per_feed_gas_sums_to_fleet_total_with_no_double_counting(self):
        registry, _ = make_fleet(5, epoch_size=8)
        workloads = make_workloads(5, operations=48)
        fleet = EpochScheduler(registry, num_shards=2).run(workloads)
        ledger = registry.chain.ledger
        # The fleet total is the sum of the per-feed bills…
        assert fleet.gas_feed == sum(f.gas_feed for f in fleet.feeds.values())
        # …and each bill matches the ledger's scoped feed-layer gas exactly.
        for feed_id, telemetry in fleet.feeds.items():
            assert telemetry.gas_feed == ledger.scope_total(feed_id, LAYER_FEED)
        # Nothing the run charged to the feed layer escaped scoping.
        scoped = sum(ledger.scope_total(f, LAYER_FEED) for f in fleet.feeds)
        assert scoped == ledger.feed_total

    def test_epoch_summaries_match_feed_totals(self):
        registry, _ = make_fleet(2, epoch_size=8)
        workloads = make_workloads(2, operations=32)
        fleet = EpochScheduler(registry).run(workloads)
        for telemetry in fleet.feeds.values():
            assert sum(e.gas_feed for e in telemetry.epochs) == telemetry.gas_feed
            assert sum(e.operations for e in telemetry.epochs) == telemetry.operations


class TestSharding:
    def test_round_robin_shard_plan(self):
        registry, _ = make_fleet(5)
        scheduler = EpochScheduler(registry, num_shards=2)
        assert scheduler.shards(registry.feed_ids) == [
            ["feed-00", "feed-02", "feed-04"],
            ["feed-01", "feed-03"],
        ]

    def test_more_shards_than_feeds(self):
        registry, _ = make_fleet(2)
        scheduler = EpochScheduler(registry, num_shards=8)
        assert scheduler.shards(registry.feed_ids) == [["feed-00"], ["feed-01"]]

    def test_invalid_shard_count_rejected(self):
        registry, _ = make_fleet(1)
        with pytest.raises(ConfigurationError):
            EpochScheduler(registry, num_shards=0)


class TestValidation:
    def test_workload_for_unknown_feed_rejected(self):
        registry, _ = make_fleet(1)
        scheduler = EpochScheduler(registry)
        with pytest.raises(ConfigurationError):
            scheduler.run({"ghost": []})

    def test_per_request_delivery_feeds_rejected(self):
        registry = FeedRegistry()
        registry.create_feed(
            FeedSpec(feed_id="alpha", config=GrubConfig(batch_deliver=False))
        )
        scheduler = EpochScheduler(registry)
        with pytest.raises(ConfigurationError):
            scheduler.run({"alpha": [Operation.read("k")]})
