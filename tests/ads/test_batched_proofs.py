"""Batched proof generation must be indistinguishable from per-leaf proving."""

from __future__ import annotations

import pytest

from repro.ads.authenticated_kv import AuthenticatedKVStore
from repro.ads.merkle import MerkleTree, verify_membership
from repro.common.hashing import keccak
from repro.common.types import KVRecord, ReplicationState


def make_tree(num_leaves: int) -> MerkleTree:
    return MerkleTree([keccak(bytes([i])) for i in range(num_leaves)])


class TestProveMany:
    @pytest.mark.parametrize("num_leaves", [1, 2, 5, 8, 33])
    def test_matches_individual_proofs(self, num_leaves):
        tree = make_tree(num_leaves)
        indices = list(range(num_leaves))
        batched = tree.prove_many(indices)
        for index in indices:
            assert batched[index] == tree.prove(index)

    def test_shared_siblings_are_one_object(self):
        tree = make_tree(8)
        proofs = tree.prove_many([0, 1])
        # Leaves 0 and 1 share every path node above the leaf level.
        assert proofs[0].path[1] is proofs[1].path[1]
        assert proofs[0].path[2] is proofs[1].path[2]

    def test_batched_proofs_verify(self):
        tree = make_tree(16)
        proofs = tree.prove_many([3, 7, 11])
        for index, proof in proofs.items():
            assert verify_membership(tree.root, tree.leaf(index), proof)

    def test_out_of_range_rejected(self):
        tree = make_tree(4)
        with pytest.raises(IndexError):
            tree.prove_many([5])

    def test_duplicate_indices_deduplicated(self):
        tree = make_tree(4)
        proofs = tree.prove_many([2, 2, 2])
        assert set(proofs) == {2}


class TestStagedLeafUpdates:
    def test_recompute_paths_equals_sequential_updates(self):
        staged = make_tree(16)
        sequential = make_tree(16)
        updates = {1: keccak(b"one"), 6: keccak(b"six"), 7: keccak(b"seven")}
        for index, leaf in updates.items():
            staged.stage_leaf(index, leaf)
            sequential.update_leaf(index, leaf)
        assert staged.recompute_paths(list(updates)) == sequential.root

    def test_stage_then_append_stays_consistent(self):
        staged = make_tree(4)
        reference = make_tree(4)
        staged.stage_leaf(1, keccak(b"x"))
        reference.update_leaf(1, keccak(b"x"))
        # An append mid-batch (even one that rebuilds) must not lose the
        # staged leaf value.
        staged.append_leaf(keccak(b"y"))
        reference.append_leaf(keccak(b"y"))
        assert staged.recompute_paths([1]) == reference.root


class TestQueryMany:
    def make_store(self, n=12) -> AuthenticatedKVStore:
        store = AuthenticatedKVStore()
        store.load([KVRecord.make(f"key-{i:02d}", bytes([i]) * 8) for i in range(n)])
        return store

    def test_matches_individual_queries(self):
        store = self.make_store()
        keys = ["key-01", "key-05", "key-09", "missing"]
        batched = store.query_many(keys)
        for key in keys:
            single = store.query(key)
            assert batched[key] == single

    def test_apply_updates_equals_sequential(self):
        batched_store = self.make_store()
        sequential_store = self.make_store()
        updates = [
            ("key-02", b"v2", ReplicationState.REPLICATED),
            ("key-07", b"v7", None),
            ("brand-new", b"nv", None),
            ("key-02", b"v2b", None),  # second write of the same key
        ]
        root = batched_store.apply_updates(updates)
        for key, value, state in updates:
            sequential_store.apply_update(key, value, state)
        assert root == sequential_store.root
        assert batched_store.replicated_keys() == sequential_store.replicated_keys()
        for key in ("key-02", "key-07", "brand-new"):
            assert batched_store.get_record(key) == sequential_store.get_record(key)
