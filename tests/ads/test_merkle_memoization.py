"""Hash/serialization memoization must be observationally invisible.

The hot-path pass memoizes two pure computations: interior-node digests
(:func:`repro.ads.merkle._hash_pair_memo`) and record-leaf serialization
hashes (:func:`repro.common.hashing.hash_record`).  Both caches key on the
full input, so a stale entry is impossible *by construction* — but that is
exactly the property worth pinning with an adversarial workload: randomized
update/revert sequences that repeatedly re-introduce *old* values (the case a
wrongly keyed or wrongly invalidated cache would get wrong), checked
byte-for-byte against an unmemoized reference implementation written directly
on hashlib.
"""

from __future__ import annotations

import hashlib
import random

from repro.ads.authenticated_kv import AuthenticatedKVStore
from repro.ads.merkle import MerkleTree, clear_pair_memo
from repro.common.hashing import EMPTY_DIGEST, clear_leaf_cache
from repro.common.types import KVRecord, ReplicationState


# -- unmemoized reference implementation (hashlib only) ----------------------


def reference_levels(leaves):
    """Rebuild the padded level structure with direct SHA-256 calls."""
    size = 1
    while size < max(1, len(leaves)):
        size *= 2
    level = list(leaves) + [EMPTY_DIGEST] * (size - len(leaves))
    levels = [level]
    while len(levels[-1]) > 1:
        current = levels[-1]
        levels.append(
            [
                hashlib.sha256(current[i] + current[i + 1]).digest()
                for i in range(0, len(current), 2)
            ]
        )
    return levels


def reference_root(leaves):
    if not leaves:
        return EMPTY_DIGEST
    return reference_levels(leaves)[-1][0]


def reference_proof_digests(leaves, index):
    """The sibling digests of ``index``'s authentication path, bottom-up."""
    digests = []
    position = index
    for level in reference_levels(leaves)[:-1]:
        sibling = position ^ 1
        digests.append(level[sibling] if sibling < len(level) else EMPTY_DIGEST)
        position //= 2
    return digests


def reference_leaf_hash(record: KVRecord) -> bytes:
    """hash_record's documented construction, written out longhand."""
    hasher = hashlib.sha256()
    for value in (record.state.prefix.encode(), record.key.encode(), record.value):
        hasher.update(len(value).to_bytes(8, "big"))
        hasher.update(value)
    return hasher.digest()


def random_leaf(rng) -> bytes:
    return hashlib.sha256(rng.randbytes(8)).digest()


# -- the properties ----------------------------------------------------------


class TestMerkleMemoizationEquivalence:
    def test_randomized_update_revert_sequences_match_reference(self):
        """Roots and proofs stay byte-identical to the unmemoized reference
        across update/append/batch/revert churn, for many seeds."""
        for seed in range(8):
            rng = random.Random(seed)
            clear_pair_memo()
            leaves = [random_leaf(rng) for _ in range(rng.randrange(1, 12))]
            tree = MerkleTree(leaves)
            history = [list(leaves)]
            for step in range(30):
                action = rng.randrange(5)
                if action == 0 and leaves:
                    # Point update to a fresh value.
                    index = rng.randrange(len(leaves))
                    leaves[index] = random_leaf(rng)
                    tree.update_leaf(index, leaves[index])
                elif action == 1:
                    leaves.append(random_leaf(rng))
                    tree.append_leaf(leaves[-1])
                elif action == 2 and leaves:
                    # Batched stage + recompute over random indices.
                    indices = sorted(
                        {rng.randrange(len(leaves)) for _ in range(rng.randrange(1, 4))}
                    )
                    for index in indices:
                        leaves[index] = random_leaf(rng)
                        tree.stage_leaf(index, leaves[index])
                    tree.recompute_paths(indices)
                elif action == 3 and len(history) > 1:
                    # REVERT: restore an earlier snapshot's values leaf by
                    # leaf — every digest written here was already memoized,
                    # the exact pattern a stale cache would corrupt.
                    snapshot = history[rng.randrange(len(history))]
                    for index in range(min(len(snapshot), len(leaves))):
                        if leaves[index] != snapshot[index]:
                            leaves[index] = snapshot[index]
                            tree.update_leaf(index, leaves[index])
                else:
                    # Memo churn mid-sequence must also be invisible.
                    clear_pair_memo()
                history.append(list(leaves))

                assert tree.root == reference_root(leaves), (seed, step)
                for _ in range(2):
                    index = rng.randrange(len(leaves))
                    proof = tree.prove(index)
                    assert [node.digest for node in proof.path] == (
                        reference_proof_digests(leaves, index)
                    ), (seed, step, index)

    def test_prove_many_matches_unmemoized_prove(self):
        rng = random.Random(99)
        leaves = [random_leaf(rng) for _ in range(37)]
        tree = MerkleTree(leaves)
        indices = [rng.randrange(len(leaves)) for _ in range(20)]
        batch = tree.prove_many(indices)
        for index in set(indices):
            single = tree.prove(index)
            assert batch[index].leaf_index == single.leaf_index
            assert [node.digest for node in batch[index].path] == [
                node.digest for node in single.path
            ]
            assert [node.is_left for node in batch[index].path] == [
                node.is_left for node in single.path
            ]


class TestLeafSerializationCache:
    def _scripted_run(self, seed: int, clear_caches_every_step: bool):
        """Apply one seed's scripted update/revert sequence to a fresh store,
        returning the root after every step.  With ``clear_caches_every_step``
        the leaf and pair memos are dropped before each step, so every hash is
        recomputed cold; without it the memos stay warm across the run."""
        rng = random.Random(seed)
        store = AuthenticatedKVStore()
        store.load(
            [
                KVRecord.make(f"k{i:03d}", rng.randbytes(16))
                for i in range(rng.randrange(2, 10))
            ]
        )
        previous_values: dict = {}
        roots = [store.root]
        for _ in range(40):
            if clear_caches_every_step:
                clear_leaf_cache()
                clear_pair_memo()
            key = f"k{rng.randrange(12):03d}"
            if rng.random() < 0.3 and key in previous_values:
                # Revert the key to a value it held before: the leaf hash
                # recurs, served from the memo in the warm run — it must be
                # the digest the cold run recomputes from scratch.
                value = previous_values[key]
            else:
                value = rng.randbytes(16)
            record = store.get_record(key)
            if record is not None:
                previous_values[key] = record.value
            state = (
                ReplicationState.REPLICATED
                if rng.random() < 0.3
                else ReplicationState.NOT_REPLICATED
            )
            if rng.random() < 0.5:
                store.apply_update(key, value, state)
            else:
                store.apply_updates([(key, value, state)])
            roots.append(store.root)
        return store, roots

    def test_store_roots_match_cold_cache_replay(self):
        """Warm-memo runs must trace the exact per-step roots of cold runs,
        and every final leaf must equal the longhand (hashlib-only) hash."""
        for seed in range(6):
            warm_store, warm_roots = self._scripted_run(seed, False)
            cold_store, cold_roots = self._scripted_run(seed, True)
            assert warm_roots == cold_roots, seed
            assert warm_store.root == cold_store.root
            for record in warm_store.records():
                assert AuthenticatedKVStore.leaf_hash_for(record) == (
                    reference_leaf_hash(record)
                ), (seed, record.key)
