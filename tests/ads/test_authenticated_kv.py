"""Tests for the authenticated KV store and its security against a tampering SP."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.ads.authenticated_kv import AuthenticatedKVStore
from repro.ads.merkle import verify_membership
from repro.ads.signer import RootSigner
from repro.common.errors import IntegrityError, StorageError
from repro.common.types import KVRecord, ReplicationState


class TestLoadAndLookup:
    def test_load_returns_root_and_indexes_records(self, loaded_store, sample_records):
        assert loaded_store.root != b"\x00" * 32
        assert len(loaded_store) == len(sample_records)
        assert loaded_store.get_record("alpha").value == b"value-alpha"

    def test_records_sorted_by_key(self, loaded_store):
        keys = [record.key for record in loaded_store.records()]
        assert keys == sorted(keys)

    def test_replicated_records_filter(self, loaded_store):
        replicated = loaded_store.replicated_records()
        assert [r.key for r in replicated] == ["charlie"]

    def test_backing_store_uses_prefixed_keys(self, loaded_store):
        assert loaded_store.backing.get("NR|alpha") == b"value-alpha"
        assert loaded_store.backing.get("R|charlie") == b"value-charlie"

    def test_proof_length_grows_with_size(self):
        small = AuthenticatedKVStore()
        small.load([KVRecord.make(f"k{i}", b"v") for i in range(4)])
        large = AuthenticatedKVStore()
        large.load([KVRecord.make(f"k{i}", b"v") for i in range(64)])
        assert large.proof_length() > small.proof_length()


class TestUpdatesAndTransitions:
    def test_update_existing_changes_root_and_version(self, loaded_store):
        old_root = loaded_store.root
        loaded_store.apply_update("alpha", b"new-value")
        assert loaded_store.root != old_root
        record = loaded_store.get_record("alpha")
        assert record.value == b"new-value"
        assert record.version == 1

    def test_insert_new_key(self, loaded_store):
        loaded_store.apply_update("echo", b"value-echo")
        assert loaded_store.get_record("echo") is not None
        assert "echo" in loaded_store.keys()

    def test_state_transition_changes_root_and_prefix(self, loaded_store):
        old_root = loaded_store.root
        loaded_store.apply_state_transition("alpha", ReplicationState.REPLICATED)
        assert loaded_store.root != old_root
        assert loaded_store.get_record("alpha").state is ReplicationState.REPLICATED
        assert loaded_store.backing.get("R|alpha") == b"value-alpha"
        assert loaded_store.backing.get("NR|alpha") is None

    def test_transition_to_same_state_is_noop(self, loaded_store):
        root = loaded_store.root
        loaded_store.apply_state_transition("alpha", ReplicationState.NOT_REPLICATED)
        assert loaded_store.root == root

    def test_transition_unknown_key_rejected(self, loaded_store):
        with pytest.raises(StorageError):
            loaded_store.apply_state_transition("ghost", ReplicationState.REPLICATED)

    def test_delete_removes_and_allows_reinsert(self, loaded_store):
        loaded_store.delete("bravo")
        assert loaded_store.get_record("bravo") is None
        assert len(loaded_store) == 3
        loaded_store.apply_update("bravo", b"back")
        assert loaded_store.get_record("bravo").value == b"back"

    def test_delete_unknown_key_is_noop(self, loaded_store):
        root = loaded_store.root
        loaded_store.delete("ghost")
        assert loaded_store.root == root


class TestQueriesAndProofs:
    def test_query_hit_verifies_against_root(self, loaded_store):
        result = loaded_store.query("alpha")
        leaf = AuthenticatedKVStore.leaf_hash_for(result.record)
        assert verify_membership(loaded_store.root, leaf, result.proof)

    def test_query_miss_has_no_record(self, loaded_store):
        result = loaded_store.query("ghost")
        assert result.record is None and result.proof is None

    def test_stale_proof_fails_after_update(self, loaded_store):
        stale = loaded_store.query("alpha")
        loaded_store.apply_update("alpha", b"fresh")
        leaf = AuthenticatedKVStore.leaf_hash_for(stale.record)
        assert not verify_membership(loaded_store.root, leaf, stale.proof)

    def test_query_range_returns_only_nr_records_in_range(self, loaded_store):
        results = loaded_store.query_range("alpha", "charlie")
        keys = [r.key for r in results]
        assert "charlie" not in keys  # replicated record excluded
        assert set(keys) <= {"alpha", "bravo"}

    def test_scan_returns_consecutive_keys(self, loaded_store):
        results = loaded_store.scan("alpha", 3)
        assert [r.key for r in results] == ["alpha", "bravo", "charlie"]

    def test_update_witness_verifies_for_do(self, loaded_store):
        witness = loaded_store.update_witness("alpha")
        loaded_store.verify_witness(witness, loaded_store.root)

    def test_witness_against_wrong_root_raises(self, loaded_store):
        witness = loaded_store.update_witness("alpha")
        with pytest.raises(IntegrityError):
            loaded_store.verify_witness(witness, b"\x01" * 32)

    def test_witness_for_missing_key_passes_trivially(self, loaded_store):
        witness = loaded_store.update_witness("ghost")
        loaded_store.verify_witness(witness, loaded_store.root)


class TestRootSigner:
    def test_sign_and_verify(self):
        signer = RootSigner(secret=b"k" * 32)
        signed = signer.sign(b"\x02" * 32)
        assert signer.verify(signed)
        signer.require_valid(signed)

    def test_epochs_increment(self):
        signer = RootSigner()
        first = signer.sign(b"\x01" * 32)
        second = signer.sign(b"\x02" * 32)
        assert second.epoch == first.epoch + 1

    def test_foreign_signature_rejected(self):
        honest, attacker = RootSigner(), RootSigner()
        forged = attacker.sign(b"\x03" * 32)
        assert not honest.verify(forged)
        with pytest.raises(IntegrityError):
            honest.require_valid(forged)


@settings(max_examples=25, deadline=None)
@given(
    st.dictionaries(
        st.text(alphabet="abcdefgh", min_size=1, max_size=4),
        st.binary(min_size=1, max_size=16),
        min_size=1,
        max_size=20,
    ),
    st.data(),
)
def test_every_stored_record_always_proves_membership(initial, data):
    """Property: after arbitrary updates/transitions, every record's proof verifies
    against the current root and no stale proof does."""
    store = AuthenticatedKVStore()
    store.load([KVRecord.make(k, v) for k, v in sorted(initial.items())])
    keys = sorted(initial)
    for _ in range(8):
        key = data.draw(st.sampled_from(keys))
        action = data.draw(st.sampled_from(["update", "flip"]))
        if action == "update":
            store.apply_update(key, data.draw(st.binary(min_size=1, max_size=16)))
        else:
            record = store.get_record(key)
            store.apply_state_transition(key, record.state.flipped())
    for key in keys:
        result = store.query(key)
        leaf = AuthenticatedKVStore.leaf_hash_for(result.record)
        assert verify_membership(store.root, leaf, result.proof)
