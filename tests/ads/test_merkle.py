"""Unit and property tests for the Merkle tree and its proofs."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.ads.merkle import (
    MerkleTree,
    expected_proof_length,
    recompute_root_from_proof,
    verify_membership,
    verify_non_membership,
    verify_range,
)
from repro.common.hashing import EMPTY_DIGEST, keccak


def leaves_for(count: int) -> list:
    return [keccak(f"leaf-{index}".encode()) for index in range(count)]


class TestConstruction:
    def test_empty_tree_has_empty_root(self):
        assert MerkleTree([]).root == EMPTY_DIGEST

    def test_single_leaf_root_is_leaf(self):
        leaf = keccak(b"only")
        assert MerkleTree([leaf]).root == leaf

    def test_root_changes_with_content(self):
        assert MerkleTree(leaves_for(4)).root != MerkleTree(leaves_for(5)).root

    def test_from_values_hashes_leaves(self):
        tree = MerkleTree.from_values([b"a", b"b"])
        assert tree.leaf(0) == keccak(b"a")

    def test_depth_grows_logarithmically(self):
        assert MerkleTree(leaves_for(8)).depth == 3
        assert MerkleTree(leaves_for(9)).depth == 4

    def test_expected_proof_length(self):
        assert expected_proof_length(1) == 0
        assert expected_proof_length(2) == 1
        assert expected_proof_length(5) == 3


class TestMembershipProofs:
    @pytest.mark.parametrize("count", [1, 2, 3, 7, 16, 33])
    def test_every_leaf_proves_membership(self, count):
        leaves = leaves_for(count)
        tree = MerkleTree(leaves)
        for index, leaf in enumerate(leaves):
            proof = tree.prove(index)
            assert verify_membership(tree.root, leaf, proof)

    def test_wrong_leaf_fails(self):
        tree = MerkleTree(leaves_for(8))
        proof = tree.prove(3)
        assert not verify_membership(tree.root, keccak(b"imposter"), proof)

    def test_wrong_root_fails(self):
        tree = MerkleTree(leaves_for(8))
        proof = tree.prove(3)
        assert not verify_membership(keccak(b"other-root"), tree.leaf(3), proof)

    def test_proof_for_wrong_position_fails(self):
        tree = MerkleTree(leaves_for(8))
        assert not verify_membership(tree.root, tree.leaf(2), tree.prove(3))

    def test_out_of_range_proof_rejected(self):
        tree = MerkleTree(leaves_for(4))
        with pytest.raises(IndexError):
            tree.prove(4)

    def test_charge_hash_called_per_level(self):
        tree = MerkleTree(leaves_for(16))
        charges = []
        verify_membership(tree.root, tree.leaf(0), tree.prove(0), charge_hash=charges.append)
        assert len(charges) == tree.depth

    def test_recompute_root_matches(self):
        tree = MerkleTree(leaves_for(10))
        proof = tree.prove(7)
        assert recompute_root_from_proof(tree.leaf(7), proof) == tree.root


class TestUpdates:
    def test_update_leaf_changes_root_and_keeps_proofs_valid(self):
        tree = MerkleTree(leaves_for(8))
        old_root = tree.root
        new_leaf = keccak(b"updated")
        tree.update_leaf(5, new_leaf)
        assert tree.root != old_root
        assert verify_membership(tree.root, new_leaf, tree.prove(5))
        assert verify_membership(tree.root, tree.leaf(2), tree.prove(2))

    def test_append_leaf_within_capacity_is_consistent_with_rebuild(self):
        leaves = leaves_for(5)
        incremental = MerkleTree(leaves[:3])
        for leaf in leaves[3:]:
            incremental.append_leaf(leaf)
        rebuilt = MerkleTree(leaves)
        assert incremental.root == rebuilt.root

    def test_append_beyond_capacity_doubles(self):
        leaves = leaves_for(4)
        tree = MerkleTree(leaves)
        tree.append_leaf(keccak(b"extra"))
        assert tree.leaf_count == 5
        assert verify_membership(tree.root, keccak(b"extra"), tree.prove(4))

    def test_insert_and_remove_leaf(self):
        tree = MerkleTree(leaves_for(4))
        tree.insert_leaf(2, keccak(b"inserted"))
        assert tree.leaf_count == 5
        assert verify_membership(tree.root, keccak(b"inserted"), tree.prove(2))
        tree.remove_leaf(2)
        assert tree.leaf_count == 4
        assert tree.root == MerkleTree(leaves_for(4)).root


class TestRangeAndNonMembership:
    def test_range_proof_verifies(self):
        tree = MerkleTree(leaves_for(16))
        proof = tree.prove_range(4, 5)
        assert verify_range(tree.root, proof)

    def test_empty_range_verifies(self):
        tree = MerkleTree(leaves_for(4))
        assert verify_range(tree.root, tree.prove_range(2, 0))

    def test_tampered_range_fails(self):
        tree = MerkleTree(leaves_for(16))
        proof = tree.prove_range(4, 3)
        tampered = type(proof)(
            start_index=proof.start_index,
            count=proof.count,
            leaf_count=proof.leaf_count,
            leaf_hashes=(keccak(b"x"),) + proof.leaf_hashes[1:],
            boundary_proofs=proof.boundary_proofs,
        )
        assert not verify_range(tree.root, tampered)

    def test_non_membership_between_adjacent_leaves(self):
        tree = MerkleTree(leaves_for(8))
        left = (tree.leaf(2), tree.prove(2))
        right = (tree.leaf(3), tree.prove(3))
        assert verify_non_membership(tree.root, left, right)
        far_right = (tree.leaf(5), tree.prove(5))
        assert not verify_non_membership(tree.root, left, far_right)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.binary(min_size=1, max_size=16), min_size=1, max_size=40, unique=True))
def test_membership_holds_for_arbitrary_leaf_sets(values):
    """Property: every committed value proves membership; no forged value does."""
    tree = MerkleTree.from_values(values)
    for index, value in enumerate(values):
        assert verify_membership(tree.root, keccak(value), tree.prove(index))
    assert not verify_membership(tree.root, keccak(b"\x00forged\xff"), tree.prove(0))


@settings(max_examples=20, deadline=None)
@given(
    st.lists(st.binary(min_size=1, max_size=8), min_size=2, max_size=24, unique=True),
    st.data(),
)
def test_incremental_updates_match_rebuild(values, data):
    """Property: a sequence of point updates yields the same root as rebuilding."""
    tree = MerkleTree.from_values(values)
    current = [keccak(v) for v in values]
    for _ in range(5):
        index = data.draw(st.integers(min_value=0, max_value=len(values) - 1))
        new_value = data.draw(st.binary(min_size=1, max_size=8))
        current[index] = keccak(new_value)
        tree.update_leaf(index, keccak(new_value))
    assert tree.root == MerkleTree(current).root
