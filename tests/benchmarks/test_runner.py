"""Tests for the declarative experiment runner (`benchmarks/runner.py`).

Grid expansion/canonicalization and run-order randomization are pure and
tested directly.  The end-to-end test drives a deliberately tiny live grid
through the real engine and checks the acceptance contract: every sample
retained with per-sample host affinity and phase percentiles, >= 3
repetitions per cell, a gate that passes against itself and correctly fails
on a synthetic 30%-slower injected sample set.
"""

from __future__ import annotations

import copy
import json

import pytest

import runner


TINY_SPEC = {
    "name": "tiny",
    "repetitions": 3,
    "order_seed": 7,
    "ops_per_feed": 16,
    "factors": {
        "execution_mode": ["serial", "thread"],
        "workers": [2],
        "fleet_size": [4],
        "workload": ["mixed"],
    },
}


# ---------------------------------------------------------------------------
# Grid expansion and canonicalization
# ---------------------------------------------------------------------------


def test_expand_cells_canonicalizes_the_grid():
    spec = {
        "ops_per_feed": 32,
        "factors": {
            "execution_mode": ["serial", "thread", "process"],
            "workers": [1, 2],
            "fleet_size": [8],
            "workload": ["mixed", "churn"],
        },
    }
    cells = runner.expand_cells(spec)
    labels = {(c.workload, c.execution_mode, c.workers) for c in cells}
    # Serial collapses to one worker; thread/1 is dropped as redundant;
    # process × churn runs on the elastic engine and stays in the grid.
    assert ("mixed", "serial", 1) in labels
    assert ("mixed", "thread", 2) in labels
    assert ("mixed", "process", 1) in labels and ("mixed", "process", 2) in labels
    assert ("churn", "serial", 1) in labels and ("churn", "thread", 2) in labels
    assert ("churn", "process", 1) in labels and ("churn", "process", 2) in labels
    assert not any(mode == "thread" and workers < 2 for _, mode, workers in labels)
    assert len(cells) == len(set(cells)), "cells must be deduplicated"
    assert cells == sorted(cells), "expansion must be deterministic"


def test_expand_cells_rejects_unknown_factors():
    with pytest.raises(ValueError):
        runner.expand_cells({"factors": {"execution_mode": ["quantum"]}})
    with pytest.raises(ValueError):
        runner.expand_cells({"factors": {"workload": ["mystery"]}})


def test_expand_cells_rejects_empty_grid():
    with pytest.raises(ValueError):
        runner.expand_cells(
            {"factors": {"execution_mode": ["thread"], "workers": [1]}}
        )


def test_auto_workers_tracks_affinity():
    assert runner.auto_workers(1) == [1, 2]
    assert runner.auto_workers(2) == [1, 2]
    assert runner.auto_workers(8) == [1, 2, 4, 8]
    assert runner.auto_workers(6) == [1, 2, 4]


def test_run_order_is_a_seeded_permutation():
    cells = runner.expand_cells(TINY_SPEC)
    first = runner.run_order(cells, 3, order_seed=11)
    again = runner.run_order(cells, 3, order_seed=11)
    other = runner.run_order(cells, 3, order_seed=12)
    assert first == again, "same seed must reproduce the same order"
    assert sorted(first) == sorted(other), "every (cell, rep) runs exactly once"
    assert len(first) == len(cells) * 3


def test_load_spec_json(tmp_path):
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(TINY_SPEC))
    assert runner.load_spec(path) == TINY_SPEC


def test_load_spec_yaml(tmp_path):
    yaml = pytest.importorskip("yaml")
    path = tmp_path / "spec.yaml"
    path.write_text(yaml.safe_dump(TINY_SPEC))
    assert runner.load_spec(path) == TINY_SPEC


def test_repetitions_floor_is_enforced():
    spec = dict(TINY_SPEC, repetitions=2)
    with pytest.raises(ValueError, match="repetitions"):
        runner.run_experiments(spec)


# ---------------------------------------------------------------------------
# End-to-end: a tiny live grid through the real engine
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def tiny_payload():
    return runner.run_experiments(TINY_SPEC)


def test_every_sample_is_retained_with_affinity_and_phases(tiny_payload):
    cells = runner.expand_cells(TINY_SPEC)
    samples = tiny_payload["samples"]
    assert len(samples) == len(cells) * TINY_SPEC["repetitions"]
    for sample in samples:
        affinity = sample["host_affinity"]
        assert affinity["effective_cpus"] >= 1
        assert affinity["cpu_set"], "per-sample CPU set must be captured"
        assert sample["phases"], "per-run phase percentiles must be folded in"
        for row in sample["phases"].values():
            assert row["count"] > 0 and row["p50"] <= row["p95"] <= row["p99"]
        assert sample["fingerprint"]
        assert sample["ops_per_sec"] > 0
    # Randomized order: order_index is a permutation of 0..N-1.
    assert sorted(s["order_index"] for s in samples) == list(range(len(samples)))


def test_cells_get_at_least_three_repetitions(tiny_payload):
    counts = {}
    for sample in tiny_payload["samples"]:
        counts[runner._sample_key(sample)] = counts.get(runner._sample_key(sample), 0) + 1
    assert counts and all(count >= 3 for count in counts.values())


def test_analysis_summarizes_every_cell(tiny_payload):
    analysis = tiny_payload["analysis"]
    assert analysis["confidence"] == 0.95
    for key, metrics in analysis["cells"].items():
        summary = metrics["ops_per_sec"]
        assert summary["n"] >= 3
        assert summary["ci_low"] <= summary["mean"] <= summary["ci_high"]
        assert len(summary["samples"]) == summary["n"], "samples retained"
    # Effect sizes: the thread cell is compared against its serial reference.
    assert any(
        comparison["metric"] == "ops_per_sec"
        and "mode=serial" in comparison["reference"]
        for comparison in analysis["comparisons"]
    )


def test_equivalence_holds_across_backends(tiny_payload):
    fingerprints = {s["fingerprint"] for s in tiny_payload["samples"]}
    assert len(fingerprints) == 1, "serial and thread runs must be bit-identical"


def test_gate_passes_against_itself(tiny_payload):
    failures = runner.check_regression(tiny_payload, tiny_payload)
    assert failures == []


# ---------------------------------------------------------------------------
# The gate on crafted payloads (deterministic — no live timing involved)
# ---------------------------------------------------------------------------


def _synthetic_payload(per_cell_values):
    """Payload with crafted ops_per_sec samples for two cells (serial, thread)."""
    samples = []
    for (mode, workers), values in per_cell_values.items():
        for rep, value in enumerate(values):
            samples.append(
                {
                    "workload": "mixed",
                    "fleet_size": 8,
                    "execution_mode": mode,
                    "workers": workers,
                    "ops_per_feed": 32,
                    "repetition": rep,
                    "ops_per_sec": value,
                }
            )
    return {"samples": samples}


BASELINE_VALUES = {
    ("serial", 1): [1000.0, 1020.0, 980.0, 1010.0, 990.0],
    ("thread", 2): [1500.0, 1530.0, 1470.0, 1515.0, 1485.0],
}


def test_gate_fails_on_synthetic_30pct_slower_samples():
    baseline = _synthetic_payload(BASELINE_VALUES)
    degraded = _synthetic_payload(
        {
            cell: [value * 0.7 for value in values]
            for cell, values in BASELINE_VALUES.items()
        }
    )
    failures = runner.check_regression(baseline, degraded)
    assert len(failures) == len(BASELINE_VALUES), (
        "every cell's 30%-slower distribution must be flagged"
    )
    assert all("REGRESSION" in failure for failure in failures)


def test_gate_tolerates_small_jitter():
    baseline = _synthetic_payload(BASELINE_VALUES)
    jittered = _synthetic_payload(
        {
            cell: [
                value * (1.01 if index % 2 == 0 else 0.99)
                for index, value in enumerate(values)
            ]
            for cell, values in BASELINE_VALUES.items()
        }
    )
    assert runner.check_regression(baseline, jittered) == []


def test_gate_ignores_improvements():
    baseline = _synthetic_payload(BASELINE_VALUES)
    improved = _synthetic_payload(
        {
            cell: [value * 1.5 for value in values]
            for cell, values in BASELINE_VALUES.items()
        }
    )
    assert runner.check_regression(baseline, improved) == []


def test_gate_refuses_to_compare_nothing():
    baseline = _synthetic_payload(BASELINE_VALUES)
    other = copy.deepcopy(baseline)
    for sample in other["samples"]:
        sample["fleet_size"] = 999  # no key overlap with the baseline
    with pytest.raises(AssertionError, match="no comparable cells"):
        runner.check_regression(baseline, other)


def test_committed_baseline_matches_smoke_grid():
    """The committed BENCH_experiments.json must stay comparable to the CI
    smoke grid, or the bench-stats gate would refuse to run."""
    committed_path = runner.BENCH_DIR.parent / "BENCH_experiments.json"
    committed = json.loads(committed_path.read_text())
    committed_keys = {runner._sample_key(s) for s in committed["samples"]}
    smoke_keys = {cell.key for cell in runner.expand_cells(runner.SMOKE_SPEC)}
    assert smoke_keys <= committed_keys
    reps = committed["spec"]["repetitions"]
    assert reps >= 3
    for sample in committed["samples"]:
        assert sample["host_affinity"]["effective_cpus"] >= 1
