"""Make the (non-package) benchmark scripts importable from tests."""

from __future__ import annotations

import sys
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parents[2] / "benchmarks"
if str(BENCH_DIR) not in sys.path:
    sys.path.insert(0, str(BENCH_DIR))
