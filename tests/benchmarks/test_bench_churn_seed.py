"""The churn benchmark must guarantee its seed file, even on failure.

CI uploads ``BENCH_churn_seed.txt`` from failed runs so the exact schedule
can be replayed; the old race (seed file written only after a successful
run) meant the one artifact a failure needs was the one a failure lost.
"""

from __future__ import annotations

import pytest

import bench_churn


def test_seed_file_written_before_the_benchmark_runs(tmp_path, monkeypatch):
    def explode(seed, ops_per_feed):
        raise RuntimeError("simulated benchmark failure")

    monkeypatch.setattr(bench_churn, "run_benchmark", explode)
    output = tmp_path / "BENCH_churn.json"
    with pytest.raises(RuntimeError, match="simulated benchmark failure"):
        bench_churn.main(["--smoke", "--output", str(output)])

    seed_file = tmp_path / "BENCH_churn_seed.txt"
    assert seed_file.exists(), "seed file must exist even when the run fails"
    content = seed_file.read_text()
    assert f"seed={bench_churn.DEFAULT_SEED}" in content
    assert "repro:" in content and "--seed" in content
    assert not output.exists(), "no results file for a failed run"


def test_seed_file_records_custom_seed_and_ops(tmp_path):
    seed_file = bench_churn.write_seed_file(tmp_path / "out.json", 1234, 56)
    assert seed_file == tmp_path / "BENCH_churn_seed.txt"
    content = seed_file.read_text()
    assert "seed=1234" in content and "ops_per_feed=56" in content
    assert "--seed 1234" in content and "--ops 56" in content
