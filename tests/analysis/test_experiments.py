"""Tests for the experiment runners and reporting helpers.

These run every figure/table experiment at the ``quick`` scale and assert the
*shape* properties the paper reports, so a regression in the system or the
workloads that would change the headline conclusions is caught by the suite.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import (
    ExperimentScale,
    run_adaptive_k_experiment,
    run_algorithm_comparison,
    run_btcrelay_experiment,
    run_eth_price_oracle_experiment,
    run_parameter_k_sweep,
    run_ratio_sweep,
    run_record_size_sweep,
    run_threshold_ratio_experiment,
    run_workload_characterisation,
    run_ycsb_experiment,
)
from repro.analysis.reporting import (
    format_distribution,
    format_gas,
    format_percent,
    format_series,
    format_table,
    percent_difference,
)

QUICK = ExperimentScale.quick()


class TestReporting:
    def test_format_table_aligns_columns(self):
        text = format_table(["a", "bb"], [[1, 22], [333, 4]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "333" in lines[-1]

    def test_format_series_downsamples(self):
        text = format_series("s", list(range(200)), max_points=10)
        assert "[200 points]" in text
        assert text.count(",") == 9

    def test_percent_difference(self):
        assert percent_difference(150, 100) == pytest.approx(50.0)
        assert percent_difference(100, 0) == 0.0

    def test_format_percent_and_gas(self):
        assert "+50.0%" in format_percent(150, 100)
        assert format_gas(2_500_000) == "2.5M"
        assert format_gas(1_500) == "1.5k"
        assert format_gas(42) == "42"

    def test_format_distribution(self):
        text = format_distribution({0: 0.7, 1: 0.3}, title="Table")
        assert "70.00%" in text


class TestRatioSweep:
    def test_figure3_shape(self):
        result = run_ratio_sweep(ratios=(0.0, 0.5, 4.0, 64.0), scale=QUICK)
        bl1, bl2 = result.series("BL1"), result.series("BL2")
        # BL1 rises with the read share, BL2 falls.
        assert bl1[0] < bl1[-1]
        assert bl2[0] > bl2[-1]
        # Static baselines trade places: BL1 wins write-heavy, BL2 read-heavy.
        assert bl1[0] < bl2[0]
        assert bl2[-1] < bl1[-1]
        assert result.crossover_ratio is not None
        assert 0.25 <= result.crossover_ratio <= 4.0

    def test_figure7_includes_dynamic_baselines(self):
        result = run_ratio_sweep(
            ratios=(0.5, 16.0), scale=QUICK, include_dynamic_baselines=True
        )
        assert set(result.gas_per_operation) == {"BL1", "BL2", "BL3", "BL4", "GRuB"}
        # Storing the trace on chain is strictly more expensive than GRuB.
        for index in range(2):
            assert result.series("BL3")[index] > result.series("GRuB")[index]
            assert result.series("BL4")[index] > result.series("GRuB")[index]

    def test_rows_for_printing(self):
        result = run_ratio_sweep(ratios=(0.0, 4.0), scale=QUICK)
        rows = result.rows()
        assert len(rows) == 2 and rows[0][0] == 0.0


class TestTraceExperiments:
    def test_figure5_table3_ordering(self):
        result = run_eth_price_oracle_experiment(scale=QUICK, with_stablecoin=False)
        # GRuB is the cheapest; the never-replicate baseline is the most expensive
        # (the paper's Table 3 ordering).
        assert result.feed_gas("GRuB") < result.feed_gas("BL2")
        assert result.feed_gas("GRuB") < result.feed_gas("BL1")
        assert result.overhead_versus_grub("BL1") > 0
        assert result.overhead_versus_grub("BL2") > 0

    def test_figure5_application_layer_adds_gas(self):
        result = run_eth_price_oracle_experiment(scale=QUICK, with_stablecoin=True)
        for name in ("BL1", "BL2", "GRuB"):
            assert result.application_gas[name] >= 0
            assert result.reports[name].gas_total >= result.reports[name].gas_feed

    def test_figure6_btcrelay_phases(self):
        result = run_btcrelay_experiment(scale=QUICK)
        series_bl1 = result.epoch_series["BL1"]
        series_bl2 = result.epoch_series["BL2"]
        half = len(series_bl1) // 2
        mean = lambda xs: sum(xs) / max(1, len(xs))
        # Phase 1 (write-intensive): BL1 beats BL2; phase 2 (read-intensive): BL2 beats BL1.
        assert mean(series_bl1[:half]) < mean(series_bl2[:half])
        assert mean(series_bl2[half:]) < mean(series_bl1[half:])
        # GRuB stays competitive with the best baseline overall.
        best = min(result.feed_gas("BL1"), result.feed_gas("BL2"))
        assert result.feed_gas("GRuB") <= best * 1.15

    def test_figure9_table4_ycsb(self):
        result = run_ycsb_experiment(phases=("A", "B"), scale=QUICK)
        assert result.feed_gas("GRuB") <= min(result.feed_gas("BL1"), result.feed_gas("BL2")) * 1.2
        assert len(result.epoch_series["GRuB"]) > 2


class TestAlgorithmAndParameterExperiments:
    def test_figure8a_memorizing_converges_below_memoryless(self):
        result = run_algorithm_comparison(k=4, scale=QUICK)
        assert result.totals["memorizing"] < result.totals["memoryless"]
        assert result.totals["offline"] <= result.totals["memorizing"] * 1.05

    def test_figure8b_record_size_monotone(self):
        result = run_record_size_sweep(record_sizes_words=(1, 4, 8), scale=QUICK)
        for name in ("BL1", "BL2", "GRuB"):
            series = result.gas_per_operation[name]
            assert series[0] < series[-1]
        # GRuB never exceeds the worse baseline.
        for index in range(3):
            worst = max(result.gas_per_operation["BL1"][index], result.gas_per_operation["BL2"][index])
            assert result.gas_per_operation["GRuB"][index] <= worst

    def test_figure11_k_sweep_has_workload_dependent_extremum(self):
        result = run_parameter_k_sweep(k_values=(1, 2, 8, 32), ratios=(2.0, 8.0), scale=QUICK)
        for label, series in result.gas_per_operation.items():
            assert len(series) == 4
            assert max(series) > min(series)  # K matters

    def test_figure12_threshold_ratio_trends(self):
        result = run_threshold_ratio_experiment(
            record_sizes_bytes=(32, 512), data_sizes=(64, 1024), scale=QUICK
        )
        small_record = result.by_record_size[32]
        large_record = result.by_record_size[512]
        assert small_record is not None and large_record is not None
        # Larger records shift the crossover towards more reads (Figure 12a).
        assert large_record >= small_record
        small_data = result.by_data_size[64]
        large_data = result.by_data_size[1024]
        assert small_data is not None and large_data is not None
        # Larger datasets (bigger proofs) shift it the other way (Figure 12b).
        assert large_data <= small_data

    def test_figure15_table5_adaptive_k(self):
        result = run_adaptive_k_experiment(scale=QUICK)
        assert set(result.totals) == {"static", "adaptive-k1", "adaptive-k2"}
        assert all(total > 0 for total in result.totals.values())
        # K1 ("the future repeats the past") stays close to the static policy,
        # matching Table 5's +0.8%.  The K2-beats-static result of Table 5
        # depends on the anti-correlated bursts of the real trace, which the
        # synthetic i.i.d. trace deliberately does not inject; EXPERIMENTS.md
        # discusses the difference.
        assert abs(result.relative_to_static("adaptive-k1")) < 35.0
        assert isinstance(result.relative_to_static("adaptive-k2"), float)
        assert len(result.epoch_series["static"]) > 1


class TestCharacterisationExperiment:
    def test_tables_one_and_six(self):
        result = run_workload_characterisation(scale=QUICK)
        eth = result.eth_price_oracle.reads_per_write_distribution()
        btc = result.btcrelay.reads_per_write_distribution()
        assert eth.get(0, 0) == pytest.approx(0.704, abs=0.08)
        assert btc.get(0, 0) == pytest.approx(0.937, abs=0.25)
        assert result.eth_price_target[0] == pytest.approx(0.704, abs=1e-6)
