"""Tests for :mod:`repro.analysis.stats` — the statistics behind the CI gate.

The property tests check the *statistical contract* against known
distributions: a 95% t-interval built from N(μ, σ) samples must contain μ
about 95% of the time across seeds, and must shrink as n grows.  The
regression-gate unit tests pin the decision on crafted baseline/current
sample sets: a clear regression fires, pure noise does not, borderline
overlap does not, and deterministic metrics behave at both extremes.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.analysis import stats


# ---------------------------------------------------------------------------
# Critical values
# ---------------------------------------------------------------------------


def test_t_critical_matches_table_rows():
    assert stats.t_critical(10, 0.95) == pytest.approx(2.228, abs=1e-3)
    assert stats.t_critical(2, 0.95) == pytest.approx(4.303, abs=1e-3)
    assert stats.t_critical(1, 0.99) == pytest.approx(63.657, abs=1e-3)
    assert stats.t_critical(30, 0.90) == pytest.approx(1.697, abs=1e-3)


def test_t_critical_limits_to_normal_quantile():
    assert stats.t_critical(1e9, 0.95) == pytest.approx(1.960, abs=2e-3)
    assert stats.t_critical(1e9, 0.99) == pytest.approx(2.576, abs=2e-3)
    assert stats.t_critical(1e9, 0.90) == pytest.approx(1.645, abs=2e-3)


def test_t_critical_interpolates_fractional_df_monotonically():
    # Welch–Satterthwaite produces fractional df; the interpolated value must
    # sit between the neighbouring table rows and decrease with df.
    previous = stats.t_critical(1, 0.95)
    for df in [1.5, 2.0, 2.7, 3.14, 5.5, 9.9, 21.0, 35.0, 80.0, 500.0]:
        value = stats.t_critical(df, 0.95)
        assert value < previous
        previous = value
    assert stats.t_critical(2.5, 0.95) < stats.t_critical(2, 0.95)
    assert stats.t_critical(2.5, 0.95) > stats.t_critical(3, 0.95)


def test_t_critical_rejects_unsupported_inputs():
    with pytest.raises(ValueError):
        stats.t_critical(10, 0.80)
    with pytest.raises(ValueError):
        stats.t_critical(0, 0.95)


# ---------------------------------------------------------------------------
# Intervals: coverage and width against known distributions
# ---------------------------------------------------------------------------


def test_t_interval_coverage_on_normal_samples():
    """CI from N(μ, σ) samples contains μ ~95% of the time across seeds."""
    mu, sigma, n, trials = 100.0, 10.0, 8, 400
    covered = 0
    for seed in range(trials):
        rng = random.Random(seed)
        samples = [rng.gauss(mu, sigma) for _ in range(n)]
        lo, hi = stats.t_interval(samples, 0.95)
        covered += lo <= mu <= hi
    coverage = covered / trials
    # Binomial noise over 400 trials: ~95% ± a few points.
    assert 0.90 <= coverage <= 0.99, f"coverage {coverage:.3f} not ~0.95"


def test_t_interval_coverage_tracks_confidence_level():
    mu, sigma, n, trials = 0.0, 1.0, 6, 400
    covered_90 = covered_99 = 0
    for seed in range(trials):
        rng = random.Random(10_000 + seed)
        samples = [rng.gauss(mu, sigma) for _ in range(n)]
        lo, hi = stats.t_interval(samples, 0.90)
        covered_90 += lo <= mu <= hi
        lo, hi = stats.t_interval(samples, 0.99)
        covered_99 += lo <= mu <= hi
    assert covered_90 / trials < covered_99 / trials
    assert 0.84 <= covered_90 / trials <= 0.96
    assert covered_99 / trials >= 0.96


def test_interval_width_shrinks_with_sample_count():
    rng = random.Random(7)
    population = [rng.gauss(50.0, 5.0) for _ in range(256)]
    width_small = stats.summarize(population[:4]).ci_half_width
    width_large = stats.summarize(population).ci_half_width
    assert width_large < width_small


def test_bootstrap_interval_coverage_on_normal_samples():
    mu, sigma, n, trials = 20.0, 4.0, 10, 150
    covered = 0
    for seed in range(trials):
        rng = random.Random(20_000 + seed)
        samples = [rng.gauss(mu, sigma) for _ in range(n)]
        lo, hi = stats.bootstrap_interval(samples, 0.95, resamples=400, seed=seed)
        covered += lo <= mu <= hi
    # The percentile bootstrap under-covers slightly at small n; accept a
    # broad-but-meaningful band around the nominal level.
    assert 0.80 <= covered / trials <= 1.0


def test_bootstrap_interval_is_seed_deterministic():
    samples = [1.0, 2.0, 3.0, 4.0, 5.0]
    a = stats.bootstrap_interval(samples, seed=42)
    b = stats.bootstrap_interval(samples, seed=42)
    assert a == b  # same seed, same resampling plan, same interval


def test_degenerate_intervals():
    assert stats.t_interval([5.0]) == (5.0, 5.0)
    assert stats.bootstrap_interval([5.0]) == (5.0, 5.0)
    lo, hi = stats.t_interval([3.0, 3.0, 3.0])
    assert lo == hi == 3.0
    with pytest.raises(ValueError):
        stats.t_interval([])


def test_summarize_fields():
    summary = stats.summarize([10.0, 12.0, 14.0])
    assert summary.n == 3
    assert summary.mean == pytest.approx(12.0)
    assert summary.stddev == pytest.approx(2.0)
    assert summary.minimum == 10.0 and summary.maximum == 14.0
    assert summary.ci_low < 12.0 < summary.ci_high
    assert summary.contains(12.0)
    round_trip = summary.as_dict()
    assert round_trip["n"] == 3 and round_trip["confidence"] == 0.95


# ---------------------------------------------------------------------------
# Welch's t and effect size
# ---------------------------------------------------------------------------


def test_welch_t_known_case():
    # Hand-computed: a=[1,2,3] (mean 2, var 1), b=[2,4,6] (mean 4, var 4).
    # se^2 = 1/3 + 4/3 = 5/3; t = -2 / sqrt(5/3) = -1.5492;
    # df = (5/3)^2 / ((1/3)^2/2 + (4/3)^2/2) = 2.9412.
    t, df = stats.welch_t([1.0, 2.0, 3.0], [2.0, 4.0, 6.0])
    assert t == pytest.approx(-1.5492, abs=1e-4)
    assert df == pytest.approx(2.9412, abs=1e-4)


def test_welch_t_zero_variance_cases():
    assert stats.welch_t([2.0, 2.0], [2.0, 2.0]) == (0.0, 1.0)
    t, _ = stats.welch_t([3.0, 3.0], [2.0, 2.0])
    assert t == math.inf
    t, _ = stats.welch_t([1.0, 1.0], [2.0, 2.0])
    assert t == -math.inf


def test_effect_size_direction_and_magnitude():
    # Equal variances, means 1 apart, pooled sd 1 → d = ±1.
    a = [9.0, 10.0, 11.0]
    b = [10.0, 11.0, 12.0]
    assert stats.effect_size(b, a) == pytest.approx(1.0)
    assert stats.effect_size(a, b) == pytest.approx(-1.0)
    assert stats.effect_size([5.0, 5.0], [5.0, 5.0]) == 0.0
    assert stats.effect_size([6.0, 6.0], [5.0, 5.0]) == math.inf


def test_compare_cells_reports_separation():
    rng = random.Random(3)
    baseline = [rng.gauss(100.0, 2.0) for _ in range(10)]
    far = [rng.gauss(60.0, 2.0) for _ in range(10)]
    near = [rng.gauss(100.0, 2.0) for _ in range(10)]
    separated = stats.compare_cells(baseline, far)
    assert separated.welch_significant
    assert separated.intervals_disjoint
    assert separated.bootstrap_disjoint
    assert separated.relative_change == pytest.approx(-0.4, abs=0.05)
    same = stats.compare_cells(baseline, near)
    assert not same.intervals_disjoint


# ---------------------------------------------------------------------------
# The regression gate
# ---------------------------------------------------------------------------


def _gauss(seed: int, mu: float, sigma: float, n: int) -> list:
    rng = random.Random(seed)
    return [rng.gauss(mu, sigma) for _ in range(n)]


def test_clear_regression_is_flagged():
    """30% slower with modest noise: distributions separate, gate fires."""
    baseline = _gauss(1, 1000.0, 30.0, 8)
    current = _gauss(2, 700.0, 30.0, 8)
    verdict = stats.check_regression(baseline, current, higher_is_better=True)
    assert verdict.regressed
    assert "REGRESSION" in verdict.reason


def test_clear_noise_is_not_flagged():
    """Same distribution, different seeds: never a regression."""
    for seed in range(20):
        baseline = _gauss(100 + seed, 1000.0, 50.0, 8)
        current = _gauss(200 + seed, 1000.0, 50.0, 8)
        verdict = stats.check_regression(baseline, current)
        assert not verdict.regressed, f"seed {seed}: {verdict.reason}"


def test_borderline_overlap_is_not_flagged():
    """A small shift inside wide noise must not fire (the old gate's flaw)."""
    baseline = _gauss(5, 1000.0, 150.0, 5)
    current = [value * 0.95 for value in _gauss(6, 1000.0, 150.0, 5)]
    verdict = stats.check_regression(baseline, current)
    assert not verdict.regressed


def test_single_bad_sample_cannot_fail_the_gate():
    """One outlier widens the CI instead of tripping the gate — the precise
    failure mode of the retired single-sample threshold."""
    baseline = _gauss(7, 1000.0, 20.0, 8)
    current = _gauss(8, 1000.0, 20.0, 7) + [550.0]
    verdict = stats.check_regression(baseline, current)
    assert not verdict.regressed


def test_improvement_is_never_a_regression():
    baseline = _gauss(9, 1000.0, 30.0, 8)
    current = _gauss(10, 1400.0, 30.0, 8)
    verdict = stats.check_regression(baseline, current)
    assert not verdict.regressed
    assert "good way" in verdict.reason


def test_lower_is_better_direction():
    baseline = _gauss(11, 100.0, 3.0, 8)
    worse = _gauss(12, 140.0, 3.0, 8)
    better = _gauss(13, 70.0, 3.0, 8)
    assert stats.check_regression(
        baseline, worse, higher_is_better=False
    ).regressed
    assert not stats.check_regression(
        baseline, better, higher_is_better=False
    ).regressed


def test_deterministic_metric_extremes():
    """Zero-variance metrics (wire bytes/epoch) gate cleanly at both ends."""
    flat = [5800.0] * 3
    assert not stats.check_regression(flat, [5800.0] * 3, higher_is_better=False).regressed
    grown = [7600.0] * 3  # +31%
    verdict = stats.check_regression(
        flat, grown, higher_is_better=False, min_relative_change=0.05
    )
    assert verdict.regressed


def test_actionability_floor_suppresses_tiny_real_shifts():
    """Statistically real but sub-floor shifts (different host class) pass."""
    baseline = _gauss(14, 1000.0, 1.0, 10)
    current = [value * 0.97 for value in _gauss(15, 1000.0, 1.0, 10)]
    firm = stats.check_regression(baseline, current, min_relative_change=0.15)
    assert not firm.regressed
    assert "floor" in firm.reason
    strict = stats.check_regression(baseline, current, min_relative_change=0.0)
    assert strict.regressed


def test_verdict_round_trips_to_plain_data():
    verdict = stats.check_regression(_gauss(16, 10.0, 1.0, 5), _gauss(17, 10.0, 1.0, 5))
    record = verdict.as_dict()
    assert set(record) >= {"regressed", "reason", "comparison"}
    assert record["comparison"]["baseline"]["n"] == 5


def test_exact_cells_report_values_never_infinite_t():
    """Crafted degenerate-variance cells: every exact verdict reason quotes
    the deterministic before/after values, never a meaningless |t| = inf."""
    flat = [4096.0] * 5

    unchanged = stats.check_regression(flat, list(flat), higher_is_better=False)
    assert not unchanged.regressed
    assert unchanged.comparison.exact
    assert "exact-valued metric unchanged" in unchanged.reason

    improved = stats.check_regression(flat, [3800.0] * 5, higher_is_better=False)
    assert not improved.regressed
    assert "good way" in improved.reason

    under_floor = stats.check_regression(
        flat, [4177.0] * 5, higher_is_better=False, min_relative_change=0.05
    )
    assert not under_floor.regressed  # +1.98%, floor is 5%
    assert "floor" in under_floor.reason

    regressed = stats.check_regression(
        flat, [5120.0] * 5, higher_is_better=False, min_relative_change=0.05
    )
    assert regressed.regressed  # +25% with zero spread on both sides
    assert "shifted deterministically" in regressed.reason

    for verdict in (unchanged, improved, under_floor, regressed):
        assert "inf" not in verdict.reason
        assert "4" in verdict.reason  # the actual values are quoted


def test_one_sided_zero_spread_is_not_exact():
    """Zero stddev on one side only is still a sampled comparison: the exact
    branch must not swallow a real distributional shift."""
    baseline = [100.0] * 6
    current = [88.0, 90.0, 87.0, 89.0, 91.0, 88.5]
    verdict = stats.check_regression(baseline, current, higher_is_better=True)
    assert not verdict.comparison.exact
    assert verdict.regressed
