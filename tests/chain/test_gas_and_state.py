"""Unit tests for the gas schedule, ledger, meter and contract storage."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.chain.gas import GasLedger, GasSchedule, LAYER_APPLICATION, LAYER_FEED
from repro.chain.state import ContractStorage
from repro.chain.vm import ExecutionContext, GasMeter
from repro.common.errors import OutOfGasError


class TestGasSchedule:
    def test_transaction_cost_matches_table_two(self, schedule):
        # Table 2: Ctx(X) = 21000 + 2176 X
        assert schedule.transaction_cost(0) == 21_000
        assert schedule.transaction_cost(10) == 21_000 + 2_176 * 10

    def test_storage_costs_match_table_two(self, schedule):
        assert schedule.storage_insert_cost(3) == 60_000
        assert schedule.storage_update_cost(3) == 15_000
        assert schedule.storage_read_cost(3) == 600

    def test_hash_cost_matches_table_two(self, schedule):
        assert schedule.hash_cost(2) == 30 + 12

    def test_negative_calldata_rejected(self, schedule):
        with pytest.raises(ValueError):
            schedule.transaction_cost(-1)

    def test_refunds_disabled_by_default(self, schedule):
        assert schedule.storage_refund(4) == 0
        assert schedule.with_refunds().storage_refund(4) == 60_000

    def test_equation_one_k_is_about_two(self, schedule):
        # K = C_update / C_read_off = 5000 / 2176 ≈ 2
        assert schedule.replication_threshold_k == 2

    def test_storage_writes_cost_more_than_reads(self, schedule):
        assert schedule.storage_update_cost(1) > schedule.storage_read_cost(1)
        assert schedule.storage_insert_cost(1) > schedule.storage_update_cost(1)

    @given(st.integers(min_value=0, max_value=999))
    def test_transaction_cost_monotone_in_calldata(self, words):
        schedule = GasSchedule()
        assert schedule.transaction_cost(words + 1) > schedule.transaction_cost(words)


class TestGasLedger:
    def test_charges_accumulate_by_category_and_layer(self, ledger):
        ledger.charge(100, "sload", LAYER_FEED)
        ledger.charge(50, "sload", LAYER_APPLICATION)
        ledger.charge(25, "hash", LAYER_FEED)
        assert ledger.total == 175
        assert ledger.by_category["sload"] == 150
        assert ledger.feed_total == 125
        assert ledger.application_total == 50

    def test_negative_charge_rejected(self, ledger):
        with pytest.raises(ValueError):
            ledger.charge(-5, "x")

    def test_refund_subtracts(self, ledger):
        ledger.charge(100, "sstore")
        ledger.refund(30)
        assert ledger.total == 70
        assert ledger.refunded == 30

    def test_snapshot_delta(self, ledger):
        ledger.charge(100, "a", LAYER_FEED)
        snapshot = ledger.snapshot()
        ledger.charge(40, "a", LAYER_FEED)
        ledger.charge(10, "b", LAYER_APPLICATION)
        delta = snapshot.delta(ledger)
        assert delta.total == 50
        assert delta.layer(LAYER_FEED) == 40
        assert delta.layer(LAYER_APPLICATION) == 10

    def test_merge(self):
        a, b = GasLedger(), GasLedger()
        a.charge(10, "x")
        b.charge(5, "x")
        a.merge(b)
        assert a.total == 15
        assert a.by_category["x"] == 15


class TestGasMeter:
    def test_meter_enforces_limit(self, schedule, ledger):
        meter = GasMeter(schedule=schedule, ledger=ledger, limit=100)
        meter.charge(60, "a")
        with pytest.raises(OutOfGasError):
            meter.charge(50, "a")
        assert meter.remaining == 40

    def test_meter_attributes_to_global_ledger(self, meter, ledger):
        meter.charge(75, "sload")
        assert ledger.total == 75

    def test_child_context_shares_meter_unless_layer_changes(self, context):
        child = context.child("callee")
        assert child.meter is context.meter
        app_child = context.child("callee", layer=LAYER_APPLICATION)
        assert app_child.meter is not context.meter
        assert app_child.meter.layer == LAYER_APPLICATION


class TestContractStorage:
    def test_insert_then_update_pricing(self, meter, ledger):
        storage = ContractStorage()
        storage.store(meter, "slot", b"a" * 32)
        insert_cost = ledger.by_category["sstore_insert"]
        assert insert_cost == 20_000
        storage.store(meter, "slot", b"b" * 32)
        assert ledger.by_category["sstore_update"] == 5_000

    def test_read_charges_sload(self, meter, ledger):
        storage = ContractStorage()
        storage.store(meter, "slot", b"a" * 64)
        before = ledger.by_category.get("sload", 0)
        value = storage.load(meter, "slot")
        assert value == b"a" * 64
        assert ledger.by_category["sload"] - before == 400  # two words

    def test_miss_still_charges_one_word(self, meter, ledger):
        storage = ContractStorage()
        assert storage.load(meter, "missing") is None
        assert ledger.by_category["sload"] == 200

    def test_delete_and_refund(self, ledger):
        schedule = GasSchedule().with_refunds()
        meter = GasMeter(schedule=schedule, ledger=ledger)
        storage = ContractStorage()
        storage.store(meter, "slot", b"a" * 32)
        used_before = meter.used
        assert storage.delete(meter, "slot")
        assert not storage.has("slot")
        # The refund more than offsets the delete's base cost under this schedule.
        assert meter.used < used_before + schedule.storage_delete_cost()

    def test_delete_missing_returns_false(self, meter):
        storage = ContractStorage()
        assert storage.delete(meter, "nope") is False

    def test_store_reusing_charges_update_price_for_new_slot(self, meter, ledger):
        storage = ContractStorage()
        storage.store_reusing(meter, "recycled", b"a" * 32)
        assert ledger.by_category.get("sstore_insert", 0) == 0
        assert ledger.by_category["sstore_update"] == 5_000

    def test_snapshot_restore(self, meter):
        storage = ContractStorage()
        storage.store(meter, "a", b"1")
        snapshot = storage.snapshot()
        storage.store(meter, "b", b"2")
        storage.restore(snapshot)
        assert storage.has("a") and not storage.has("b")

    def test_size_words(self, meter):
        storage = ContractStorage()
        storage.store(meter, "a", b"x" * 33)
        storage.store(meter, "b", b"y")
        assert storage.size_words() == 3
