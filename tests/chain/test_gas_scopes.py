"""Per-scope (per-tenant) gas attribution and batched base-cost splitting."""

from __future__ import annotations

import pytest

from repro.chain.chain import Blockchain
from repro.chain.contract import Contract
from repro.chain.gas import (
    GasLedger,
    GasSchedule,
    LAYER_APPLICATION,
    LAYER_FEED,
    split_transaction_cost,
)
from repro.chain.transaction import Transaction
from repro.chain.vm import GasMeter
from repro.common.encoding import words_for_bytes


class TestSplitTransactionCost:
    def test_equal_weights_split_base_evenly(self, schedule):
        shares = split_transaction_cost(schedule, {"a": 64, "b": 64})
        word_cost = schedule.transaction_word * words_for_bytes(64)
        assert shares["a"] == schedule.transaction_base // 2 + word_cost
        assert shares["b"] == schedule.transaction_base // 2 + word_cost

    def test_each_scope_pays_its_own_calldata(self, schedule):
        shares = split_transaction_cost(schedule, {"small": 32, "large": 320})
        difference = shares["large"] - shares["small"]
        expected = schedule.transaction_word * (words_for_bytes(320) - words_for_bytes(32))
        assert difference == expected

    def test_shares_sum_to_base_plus_word_costs(self, schedule):
        weights = {"a": 10, "b": 100, "c": 1000}
        shares = split_transaction_cost(schedule, weights)
        expected_total = schedule.transaction_base + sum(
            schedule.transaction_word * words_for_bytes(w) for w in weights.values()
        )
        assert sum(shares.values()) == expected_total

    def test_base_remainder_goes_to_first_scopes(self):
        # A base of 10 across 3 scopes: 4/3/3 in sorted scope order.
        schedule = GasSchedule(transaction_base=10, transaction_word=0)
        shares = split_transaction_cost(schedule, {"c": 0, "a": 0, "b": 0})
        assert shares == {"a": 4, "b": 3, "c": 3}

    def test_single_scope_pays_everything(self, schedule):
        shares = split_transaction_cost(schedule, {"only": 96})
        assert shares["only"] == schedule.transaction_cost(words_for_bytes(96))

    def test_zero_scopes_rejected(self, schedule):
        with pytest.raises(ValueError):
            split_transaction_cost(schedule, {})


class TestLedgerScopes:
    def test_scoped_charges_accumulate_per_scope_and_layer(self):
        ledger = GasLedger()
        ledger.charge(100, "sstore", LAYER_FEED, scope="feed-a")
        ledger.charge(40, "callback", LAYER_APPLICATION, scope="feed-a")
        ledger.charge(7, "sload", LAYER_FEED, scope="feed-b")
        ledger.charge(5, "sload", LAYER_FEED)  # unscoped
        assert ledger.scope_total("feed-a", LAYER_FEED) == 100
        assert ledger.scope_total("feed-a", LAYER_APPLICATION) == 40
        assert ledger.scope_total("feed-a") == 140
        assert ledger.scope_total("feed-b") == 7
        assert ledger.scopes() == ["feed-a", "feed-b"]
        # Unscoped gas still lands in the layer/grand totals.
        assert ledger.feed_total == 112

    def test_snapshot_delta_tracks_scopes(self):
        ledger = GasLedger()
        ledger.charge(100, "sstore", LAYER_FEED, scope="feed-a")
        snapshot = ledger.snapshot()
        ledger.charge(23, "sstore", LAYER_FEED, scope="feed-a")
        ledger.charge(9, "sload", LAYER_FEED, scope="feed-b")
        delta = snapshot.delta(ledger)
        assert delta.scope("feed-a") == 23
        assert delta.scope("feed-b", LAYER_FEED) == 9

    def test_meter_stamps_its_scope(self, schedule):
        ledger = GasLedger()
        meter = GasMeter(schedule=schedule, ledger=ledger, scope="tenant-1")
        meter.charge(55, "hash")
        assert ledger.scope_total("tenant-1") == 55


class _SinkContract(Contract):
    """Minimal contract for exercising scoped transactions."""

    def poke(self, ctx) -> None:
        ctx.meter.charge(ctx.meter.schedule.memory_cost(1), "memory")


class TestScopedTransactions:
    def test_multi_scope_transaction_splits_intrinsic_cost(self):
        chain = Blockchain()
        chain.deploy(_SinkContract("sink"))
        weights = {"feed-a": 64, "feed-b": 64}
        transaction = Transaction(
            sender="operator",
            contract="sink",
            function="poke",
            calldata_bytes=128,
            scopes=weights,
        )
        chain.submit(transaction)
        chain.mine_block()
        receipt = chain.receipt_for(transaction.txid)
        assert receipt.success
        shares = split_transaction_cost(chain.schedule, weights)
        # Each feed is billed exactly its share; the shares sum to the
        # intrinsic gas the transaction was charged (no double counting).
        assert chain.ledger.scope_total("feed-a") == shares["feed-a"]
        assert chain.ledger.scope_total("feed-b") == shares["feed-b"]
        intrinsic = sum(shares.values())
        assert receipt.gas_used == intrinsic + chain.schedule.memory_cost(1)

    def test_single_scope_transaction_bills_that_scope(self):
        chain = Blockchain()
        chain.deploy(_SinkContract("sink"))
        transaction = Transaction(
            sender="operator",
            contract="sink",
            function="poke",
            calldata_bytes=32,
            scope="feed-a",
        )
        chain.submit(transaction)
        chain.mine_block()
        expected = chain.schedule.transaction_cost(1) + chain.schedule.memory_cost(1)
        assert chain.ledger.scope_total("feed-a") == expected
