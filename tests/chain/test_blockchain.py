"""Unit tests for the blockchain simulator: transactions, blocks, events, finality."""

from __future__ import annotations

import pytest

from repro.chain.chain import Blockchain, ChainParameters
from repro.chain.contract import Contract
from repro.chain.accounts import AccountRegistry, WEI_PER_ETHER
from repro.chain.transaction import Transaction
from repro.common.errors import ContractError, ReproError


class CounterContract(Contract):
    """Tiny contract used to exercise the execution machinery."""

    def increment(self, ctx, by: int = 1):
        current = self.storage.load(ctx.meter, "count")
        value = (int.from_bytes(current, "big") if current else 0) + by
        self.storage.store(ctx.meter, "count", value.to_bytes(32, "big"))
        self.emit(ctx, "Incremented", by=by, value=value)
        return value

    def fail(self, ctx):
        self.storage.store(ctx.meter, "poison", b"\x01")
        self.require(False, "always fails")

    def emit_then_fail(self, ctx):
        self.emit(ctx, "Phantom", value=1)
        self.require(False, "fails after emitting")


@pytest.fixture
def deployed_chain(chain):
    chain.deploy(CounterContract("counter"))
    return chain


class TestDeployment:
    def test_duplicate_address_rejected(self, deployed_chain):
        with pytest.raises(ReproError):
            deployed_chain.deploy(CounterContract("counter"))

    def test_unknown_contract_lookup_fails(self, chain):
        with pytest.raises(ReproError):
            chain.get_contract("ghost")


class TestExecution:
    def test_transaction_executes_and_charges_intrinsic_gas(self, deployed_chain):
        tx = Transaction(sender="alice", contract="counter", function="increment",
                         args={"by": 2}, calldata_bytes=32)
        deployed_chain.submit(tx)
        block = deployed_chain.mine_block()
        receipt = block.receipts[0]
        assert receipt.success
        assert receipt.return_value == 2
        assert receipt.gas_used >= deployed_chain.schedule.transaction_cost(1)

    def test_revert_rolls_back_storage_but_consumes_gas(self, deployed_chain):
        deployed_chain.submit(Transaction(sender="a", contract="counter", function="fail"))
        block = deployed_chain.mine_block()
        receipt = block.receipts[0]
        assert not receipt.success
        assert receipt.error is not None
        assert receipt.gas_used > 0
        counter = deployed_chain.get_contract("counter")
        assert not counter.storage.has("poison")

    def test_unknown_function_reverts(self, deployed_chain):
        deployed_chain.submit(Transaction(sender="a", contract="counter", function="nope"))
        receipt = deployed_chain.mine_block().receipts[0]
        assert not receipt.success

    def test_events_appear_in_log_only_after_mining(self, deployed_chain):
        deployed_chain.submit(Transaction(sender="a", contract="counter", function="increment"))
        assert len(deployed_chain.event_log) == 0
        deployed_chain.mine_block()
        events = deployed_chain.event_log.filter(name="Incremented")
        assert len(events) == 1
        assert events[0].payload["value"] == 1

    def test_reverted_transaction_emits_no_events(self, deployed_chain):
        deployed_chain.submit(Transaction(sender="a", contract="counter", function="fail"))
        deployed_chain.mine_block()
        assert len(deployed_chain.event_log) == 0

    def test_internal_call_charges_global_ledger_without_base(self, deployed_chain):
        before = deployed_chain.ledger.total
        deployed_chain.execute_internal_call("user", "counter", "increment")
        delta = deployed_chain.ledger.total - before
        assert delta > 0
        # No intrinsic transaction cost is charged for an internal call.
        assert deployed_chain.ledger.by_category.get("transaction", 0) == 0

    def test_execute_call_does_not_charge_global_ledger(self, deployed_chain):
        before = deployed_chain.ledger.total
        deployed_chain.execute_call("user", "counter", "increment")
        assert deployed_chain.ledger.total == before

    def test_reverted_internal_call_leaks_no_events_into_next_call(self, deployed_chain):
        """The reused call frame must drop a reverted call's emitted events:
        a later internal call under the same attribution would otherwise
        flush the phantom events into the log."""
        with pytest.raises(ContractError):
            deployed_chain.execute_internal_call("user", "counter", "emit_then_fail")
        assert len(deployed_chain.event_log) == 0
        deployed_chain.execute_internal_call("user", "counter", "increment")
        events = list(deployed_chain.event_log)
        assert [event.name for event in events] == ["Incremented"]

    def test_reverted_buffered_internal_call_leaks_no_events(self, deployed_chain):
        with deployed_chain.isolated_execution() as buffer:
            with pytest.raises(ContractError):
                deployed_chain.execute_internal_call(
                    "user", "counter", "emit_then_fail"
                )
            deployed_chain.execute_internal_call("user", "counter", "increment")
        assert [event.name for event in buffer.events] == ["Incremented"]

    def test_internal_call_events_reach_log_immediately(self, deployed_chain):
        deployed_chain.execute_internal_call("user", "counter", "increment")
        assert deployed_chain.event_log.latest("Incremented") is not None


class TestTimingAndFinality:
    def test_block_interval_advances_clock(self, chain):
        start = chain.clock.now
        chain.mine_block()
        assert chain.clock.now == start + chain.parameters.block_interval

    def test_finality_requires_depth_blocks(self, chain):
        chain.mine_block()  # block 1
        assert not chain.is_finalized(1)
        for _ in range(chain.parameters.finality_depth):
            chain.mine_block()
        assert chain.is_finalized(1)

    def test_finality_delay_formula(self):
        params = ChainParameters(block_interval=14.0, propagation_delay=1.0, finality_depth=250)
        chain = Blockchain(parameters=params)
        assert chain.finality_delay() == pytest.approx(1.0 + 14.0 * 250)

    def test_block_hash_links_to_parent(self, chain):
        first = chain.mine_block()
        second = chain.mine_block()
        assert second.parent_hash == first.block_hash

    def test_receipt_lookup(self, deployed_chain):
        tx = Transaction(sender="a", contract="counter", function="increment")
        deployed_chain.submit(tx)
        deployed_chain.mine_block()
        assert deployed_chain.receipt_for(tx.txid).success


class TestAccounts:
    def test_create_and_fund(self):
        accounts = AccountRegistry()
        accounts.create("alice", ether=2.0)
        assert accounts.balance_in_ether("alice") == pytest.approx(2.0)

    def test_transfer_moves_wei(self):
        accounts = AccountRegistry()
        accounts.create("alice", ether=1.0)
        accounts.create("bob")
        accounts.transfer("alice", "bob", WEI_PER_ETHER // 2)
        assert accounts.balance_of("bob") == WEI_PER_ETHER // 2

    def test_insufficient_funds_reverts(self):
        accounts = AccountRegistry()
        accounts.create("alice", ether=0.1)
        with pytest.raises(ContractError):
            accounts.transfer("alice", "bob", WEI_PER_ETHER)

    def test_total_supply_conserved_by_transfers(self):
        accounts = AccountRegistry()
        accounts.create("alice", ether=3.0)
        accounts.create("bob", ether=1.0)
        total = accounts.total_supply()
        accounts.transfer("alice", "bob", WEI_PER_ETHER)
        assert accounts.total_supply() == total
