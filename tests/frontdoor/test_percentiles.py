"""Front-door latency percentile math, property-tested against the
sorted-list nearest-rank reference (the same reference pinning the obs
plane's histogram percentiles — door and obs must quote identical numbers
for identical samples)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ConfigurationError
from repro.frontdoor import latency_percentile, latency_percentiles
from repro.obs import REPORT_PERCENTILES
from repro.obs.metrics import Histogram, percentile_reference

samples_strategy = st.lists(
    st.floats(min_value=0.0, max_value=1e4, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=200,
)

q_strategy = st.floats(min_value=0.001, max_value=100.0)


class TestLatencyPercentile:
    @settings(max_examples=100, deadline=None)
    @given(samples_strategy, q_strategy)
    def test_matches_sorted_list_reference(self, samples, q):
        assert latency_percentile(samples, q) == percentile_reference(samples, q)

    @settings(max_examples=60, deadline=None)
    @given(samples_strategy, q_strategy)
    def test_agrees_with_obs_histogram(self, samples, q):
        histogram = Histogram("request_latency_seconds")
        for value in samples:
            histogram.observe(value)
        assert latency_percentile(samples, q) == histogram.percentile(q)

    @settings(max_examples=60, deadline=None)
    @given(samples_strategy)
    def test_result_is_an_observed_sample(self, samples):
        for q in (10, 50, 90, 99, 100):
            assert latency_percentile(samples, q) in samples

    @settings(max_examples=60, deadline=None)
    @given(samples_strategy)
    def test_monotone_in_q(self, samples):
        values = [
            latency_percentile(samples, q) for q in (10, 25, 50, 75, 90, 95, 99, 100)
        ]
        assert values == sorted(values)

    def test_empty_samples_give_none(self):
        assert latency_percentile([], 50.0) is None

    def test_out_of_range_q_rejected(self):
        with pytest.raises(ConfigurationError):
            latency_percentile([1.0], 0.0)
        with pytest.raises(ConfigurationError):
            latency_percentile([1.0], 100.5)


class TestLatencyPercentiles:
    @settings(max_examples=60, deadline=None)
    @given(samples_strategy)
    def test_report_dict_shape_and_values(self, samples):
        report = latency_percentiles(samples)
        assert set(report) == {f"p{q:g}" for q in REPORT_PERCENTILES}
        for q in REPORT_PERCENTILES:
            assert report[f"p{q:g}"] == percentile_reference(samples, q)

    def test_empty_samples_report_none(self):
        assert latency_percentiles([]) == {"p50": None, "p95": None, "p99": None}
