"""The live front door end to end: determinism, attribution, lifecycle.

The load-bearing test is the equivalence suite: a seeded client driving the
same request sequence through the asyncio door must leave fingerprints, gas
bills and chain state bit-identical to the equivalent batch run — in serial,
thread and process execution modes.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.common.errors import ConfigurationError
from repro.core.config import GrubConfig
from repro.frontdoor import (
    FrontDoor,
    REJECT_DOOR_CLOSED,
    REJECT_UNKNOWN_TENANT,
    Request,
    STATUS_CANCELLED,
    STATUS_REJECTED,
    STATUS_SETTLED,
)
from repro.gateway import EpochScheduler, FeedRegistry, FeedSpec
from repro.obs import Observability
from repro.workloads.synthetic import SyntheticWorkload

EPOCH = 4


def make_spec(feed_id: str, **overrides) -> FeedSpec:
    return FeedSpec(
        feed_id=feed_id,
        config=GrubConfig(epoch_size=EPOCH, algorithm="memoryless", k=1),
        **overrides,
    )


def make_ops(feed_id: str, count: int, *, seed: int = 1):
    return list(
        SyntheticWorkload(
            read_write_ratio=2.0,
            num_operations=count,
            num_keys=3,
            key_prefix=f"{feed_id}-k",
            seed=seed,
        ).operations()
    )


def build_fleet(n_feeds: int = 3, n_ops: int = 10, **spec_overrides):
    registry = FeedRegistry()
    workloads = {}
    for index in range(n_feeds):
        feed_id = f"feed-{index}"
        registry.create_feed(make_spec(feed_id, **spec_overrides))
        workloads[feed_id] = make_ops(feed_id, n_ops, seed=11 + index)
    return registry, workloads


def drive_live(scheduler, workloads, *, door=None):
    """Submit every workload operation as a live request (admission order =
    feed order, op order), deterministically latched to the first boundary."""
    door = door or FrontDoor(scheduler, held=True)

    async def main():
        async with door.serving() as d:
            tasks = [
                asyncio.create_task(
                    d.submit(Request(tenant=feed_id, operation=operation))
                )
                for feed_id, operations in workloads.items()
                for operation in operations
            ]
            await asyncio.sleep(0)
            d.release()
            responses = await asyncio.gather(*tasks)
            d.close()
        return responses

    responses = asyncio.run(main())
    return door, responses


class TestLiveBatchEquivalence:
    @pytest.mark.parametrize("mode", ["serial", "thread", "process"])
    def test_live_run_matches_batch_run_bit_for_bit(self, mode):
        registry, workloads = build_fleet()
        baseline = EpochScheduler(registry, epoch_size=EPOCH).run(workloads)

        registry2, workloads2 = build_fleet()
        kwargs = {} if mode == "serial" else {"num_workers": 2}
        scheduler = EpochScheduler(
            registry2, epoch_size=EPOCH, execution_mode=mode, **kwargs
        )
        door, responses = drive_live(scheduler, workloads2)

        assert door.fleet.fingerprint() == baseline.fingerprint()
        assert registry2.chain.height == registry.chain.height
        assert all(response.ok for response in responses)
        # Every unit of per-feed epoch gas is attributed to exactly one request.
        assert sum(r.gas for r in responses) == sum(
            feed.gas_feed + feed.gas_application
            for feed in baseline.feeds.values()
        )

    def test_door_telemetry_fingerprint_is_mode_invariant(self):
        fingerprints = []
        for mode in ("serial", "thread", "process"):
            registry, workloads = build_fleet(n_feeds=2, n_ops=6)
            kwargs = {} if mode == "serial" else {"num_workers": 2}
            scheduler = EpochScheduler(
                registry, epoch_size=EPOCH, execution_mode=mode, **kwargs
            )
            door, _ = drive_live(scheduler, workloads)
            fingerprints.append(door.telemetry.fingerprint())
        assert fingerprints[0] == fingerprints[1] == fingerprints[2]

    def test_pre_seeded_workloads_execute_ahead_of_live_requests(self):
        # A live run may pre-seed queues exactly like a batch run; seeded
        # operations execute first and own no request futures.
        registry, workloads = build_fleet(n_feeds=1, n_ops=8)
        baseline = EpochScheduler(registry, epoch_size=EPOCH).run(workloads)

        registry2, workloads2 = build_fleet(n_feeds=1, n_ops=8)
        scheduler = EpochScheduler(registry2, epoch_size=EPOCH)
        seeded = {"feed-0": workloads2["feed-0"][:5]}
        live_ops = {"feed-0": workloads2["feed-0"][5:]}
        door = FrontDoor(scheduler, held=True)

        async def main():
            async with door.serving(seeded) as d:
                tasks = [
                    asyncio.create_task(
                        d.submit(Request(tenant="feed-0", operation=op))
                    )
                    for op in live_ops["feed-0"]
                ]
                await asyncio.sleep(0)
                d.release()
                responses = await asyncio.gather(*tasks)
                d.close()
            return responses

        responses = asyncio.run(main())
        assert door.fleet.fingerprint() == baseline.fingerprint()
        assert all(response.ok for response in responses)
        assert door.telemetry.tenant("feed-0").settled == 3


class TestGasAndDeferralAttribution:
    def test_epoch_gas_splits_evenly_across_requests(self):
        registry, workloads = build_fleet(n_feeds=1, n_ops=4)
        scheduler = EpochScheduler(registry, epoch_size=EPOCH)
        door, responses = drive_live(scheduler, workloads)
        feed = door.fleet.feed("feed-0")
        epoch_gas = feed.gas_feed + feed.gas_application
        share, remainder = divmod(epoch_gas, 4)
        expected = sorted(share + (1 if i < remainder else 0) for i in range(4))
        assert sorted(r.gas for r in responses) == expected
        assert all(r.epoch == 0 for r in responses)

    def test_quota_deferral_stamps_requests_and_telemetry(self):
        registry = FeedRegistry()
        registry.create_feed(make_spec("throttled", max_ops_per_epoch=1))
        scheduler = EpochScheduler(registry, epoch_size=EPOCH)
        workloads = {"throttled": make_ops("throttled", 3)}
        # burst_epochs=3 so the door's rate limiter admits the whole burst;
        # the *scheduler's* quota machinery is what defers execution here.
        door, responses = drive_live(
            scheduler, workloads, door=FrontDoor(scheduler, burst_epochs=3, held=True)
        )
        # One op per epoch: the 2nd and 3rd requests wait 1 and 2 boundaries.
        assert [r.epoch for r in responses] == [0, 1, 2]
        assert [r.deferred_epochs for r in responses] == [0, 1, 2]
        assert door.telemetry.tenant("throttled").deferrals == 3
        assert door.fleet.feed("throttled").deferred_ops == 3


class TestRequestLifecycle:
    def test_unknown_tenant_rejected_not_crashed(self):
        registry, workloads = build_fleet(n_feeds=1, n_ops=2)
        scheduler = EpochScheduler(registry, epoch_size=EPOCH)
        door = FrontDoor(scheduler)

        async def main():
            async with door.serving() as d:
                response = await d.submit(Request.read("ghost", "k"))
                d.close()
            return response

        response = asyncio.run(main())
        assert response.status == STATUS_REJECTED
        assert response.reason == REJECT_UNKNOWN_TENANT

    def test_submissions_after_close_rejected(self):
        registry, _ = build_fleet(n_feeds=1, n_ops=2)
        scheduler = EpochScheduler(registry, epoch_size=EPOCH)
        door = FrontDoor(scheduler)

        async def main():
            async with door.serving() as d:
                d.close()
                return await d.submit(Request.read("feed-0", "k"))

        response = asyncio.run(main())
        assert response.status == STATUS_REJECTED
        assert response.reason == REJECT_DOOR_CLOSED

    def test_not_before_epoch_fast_forwards_the_idle_fleet(self):
        registry, _ = build_fleet(n_feeds=1, n_ops=0)
        scheduler = EpochScheduler(registry, epoch_size=EPOCH)
        door = FrontDoor(scheduler, held=True)

        async def main():
            async with door.serving() as d:
                task = asyncio.create_task(
                    d.submit(Request.read("feed-0", "k", not_before_epoch=5))
                )
                await asyncio.sleep(0)
                d.release()
                response = await task
                d.close()
            return response

        response = asyncio.run(main())
        assert response.status == STATUS_SETTLED
        assert response.epoch == 5
        # Epochs 0–4 were skipped, not run: only epoch 5 has a roster entry.
        assert [epoch for epoch, _ in door.fleet.rosters] == [5]
        assert door.fleet.epochs_run == 6

    def test_eviction_mid_run_cancels_queued_requests(self):
        registry = FeedRegistry()
        registry.create_feed(make_spec("resident"))
        registry.create_feed(make_spec("leaver", max_ops_per_epoch=1))
        scheduler = EpochScheduler(registry, epoch_size=EPOCH)
        scheduler.evict("leaver", at_epoch=1)
        workloads = {
            "resident": make_ops("resident", 8),
            "leaver": make_ops("leaver", 3),
        }
        door, responses = drive_live(
            scheduler, workloads, door=FrontDoor(scheduler, burst_epochs=3, held=True)
        )
        leaver = [r for r in responses if r.tenant == "leaver"]
        assert sorted(r.status for r in leaver) == [
            STATUS_CANCELLED,
            STATUS_CANCELLED,
            STATUS_SETTLED,
        ]
        stats = door.telemetry.tenant("leaver")
        assert stats.settled == 1 and stats.cancelled == 2
        assert door.fleet.feed("leaver").cancelled_ops == 2

    def test_fleet_property_requires_a_finished_run(self):
        registry, _ = build_fleet(n_feeds=1, n_ops=0)
        door = FrontDoor(EpochScheduler(registry, epoch_size=EPOCH))
        with pytest.raises(ConfigurationError):
            door.fleet

    def test_serving_twice_rejected(self):
        registry, _ = build_fleet(n_feeds=1, n_ops=0)
        door = FrontDoor(EpochScheduler(registry, epoch_size=EPOCH))

        async def main():
            async with door.serving() as d:
                d.close()
            async with door.serving():
                pass

        with pytest.raises(ConfigurationError, match="already serving"):
            asyncio.run(main())


class TestObservability:
    def test_span_tree_roots_at_frontdoor_with_request_spans(self):
        obs = Observability(enabled=True)
        registry, workloads = build_fleet(n_feeds=2, n_ops=4)
        scheduler = EpochScheduler(registry, epoch_size=EPOCH, obs=obs)
        door, responses = drive_live(scheduler, workloads)

        roots = obs.tracer.roots
        assert len(roots) == 1
        root = roots[0]
        assert root.name == "frontdoor"
        children = [span.name for span in root.children]
        assert "run" in children
        request_spans = [
            span for span in root.children if span.name == "frontdoor.request"
        ]
        assert len(request_spans) == len(responses)
        assert all(span.finished for span in request_spans)
        assert {span.attrs["status"] for span in request_spans} == {STATUS_SETTLED}
        # run → epoch nesting is preserved under the new root.
        run_span = next(span for span in root.children if span.name == "run")
        assert [s.name for s in run_span.children].count("epoch") == len(
            [epoch for epoch, _ in door.fleet.rosters]
        )

    def test_latency_histogram_and_door_samples_populate(self):
        obs = Observability(enabled=True)
        registry, workloads = build_fleet(n_feeds=1, n_ops=4)
        scheduler = EpochScheduler(registry, epoch_size=EPOCH, obs=obs)
        door, responses = drive_live(scheduler, workloads)

        histograms = obs.registry.histograms("request_latency_seconds")
        assert sum(h.count for h in histograms) == len(responses)
        assert len(door.latencies) == len(responses)
        report = door.percentiles()
        assert set(report) == {"p50", "p95", "p99"}
        assert all(value is not None and value >= 0.0 for value in report.values())

    def test_disabled_obs_still_reports_percentiles(self):
        registry, workloads = build_fleet(n_feeds=1, n_ops=4)
        scheduler = EpochScheduler(registry, epoch_size=EPOCH)
        door, responses = drive_live(scheduler, workloads)
        assert all(v is not None for v in door.percentiles().values())
