"""Middleware stack: composition order, auth, headers, rate limiting.

The concurrent-client tests drive the *real* front door (requests racing on
one event loop against a live scheduler thread); the unit tests exercise
layers in isolation around a stub endpoint.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.core.config import GrubConfig
from repro.frontdoor import (
    AuthTokenMiddleware,
    FrontDoor,
    Middleware,
    RateLimitMiddleware,
    REJECT_RATE_LIMITED,
    REJECT_UNAUTHORIZED,
    Request,
    Response,
    SecurityHeadersMiddleware,
    STATUS_REJECTED,
    STATUS_SETTLED,
    build_stack,
)
from repro.gateway import EpochScheduler, FeedRegistry, FeedSpec

EPOCH = 4


def make_spec(feed_id: str, **overrides) -> FeedSpec:
    return FeedSpec(
        feed_id=feed_id,
        config=GrubConfig(epoch_size=EPOCH, algorithm="memoryless", k=1),
        **overrides,
    )


async def settle_endpoint(request: Request) -> Response:
    return Response(status=STATUS_SETTLED, tenant=request.tenant, epoch=0)


def run(coro):
    return asyncio.run(coro)


class RecordingMiddleware(Middleware):
    """Appends its tag on the way down and on the way back up."""

    def __init__(self, tag: str, trace: list) -> None:
        self.tag = tag
        self.trace = trace

    async def __call__(self, request, call_next):
        self.trace.append(f"{self.tag}>")
        response = await call_next(request)
        self.trace.append(f"<{self.tag}")
        return response


class TestStackComposition:
    def test_layers_run_in_declaration_order_and_unwind_in_reverse(self):
        trace: list = []
        stack = build_stack(
            [RecordingMiddleware("a", trace), RecordingMiddleware("b", trace)],
            settle_endpoint,
        )
        response = run(stack(Request.read("t", "k")))
        assert response.ok
        assert trace == ["a>", "b>", "<b", "<a"]

    def test_short_circuit_skips_inner_layers(self):
        trace: list = []

        class Reject(Middleware):
            async def __call__(self, request, call_next):
                return Response.rejected(request.tenant, "nope")

        stack = build_stack(
            [RecordingMiddleware("outer", trace), Reject(), RecordingMiddleware("inner", trace)],
            settle_endpoint,
        )
        response = run(stack(Request.read("t", "k")))
        assert response.status == STATUS_REJECTED
        # The inner layer and the endpoint never saw the request.
        assert trace == ["outer>", "<outer"]

    def test_empty_stack_is_the_bare_endpoint(self):
        stack = build_stack([], settle_endpoint)
        assert run(stack(Request.read("t", "k"))).ok


class TestAuthToken:
    def test_wrong_and_missing_tokens_rejected(self):
        stack = build_stack([AuthTokenMiddleware({"t": "s3cret"})], settle_endpoint)
        denied = run(stack(Request.read("t", "k", token="wrong")))
        assert denied.status == STATUS_REJECTED
        assert denied.reason == REJECT_UNAUTHORIZED
        assert run(stack(Request.read("t", "k"))).status == STATUS_REJECTED

    def test_unregistered_tenant_denied_by_default(self):
        stack = build_stack([AuthTokenMiddleware({"t": "s3cret"})], settle_endpoint)
        response = run(stack(Request.read("stranger", "k", token="s3cret")))
        assert response.reason == REJECT_UNAUTHORIZED

    def test_matching_token_passes(self):
        stack = build_stack([AuthTokenMiddleware({"t": "s3cret"})], settle_endpoint)
        assert run(stack(Request.read("t", "k", token="s3cret"))).ok


class TestSecurityHeaders:
    def test_headers_stamped_on_success_and_rejection(self):
        async def reject_endpoint(request):
            return Response.rejected(request.tenant, "nope")

        for endpoint in (settle_endpoint, reject_endpoint):
            response = run(
                build_stack([SecurityHeadersMiddleware()], endpoint)(
                    Request.read("t", "k")
                )
            )
            assert response.headers["x-content-type-options"] == "nosniff"
            assert response.headers["x-frame-options"] == "DENY"
            assert response.headers["cache-control"] == "no-store"

    def test_existing_headers_not_clobbered(self):
        async def endpoint(request):
            return Response(
                status=STATUS_SETTLED,
                tenant=request.tenant,
                headers={"cache-control": "max-age=5"},
            )

        response = run(
            build_stack([SecurityHeadersMiddleware()], endpoint)(Request.read("t", "k"))
        )
        assert response.headers["cache-control"] == "max-age=5"


class TestRateLimit:
    def test_bucket_drains_and_rejects(self):
        stack = build_stack(
            [RateLimitMiddleware({"t": 2}, burst_epochs=1)], settle_endpoint
        )

        async def drive():
            statuses = [await stack(Request.read("t", "k")) for _ in range(3)]
            return statuses

        first, second, third = run(drive())
        assert first.ok and second.ok
        assert third.status == STATUS_REJECTED
        assert third.reason == REJECT_RATE_LIMITED

    def test_unquota_tenant_is_unlimited(self):
        stack = build_stack(
            [RateLimitMiddleware({"t": None}, burst_epochs=1)], settle_endpoint
        )

        async def drive():
            return [await stack(Request.read("t", "k")) for _ in range(50)]

        assert all(response.ok for response in run(drive()))

    def test_epoch_boundary_refills_up_to_burst_capacity(self):
        limiter = RateLimitMiddleware({"t": 2}, burst_epochs=2)  # capacity 4
        stack = build_stack([limiter], settle_endpoint)

        async def drain(n):
            return [await stack(Request.read("t", "k")) for _ in range(n)]

        assert all(r.ok for r in run(drain(4)))
        assert run(drain(1))[0].status == STATUS_REJECTED
        limiter.on_epoch_settled(7)  # one epoch elapsed: +2 tokens
        results = run(drain(3))
        assert [r.ok for r in results] == [True, True, False]
        # A long idle gap refills to capacity, never beyond.
        limiter.on_epoch_settled(100)
        assert all(r.ok for r in run(drain(4)))
        assert run(drain(1))[0].status == STATUS_REJECTED

    def test_same_epoch_settlements_refill_once(self):
        # The scheduler fires settled() once per feed per epoch; repeated
        # notifications for one epoch must not multiply the refill.
        limiter = RateLimitMiddleware({"t": 1}, burst_epochs=1)
        stack = build_stack([limiter], settle_endpoint)
        assert run(stack(Request.read("t", "k"))).ok
        for _ in range(5):
            limiter.on_epoch_settled(3)
        async def burst():
            return [await stack(Request.read("t", "k")) for _ in range(2)]

        results = run(burst())
        assert sorted(r.status for r in results) == [STATUS_REJECTED, STATUS_SETTLED]

    def test_burst_epochs_must_be_positive(self):
        with pytest.raises(ValueError):
            RateLimitMiddleware({"t": 1}, burst_epochs=0)


class TestRateLimitUnderConcurrentClients:
    def test_over_quota_burst_rejected_at_the_door(self):
        """Five clients race one rate-limited feed: exactly the bucket's
        capacity settles, the rest are turned away without ever touching the
        epoch queue — and admission order decides who, deterministically."""
        registry = FeedRegistry()
        registry.create_feed(make_spec("metered", max_ops_per_epoch=2))
        scheduler = EpochScheduler(registry, epoch_size=EPOCH)
        door = FrontDoor(scheduler, burst_epochs=1, held=True)

        async def clients():
            async with door.serving() as d:
                tasks = [
                    asyncio.create_task(
                        d.submit(Request.read("metered", f"k{i}", sequence=i))
                    )
                    for i in range(5)
                ]
                await asyncio.sleep(0)
                d.release()
                responses = await asyncio.gather(*tasks)
                d.close()
            return responses

        responses = asyncio.run(clients())
        settled = [r for r in responses if r.ok]
        rejected = [r for r in responses if r.status == STATUS_REJECTED]
        assert len(settled) == 2 and len(rejected) == 3
        assert {r.reason for r in rejected} == {REJECT_RATE_LIMITED}
        # First-come-first-served: the bucket admits the first two clients.
        assert [r.ok for r in responses] == [True, True, False, False, False]
        assert door.telemetry.tenant("metered").rejected == {REJECT_RATE_LIMITED: 3}
        assert door.fleet.feed("metered").operations == 2
