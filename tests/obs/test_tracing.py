"""Tracing: span trees, pinned clocks, wire round-trips, lane reassembly.

The process-lane merge is the critical property: span trees from worker lanes
must reassemble under per-phase parents in fixed shard order, whatever order
the lanes returned in — the tracing analogue of the engine's deterministic
buffer merge.
"""

from __future__ import annotations

import pickle
import random

import pytest

from repro.common.clock import ManualClock
from repro.common.errors import ReproError
from repro.obs.tracing import (
    PHASE_ORDER,
    Span,
    Tracer,
    reassemble_shard_spans,
    span_from_wire,
)


class TestManualClock:
    def test_pinned_until_advanced(self):
        clock = ManualClock(start=5.0)
        assert clock() == 5.0
        assert clock() == 5.0
        clock.advance(0.25)
        assert clock() == 5.25

    def test_auto_step(self):
        clock = ManualClock(step=0.5)
        assert [clock(), clock(), clock()] == [0.0, 0.5, 1.0]

    def test_rejects_going_backwards(self):
        clock = ManualClock()
        with pytest.raises(ValueError):
            clock.advance(-1.0)
        with pytest.raises(ValueError):
            ManualClock(start=-1.0)


class TestStackSpans:
    def test_nesting_builds_the_tree(self):
        clock = ManualClock()
        tracer = Tracer(clock=clock)
        with tracer.span("run", mode="serial"):
            with tracer.span("epoch", epoch=0):
                clock.advance(0.25)
                with tracer.span("phase", phase="drive"):
                    clock.advance(0.5)
            with tracer.span("epoch", epoch=1):
                clock.advance(0.125)
        assert len(tracer.roots) == 1
        run = tracer.roots[0]
        assert run.name == "run"
        assert [child.attrs["epoch"] for child in run.children] == [0, 1]
        drive = run.children[0].children[0]
        assert drive.attrs == {"phase": "drive"}
        assert drive.duration == pytest.approx(0.5)
        assert run.duration == pytest.approx(0.875)
        assert tracer.current is None

    def test_find_by_name_and_attrs(self):
        tracer = Tracer(clock=ManualClock())
        with tracer.span("run"):
            for epoch in range(3):
                with tracer.span("epoch", epoch=epoch):
                    pass
        assert len(tracer.find("epoch")) == 3
        assert len(tracer.find("epoch", epoch=1)) == 1
        assert tracer.find("missing") == []

    def test_out_of_order_close_raises(self):
        tracer = Tracer(clock=ManualClock())
        outer = tracer.span("outer")
        inner = tracer.span("inner")
        with pytest.raises(ReproError):
            outer.__exit__(None, None, None)
        inner.__exit__(None, None, None)
        outer.__exit__(None, None, None)

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("run") as span:
            assert span is None
        assert tracer.roots == []
        assert tracer.detached("shard") is None
        tracer.finish(None)
        tracer.adopt(None, None)
        assert tracer.roots == []


class TestDetachedSpans:
    def test_detached_finish_adopt(self):
        clock = ManualClock()
        tracer = Tracer(clock=clock)
        with tracer.span("phase", phase="drive") as parent:
            span = tracer.detached("shard", phase="drive", shard=2)
            clock.advance(0.75)
            tracer.finish(span)
            tracer.adopt(parent, span)
        assert parent.children[0] is span
        assert span.duration == pytest.approx(0.75)

    def test_adopt_without_parent_roots_the_span(self):
        tracer = Tracer(clock=ManualClock())
        span = tracer.detached("orphan")
        tracer.finish(span)
        tracer.adopt(None, span)
        assert tracer.roots == [span]


class TestWireForm:
    def test_round_trip_preserves_tree(self):
        clock = ManualClock(step=0.125)
        tracer = Tracer(clock=clock)
        with tracer.span("run", mode="process"):
            with tracer.span("epoch", epoch=3):
                with tracer.span("phase", phase="drive"):
                    pass
        wire = tracer.roots[0].to_wire()
        rebuilt = span_from_wire(wire)
        assert rebuilt.to_wire() == wire
        assert rebuilt.name == "run"
        assert rebuilt.children[0].attrs == {"epoch": 3}
        assert rebuilt.children[0].children[0].duration == pytest.approx(0.125)

    def test_wire_form_is_plain_data(self):
        span = Span("shard", {"phase": "drive", "shard": 1}, start=0.0, end=0.5)
        span.child("inner").end = 0.0
        wire = span.to_wire()
        assert pickle.loads(pickle.dumps(wire)) == wire

        def only_plain(node):
            assert set(node) == {"name", "attrs", "start", "end", "children"}
            for child in node["children"]:
                only_plain(child)

        only_plain(wire)


def _lane_wire_spans(shard_index: int, phases=PHASE_ORDER[:4]) -> list:
    """One shard's finished wire spans, as a lane would ship them."""
    clock = ManualClock(start=shard_index * 10.0)
    tracer = Tracer(clock=clock)
    spans = []
    for phase in phases:
        span = tracer.detached("shard", phase=phase, shard=shard_index)
        clock.advance(0.1 * (shard_index + 1))
        tracer.finish(span)
        spans.append(span.to_wire())
    return spans


class TestReassembleShardSpans:
    def test_fixed_shard_order_whatever_arrival_order(self):
        arrival_orders = [list(range(6)) for _ in range(4)]
        rng = random.Random(7)
        for order in arrival_orders[1:]:
            rng.shuffle(order)
        trees = []
        for order in arrival_orders:
            epoch_span = Span("epoch", {"epoch": 0})
            reassemble_shard_spans(
                epoch_span,
                [(index, _lane_wire_spans(index)) for index in order],
            )
            trees.append(epoch_span.to_wire())
        # All arrival orders produce the identical tree...
        assert all(tree == trees[0] for tree in trees[1:])
        # ...whose phases follow the canonical order, each with its shards
        # sorted by index.
        epoch_span = span_from_wire(trees[0])
        assert [child.attrs["phase"] for child in epoch_span.children] == list(
            PHASE_ORDER[:4]
        )
        for phase_span in epoch_span.children:
            assert [span.attrs["shard"] for span in phase_span.children] == list(
                range(6)
            )

    def test_durations_survive_the_graft(self):
        epoch_span = Span("epoch", {"epoch": 0})
        reassemble_shard_spans(
            epoch_span, [(index, _lane_wire_spans(index)) for index in (1, 0)]
        )
        drive = epoch_span.children[0]
        assert drive.attrs["phase"] == "drive"
        assert [span.duration for span in drive.children] == [
            pytest.approx(0.1),
            pytest.approx(0.2),
        ]

    def test_lane_labels_attached(self):
        epoch_span = Span("epoch", {"epoch": 0})
        reassemble_shard_spans(
            epoch_span,
            [(0, _lane_wire_spans(0)), (1, _lane_wire_spans(1))],
            lane_of={0: 0, 1: 1},
        )
        for phase_span in epoch_span.children:
            assert [span.attrs["lane"] for span in phase_span.children] == [0, 1]

    def test_empty_and_partial_phases(self):
        epoch_span = Span("epoch", {"epoch": 0})
        grafted = reassemble_shard_spans(
            epoch_span,
            [(0, _lane_wire_spans(0, phases=("drive",))), (1, ())],
        )
        assert [parent.attrs["phase"] for parent in grafted] == ["drive"]
        assert len(epoch_span.children) == 1

    def test_unknown_phase_raises(self):
        epoch_span = Span("epoch", {"epoch": 0})
        rogue = Span("shard", {"phase": "frobnicate", "shard": 0}, end=1.0)
        with pytest.raises(ReproError):
            reassemble_shard_spans(epoch_span, [(0, [rogue.to_wire()])])
