"""Exporters: JSONL schema, Prometheus text round-trip, operator report."""

from __future__ import annotations

import json

import pytest

from repro.common.clock import ManualClock
from repro.common.errors import ReproError
from repro.obs import Observability
from repro.obs.export import (
    export_jsonl,
    export_prometheus,
    format_duration,
    parse_prometheus,
    render_report,
    validate_jsonl,
    validate_jsonl_line,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer


def build_observability() -> Observability:
    clock = ManualClock(step=0.002)
    obs = Observability(clock=clock)
    with obs.span("run", mode="serial"):
        for epoch in range(2):
            with obs.span("epoch", epoch=epoch):
                for phase in ("drive", "deliver", "update", "settle"):
                    with obs.phase(phase, epoch=epoch):
                        pass
    obs.counter("chain_blocks_total").inc(6)
    obs.gauge("cache_entries").set(12)
    return obs


class TestFormatDuration:
    def test_units(self):
        assert format_duration(None) == "-"
        assert format_duration(5e-6) == "5.0µs"
        assert format_duration(0.0032) == "3.20ms"
        assert format_duration(1.5) == "1.500s"


class TestJsonl:
    def test_stream_validates_and_is_deterministic(self):
        text_a = build_observability().export_jsonl(meta={"mode": "serial"})
        text_b = build_observability().export_jsonl(meta={"mode": "serial"})
        assert text_a == text_b  # pinned clock + deterministic export order
        events = validate_jsonl(text_a)
        assert events[0] == {"type": "meta", "run": {"mode": "serial"}}
        kinds = {event["type"] for event in events}
        assert kinds == {"meta", "span", "counter", "gauge", "histogram"}

    def test_span_ids_are_preorder(self):
        obs = build_observability()
        events = validate_jsonl(obs.export_jsonl())
        spans = [event for event in events if event["type"] == "span"]
        assert [span["span_id"] for span in spans] == list(range(len(spans)))
        # 1 run + 2 epochs + 8 phases
        assert len(spans) == 11
        roots = [span for span in spans if span["parent_id"] is None]
        assert len(roots) == 1 and roots[0]["name"] == "run"
        for span in spans:
            if span["parent_id"] is not None:
                assert span["parent_id"] < span["span_id"]

    def test_malformed_lines_rejected(self):
        with pytest.raises(ReproError):
            validate_jsonl_line("not json")
        with pytest.raises(ReproError):
            validate_jsonl_line('["a", "list"]')
        with pytest.raises(ReproError):
            validate_jsonl_line(json.dumps({"type": "mystery"}))
        with pytest.raises(ReproError):
            validate_jsonl_line(json.dumps({"type": "span", "span_id": 0}))
        with pytest.raises(ReproError):
            validate_jsonl_line(
                json.dumps(
                    {
                        "type": "span",
                        "span_id": 0,
                        "parent_id": 3,  # parents precede children in pre-order
                        "name": "x",
                        "attrs": {},
                        "duration": 0.0,
                    }
                )
            )

    def test_histogram_invariants_checked(self):
        bad = {
            "type": "histogram",
            "name": "h",
            "labels": {},
            "count": 2,
            "sum": 1.0,
            "buckets": [[0.5, 1], ["+Inf", 1]],  # +Inf bucket != count
            "p50": 0.5,
            "p95": 0.5,
            "p99": 0.5,
        }
        with pytest.raises(ReproError):
            validate_jsonl_line(json.dumps(bad))

    def test_stream_must_start_with_meta(self):
        obs = build_observability()
        lines = obs.export_jsonl().splitlines()
        with pytest.raises(ReproError):
            validate_jsonl("\n".join(lines[1:]))


class TestPrometheus:
    def test_round_trip(self):
        obs = build_observability()
        text = obs.export_prometheus()
        samples = parse_prometheus(text)
        assert samples["chain_blocks_total"] == [({}, 6.0)]
        assert samples["cache_entries"] == [({}, 12.0)]
        # Histogram family: per-phase buckets, sums and counts all present.
        buckets = samples["gateway_phase_seconds_bucket"]
        phases = {labels["phase"] for labels, _ in buckets}
        assert phases == {"drive", "deliver", "update", "settle"}
        inf_rows = [value for labels, value in buckets if labels["le"] == "+Inf"]
        assert all(value == 2.0 for value in inf_rows)
        counts = dict(
            (labels["phase"], value)
            for labels, value in samples["gateway_phase_seconds_count"]
        )
        assert counts == {"drive": 2.0, "deliver": 2.0, "update": 2.0, "settle": 2.0}

    def test_parser_rejects_malformed_text(self):
        for bad in (
            "# HELP x\n",
            "metric_without_value\n",
            'metric{unquoted=3} 1\n',
            "name with space 1 2 3\n",
        ):
            with pytest.raises(ReproError):
                parse_prometheus(bad)

    def test_inf_parses(self):
        samples = parse_prometheus('h_bucket{le="+Inf"} 4\n')
        (labels, value), = samples["h_bucket"]
        assert labels == {"le": "+Inf"}
        assert value == 4

    def test_empty_registry_exports_empty_text(self):
        assert export_prometheus(MetricsRegistry()) == ""


class TestReport:
    def test_report_contains_every_section(self):
        obs = build_observability()
        report = obs.render_report()
        assert "Latency distributions" in report
        assert 'gateway_phase_seconds{phase="drive"}' in report
        assert "p50" in report and "p95" in report and "p99" in report
        assert "chain_blocks_total" in report
        assert "cache_entries" in report
        assert "2 epoch span(s)" in report

    def test_report_without_tracer(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        report = render_report(registry, None)
        assert "Counters" in report
        assert "Trace:" not in report

    def test_export_functions_accept_bare_parts(self):
        registry = MetricsRegistry()
        registry.histogram("h").observe(0.5)
        tracer = Tracer(clock=ManualClock())
        with tracer.span("run"):
            pass
        events = validate_jsonl(export_jsonl(registry, tracer, meta={"k": "v"}))
        assert events[0]["run"] == {"k": "v"}
        histogram = [e for e in events if e["type"] == "histogram"][0]
        # JSON has no Infinity literal: the +Inf bound serialises as a string.
        assert histogram["buckets"][-1][0] == "+Inf"
