"""Metric instruments: bucket math, exact percentiles, disabled registries.

The histogram's percentile claims are the load-bearing part — benchmark
records and operator reports quote them — so they are property-tested against
the independent sorted-list nearest-rank reference, and the bucket counts are
checked for the placement/monotonicity/conservation invariants the Prometheus
form relies on.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ConfigurationError
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    log_buckets,
    percentile_reference,
)

samples_strategy = st.lists(
    st.floats(
        min_value=0.0,
        max_value=1e4,
        allow_nan=False,
        allow_infinity=False,
    ),
    min_size=1,
    max_size=200,
)


class TestLogBuckets:
    def test_strictly_increasing_and_spanning(self):
        bounds = log_buckets()
        assert all(b > a for a, b in zip(bounds, bounds[1:]))
        assert bounds[0] == pytest.approx(1e-5)
        assert bounds[-1] > 10.0  # spans up to tens of seconds

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            log_buckets(start=0.0)
        with pytest.raises(ConfigurationError):
            log_buckets(factor=1.0)
        with pytest.raises(ConfigurationError):
            log_buckets(count=0)


class TestHistogramBuckets:
    @settings(max_examples=60, deadline=None)
    @given(samples_strategy)
    def test_each_sample_lands_in_its_bucket(self, samples):
        histogram = Histogram("h")
        for value in samples:
            histogram.observe(value)
        # Recompute bucket placement independently: the count of bucket i is
        # the number of samples in (bounds[i-1], bounds[i]].
        bounds = histogram.bounds
        expected = [0] * (len(bounds) + 1)
        for value in samples:
            for index, bound in enumerate(bounds):
                if value <= bound:
                    expected[index] += 1
                    break
            else:
                expected[-1] += 1
        assert histogram.bucket_counts == expected

    @settings(max_examples=60, deadline=None)
    @given(samples_strategy)
    def test_cumulative_form_is_monotone_and_conserving(self, samples):
        histogram = Histogram("h")
        for value in samples:
            histogram.observe(value)
        cumulative = histogram.cumulative_buckets()
        counts = [count for _, count in cumulative]
        assert all(b >= a for a, b in zip(counts, counts[1:]))
        assert cumulative[-1][0] == math.inf
        assert cumulative[-1][1] == len(samples) == histogram.count
        assert histogram.total == pytest.approx(sum(samples))

    def test_custom_bounds_validated(self):
        with pytest.raises(ConfigurationError):
            Histogram("h", buckets=())
        with pytest.raises(ConfigurationError):
            Histogram("h", buckets=(1.0, 1.0, 2.0))

    def test_nan_rejected(self):
        histogram = Histogram("h")
        with pytest.raises(ConfigurationError):
            histogram.observe(float("nan"))


class TestPercentiles:
    @settings(max_examples=100, deadline=None)
    @given(
        samples_strategy,
        st.floats(min_value=0.001, max_value=100.0, allow_nan=False),
    )
    def test_matches_sorted_list_reference(self, samples, q):
        histogram = Histogram("h")
        for value in samples:
            histogram.observe(value)
        assert histogram.percentile(q) == percentile_reference(samples, q)

    @settings(max_examples=60, deadline=None)
    @given(samples_strategy)
    def test_percentile_is_an_observed_sample(self, samples):
        histogram = Histogram("h")
        for value in samples:
            histogram.observe(value)
        for q in (50.0, 95.0, 99.0, 100.0):
            assert histogram.percentile(q) in samples

    @settings(max_examples=60, deadline=None)
    @given(samples_strategy)
    def test_percentiles_are_monotone_in_q(self, samples):
        histogram = Histogram("h")
        for value in samples:
            histogram.observe(value)
        values = [histogram.percentile(q) for q in (10, 25, 50, 75, 90, 95, 99, 100)]
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_p100_is_max_p_small_is_min(self):
        histogram = Histogram("h")
        for value in (3.0, 1.0, 2.0):
            histogram.observe(value)
        assert histogram.percentile(100.0) == 3.0
        assert histogram.percentile(0.001) == 1.0

    def test_empty_histogram_has_no_percentiles(self):
        histogram = Histogram("h")
        assert histogram.percentile(50.0) is None
        assert histogram.mean is None
        assert histogram.report_percentiles() == {"p50": None, "p95": None, "p99": None}

    def test_invalid_q_rejected(self):
        histogram = Histogram("h")
        histogram.observe(1.0)
        for bad in (0.0, -1.0, 100.5):
            with pytest.raises(ConfigurationError):
                histogram.percentile(bad)


class TestCounterAndGauge:
    def test_counter_only_goes_up(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ConfigurationError):
            counter.inc(-1)

    def test_gauge_goes_anywhere(self):
        gauge = Gauge("g")
        gauge.set(4.0)
        gauge.add(-1.5)
        assert gauge.value == 2.5


class TestRegistry:
    def test_same_name_and_labels_return_same_instrument(self):
        registry = MetricsRegistry()
        a = registry.histogram("lat", phase="drive")
        b = registry.histogram("lat", phase="drive")
        c = registry.histogram("lat", phase="settle")
        assert a is b
        assert a is not c

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ConfigurationError):
            registry.gauge("x")

    def test_disabled_registry_hands_out_inert_singletons(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("c")
        counter.inc(100)
        assert counter.value == 0
        histogram = registry.histogram("h")
        histogram.observe(1.0)
        assert histogram.count == 0
        # The null instruments are shared: no per-call-site allocation.
        assert registry.counter("other") is counter
        assert registry.instruments() == []

    def test_collectors_run_at_snapshot_and_register_once(self):
        registry = MetricsRegistry()
        calls = []

        def collector(reg):
            calls.append(1)
            reg.gauge("pulled").set(7)

        registry.register_collector(collector)
        registry.register_collector(collector)  # identity-idempotent
        snapshot = registry.snapshot()
        assert calls == [1]
        assert snapshot["gauges"]["pulled"] == 7

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("c", kind="x").inc(2)
        registry.gauge("g").set(1.5)
        registry.histogram("h").observe(0.25)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {'c{kind="x"}': 2}
        assert snapshot["gauges"] == {"g": 1.5}
        entry = snapshot["histograms"]["h"]
        assert entry["count"] == 1
        assert entry["sum"] == pytest.approx(0.25)
        assert entry["p50"] == entry["p95"] == entry["p99"] == 0.25
        assert entry["buckets"][-1][1] == 1
