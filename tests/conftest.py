"""Shared fixtures for the GRuB reproduction test suite."""

from __future__ import annotations

import pytest

from repro.ads.authenticated_kv import AuthenticatedKVStore
from repro.chain.chain import Blockchain, ChainParameters
from repro.chain.gas import GasLedger, GasSchedule
from repro.chain.vm import ExecutionContext, GasMeter
from repro.common.types import KVRecord, ReplicationState
from repro.core.config import GrubConfig
from repro.core.grub import GrubSystem
from repro.workloads.synthetic import SyntheticWorkload


@pytest.fixture
def schedule() -> GasSchedule:
    return GasSchedule()


@pytest.fixture
def ledger() -> GasLedger:
    return GasLedger()


@pytest.fixture
def meter(schedule, ledger) -> GasMeter:
    return GasMeter(schedule=schedule, ledger=ledger)


@pytest.fixture
def context(meter) -> ExecutionContext:
    return ExecutionContext(sender="tester", meter=meter)


@pytest.fixture
def chain() -> Blockchain:
    # A small finality depth keeps finality-related tests fast.
    return Blockchain(parameters=ChainParameters(finality_depth=3, block_interval=10.0))


@pytest.fixture
def sample_records() -> list:
    return [
        KVRecord.make("alpha", b"value-alpha"),
        KVRecord.make("bravo", b"value-bravo"),
        KVRecord.make("charlie", b"value-charlie", ReplicationState.REPLICATED),
        KVRecord.make("delta", b"value-delta"),
    ]


@pytest.fixture
def loaded_store(sample_records) -> AuthenticatedKVStore:
    store = AuthenticatedKVStore()
    store.load(sample_records)
    return store


@pytest.fixture
def small_config() -> GrubConfig:
    return GrubConfig(epoch_size=8)


@pytest.fixture
def grub_system(small_config) -> GrubSystem:
    return GrubSystem(small_config)


@pytest.fixture
def mixed_workload() -> list:
    return SyntheticWorkload(read_write_ratio=2, num_operations=64, num_keys=2).operations()
