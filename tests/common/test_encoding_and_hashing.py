"""Unit tests for the shared encoding, hashing and clock primitives."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.common.clock import SimulatedClock
from repro.common.encoding import (
    WORD_SIZE_BYTES,
    decode_value,
    encode_value,
    pad_to_word,
    words_for_bytes,
    words_for_value,
)
from repro.common.hashing import (
    combine_digests,
    hash_pair,
    hash_record,
    hash_words,
    keccak,
    sign_digest,
    verify_signature,
)


class TestWordAccounting:
    def test_zero_bytes_is_zero_words(self):
        assert words_for_bytes(0) == 0

    def test_one_byte_rounds_up_to_one_word(self):
        assert words_for_bytes(1) == 1

    def test_exact_word_boundary(self):
        assert words_for_bytes(WORD_SIZE_BYTES) == 1
        assert words_for_bytes(WORD_SIZE_BYTES + 1) == 2

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            words_for_bytes(-1)

    @given(st.integers(min_value=0, max_value=1_000_000))
    def test_words_cover_bytes(self, num_bytes):
        words = words_for_bytes(num_bytes)
        assert words * WORD_SIZE_BYTES >= num_bytes
        assert (words - 1) * WORD_SIZE_BYTES < num_bytes or words == 0


class TestEncodeDecode:
    def test_bytes_pass_through(self):
        assert encode_value(b"abc") == b"abc"

    def test_string_round_trip(self):
        assert decode_value(encode_value("héllo"), str) == "héllo"

    def test_int_round_trip(self):
        assert decode_value(encode_value(123456), int) == 123456

    def test_int_occupies_at_least_one_word(self):
        assert len(encode_value(1)) == WORD_SIZE_BYTES

    def test_negative_int_rejected(self):
        with pytest.raises(ValueError):
            encode_value(-1)

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError):
            encode_value(1.5)  # type: ignore[arg-type]

    def test_unsupported_decode_kind_rejected(self):
        with pytest.raises(TypeError):
            decode_value(b"x", float)  # type: ignore[arg-type]

    def test_words_for_value_counts_encoded_size(self):
        assert words_for_value(b"a" * 33) == 2
        assert words_for_value("abc") == 1

    def test_pad_to_word_multiple(self):
        assert len(pad_to_word(b"abc")) == WORD_SIZE_BYTES
        assert pad_to_word(b"a" * 32) == b"a" * 32

    @given(st.binary(max_size=200))
    def test_padding_preserves_prefix(self, data):
        padded = pad_to_word(data)
        assert padded.startswith(data)
        assert len(padded) % WORD_SIZE_BYTES == 0 or len(padded) == 0


class TestHashing:
    def test_keccak_is_32_bytes(self):
        assert len(keccak(b"x")) == 32

    def test_hash_pair_is_order_sensitive(self):
        a, b = keccak(b"a"), keccak(b"b")
        assert hash_pair(a, b) != hash_pair(b, a)

    def test_hash_words_field_boundaries_matter(self):
        assert hash_words(b"ab", b"c") != hash_words(b"a", b"bc")

    def test_hash_record_binds_state_prefix(self):
        assert hash_record("k", b"v", "R") != hash_record("k", b"v", "NR")

    def test_combine_digests_is_order_sensitive(self):
        a, b = keccak(b"a"), keccak(b"b")
        assert combine_digests([a, b]) != combine_digests([b, a])

    def test_signature_verifies_with_correct_key(self):
        secret = b"s" * 32
        digest = keccak(b"root")
        signature = sign_digest(secret, digest)
        assert verify_signature(secret, digest, signature)

    def test_signature_rejects_wrong_key(self):
        digest = keccak(b"root")
        signature = sign_digest(b"a" * 32, digest)
        assert not verify_signature(b"b" * 32, digest, signature)

    @given(st.binary(min_size=1, max_size=64), st.binary(min_size=1, max_size=64))
    def test_distinct_inputs_distinct_digests(self, left, right):
        if left != right:
            assert keccak(left) != keccak(right)


class TestSimulatedClock:
    def test_advance_moves_time(self):
        clock = SimulatedClock()
        clock.advance(5)
        assert clock.now == 5

    def test_cannot_go_backwards(self):
        clock = SimulatedClock()
        with pytest.raises(ValueError):
            clock.advance(-1)

    def test_scheduled_callbacks_fire_in_order(self):
        clock = SimulatedClock()
        fired = []
        clock.schedule(3, lambda: fired.append("late"))
        clock.schedule(1, lambda: fired.append("early"))
        clock.advance(5)
        assert fired == ["early", "late"]

    def test_callback_outside_window_does_not_fire(self):
        clock = SimulatedClock()
        fired = []
        clock.schedule(10, lambda: fired.append("x"))
        clock.advance(5)
        assert fired == []
        assert clock.pending == 1

    def test_nested_scheduling_fires_within_same_advance(self):
        clock = SimulatedClock()
        fired = []
        clock.schedule(1, lambda: clock.schedule(1, lambda: fired.append("nested")))
        clock.advance(3)
        assert fired == ["nested"]

    def test_reset(self):
        clock = SimulatedClock()
        clock.schedule(1, lambda: None)
        clock.advance(0.5)
        clock.reset()
        assert clock.now == 0
        assert clock.pending == 0
