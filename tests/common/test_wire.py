"""Property tests for the process-boundary wire codec.

The codec is stateful by design — per-channel string and dict-key-set intern
tables persist across frames — so alongside simple round-trip identity these
tests pin the behaviours that keep main and lane processes in lock-step:
interning must survive frame boundaries, the schema guard must reject any
version skew loudly, and decoding frames out of order must fail rather than
silently resolve references against the wrong table.
"""

from __future__ import annotations

import random

import pytest

from repro.common.wire import (
    MAX_INTERNED_STRINGS,
    OOB_THRESHOLD,
    WIRE_MAGIC,
    WIRE_SCHEMA_VERSION,
    WireDecoder,
    WireEncoder,
    WireError,
    WireFrame,
    WireSchemaError,
)


def channel():
    return WireEncoder(), WireDecoder()


def one_frame(build):
    """Encode one frame on a fresh channel, return the decode-side reader."""
    encoder, decoder = channel()
    w = encoder.writer()
    build(w)
    return decoder.reader(w.frame())


class TestVarints:
    def test_uvarint_round_trip_boundaries(self):
        values = [0, 1, 0x7F, 0x80, 0x81, 300, 2**14 - 1, 2**14, 2**32, 2**63]
        r = one_frame(lambda w: [w.uvarint(v) for v in values])
        assert [r.uvarint() for _ in values] == values

    def test_svarint_round_trip_boundaries(self):
        values = [0, 1, -1, 0x3F, 0x40, -0x40, -0x41, 2**40, -(2**40)]
        r = one_frame(lambda w: [w.svarint(v) for v in values])
        assert [r.svarint() for _ in values] == values

    def test_varint_round_trip_randomized(self):
        rng = random.Random(7)
        unsigned = [rng.randrange(0, 2**rng.randrange(1, 62)) for _ in range(500)]
        signed = [v if rng.random() < 0.5 else -v for v in unsigned]
        r = one_frame(
            lambda w: [w.uvarint(u) or w.svarint(s) for u, s in zip(unsigned, signed)]
        )
        for u, s in zip(unsigned, signed):
            assert r.uvarint() == u
            assert r.svarint() == s

    def test_small_uvarint_is_one_byte(self):
        encoder, _ = channel()
        w = encoder.writer()
        base = len(w.body)
        w.uvarint(0x7F)
        assert len(w.body) == base + 1
        w.uvarint(0x80)
        assert len(w.body) == base + 3

    def test_truncated_varint_raises(self):
        _, decoder = channel()
        body = bytes([WIRE_MAGIC, WIRE_SCHEMA_VERSION, 0x80])  # continuation, no end
        r = decoder.reader(WireFrame(body=body))
        with pytest.raises(WireError, match="truncated"):
            r.uvarint()


class TestStrings:
    def test_interning_across_frames(self):
        encoder, decoder = channel()
        w = encoder.writer()
        w.string("feed-00")
        w.string("feed-00")
        first = w.frame()
        w = encoder.writer()
        w.string("feed-00")  # pure reference on the second frame
        second = w.frame()
        r = decoder.reader(first)
        assert r.string() == "feed-00"
        assert r.string() == "feed-00"
        r = decoder.reader(second)
        assert r.string() == "feed-00"
        # steady state: frame is header + one marker byte
        assert len(second.body) == 3

    def test_unicode_round_trip(self):
        strings = ["", "ascii", "päyload", "ключ", "🔑", "asset sep"]
        r = one_frame(lambda w: [w.string(s) for s in strings])
        assert [r.string() for _ in strings] == strings

    def test_table_cap_falls_back_to_inline(self):
        encoder, decoder = channel()
        encoder._table.update((f"s{i}", i) for i in range(MAX_INTERNED_STRINGS))
        decoder._table.extend(f"s{i}" for i in range(MAX_INTERNED_STRINGS))
        w = encoder.writer()
        w.string("overflow")
        w.string("overflow")
        r = decoder.reader(w.frame())
        assert r.string() == "overflow"
        assert r.string() == "overflow"
        # neither side registered it
        assert "overflow" not in encoder._table
        assert len(decoder._table) == MAX_INTERNED_STRINGS

    def test_reference_outside_table_raises(self):
        _, decoder = channel()
        # reference index 5 on a channel that has interned nothing
        body = bytes([WIRE_MAGIC, WIRE_SCHEMA_VERSION, 5 + 2])
        r = decoder.reader(WireFrame(body=body))
        with pytest.raises(WireError, match="out of order"):
            r.string()


class TestBytes:
    def test_small_bytes_inline(self):
        payload = b"\x00\x01" * 10
        encoder, decoder = channel()
        w = encoder.writer()
        w.bytes_(payload)
        frame = w.frame()
        assert frame.blobs == ()
        assert decoder.reader(frame).bytes_() == payload

    def test_bulk_bytes_go_out_of_band(self):
        payload = bytes(range(256)) * 4  # 1 KiB >= OOB_THRESHOLD
        assert len(payload) >= OOB_THRESHOLD
        encoder, decoder = channel()
        w = encoder.writer()
        w.bytes_(payload)
        frame = w.frame()
        assert frame.blobs == (payload,)
        assert payload not in frame.body
        assert decoder.reader(frame).bytes_() == payload
        assert frame.nbytes == len(frame.body) + len(payload)

    def test_missing_oob_blob_raises(self):
        encoder, decoder = channel()
        w = encoder.writer()
        w.bytes_(bytes(OOB_THRESHOLD))
        frame = w.frame()
        stripped = WireFrame(body=frame.body, blobs=())
        with pytest.raises(WireError, match="out-of-band"):
            decoder.reader(stripped).bytes_()


class TestValues:
    def test_scalar_round_trip(self):
        values = [
            None,
            True,
            False,
            0,
            1,
            223,          # last single-byte small int (255 - 32)
            224,          # first value needing the _T_INT path
            -1,
            2**40,
            -(2**40),
            0.0,
            -2.5,
            1e300,
            "text",
            b"bytes",
            bytes(OOB_THRESHOLD + 1),
        ]
        r = one_frame(lambda w: [w.value(v) for v in values])
        out = [r.value() for _ in values]
        assert out == values
        assert [type(v) for v in out] == [type(v) for v in values]

    def test_container_round_trip(self):
        value = {
            "events": [
                {"key": "asset-0001", "version": 3, "size": 64},
                {"key": "asset-0002", "version": 4, "size": 64},
            ],
            "shape": (1, 2, [3, {"nested": None}]),
            7: "non-string key",
        }
        r = one_frame(lambda w: w.value(value))
        assert r.value() == value

    def test_randomized_nested_round_trip(self):
        rng = random.Random(13)

        def make(depth):
            roll = rng.random()
            if depth >= 3 or roll < 0.45:
                return rng.choice(
                    [
                        None,
                        rng.randrange(-(2**33), 2**33),
                        rng.random(),
                        f"k{rng.randrange(30)}",
                        bytes(rng.randrange(0, 12)),
                        rng.random() < 0.5,
                    ]
                )
            if roll < 0.65:
                return [make(depth + 1) for _ in range(rng.randrange(4))]
            if roll < 0.8:
                return tuple(make(depth + 1) for _ in range(rng.randrange(4)))
            return {
                f"f{rng.randrange(6)}": make(depth + 1)
                for _ in range(rng.randrange(4))
            }

        values = [make(0) for _ in range(200)]
        encoder, decoder = channel()
        for value in values:  # one frame per value: exercises persistence
            w = encoder.writer()
            w.value(value)
            assert decoder.reader(w.frame()).value() == value

    def test_unsupported_type_falls_back_to_pickle(self):
        value = {1, 2, 3}  # sets have no wire tag
        r = one_frame(lambda w: w.value(value))
        assert r.value() == value

    def test_unpicklable_value_raises_wire_error(self):
        encoder, _ = channel()
        w = encoder.writer()
        with pytest.raises(WireError, match="not picklable"):
            w.value(lambda: None)


class TestDictKeysetInterning:
    def test_same_shape_dicts_share_a_template(self):
        shape = {"key": "a", "version": 1, "size": 64}
        encoder, decoder = channel()
        w = encoder.writer()
        w.value(shape)
        first = w.frame()
        w = encoder.writer()
        later = {"key": "b", "version": 2, "size": 64}
        w.value(later)
        second = w.frame()
        assert decoder.reader(first).value() == shape
        assert decoder.reader(second).value() == later
        # the second dict shipped no key strings at all
        assert b"version" in first.body
        assert b"version" not in second.body
        assert len(second.body) < len(first.body)

    def test_key_order_is_part_of_the_template(self):
        a = {"x": 1, "y": 2}
        b = {"y": 2, "x": 1}
        encoder, decoder = channel()
        w = encoder.writer()
        w.value(a)
        w.value(b)
        r = decoder.reader(w.frame())
        assert r.value() == a
        assert list(r.value()) == ["y", "x"]

    def test_non_string_keys_fall_back_to_generic_dict(self):
        value = {1: "a", "two": 2}
        encoder, decoder = channel()
        w = encoder.writer()
        w.value(value)
        assert decoder.reader(w.frame()).value() == value
        assert encoder._keysets == {}

    def test_empty_dict(self):
        r = one_frame(lambda w: w.value({}))
        assert r.value() == {}

    def test_keyset_reference_outside_table_raises(self):
        encoder, _ = channel()
        w = encoder.writer()
        w.value({"a": 1})  # first frame defines template 0
        w.frame()
        w = encoder.writer()
        w.value({"a": 2})  # second frame references it
        reference_frame = w.frame()
        # skipping the defining frame leaves the decoder without the template
        r = WireDecoder().reader(reference_frame)
        with pytest.raises(WireError, match="out of order"):
            r.value()


class TestSchemaGuard:
    def test_version_mismatch_raises_schema_error(self):
        encoder, decoder = channel()
        frame = encoder.writer().frame()
        skewed = WireFrame(
            body=bytes([frame.body[0], WIRE_SCHEMA_VERSION + 1]) + frame.body[2:],
            blobs=frame.blobs,
        )
        with pytest.raises(WireSchemaError, match="schema mismatch"):
            decoder.reader(skewed)

    def test_bad_magic_raises(self):
        _, decoder = channel()
        with pytest.raises(WireError, match="magic"):
            decoder.reader(WireFrame(body=b"\x00" + bytes([WIRE_SCHEMA_VERSION])))

    def test_empty_body_raises(self):
        _, decoder = channel()
        with pytest.raises(WireError, match="magic"):
            decoder.reader(WireFrame(body=b""))

    def test_pickle_frames_would_fail_the_magic_check(self):
        """A raw pickle accidentally handed to the codec must not decode."""
        import pickle

        _, decoder = channel()
        blob = pickle.dumps({"not": "a frame"}, protocol=5)
        with pytest.raises(WireError):
            decoder.reader(WireFrame(body=blob))


class TestInternTableBoundary:
    """Round trips at exactly ``MAX_INTERNED_STRINGS`` and one past it, for
    both per-channel tables, across multiple frames of one persistent
    channel.  The cap must be a performance cliff (definitions stop turning
    into references), never a correctness cliff — and both sides must stop
    registering at the same frame, or every later reference resolves against
    skewed indices.
    """

    def _fill_string_tables(self, encoder, decoder, count):
        encoder._table.update((f"s{i}", i) for i in range(count))
        decoder._table.extend(f"s{i}" for i in range(count))

    def test_string_table_at_cap_and_one_past(self):
        encoder, decoder = channel()
        self._fill_string_tables(encoder, decoder, MAX_INTERNED_STRINGS - 1)

        # The cap-th distinct string still gets the last table slot...
        w = encoder.writer()
        w.string("edge")
        w.string("edge")
        r = decoder.reader(w.frame())
        assert [r.string(), r.string()] == ["edge", "edge"]
        assert encoder._table["edge"] == MAX_INTERNED_STRINGS - 1
        assert len(decoder._table) == MAX_INTERNED_STRINGS

        # ...and keeps resolving as a cross-frame reference at the cap, while
        # the (cap+1)-th string falls back to inline on every crossing —
        # frame after frame, without either side registering it.
        for _ in range(2):
            w = encoder.writer()
            w.string("edge")
            w.string("beyond")
            r = decoder.reader(w.frame())
            assert [r.string(), r.string()] == ["edge", "beyond"]
        assert "beyond" not in encoder._table
        assert len(encoder._table) == MAX_INTERNED_STRINGS
        assert len(decoder._table) == MAX_INTERNED_STRINGS

    def _fill_keyset_tables(self, encoder, decoder, count):
        fillers = [(f"f{i}",) for i in range(count)]
        encoder._keysets.update((keys, i) for i, keys in enumerate(fillers))
        decoder._keysets.extend(fillers)

    def test_keyset_table_at_cap_and_one_past(self):
        encoder, decoder = channel()
        self._fill_keyset_tables(encoder, decoder, MAX_INTERNED_STRINGS - 1)

        # The cap-th distinct key set takes the last slot: the second dict
        # with the same shape rides a reference within the frame...
        w = encoder.writer()
        w.value({"alpha": 1, "beta": 2})
        w.value({"alpha": 3, "beta": 4})
        r = decoder.reader(w.frame())
        assert r.value() == {"alpha": 1, "beta": 2}
        assert r.value() == {"alpha": 3, "beta": 4}
        assert encoder._keysets[("alpha", "beta")] == MAX_INTERNED_STRINGS - 1
        assert len(decoder._keysets) == MAX_INTERNED_STRINGS

        # ...and across later frames, while a fresh shape past the cap
        # re-defines its keys on every crossing yet still round-trips, with
        # neither table growing.
        for payload in (7, 8):
            w = encoder.writer()
            w.value({"alpha": payload, "beta": payload})
            w.value({"gamma": payload})
            r = decoder.reader(w.frame())
            assert r.value() == {"alpha": payload, "beta": payload}
            assert r.value() == {"gamma": payload}
        assert ("gamma",) not in encoder._keysets
        assert len(encoder._keysets) == MAX_INTERNED_STRINGS
        assert len(decoder._keysets) == MAX_INTERNED_STRINGS
