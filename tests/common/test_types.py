"""Unit tests for the core datatypes (records, operations, replication state)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.common.types import EpochSummary, KVRecord, Operation, OperationKind, ReplicationState


class TestReplicationState:
    def test_prefixes(self):
        assert ReplicationState.REPLICATED.prefix == "R"
        assert ReplicationState.NOT_REPLICATED.prefix == "NR"

    def test_flipped_is_involution(self):
        for state in ReplicationState:
            assert state.flipped().flipped() is state


class TestOperation:
    def test_write_factory_encodes_value(self):
        op = Operation.write("k", "value")
        assert op.is_write and not op.is_read
        assert op.value == b"value"
        assert op.size_bytes == 5

    def test_read_factory(self):
        op = Operation.read("k", size_bytes=64)
        assert op.is_read and not op.is_write
        assert op.size_words == 2

    def test_scan_factory_clamps_length(self):
        op = Operation.scan("k", 0)
        assert op.scan_length == 1
        assert op.kind is OperationKind.SCAN
        assert op.is_read

    def test_size_words_rounds_up_and_is_at_least_one(self):
        assert Operation.read("k", size_bytes=1).size_words == 1
        assert Operation.read("k", size_bytes=33).size_words == 2

    @given(st.integers(min_value=0, max_value=10_000))
    def test_size_words_consistent(self, size):
        op = Operation.read("k", size_bytes=size)
        assert op.size_words >= 1
        assert (op.size_words - 1) * 32 <= max(size, 1)


class TestKVRecord:
    def test_prefixed_key_contains_state(self):
        record = KVRecord.make("eth", b"100")
        assert record.prefixed_key == "NR|eth"
        assert record.with_state(ReplicationState.REPLICATED).prefixed_key == "R|eth"

    def test_with_value_bumps_version(self):
        record = KVRecord.make("eth", b"100")
        updated = record.with_value(b"101")
        assert updated.version == record.version + 1
        assert updated.value == b"101"
        assert record.value == b"100"  # original untouched

    def test_size_words_at_least_one(self):
        assert KVRecord.make("k", b"").size_words == 1
        assert KVRecord.make("k", b"a" * 64).size_words == 2


class TestEpochSummary:
    def test_gas_per_operation_handles_zero_ops(self):
        summary = EpochSummary(index=0)
        assert summary.gas_per_operation == 0.0

    def test_totals(self):
        summary = EpochSummary(index=1, operations=4, gas_feed=400, gas_application=100)
        assert summary.gas_total == 500
        assert summary.gas_per_operation == 100.0
