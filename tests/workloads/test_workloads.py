"""Tests for the workload generators: synthetic, traces and YCSB."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.types import OperationKind
from repro.workloads.btcrelay_trace import BTCRELAY_DISTRIBUTION, BtcRelayTrace
from repro.workloads.eth_price_oracle import ETH_PRICE_ORACLE_DISTRIBUTION, EthPriceOracleTrace
from repro.workloads.operations import characterise, interleave_phases
from repro.workloads.synthetic import (
    AlternatingPhaseWorkload,
    SyntheticWorkload,
    WorstCaseMemorylessWorkload,
)
from repro.workloads.ycsb import (
    WORKLOAD_PRESETS,
    MixedYCSBWorkload,
    YCSBConfig,
    YCSBWorkload,
    ZipfianGenerator,
)
import random


class TestSyntheticWorkload:
    def test_ratio_zero_is_write_only(self):
        ops = SyntheticWorkload(read_write_ratio=0, num_operations=50).operations()
        assert all(op.is_write for op in ops)
        assert len(ops) == 50

    def test_ratio_four_gives_four_reads_per_write(self):
        ops = SyntheticWorkload(read_write_ratio=4, num_operations=100).operations()
        stats = characterise(ops)
        assert stats.read_write_ratio == pytest.approx(4.0, rel=0.15)

    def test_fractional_ratio_gives_multiple_writes_per_read(self):
        ops = SyntheticWorkload(read_write_ratio=0.125, num_operations=90).operations()
        stats = characterise(ops)
        assert stats.read_write_ratio == pytest.approx(0.125, rel=0.2)

    def test_negative_ratio_rejected(self):
        with pytest.raises(ValueError):
            SyntheticWorkload(read_write_ratio=-1).operations()

    def test_deterministic_for_same_seed(self):
        a = SyntheticWorkload(read_write_ratio=2, num_operations=64, seed=5).operations()
        b = SyntheticWorkload(read_write_ratio=2, num_operations=64, seed=5).operations()
        assert [(o.kind, o.key, o.value) for o in a] == [(o.kind, o.key, o.value) for o in b]

    def test_record_size_respected(self):
        ops = SyntheticWorkload(read_write_ratio=1, num_operations=16, record_size_bytes=128).operations()
        assert all(op.size_bytes == 128 for op in ops)

    def test_alternating_phases_concatenate(self):
        workload = AlternatingPhaseWorkload(phase_ratios=(0.0, 8.0), operations_per_phase=32)
        ops = workload.operations()
        assert len(ops) == 64
        assert workload.phase_boundaries() == [0, 32]
        first, second = ops[:32], ops[32:]
        assert all(op.is_write for op in first)
        assert sum(op.is_read for op in second) > 20

    def test_worst_case_workload_shape(self):
        ops = WorstCaseMemorylessWorkload(k=3, cycles=5).operations()
        assert len(ops) == 5 * 4
        stats = characterise(ops)
        assert set(stats.reads_after_write) == {3}


class TestEthPriceOracleTrace:
    def test_characterisation_matches_table_one(self):
        """The generator reproduces the Table 1 distribution within tolerance."""
        trace = EthPriceOracleTrace(num_writes=4000, assets_per_update=1, spread_reads=False)
        stats = characterise(trace.operations())
        observed = stats.reads_per_write_distribution()
        assert observed.get(0, 0) == pytest.approx(0.704, abs=0.04)
        assert observed.get(1, 0) == pytest.approx(0.16, abs=0.03)
        # The long tail exists.
        assert max(observed) >= 10

    def test_mean_read_write_ratio_matches_distribution(self):
        trace = EthPriceOracleTrace(num_writes=3000, assets_per_update=1, spread_reads=False)
        stats = characterise(trace.operations())
        expected_mean = sum(k * v for k, v in ETH_PRICE_ORACLE_DISTRIBUTION.items()) / 100.0
        assert stats.read_write_ratio == pytest.approx(expected_mean, rel=0.15)

    def test_batched_updates_touch_multiple_assets(self):
        trace = EthPriceOracleTrace(num_writes=50, assets_per_update=10, num_assets=64)
        ops = trace.operations()
        writes = [op for op in ops if op.is_write]
        assert len(writes) == 500
        assert len({op.key for op in writes}) > 10

    def test_reads_target_hot_assets(self):
        trace = EthPriceOracleTrace(num_writes=200, assets_per_update=10, num_assets=64, hot_assets=2)
        reads = [op for op in trace.operations() if op.is_read]
        assert reads
        assert {op.key for op in reads} <= {trace.asset_key(0), trace.asset_key(1)}

    def test_deterministic(self):
        a = EthPriceOracleTrace(num_writes=100, seed=1).operations()
        b = EthPriceOracleTrace(num_writes=100, seed=1).operations()
        assert [(o.kind, o.key) for o in a] == [(o.kind, o.key) for o in b]


class TestBtcRelayTrace:
    def test_appends_new_keys_per_write(self):
        trace = BtcRelayTrace(num_blocks=100)
        writes = [op for op in trace.operations() if op.is_write]
        assert len(writes) == 100
        assert len({op.key for op in writes}) == 100

    def test_write_phase_then_read_phase(self):
        trace = BtcRelayTrace(num_blocks=200, write_phase_fraction=0.5)
        ops = trace.operations()
        mid = next(i for i, op in enumerate(ops) if op.key == trace.block_key(100))
        first, second = ops[:mid], ops[mid:]
        ratio_first = characterise(first).read_write_ratio
        ratio_second = characterise(second).read_write_ratio
        assert ratio_second > ratio_first * 2

    def test_reads_target_recent_blocks(self):
        trace = BtcRelayTrace(num_blocks=150, recent_window=10)
        ops = trace.operations()
        latest_written = -1
        for op in ops:
            if op.is_write:
                latest_written = int(op.key.split("-")[-1])
            else:
                read_height = int(op.key.split("-")[-1])
                assert latest_written - read_height <= 10 + trace.verification_depth + 3

    def test_pure_distribution_mode_matches_table_six(self):
        trace = BtcRelayTrace(
            num_blocks=4000, write_phase_fraction=0.0, read_boost=1.0, verification_rate=0.0
        )
        stats = characterise(trace.operations())
        observed = stats.reads_per_write_distribution()
        assert observed.get(0, 0) == pytest.approx(0.937, abs=0.03)


class TestZipfian:
    def test_values_within_range(self):
        generator = ZipfianGenerator(1000, random.Random(1))
        values = [generator.next() for _ in range(2000)]
        assert all(0 <= v < 1000 for v in values)

    def test_skew_towards_popular_items(self):
        generator = ZipfianGenerator(1000, random.Random(2))
        values = [generator.next() for _ in range(5000)]
        top_share = sum(1 for v in values if v < 10) / len(values)
        assert top_share > 0.3  # zipfian theta=0.99 concentrates heavily

    def test_scrambled_spreads_hot_keys(self):
        generator = ZipfianGenerator(1000, random.Random(3))
        scrambled = {generator.next_scrambled() for _ in range(200)}
        assert len(scrambled) > 20
        assert all(0 <= v < 1000 for v in scrambled)

    def test_invalid_item_count_rejected(self):
        from repro.common.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            ZipfianGenerator(0, random.Random(1))


class TestYCSB:
    def test_presets_cover_paper_workloads(self):
        assert set("ABCDEF") <= set(WORKLOAD_PRESETS)

    def test_proportions_must_sum_to_one(self):
        from repro.common.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            YCSBConfig(name="bad", read_proportion=0.5)

    def test_workload_a_is_half_reads(self):
        workload = YCSBWorkload(WORKLOAD_PRESETS["A"], record_count=100, operation_count=2000, record_size_bytes=64)
        ops = workload.operations()
        reads = sum(1 for op in ops if op.kind is OperationKind.READ)
        assert reads / len(ops) == pytest.approx(0.5, abs=0.05)

    def test_workload_b_is_read_mostly(self):
        workload = YCSBWorkload(WORKLOAD_PRESETS["B"], record_count=100, operation_count=2000, record_size_bytes=64)
        ops = workload.operations()
        reads = sum(1 for op in ops if op.is_read)
        assert reads / len(ops) == pytest.approx(0.95, abs=0.03)

    def test_workload_e_contains_scans_and_inserts(self):
        workload = YCSBWorkload(WORKLOAD_PRESETS["E"], record_count=100, operation_count=1000, record_size_bytes=64)
        ops = workload.operations()
        scans = [op for op in ops if op.kind is OperationKind.SCAN]
        inserts = [op for op in ops if op.is_write]
        assert len(scans) / len(ops) == pytest.approx(0.95, abs=0.04)
        assert inserts
        assert all(op.scan_length <= WORKLOAD_PRESETS["E"].max_scan_length for op in scans)

    def test_workload_f_read_modify_write_pairs(self):
        workload = YCSBWorkload(WORKLOAD_PRESETS["F"], record_count=100, operation_count=1000, record_size_bytes=64)
        ops = workload.operations()
        writes = sum(1 for op in ops if op.is_write)
        assert writes > 0.2 * len(ops)

    def test_inserts_extend_key_space(self):
        workload = YCSBWorkload(WORKLOAD_PRESETS["D"], record_count=50, operation_count=500, record_size_bytes=64)
        ops = workload.operations()
        inserted = [op.key for op in ops if op.is_write]
        assert all(int(key.removeprefix("user")) >= 50 for key in inserted)

    def test_preload_matches_record_count_and_size(self):
        workload = YCSBWorkload(WORKLOAD_PRESETS["A"], record_count=64, record_size_bytes=256)
        preload = workload.preload_records()
        assert len(preload) == 64
        assert all(len(record.value) == 256 for record in preload)

    def test_mixed_workload_phases_and_markers(self):
        mixed = MixedYCSBWorkload(phases=("A", "B"), record_count=64, operations_per_phase=100, record_size_bytes=64)
        ops = mixed.operations()
        assert len(ops) >= 200
        markers = mixed.phase_markers()
        assert markers[0].startswith("P1") and markers[100].startswith("P2")

    def test_mixed_workload_deterministic(self):
        a = MixedYCSBWorkload(phases=("A", "F"), record_count=32, operations_per_phase=64, record_size_bytes=32)
        b = MixedYCSBWorkload(phases=("A", "F"), record_count=32, operations_per_phase=64, record_size_bytes=32)
        assert [(o.kind, o.key) for o in a.operations()] == [(o.kind, o.key) for o in b.operations()]


class TestCharacterisation:
    def test_interleave_phases_renumbers(self):
        phase_a = SyntheticWorkload(read_write_ratio=0, num_operations=10).operations()
        phase_b = SyntheticWorkload(read_write_ratio=4, num_operations=10).operations()
        combined = interleave_phases([phase_a, phase_b])
        assert [op.sequence for op in combined] == list(range(20))

    def test_distribution_table_percentages_sum_to_hundred(self):
        ops = SyntheticWorkload(read_write_ratio=2, num_operations=120).operations()
        stats = characterise(ops)
        total = sum(percentage for _, percentage in stats.distribution_table())
        assert total == pytest.approx(100.0, abs=0.1)

    @given(
        st.lists(
            st.tuples(st.booleans(), st.sampled_from(["a", "b", "c"])),
            max_size=60,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_characterise_counts_are_consistent(self, pairs):
        from repro.common.types import Operation

        ops = [
            Operation.read(key) if is_read else Operation.write(key, b"v")
            for is_read, key in pairs
        ]
        stats = characterise(ops)
        assert stats.reads + stats.writes == len(ops)
        assert stats.reads == sum(1 for op in ops if op.is_read)
        # Every write opens exactly one interval, closed by the next write of
        # the same key or by the end of the trace.
        assert len(stats.reads_after_write) == stats.writes
        assert sum(stats.per_key_reads.values()) == stats.reads


class TestFleetChurnWorkload:
    def _generate(self, **overrides):
        from repro.workloads.fleet_churn import FleetChurnWorkload

        params = dict(
            seed=7,
            base_feeds=6,
            joins=4,
            leaves=4,
            burst_tenants=2,
            horizon_epochs=10,
            epoch_size=8,
            ops_per_feed=48,
            quota_feeds=1,
        )
        params.update(overrides)
        return FleetChurnWorkload(**params).generate()

    def test_schedule_counts_match_parameters(self):
        schedule = self._generate()
        assert len(schedule.initial) == 6
        assert len(schedule.joins) == 4
        assert len(schedule.leaves) == 4
        # Every burst tenant has a paired departure.
        leaving = {leave.feed_id for leave in schedule.leaves}
        assert {"mint-00", "mint-01"} <= leaving

    def test_same_seed_is_reproducible(self):
        first = self._generate()
        second = self._generate()
        assert first.admitted_op_counts() == second.admitted_op_counts()
        assert first.departures == second.departures
        for a, b in zip(first.initial, second.initial):
            assert a.spec.feed_id == b.spec.feed_id
            assert list(a.operations) == list(b.operations)

    def test_different_seeds_differ(self):
        first = self._generate(seed=7)
        second = self._generate(seed=8)
        ops_differ = any(
            list(a.operations) != list(b.operations)
            for a, b in zip(first.initial, second.initial)
        )
        assert ops_differ or first.departures != second.departures

    def test_quota_feeds_carry_quotas_and_never_leave(self):
        schedule = self._generate(quota_feeds=2)
        quota_ids = schedule.quota_feed_ids()
        assert len(quota_ids) == 2
        specs = {join.feed_id: join.spec for join in schedule.initial}
        for feed_id in quota_ids:
            assert specs[feed_id].max_ops_per_epoch is not None
        assert not (set(quota_ids) & set(schedule.departures))

    def test_burst_tenants_are_mint_shaped(self):
        schedule = self._generate()
        mint = next(j for j in schedule.joins if j.feed_id == "mint-00")
        ops = list(mint.operations)
        writes = [op for op in ops if op.is_write]
        reads = [op for op in ops if op.is_read]
        # A mint burst: writes first, then a heavier read phase over the
        # early (hot) tokens only.
        assert ops[: len(writes)] == writes
        assert len(reads) == 2 * len(writes)
        hot = max(1, len(writes) // 4)
        assert all(int(op.key.rsplit("-", 1)[1]) < hot for op in reads)

    def test_departures_fall_inside_a_sane_epoch_range(self):
        schedule = self._generate()
        for leave in schedule.leaves:
            assert 1 <= leave.at_epoch <= 14

    def test_validation(self):
        from repro.common.errors import ConfigurationError
        from repro.workloads.fleet_churn import FleetChurnWorkload

        with pytest.raises(ConfigurationError):
            FleetChurnWorkload(burst_tenants=3, joins=2)
        with pytest.raises(ConfigurationError):
            FleetChurnWorkload(burst_tenants=2, joins=2, leaves=1)
        with pytest.raises(ConfigurationError):
            FleetChurnWorkload(base_feeds=2, leaves=4, joins=4, burst_tenants=0)
        with pytest.raises(ConfigurationError):
            FleetChurnWorkload(correlated_hot_keys=True, hot_keys=0)
        with pytest.raises(ConfigurationError):
            FleetChurnWorkload(
                correlated_hot_keys=True, hot_burst_epochs=10, horizon_epochs=10
            )

    def test_correlated_hot_keys_off_by_default(self):
        schedule = self._generate()
        assert schedule.hot_burst_epochs == []
        assert schedule.hot_suffixes == []

    def test_correlated_hot_keys_share_suffixes_and_burst_epochs(self):
        epoch_size = 8
        schedule = self._generate(
            correlated_hot_keys=True, hot_keys=4, hot_burst_epochs=2
        )
        assert len(schedule.hot_burst_epochs) == 2
        assert schedule.hot_suffixes == [f"hot-{i:03d}" for i in range(4)]

        burst_suffix_patterns = []
        quota_ids = set(schedule.quota_feed_ids())
        assert quota_ids, "default config must exercise the quota exclusion"
        for join in schedule.initial:
            feed_id = join.feed_id
            ops = list(join.operations)
            preload_keys = {record.key for record in join.spec.preload}
            if feed_id in quota_ids:
                # Quota feeds defer operations, so a spliced burst would not
                # execute in the synchronized epoch — they must be excluded
                # entirely (no hot preload, no burst reads).
                assert not any("-hot-" in key for key in preload_keys)
                assert not any("-hot-" in op.key for op in ops)
                continue
            # Every burst-cohort feed's preload carries its copy of the
            # shared hot keyset.
            for suffix in schedule.hot_suffixes:
                assert f"{feed_id}-{suffix}" in preload_keys
            # At every synchronized burst epoch the feed reads exactly the
            # hot keyset for one whole epoch.  (Unquota'd feeds consume
            # exactly epoch_size ops per epoch, so stream offsets are epoch
            # boundaries of the executed run.)
            pattern = []
            for burst_epoch in schedule.hot_burst_epochs:
                start = burst_epoch * epoch_size
                burst = ops[start : start + epoch_size]
                assert len(burst) == epoch_size
                for op in burst:
                    assert op.is_read
                    prefix, suffix = op.key.split("-hot-")
                    assert prefix == feed_id
                    pattern.append(f"hot-{suffix}")
            burst_suffix_patterns.append(tuple(pattern))
        # The *same* suffix sequence in the *same* epochs for every cohort
        # feed — that is the cross-feed correlation the planner and cache see.
        assert len(set(burst_suffix_patterns)) == 1

    def test_correlated_schedule_is_reproducible(self):
        first = self._generate(correlated_hot_keys=True)
        second = self._generate(correlated_hot_keys=True)
        assert first.hot_burst_epochs == second.hot_burst_epochs
        for a, b in zip(first.initial, second.initial):
            assert list(a.operations) == list(b.operations)
