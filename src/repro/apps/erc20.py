"""A minimal ERC20-style token contract for the case-study applications.

The stablecoin (SCoin) and the Bitcoin-pegged token are both ERC20 tokens
whose supply is controlled by an issuer contract.  Balances live in contract
storage and every balance change pays the corresponding storage gas, so the
application-layer gas reported alongside the feed-layer gas (Table 3) is
produced by real contract work rather than a constant.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.chain.contract import Contract
from repro.chain.vm import ExecutionContext


class ERC20Token(Contract):
    """Balances, allowances, mint and burn — enough ERC20 for the case studies."""

    def __init__(self, address: str, name: str, symbol: str, minter: Optional[str] = None) -> None:
        super().__init__(address)
        self.token_name = name
        self.symbol = symbol
        self.minter = minter or address
        self.total_supply = 0

    # -- views -----------------------------------------------------------------

    def balance_of(self, ctx: ExecutionContext, owner: str) -> int:
        raw = self.storage.load(ctx.meter, self._balance_slot(owner))
        return int.from_bytes(raw, "big") if raw else 0

    def allowance(self, ctx: ExecutionContext, owner: str, spender: str) -> int:
        raw = self.storage.load(ctx.meter, self._allowance_slot(owner, spender))
        return int.from_bytes(raw, "big") if raw else 0

    # -- transfers ---------------------------------------------------------------

    def transfer(self, ctx: ExecutionContext, recipient: str, amount: int) -> bool:
        self._move(ctx, ctx.sender, recipient, amount)
        self.emit(ctx, "Transfer", sender=ctx.sender, recipient=recipient, amount=amount)
        return True

    def approve(self, ctx: ExecutionContext, spender: str, amount: int) -> bool:
        self.require(amount >= 0, "allowance must be non-negative")
        self.storage.store(
            ctx.meter, self._allowance_slot(ctx.sender, spender), amount.to_bytes(32, "big")
        )
        self.emit(ctx, "Approval", owner=ctx.sender, spender=spender, amount=amount)
        return True

    def transfer_from(
        self, ctx: ExecutionContext, owner: str, recipient: str, amount: int
    ) -> bool:
        allowance = self.allowance(ctx, owner, ctx.sender)
        self.require(allowance >= amount, "allowance exceeded")
        self.storage.store(
            ctx.meter,
            self._allowance_slot(owner, ctx.sender),
            (allowance - amount).to_bytes(32, "big"),
        )
        self._move(ctx, owner, recipient, amount)
        self.emit(ctx, "Transfer", sender=owner, recipient=recipient, amount=amount)
        return True

    # -- supply management ----------------------------------------------------------

    def mint(self, ctx: ExecutionContext, recipient: str, amount: int) -> bool:
        self.require(ctx.sender in (self.minter, self.address), "only the minter may mint")
        self.require(amount > 0, "mint amount must be positive")
        balance = self.balance_of(ctx, recipient)
        self.storage.store(
            ctx.meter, self._balance_slot(recipient), (balance + amount).to_bytes(32, "big")
        )
        self.total_supply += amount
        self.emit(ctx, "Transfer", sender="0x0", recipient=recipient, amount=amount)
        return True

    def burn(self, ctx: ExecutionContext, owner: str, amount: int) -> bool:
        self.require(ctx.sender in (self.minter, self.address, owner), "not authorised to burn")
        balance = self.balance_of(ctx, owner)
        self.require(balance >= amount, "burn exceeds balance")
        self.storage.store(
            ctx.meter, self._balance_slot(owner), (balance - amount).to_bytes(32, "big")
        )
        self.total_supply -= amount
        self.emit(ctx, "Transfer", sender=owner, recipient="0x0", amount=amount)
        return True

    # -- unmetered inspection -----------------------------------------------------------

    def peek_balance(self, owner: str) -> int:
        raw = self.storage.peek(self._balance_slot(owner))
        return int.from_bytes(raw, "big") if raw else 0

    def holders(self) -> Dict[str, int]:
        result = {}
        for slot, value in self.storage.items():
            if slot.startswith("balance:"):
                result[slot.split(":", 1)[1]] = int.from_bytes(value, "big")
        return result

    # -- internals -----------------------------------------------------------------------

    def _move(self, ctx: ExecutionContext, sender: str, recipient: str, amount: int) -> None:
        self.require(amount > 0, "transfer amount must be positive")
        sender_balance = self.balance_of(ctx, sender)
        self.require(sender_balance >= amount, "insufficient balance")
        recipient_balance = self.balance_of(ctx, recipient)
        self.storage.store(
            ctx.meter, self._balance_slot(sender), (sender_balance - amount).to_bytes(32, "big")
        )
        self.storage.store(
            ctx.meter,
            self._balance_slot(recipient),
            (recipient_balance + amount).to_bytes(32, "big"),
        )

    def _balance_slot(self, owner: str) -> str:
        return f"balance:{owner}"

    def _allowance_slot(self, owner: str, spender: str) -> str:
        return f"allowance:{owner}:{spender}"
