"""Case-study applications built on the GRuB data feed (Section 4 of the paper).

* :mod:`repro.apps.erc20` — a minimal ERC20 token contract used by both case
  studies,
* :mod:`repro.apps.price_feed` — a GRuB-backed price feed exposing the
  ``poke()`` / ``peek()`` interface of MakerDAO's ethPriceOracle,
* :mod:`repro.apps.stablecoin` — SCoin, an Ether-collateralised stablecoin
  whose issuer contract reads the price feed on every issue/redeem,
* :mod:`repro.apps.btc` — a simulated Bitcoin chain, a BtcRelay-style
  side-chain feed, and a Bitcoin-pegged ERC20 token whose mint/burn verifies
  SPV proofs against block headers from the feed.
"""

from repro.apps.erc20 import ERC20Token
from repro.apps.price_feed import PriceFeed, PriceFeedConsumer
from repro.apps.stablecoin import SCoinIssuer, StablecoinDeployment, build_stablecoin_deployment
from repro.apps.btc.bitcoin import BitcoinSimulator, BitcoinBlock, BitcoinTransaction
from repro.apps.btc.btcrelay import BtcRelayFeed
from repro.apps.btc.pegged_token import PeggedTokenContract, PeggedTokenDeployment, build_pegged_token_deployment

__all__ = [
    "ERC20Token",
    "PriceFeed",
    "PriceFeedConsumer",
    "SCoinIssuer",
    "StablecoinDeployment",
    "build_stablecoin_deployment",
    "BitcoinSimulator",
    "BitcoinBlock",
    "BitcoinTransaction",
    "BtcRelayFeed",
    "PeggedTokenContract",
    "PeggedTokenDeployment",
    "build_pegged_token_deployment",
]
