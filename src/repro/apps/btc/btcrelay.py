"""The BtcRelay-style side-chain feed: Bitcoin block headers into GRuB.

The data owner runs a trusted off-chain Bitcoin client (the simulator here)
and, every time a new Bitcoin block is found, publishes the mapping
``block key -> header bytes`` into the GRuB KV store.  Data-consumer contracts
(the pegged token) read headers through ``gGet`` to verify SPV proofs.

Unlike the price feed, this workload never overwrites existing records — each
block header is a new key — which is why the BtcRelay experiment configures
GRuB with replica eviction (reusable storage) to keep the on-chain footprint
bounded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.apps.btc.bitcoin import BitcoinBlock, BitcoinSimulator
from repro.core.data_owner import DataOwner


def block_key(height: int) -> str:
    """Feed key under which the header at ``height`` is stored."""
    return f"btc-block-{height:08d}"


@dataclass
class BtcRelayFeed:
    """Off-chain half of the side-chain feed: relays new headers into GRuB."""

    data_owner: DataOwner
    bitcoin: BitcoinSimulator
    relayed_heights: List[int] = field(default_factory=list)

    def relay_new_blocks(self) -> int:
        """Publish every Bitcoin block not yet relayed; returns how many."""
        start = (self.relayed_heights[-1] + 1) if self.relayed_heights else 1
        relayed = 0
        for height in range(start, self.bitcoin.tip.height + 1):
            block = self.bitcoin.block_at(height)
            self.relay_block(block)
            relayed += 1
        return relayed

    def relay_block(self, block: BitcoinBlock) -> None:
        """Publish one block header into the feed (buffered until epoch end)."""
        self.data_owner.put(block_key(block.height), block.header_bytes())
        self.relayed_heights.append(block.height)

    def latest_relayed_height(self) -> Optional[int]:
        return self.relayed_heights[-1] if self.relayed_heights else None
