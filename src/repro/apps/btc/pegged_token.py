"""A Bitcoin-pegged ERC20 token verifying mint/burn against the BtcRelay feed.

This is the paper's second case study (Section 4.2): a DU contract
implementing a simple pegged token whose supply operations consume Bitcoin
blocks from the side-chain feed:

* ``request_mint`` — a user presents a Bitcoin deposit transaction plus its
  SPV proof; the contract reads the corresponding block header (and the
  required number of confirmation headers) from the feed, verifies the
  inclusion proof against the header's transaction Merkle root, and mints the
  pegged amount,
* ``request_burn`` — symmetric: a redeem transaction on Bitcoin is verified
  before the pegged tokens are burned.

Every verification reads several recent block headers through ``gGet``, which
is exactly the read pressure the BtcRelay benchmark (Figure 6) places on the
feed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.apps.btc.bitcoin import BitcoinBlock, BitcoinSimulator, SPVProof
from repro.apps.btc.btcrelay import BtcRelayFeed, block_key
from repro.apps.erc20 import ERC20Token
from repro.chain.vm import ExecutionContext
from repro.core.data_consumer import DataConsumerContract
from repro.core.grub import GrubSystem

CONFIRMATIONS_REQUIRED = 6
"""Number of Bitcoin confirmations a mint/burn verification consumes."""


class PeggedTokenContract(DataConsumerContract):
    """DU contract: mints/burns pegged tokens after SPV verification."""

    def __init__(
        self,
        address: str,
        storage_manager: str,
        token: ERC20Token,
        confirmations: int = CONFIRMATIONS_REQUIRED,
    ) -> None:
        super().__init__(address, storage_manager)
        self.token = token
        self.confirmations = confirmations
        self.header_cache: Dict[str, bytes] = {}
        self.mints = 0
        self.burns = 0
        self.rejected = 0
        self._pending_mints: List[dict] = []
        self._pending_burns: List[dict] = []

    # -- public entry points -------------------------------------------------------

    def request_mint(
        self,
        ctx: ExecutionContext,
        recipient: str,
        amount_satoshi: int,
        proof: SPVProof,
        block_height: int,
    ) -> None:
        """Verify a Bitcoin deposit and mint pegged tokens to ``recipient``."""
        self._pending_mints.append(
            {
                "recipient": recipient,
                "amount": amount_satoshi,
                "proof": proof,
                "block_height": block_height,
                "headers": {},
            }
        )
        self._request_headers(ctx, block_height, purpose="mint", index=len(self._pending_mints) - 1)

    def request_burn(
        self,
        ctx: ExecutionContext,
        holder: str,
        amount_satoshi: int,
        proof: SPVProof,
        block_height: int,
    ) -> None:
        """Verify a Bitcoin redeem and burn ``holder``'s pegged tokens."""
        self._pending_burns.append(
            {
                "holder": holder,
                "amount": amount_satoshi,
                "proof": proof,
                "block_height": block_height,
                "headers": {},
            }
        )
        self._request_headers(ctx, block_height, purpose="burn", index=len(self._pending_burns) - 1)

    # -- feed callbacks ------------------------------------------------------------------

    def on_header(
        self,
        ctx: ExecutionContext,
        key: str,
        value: bytes,
        purpose: str,
        index: int,
        **_: object,
    ) -> None:
        """Callback receiving one verified block header from the feed."""
        ctx.meter.charge(ctx.meter.schedule.memory_cost(3), "callback")
        self.header_cache[key] = value
        pending = self._pending_mints if purpose == "mint" else self._pending_burns
        if index >= len(pending) or pending[index] is None:
            return
        request = pending[index]
        request["headers"][key] = value
        needed = self._header_keys(request["block_height"])
        if all(k in request["headers"] for k in needed):
            self._finalise(ctx, purpose, index, request)

    def on_data(self, ctx: ExecutionContext, key: str, value: bytes, **context) -> None:
        if "purpose" in context and "index" in context:
            self.on_header(ctx, key, value, **context)
        else:
            ctx.meter.charge(ctx.meter.schedule.memory_cost(1), "callback")
            self.header_cache[key] = value
            self.received.append({"key": key, "value": value, **context})

    # -- internals ---------------------------------------------------------------------------

    def _request_headers(self, ctx: ExecutionContext, block_height: int, purpose: str, index: int) -> None:
        for key in self._header_keys(block_height):
            self.query_feed(
                ctx,
                key,
                callback="on_header",
                callback_context={"purpose": purpose, "index": index},
            )

    def _header_keys(self, block_height: int) -> List[str]:
        return [block_key(block_height + offset) for offset in range(self.confirmations)]

    def _finalise(self, ctx: ExecutionContext, purpose: str, index: int, request: dict) -> None:
        header = request["headers"][block_key(request["block_height"])]
        proof: SPVProof = request["proof"]
        # The header's Merkle root occupies bytes 40..72 of the serialised header.
        merkle_root = header[40:72]
        ok = proof.verify(
            merkle_root,
            charge_hash=lambda words: ctx.meter.charge(
                ctx.meter.schedule.hash_cost(words), "hash"
            ),
        )
        if not ok:
            self.rejected += 1
            self.emit(ctx, "VerificationFailed", purpose=purpose, block_height=request["block_height"])
            return
        if purpose == "mint":
            self.token.mint(ctx.child(self.address, layer=ctx.meter.layer), request["recipient"], request["amount"])
            self.mints += 1
            self.emit(ctx, "Minted", recipient=request["recipient"], amount=request["amount"])
            self._pending_mints[index] = None
        else:
            self.token.burn(ctx.child(self.address, layer=ctx.meter.layer), request["holder"], request["amount"])
            self.burns += 1
            self.emit(ctx, "Burned", holder=request["holder"], amount=request["amount"])
            self._pending_burns[index] = None


@dataclass
class PeggedTokenDeployment:
    """Everything needed to run the BtcRelay case study on one GRuB system."""

    system: GrubSystem
    bitcoin: BitcoinSimulator
    relay: BtcRelayFeed
    token: ERC20Token
    pegged: PeggedTokenContract


def build_pegged_token_deployment(
    system: GrubSystem,
    bitcoin: Optional[BitcoinSimulator] = None,
    confirmations: int = CONFIRMATIONS_REQUIRED,
) -> PeggedTokenDeployment:
    """Deploy the pegged token + relay feed on an existing GRuB (or baseline) system."""
    bitcoin = bitcoin or BitcoinSimulator()
    token = ERC20Token("pegged-btc", name="Pegged BTC", symbol="pBTC", minter="pegged-btc-gateway")
    system.chain.deploy(token)
    pegged = PeggedTokenContract(
        "pegged-btc-gateway",
        system.storage_manager.address,
        token=token,
        confirmations=confirmations,
    )
    system.chain.deploy(pegged)
    system.consumer = pegged
    relay = BtcRelayFeed(data_owner=system.data_owner, bitcoin=bitcoin)
    return PeggedTokenDeployment(
        system=system, bitcoin=bitcoin, relay=relay, token=token, pegged=pegged
    )
