"""A simulated Bitcoin network producing headers, transactions and SPV proofs.

The BtcRelay case study needs a source chain whose blocks are fed onto the
simulated Ethereum chain.  This module provides exactly the pieces the
pegged-token application consumes:

* block headers (height, previous-hash link, transaction Merkle root,
  timestamp, difficulty field) produced at a configurable cadence,
* deposit and redeem transactions included in blocks, and
* SPV proofs — the Merkle inclusion path of a transaction inside a block —
  which the pegged token verifies against headers obtained from the feed.

No proof-of-work is modelled (the paper's trust model already assumes the
source chain is secure); the properties the experiment depends on are the
header chain structure, header sizes and verifiable transaction inclusion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.ads.merkle import MerkleProof, MerkleTree, verify_membership
from repro.common.errors import ReproError
from repro.common.hashing import hash_words, keccak

SATOSHI_PER_BTC = 100_000_000


@dataclass(frozen=True)
class BitcoinTransaction:
    """A simplified Bitcoin transaction (deposit into or redeem from the peg)."""

    txid: bytes
    kind: str  # "deposit" | "redeem" | "transfer"
    amount_satoshi: int
    ethereum_recipient: Optional[str] = None
    bitcoin_recipient: Optional[str] = None

    @staticmethod
    def deposit(amount_satoshi: int, ethereum_recipient: str, nonce: int) -> "BitcoinTransaction":
        txid = hash_words("deposit", ethereum_recipient, amount_satoshi, nonce)
        return BitcoinTransaction(
            txid=txid,
            kind="deposit",
            amount_satoshi=amount_satoshi,
            ethereum_recipient=ethereum_recipient,
        )

    @staticmethod
    def redeem(amount_satoshi: int, bitcoin_recipient: str, nonce: int) -> "BitcoinTransaction":
        txid = hash_words("redeem", bitcoin_recipient, amount_satoshi, nonce)
        return BitcoinTransaction(
            txid=txid,
            kind="redeem",
            amount_satoshi=amount_satoshi,
            bitcoin_recipient=bitcoin_recipient,
        )


@dataclass(frozen=True)
class SPVProof:
    """Merkle inclusion proof of a transaction inside a block."""

    txid: bytes
    block_hash: bytes
    merkle_root: bytes
    proof: MerkleProof

    def verify(self, expected_merkle_root: bytes, charge_hash=None) -> bool:
        """Check the transaction is committed under ``expected_merkle_root``."""
        if expected_merkle_root != self.merkle_root:
            return False
        return verify_membership(expected_merkle_root, keccak(self.txid), self.proof, charge_hash)


@dataclass
class BitcoinBlock:
    """A produced Bitcoin block: header fields plus its transactions."""

    height: int
    previous_hash: bytes
    merkle_root: bytes
    timestamp: float
    difficulty_bits: int
    transactions: List[BitcoinTransaction] = field(default_factory=list)

    @property
    def block_hash(self) -> bytes:
        return hash_words(
            self.height, self.previous_hash, self.merkle_root, int(self.timestamp), self.difficulty_bits
        )

    def header_bytes(self) -> bytes:
        """Serialised header, 80 bytes like a real Bitcoin header (padded)."""
        header = (
            self.height.to_bytes(8, "big")
            + self.previous_hash[:32]
            + self.merkle_root[:32]
            + int(self.timestamp).to_bytes(4, "big")
            + self.difficulty_bits.to_bytes(4, "big")
        )
        return header[:80].ljust(80, b"\x00")

    @staticmethod
    def parse_header(data: bytes) -> Dict[str, int]:
        """Decode the fields written by :meth:`header_bytes`."""
        return {
            "height": int.from_bytes(data[0:8], "big"),
            "timestamp": int.from_bytes(data[72:76], "big"),
            "difficulty_bits": int.from_bytes(data[76:80], "big"),
        }


class BitcoinSimulator:
    """Produces a linear Bitcoin chain and answers SPV proof requests."""

    def __init__(self, block_interval_seconds: float = 600.0, difficulty_bits: int = 0x1D00FFFF) -> None:
        self.block_interval_seconds = block_interval_seconds
        self.difficulty_bits = difficulty_bits
        self.blocks: List[BitcoinBlock] = []
        self._pending: List[BitcoinTransaction] = []
        self._tx_index: Dict[bytes, int] = {}
        self._nonce = 0
        self._mine_genesis()

    # -- producing the chain ------------------------------------------------------

    def _mine_genesis(self) -> None:
        genesis = BitcoinBlock(
            height=0,
            previous_hash=b"\x00" * 32,
            merkle_root=MerkleTree([]).root,
            timestamp=0.0,
            difficulty_bits=self.difficulty_bits,
        )
        self.blocks.append(genesis)

    def submit_transaction(self, transaction: BitcoinTransaction) -> BitcoinTransaction:
        self._pending.append(transaction)
        return transaction

    def deposit(self, amount_btc: float, ethereum_recipient: str) -> BitcoinTransaction:
        """Create and queue a deposit transaction paying the peg's vault."""
        self._nonce += 1
        tx = BitcoinTransaction.deposit(
            int(amount_btc * SATOSHI_PER_BTC), ethereum_recipient, self._nonce
        )
        return self.submit_transaction(tx)

    def redeem(self, amount_btc: float, bitcoin_recipient: str) -> BitcoinTransaction:
        """Create and queue a redeem transaction releasing BTC from the vault."""
        self._nonce += 1
        tx = BitcoinTransaction.redeem(
            int(amount_btc * SATOSHI_PER_BTC), bitcoin_recipient, self._nonce
        )
        return self.submit_transaction(tx)

    def mine_block(self) -> BitcoinBlock:
        """Produce the next block containing every pending transaction."""
        transactions, self._pending = self._pending, []
        tree = MerkleTree([keccak(tx.txid) for tx in transactions])
        previous = self.blocks[-1]
        block = BitcoinBlock(
            height=previous.height + 1,
            previous_hash=previous.block_hash,
            merkle_root=tree.root,
            timestamp=previous.timestamp + self.block_interval_seconds,
            difficulty_bits=self.difficulty_bits,
            transactions=transactions,
        )
        self.blocks.append(block)
        for tx in transactions:
            self._tx_index[tx.txid] = block.height
        return block

    # -- querying the chain -----------------------------------------------------------

    @property
    def tip(self) -> BitcoinBlock:
        return self.blocks[-1]

    def block_at(self, height: int) -> BitcoinBlock:
        if not 0 <= height < len(self.blocks):
            raise ReproError(f"no Bitcoin block at height {height}")
        return self.blocks[height]

    def confirmation_depth(self, txid: bytes) -> int:
        """Number of blocks mined on top of the transaction's block."""
        height = self._tx_index.get(txid)
        if height is None:
            return 0
        return self.tip.height - height

    def spv_proof(self, txid: bytes) -> SPVProof:
        """Produce the SPV inclusion proof for a confirmed transaction."""
        height = self._tx_index.get(txid)
        if height is None:
            raise ReproError("transaction is not included in any block")
        block = self.blocks[height]
        leaves = [keccak(tx.txid) for tx in block.transactions]
        tree = MerkleTree(leaves)
        index = next(i for i, tx in enumerate(block.transactions) if tx.txid == txid)
        return SPVProof(
            txid=txid,
            block_hash=block.block_hash,
            merkle_root=block.merkle_root,
            proof=tree.prove(index),
        )

    def verify_header_chain(self) -> bool:
        """Sanity check: every header links to its predecessor's hash."""
        for previous, current in zip(self.blocks, self.blocks[1:]):
            if current.previous_hash != previous.block_hash:
                return False
        return True
