"""The BtcRelay case study: side-chain feed and Bitcoin-pegged token.

* :mod:`repro.apps.btc.bitcoin` — a simulated Bitcoin chain producing block
  headers, transactions and SPV (Merkle inclusion) proofs,
* :mod:`repro.apps.btc.btcrelay` — the BtcRelay-style feed that publishes
  block headers into the GRuB KV store,
* :mod:`repro.apps.btc.pegged_token` — a Bitcoin-pegged ERC20 token whose
  mint/burn operations verify deposit/redeem transactions against headers
  obtained from the feed.
"""

from repro.apps.btc.bitcoin import BitcoinSimulator, BitcoinBlock, BitcoinTransaction, SPVProof
from repro.apps.btc.btcrelay import BtcRelayFeed
from repro.apps.btc.pegged_token import (
    PeggedTokenContract,
    PeggedTokenDeployment,
    build_pegged_token_deployment,
)

__all__ = [
    "BitcoinSimulator",
    "BitcoinBlock",
    "BitcoinTransaction",
    "SPVProof",
    "BtcRelayFeed",
    "PeggedTokenContract",
    "PeggedTokenDeployment",
    "build_pegged_token_deployment",
]
