"""A GRuB-backed price feed exposing the ethPriceOracle-style interface.

The MakerDAO price oracle the paper measures exposes two functions: ``poke()``
updates the price and ``peek()`` reads it.  Mapped onto GRuB, ``poke`` becomes
a ``gPuts`` from the off-chain data owner and ``peek`` becomes a ``gGet`` from
a consumer contract with a callback.  :class:`PriceFeed` is the off-chain
producer half (owned by the DO) and :class:`PriceFeedConsumer` is the DU base
the stablecoin issuer extends.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.chain.vm import ExecutionContext
from repro.common.encoding import decode_value
from repro.core.data_consumer import DataConsumerContract
from repro.core.data_owner import DataOwner

PRICE_SCALE = 100
"""Prices are stored in integer cents to avoid floats on chain."""


def encode_price(price_usd: float, record_size_bytes: int = 32) -> bytes:
    """Encode a USD price into a fixed-size record payload."""
    cents = int(round(price_usd * PRICE_SCALE))
    payload = cents.to_bytes(16, "big")
    if len(payload) < record_size_bytes:
        payload = payload + b"\x00" * (record_size_bytes - len(payload))
    return payload[:record_size_bytes]


def decode_price(value: bytes) -> float:
    """Decode a record payload back into a USD price."""
    cents = int.from_bytes(value[:16], "big")
    return cents / PRICE_SCALE


@dataclass
class PriceFeed:
    """Off-chain producer half of the price feed (drives gPuts via the DO)."""

    data_owner: DataOwner
    record_size_bytes: int = 32
    pokes: int = 0

    def poke(self, asset: str, price_usd: float) -> None:
        """Publish a new price for ``asset`` (buffered until the epoch ends)."""
        self.data_owner.put(asset, encode_price(price_usd, self.record_size_bytes))
        self.pokes += 1

    def poke_many(self, prices: Dict[str, float]) -> None:
        """Publish a batch of asset prices in one gPuts."""
        self.data_owner.gPuts(
            [(asset, encode_price(price, self.record_size_bytes)) for asset, price in prices.items()]
        )
        self.pokes += len(prices)


class PriceFeedConsumer(DataConsumerContract):
    """DU contract that remembers the latest verified price per asset."""

    def __init__(self, address: str, storage_manager: str) -> None:
        super().__init__(address, storage_manager)
        self.latest_prices: Dict[str, float] = {}

    def peek(self, ctx: ExecutionContext, asset: str) -> Optional[bytes]:
        """Read the current price of ``asset`` through the feed."""
        return self.query_feed(ctx, asset, callback="on_price")

    def on_price(self, ctx: ExecutionContext, key: str, value: bytes, **context) -> None:
        """Callback invoked with the verified price record."""
        ctx.meter.charge(ctx.meter.schedule.memory_cost(1), "callback")
        self.latest_prices[key] = decode_price(value)

    def on_data(self, ctx: ExecutionContext, key: str, value: bytes, **context) -> None:
        self.on_price(ctx, key, value, **context)

    def price_of(self, asset: str) -> Optional[float]:
        """Off-chain view of the most recent verified price."""
        return self.latest_prices.get(asset)
