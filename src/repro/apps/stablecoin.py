"""SCoin: an Ether-collateralised stablecoin backed by a GRuB price feed.

This is the paper's first case study (Section 4.1): a simplified MakerDAO.
``SCoinIssuer`` controls the supply of an ERC20 token (SCoin) that is pegged
to one USD and indirectly backed by Ether:

* ``issue`` — a buyer sends Ether; the issuer reads the current ETH/USD price
  from the feed and mints ``ether * price / collateral_ratio`` SCoin (the
  remainder stays locked as over-collateralisation),
* ``redeem`` — a holder returns SCoin; the issuer reads the price again and
  releases one USD worth of Ether per SCoin before burning them.

Both operations *require* a fresh price, so every issue/redeem drives a read
through the data feed with a callback into the issuer; the gas of that read
is feed-layer gas and the minting/burning/escrow bookkeeping is
application-layer gas — the two columns of Table 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.chain.accounts import WEI_PER_ETHER, AccountRegistry
from repro.chain.vm import ExecutionContext
from repro.apps.erc20 import ERC20Token
from repro.apps.price_feed import PriceFeed, decode_price
from repro.core.data_consumer import DataConsumerContract
from repro.core.grub import GrubSystem

ETH_ASSET_KEY = "ETH-USD"
SCOIN_DECIMALS = 100
"""SCoin amounts are tracked in integer cents of a coin."""


class SCoinIssuer(DataConsumerContract):
    """Controls SCoin supply against Ether collateral using the price feed."""

    def __init__(
        self,
        address: str,
        storage_manager: str,
        token: ERC20Token,
        accounts: AccountRegistry,
        collateral_ratio: float = 1.5,
        asset_key: str = ETH_ASSET_KEY,
    ) -> None:
        super().__init__(address, storage_manager)
        self.token = token
        self.accounts = accounts
        self.collateral_ratio = collateral_ratio
        self.asset_key = asset_key
        self.issues = 0
        self.redeems = 0
        self.locked_collateral_wei = 0

    # -- public entry points ---------------------------------------------------

    def issue(self, ctx: ExecutionContext, buyer: str, ether_amount: float) -> None:
        """Buy SCoin with Ether; minting happens in the price callback."""
        wei = int(ether_amount * WEI_PER_ETHER)
        self.require(wei > 0, "must send Ether to issue SCoin")
        self.accounts.transfer(buyer, self.address, wei)
        self.locked_collateral_wei += wei
        self.query_feed(
            ctx,
            self.asset_key,
            callback="on_price_for_issue",
            callback_context={"buyer": buyer, "wei": wei},
        )

    def redeem(self, ctx: ExecutionContext, seller: str, scoin_cents: int) -> None:
        """Return SCoin for one USD worth of Ether each; settled in the callback."""
        self.require(scoin_cents > 0, "redeem amount must be positive")
        self.require(
            self.token.peek_balance(seller) >= scoin_cents, "seller holds too few SCoin"
        )
        self.query_feed(
            ctx,
            self.asset_key,
            callback="on_price_for_redeem",
            callback_context={"seller": seller, "scoin_cents": scoin_cents},
        )

    # -- price callbacks ------------------------------------------------------------

    def on_price_for_issue(
        self, ctx: ExecutionContext, key: str, value: bytes, buyer: str, wei: int, **_: object
    ) -> None:
        price = decode_price(value)
        self.require(price > 0, "price feed returned a non-positive price")
        usd_value = (wei / WEI_PER_ETHER) * price
        scoin_cents = int(usd_value / self.collateral_ratio * SCOIN_DECIMALS)
        self.require(scoin_cents > 0, "collateral too small to issue any SCoin")
        self.token.mint(ctx.child(self.address, layer=ctx.meter.layer), buyer, scoin_cents)
        self.storage.store(ctx.meter, f"issued:{buyer}", scoin_cents.to_bytes(32, "big"))
        self.issues += 1
        self.emit(ctx, "Issued", buyer=buyer, scoin_cents=scoin_cents, price=price)

    def on_price_for_redeem(
        self,
        ctx: ExecutionContext,
        key: str,
        value: bytes,
        seller: str,
        scoin_cents: int,
        **_: object,
    ) -> None:
        price = decode_price(value)
        self.require(price > 0, "price feed returned a non-positive price")
        usd_value = scoin_cents / SCOIN_DECIMALS
        wei_owed = int(usd_value / price * WEI_PER_ETHER)
        wei_owed = min(wei_owed, self.locked_collateral_wei)
        self.token.burn(ctx.child(self.address, layer=ctx.meter.layer), seller, scoin_cents)
        if wei_owed > 0:
            self.accounts.transfer(self.address, seller, wei_owed)
            self.locked_collateral_wei -= wei_owed
        self.storage.store(ctx.meter, f"redeemed:{seller}", scoin_cents.to_bytes(32, "big"))
        self.redeems += 1
        self.emit(ctx, "Redeemed", seller=seller, scoin_cents=scoin_cents, price=price)

    # -- generic feed callback (reads not tied to issue/redeem) ------------------------

    def on_data(self, ctx: ExecutionContext, key: str, value: bytes, **context) -> None:
        if "buyer" in context:
            self.on_price_for_issue(ctx, key, value, **context)
        elif "seller" in context:
            self.on_price_for_redeem(ctx, key, value, **context)
        else:
            ctx.meter.charge(ctx.meter.schedule.memory_cost(1), "callback")
            self.received.append({"key": key, "value": value, **context})

    # -- inspection -----------------------------------------------------------------------

    def collateralisation(self, current_price: float) -> Optional[float]:
        """Collateral value divided by outstanding SCoin value (off-chain view)."""
        outstanding = self.token.total_supply / SCOIN_DECIMALS
        if outstanding == 0:
            return None
        collateral_usd = self.locked_collateral_wei / WEI_PER_ETHER * current_price
        return collateral_usd / outstanding


@dataclass
class StablecoinDeployment:
    """Everything needed to run the stablecoin case study on one GRuB system."""

    system: GrubSystem
    feed: PriceFeed
    issuer: SCoinIssuer
    token: ERC20Token
    accounts: AccountRegistry


def build_stablecoin_deployment(
    system: GrubSystem,
    collateral_ratio: float = 1.5,
    asset_key: str = ETH_ASSET_KEY,
) -> StablecoinDeployment:
    """Deploy the SCoin token and issuer on an existing GRuB (or baseline) system.

    The issuer replaces the system's default data consumer so that feed reads
    driven by the workload invoke the stablecoin's callbacks, exactly like the
    paper's experiment that routes each ``peek()`` into ``issue()`` or
    ``redeem()``.
    """
    accounts = AccountRegistry()
    token = ERC20Token("scoin-token", name="SCoin", symbol="SCN", minter="scoin-issuer")
    system.chain.deploy(token)
    issuer = SCoinIssuer(
        "scoin-issuer",
        system.storage_manager.address,
        token=token,
        accounts=accounts,
        collateral_ratio=collateral_ratio,
        asset_key=asset_key,
    )
    system.chain.deploy(issuer)
    accounts.create(issuer.address)
    system.consumer = issuer
    feed = PriceFeed(data_owner=system.data_owner, record_size_bytes=system.config.record_size_bytes)
    return StablecoinDeployment(
        system=system, feed=feed, issuer=issuer, token=token, accounts=accounts
    )
