"""Fixed-ratio synthetic workloads (the paper's microbenchmarks).

The microbenchmark workloads of Figures 3, 7, 8 and 11 are "repeated sequences
of X1 writes followed by X2 reads (all under the single data key)", swept over
the read-to-write ratio ``X2/X1`` from write-only to 256 reads per write.
:class:`SyntheticWorkload` generates exactly that pattern (optionally over
several keys), and :class:`AlternatingPhaseWorkload` produces the worst-case
and phase-shifting sequences used by the algorithm-comparison experiments.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.common.types import Operation


def _ratio_to_counts(read_write_ratio: float) -> tuple[int, int]:
    """Translate a read/write ratio into integer (writes, reads) per cycle.

    Ratios below one become multiple writes per read (e.g. 0.125 → 8 writes,
    1 read); ratios of one or more become one write followed by ``ratio``
    reads.  A ratio of zero is a write-only workload.
    """
    if read_write_ratio < 0:
        raise ValueError("read/write ratio must be non-negative")
    if read_write_ratio == 0:
        return 1, 0
    if read_write_ratio >= 1:
        return 1, int(round(read_write_ratio))
    writes = int(round(1.0 / read_write_ratio))
    return max(1, writes), 1


@dataclass
class SyntheticWorkload:
    """Repeated ``X1 writes then X2 reads`` cycles at a fixed ratio."""

    read_write_ratio: float = 1.0
    num_operations: int = 256
    num_keys: int = 1
    record_size_bytes: int = 32
    key_prefix: str = "asset"
    seed: int = 11

    def operations(self) -> List[Operation]:
        writes_per_cycle, reads_per_cycle = _ratio_to_counts(self.read_write_ratio)
        rng = random.Random(self.seed)
        ops: List[Operation] = []
        version = 0
        key_index = 0
        while len(ops) < self.num_operations:
            key = f"{self.key_prefix}-{key_index % max(1, self.num_keys):05d}"
            for _ in range(writes_per_cycle):
                if len(ops) >= self.num_operations:
                    break
                version += 1
                value = self._value_for(version, rng)
                ops.append(Operation.write(key, value, sequence=len(ops)))
            for _ in range(reads_per_cycle):
                if len(ops) >= self.num_operations:
                    break
                ops.append(
                    Operation.read(key, size_bytes=self.record_size_bytes, sequence=len(ops))
                )
            key_index += 1
        return ops

    def _value_for(self, version: int, rng: random.Random) -> bytes:
        payload = version.to_bytes(8, "big")
        filler = bytes(rng.randrange(256) for _ in range(max(0, self.record_size_bytes - 8)))
        return (payload + filler)[: self.record_size_bytes]


@dataclass
class AlternatingPhaseWorkload:
    """Workload that alternates between ratio regimes across phases.

    Used to study convergence: each phase runs ``operations_per_phase``
    operations at its own read/write ratio, over a shared key population, so a
    dynamic scheme must re-learn the placement at every phase boundary.
    """

    phase_ratios: Sequence[float] = (0.0, 8.0)
    operations_per_phase: int = 128
    num_keys: int = 4
    record_size_bytes: int = 32
    key_prefix: str = "asset"
    seed: int = 13

    def operations(self) -> List[Operation]:
        ops: List[Operation] = []
        for phase_index, ratio in enumerate(self.phase_ratios):
            phase = SyntheticWorkload(
                read_write_ratio=ratio,
                num_operations=self.operations_per_phase,
                num_keys=self.num_keys,
                record_size_bytes=self.record_size_bytes,
                key_prefix=self.key_prefix,
                seed=self.seed + phase_index,
            )
            for op in phase.operations():
                ops.append(
                    Operation(
                        kind=op.kind,
                        key=op.key,
                        value=op.value,
                        size_bytes=op.size_bytes,
                        scan_length=op.scan_length,
                        sequence=len(ops),
                    )
                )
        return ops

    def phase_boundaries(self) -> List[int]:
        """Operation indices at which each phase starts (for plotting)."""
        return [index * self.operations_per_phase for index in range(len(self.phase_ratios))]


@dataclass
class WorstCaseMemorylessWorkload:
    """The adversarial sequence from Theorem A.1: every write followed by exactly K reads.

    Every replica the memoryless algorithm creates is immediately invalidated
    by the next write, so the algorithm pays the replication cost without ever
    serving a read from the replica — the worst case its competitiveness bound
    is stated for.
    """

    k: int = 2
    cycles: int = 32
    record_size_bytes: int = 32
    key: str = "victim"

    def operations(self) -> List[Operation]:
        ops: List[Operation] = []
        for cycle in range(self.cycles):
            ops.append(
                Operation.write(
                    self.key, cycle.to_bytes(self.record_size_bytes, "big"), sequence=len(ops)
                )
            )
            for _ in range(self.k):
                ops.append(
                    Operation.read(self.key, size_bytes=self.record_size_bytes, sequence=len(ops))
                )
        return ops
