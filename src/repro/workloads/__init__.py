"""Workload generators for the GRuB evaluation.

Every generator produces a list of :class:`~repro.common.types.Operation`
objects that the system facades consume:

* :class:`SyntheticWorkload` — repeated read/write sequences at a fixed
  read-to-write ratio (the microbenchmarks of Figures 3, 7, 8 and 11),
* :class:`EthPriceOracleTrace` — a seeded synthetic reproduction of the 5-day
  ethPriceOracle call trace, matching the reads-per-write distribution of
  Table 1 (Figures 2, 5, 15; Tables 3, 5),
* :class:`BtcRelayTrace` — a seeded synthetic reproduction of the BtcRelay
  block-read workload, matching Table 6 and the two-phase structure of
  Figure 6,
* :mod:`repro.workloads.ycsb` — YCSB core workloads A/B/E/F plus the phase
  mixer used by Figures 9, 13 and 14 and Table 4,
* :mod:`repro.workloads.fleet_churn` — seeded elastic-fleet schedules
  (tenant arrivals/departures plus NFT-mint burst tenants) for the
  multi-tenant gateway's churn benchmark and property harness.
"""

from repro.workloads.operations import WorkloadStats, characterise
from repro.workloads.synthetic import SyntheticWorkload, AlternatingPhaseWorkload
from repro.workloads.fleet_churn import (
    ChurnSchedule,
    FleetChurnWorkload,
    TenantJoin,
    TenantLeave,
)
from repro.workloads.eth_price_oracle import EthPriceOracleTrace, ETH_PRICE_ORACLE_DISTRIBUTION
from repro.workloads.btcrelay_trace import BtcRelayTrace, BTCRELAY_DISTRIBUTION
from repro.workloads.ycsb import (
    YCSBWorkload,
    YCSBConfig,
    ZipfianGenerator,
    MixedYCSBWorkload,
    WORKLOAD_PRESETS,
)

__all__ = [
    "WorkloadStats",
    "characterise",
    "SyntheticWorkload",
    "AlternatingPhaseWorkload",
    "ChurnSchedule",
    "FleetChurnWorkload",
    "TenantJoin",
    "TenantLeave",
    "EthPriceOracleTrace",
    "ETH_PRICE_ORACLE_DISTRIBUTION",
    "BtcRelayTrace",
    "BTCRELAY_DISTRIBUTION",
    "YCSBWorkload",
    "YCSBConfig",
    "ZipfianGenerator",
    "MixedYCSBWorkload",
    "WORKLOAD_PRESETS",
]
