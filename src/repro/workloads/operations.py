"""Workload characterisation helpers.

The paper characterises its real-world traces by the distribution of the
number of reads immediately following each write (Table 1 for ethPriceOracle,
Table 6 for BtcRelay, Figures 2 and 16a as time series).  This module computes
those statistics from any operation sequence so the synthetic trace generators
can be validated against the published distributions and the characterisation
benchmark can print the same tables.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.common.types import Operation


@dataclass
class WorkloadStats:
    """Summary statistics of a workload trace."""

    total_operations: int
    reads: int
    writes: int
    reads_after_write: List[int]
    distinct_keys: int
    per_key_reads: Dict[str, int] = field(default_factory=dict)
    per_key_writes: Dict[str, int] = field(default_factory=dict)

    @property
    def read_write_ratio(self) -> float:
        if self.writes == 0:
            return float("inf") if self.reads else 0.0
        return self.reads / self.writes

    def reads_per_write_distribution(self) -> Dict[int, float]:
        """Fraction of writes followed by exactly ``n`` reads (Table 1 / Table 6)."""
        if not self.reads_after_write:
            return {}
        counts = Counter(self.reads_after_write)
        total = len(self.reads_after_write)
        return {n: counts[n] / total for n in sorted(counts)}

    def reads_per_write_series(self) -> List[int]:
        """The Figure 2 / Figure 16a series: reads following each write, in order."""
        return list(self.reads_after_write)

    def distribution_table(self) -> List[Tuple[int, float]]:
        """``(#reads, percentage)`` rows formatted like the paper's tables."""
        return [(n, fraction * 100.0) for n, fraction in self.reads_per_write_distribution().items()]


def characterise(operations: Sequence[Operation]) -> WorkloadStats:
    """Compute :class:`WorkloadStats` for a trace.

    "Reads after a write" follows the paper's definition: for each write in the
    global trace, the number of reads *of the same key* that occur before the
    next write of that key.  Reads that precede the first write of their key
    are not attributed to any write (they read the preloaded value).
    """
    reads = 0
    writes = 0
    reads_after_write: List[int] = []
    open_interval: Dict[str, int] = {}
    per_key_reads: Dict[str, int] = defaultdict(int)
    per_key_writes: Dict[str, int] = defaultdict(int)
    write_order: List[str] = []

    for op in operations:
        if op.is_write:
            writes += 1
            per_key_writes[op.key] += 1
            if op.key in open_interval:
                reads_after_write.append(open_interval[op.key])
            write_order.append(op.key)
            open_interval[op.key] = 0
        else:
            reads += 1
            per_key_reads[op.key] += 1
            if op.key in open_interval:
                open_interval[op.key] += 1
            # Reads of keys that were never written (preloaded records) are
            # not attributed to any write interval.

    # Close the final interval of every written key, so every write has
    # exactly one entry in ``reads_after_write``.
    for key in open_interval:
        reads_after_write.append(open_interval[key])

    distinct = set(per_key_reads) | set(per_key_writes)
    return WorkloadStats(
        total_operations=len(operations),
        reads=reads,
        writes=writes,
        reads_after_write=reads_after_write,
        distinct_keys=len(distinct),
        per_key_reads=dict(per_key_reads),
        per_key_writes=dict(per_key_writes),
    )


def interleave_phases(phases: Iterable[Sequence[Operation]]) -> List[Operation]:
    """Concatenate workload phases, renumbering operation sequence indices."""
    combined: List[Operation] = []
    for phase in phases:
        for op in phase:
            combined.append(
                Operation(
                    kind=op.kind,
                    key=op.key,
                    value=op.value,
                    size_bytes=op.size_bytes,
                    scan_length=op.scan_length,
                    sequence=len(combined),
                )
            )
    return combined
