"""Synthetic reproduction of the BtcRelay side-chain feed workload.

The paper builds a benchmark from the mint/burn transaction history of four
Bitcoin-pegged ERC20 tokens: every mint or burn verifies an SPV proof against
six recent Bitcoin blocks, so the token trace converts into a history of
Bitcoin-block reads on Ethereum, joined with Bitcoin's native block-write
sequence (one new block header roughly every ten minutes).  The resulting
workload (Table 6 / Figure 16) is append-style — every write creates a new
key — and heavily write-dominated (93.7% of blocks are never read), with a
second half that becomes comparatively read-intensive (Figure 6).

This generator reproduces those properties with a seeded synthetic trace:
block headers are appended continuously while reads target recently produced
blocks with a configurable per-phase intensity, matching the reads-per-write
distribution of Table 6 and the two-phase structure of Figure 6.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List

from repro.common.types import Operation

#: Reads-per-write distribution from Table 6 of the paper (percentages).
BTCRELAY_DISTRIBUTION: Dict[int, float] = {
    0: 93.7,
    1: 5.30,
    2: 0.77,
    3: 0.15,
    4: 0.05,
    5: 0.04,
    6: 0.02,
    7: 0.01,
}

#: Each mint/burn verification reads this many recent blocks (SPV confirmation depth).
BLOCKS_PER_VERIFICATION = 6


@dataclass
class BtcRelayTrace:
    """Seeded synthetic BtcRelay workload.

    Attributes:
        num_blocks: number of Bitcoin block headers written to the feed.
        write_phase_fraction: fraction of the trace that forms the initial
            write-intensive phase (reads suppressed), reproducing the first
            ~25 epochs of Figure 6.
        read_boost: multiplier applied to read counts during the second,
            read-intensive phase.
        header_size_bytes: encoded size of a block-header record (Bitcoin
            headers are 80 bytes, padded to three words).
        recent_window: reads target blocks within this many positions of the
            chain tip (Figure 16b shows most reads occur within hours of the
            block being produced).
    """

    num_blocks: int = 204
    write_phase_fraction: float = 0.5
    read_boost: float = 1.0
    header_size_bytes: int = 96
    recent_window: int = 12
    #: Probability that a mint/burn verification happens after a block in the
    #: read-intensive phase; each verification reads ``verification_depth``
    #: consecutive recent headers (six confirmations in the paper).
    verification_rate: float = 0.9
    verification_depth: int = 6
    seed: int = 2020

    def operations(self) -> List[Operation]:
        rng = random.Random(self.seed)
        reads_choices, weights = zip(*sorted(BTCRELAY_DISTRIBUTION.items()))
        ops: List[Operation] = []
        for height in range(self.num_blocks):
            key = self.block_key(height)
            ops.append(Operation.write(key, self._header_bytes(height, rng), sequence=len(ops)))
            base_reads = rng.choices(reads_choices, weights=weights, k=1)[0]
            in_write_phase = height < self.num_blocks * self.write_phase_fraction
            targets: List[str] = []
            if in_write_phase:
                reads = base_reads if rng.random() < 0.25 else 0
                for _ in range(reads):
                    target_height = max(0, height - rng.randrange(self.recent_window))
                    targets.append(self.block_key(target_height))
            else:
                reads = int(round(base_reads * self.read_boost))
                for _ in range(reads):
                    target_height = max(0, height - rng.randrange(self.recent_window))
                    targets.append(self.block_key(target_height))
                if rng.random() < self.verification_rate:
                    # A token mint/burn verifies an SPV proof against the six
                    # most recent confirmed headers, producing a run of reads
                    # over consecutive recent blocks.
                    start = max(0, height - self.verification_depth - rng.randrange(3))
                    for offset in range(self.verification_depth):
                        targets.append(self.block_key(min(height, start + offset)))
            for target in targets:
                ops.append(
                    Operation.read(
                        target, size_bytes=self.header_size_bytes, sequence=len(ops)
                    )
                )
        return ops

    def block_key(self, height: int) -> str:
        return f"btc-block-{height:08d}"

    def reads_per_write_target(self) -> Dict[int, float]:
        """The Table 6 distribution the base read counts are drawn from."""
        return dict(BTCRELAY_DISTRIBUTION)

    def _header_bytes(self, height: int, rng: random.Random) -> bytes:
        header = height.to_bytes(8, "big") + bytes(rng.randrange(256) for _ in range(24))
        if len(header) < self.header_size_bytes:
            header = header + b"\x00" * (self.header_size_bytes - len(header))
        return header[: self.header_size_bytes]
