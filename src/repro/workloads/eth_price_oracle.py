"""Synthetic reproduction of the ethPriceOracle call trace.

The paper collected the ``poke()`` (price update) and ``peek()`` (price read)
call trace of MakerDAO's ethPriceOracle contract over five days and
characterised it by the number of reads following each write (Table 1): about
70% of writes are followed by no read at all, 16% by one read, and a long tail
reaches 20 reads after a single write.

The real trace is not redistributable, so this module generates a seeded
synthetic trace whose reads-per-write distribution matches Table 1 and whose
length matches the published plot (on the order of 790 writes over five
days).  That is the property the evaluation depends on: the gas of every
scheme is a function of the per-key read/write interleaving, not of the
absolute timestamps.

The generator can also spread updates over several assets (the paper's
Figure 5 experiment configures a 4096-record price feed where each ``gPuts``
batches updates of ten assets, duplicating the Ether price).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List

from repro.common.types import Operation

#: Reads-per-write distribution from Table 1 of the paper (percentages).
ETH_PRICE_ORACLE_DISTRIBUTION: Dict[int, float] = {
    0: 70.4,
    1: 16.0,
    2: 6.46,
    3: 2.91,
    4: 1.52,
    5: 0.76,
    6: 0.63,
    7: 0.25,
    8: 0.13,
    9: 0.25,
    10: 0.13,
    12: 0.13,
    13: 0.25,
    17: 0.13,
    20: 0.13,
}


@dataclass
class EthPriceOracleTrace:
    """Seeded synthetic ethPriceOracle workload matching Table 1.

    Attributes:
        num_writes: number of price updates (poke calls) to generate; the
            paper's 5-day trace contains roughly 790.
        assets_per_update: how many asset prices each update refreshes (the
            paper batches 10 per gPuts in the Figure 5 experiment).
        num_assets: size of the price-feed key space (the paper preloads a
            4096-record store).
        record_size_bytes: encoded size of one price record.
        read_fanout_assets: how many of the just-updated assets each read
            touches; 1 keeps the per-asset distribution identical to Table 1.
    """

    num_writes: int = 790
    assets_per_update: int = 1
    num_assets: int = 64
    record_size_bytes: int = 32
    seed: int = 2018
    base_price_usd: float = 150.0
    #: How many reads each trace read event issues (a consumer checking the
    #: prices of several collateral assets); 1 keeps the Table 1 distribution
    #: exact for the hot asset.
    read_fanout: int = 1
    #: Reads concentrate on this many "hot" assets (the Ether price in the
    #: paper's stablecoin deployment); the remaining assets are written but
    #: rarely read, which is the asymmetry the adaptive policy exploits.
    hot_assets: int = 1
    #: Spread each write's reads over the steps until the next update (the
    #: real trace's peeks arrive between pokes).  Disable to emit reads
    #: immediately after their write, which reproduces Table 1 exactly.
    spread_reads: bool = True

    def operations(self) -> List[Operation]:
        rng = random.Random(self.seed)
        reads_choices, weights = zip(*sorted(ETH_PRICE_ORACLE_DISTRIBUTION.items()))
        price = self.base_price_usd
        #: reads scheduled for a future write step: step index -> list of keys.
        scheduled_reads: Dict[int, List[str]] = {}
        steps: List[List[Operation]] = []
        for write_index in range(self.num_writes):
            step_ops: List[Operation] = []
            price = max(1.0, price * (1.0 + rng.gauss(0, 0.003)))
            touched = self._assets_for_update(write_index)
            for asset in touched:
                value = self._encode_price(price, asset)
                step_ops.append(Operation.write(asset, value))
            # Draw the reads-per-write count for the hot asset from Table 1 and
            # spread those reads over the steps until the hot asset's next
            # update, matching the real trace where peeks arrive between pokes.
            reads = rng.choices(reads_choices, weights=weights, k=1)[0]
            window = max(1, self.num_assets // max(1, self.assets_per_update))
            window = min(window, 8)
            for _ in range(reads * max(1, self.read_fanout)):
                hot_index = rng.randrange(max(1, self.hot_assets))
                target = self.asset_key(hot_index)
                offset = rng.randrange(window) if self.spread_reads else 0
                scheduled_reads.setdefault(write_index + offset, []).append(target)
            steps.append(step_ops)

        ops: List[Operation] = []
        for step_index, step_ops in enumerate(steps):
            for op in step_ops:
                ops.append(
                    Operation(
                        kind=op.kind,
                        key=op.key,
                        value=op.value,
                        size_bytes=op.size_bytes,
                        sequence=len(ops),
                    )
                )
            for target in scheduled_reads.get(step_index, []):
                ops.append(
                    Operation.read(
                        target, size_bytes=self.record_size_bytes, sequence=len(ops)
                    )
                )
        # Reads scheduled past the final write are appended at the end.
        for step_index in sorted(k for k in scheduled_reads if k >= len(steps)):
            for target in scheduled_reads[step_index]:
                ops.append(
                    Operation.read(target, size_bytes=self.record_size_bytes, sequence=len(ops))
                )
        return ops

    def reads_per_write_target(self) -> Dict[int, float]:
        """The Table 1 distribution this generator is seeded to reproduce."""
        return dict(ETH_PRICE_ORACLE_DISTRIBUTION)

    def _assets_for_update(self, write_index: int) -> List[str]:
        """The asset keys refreshed by one update batch."""
        assets: List[str] = []
        for offset in range(self.assets_per_update):
            index = (write_index * self.assets_per_update + offset) % self.num_assets
            assets.append(self.asset_key(index))
        # The Ether price is always part of the batch (it is the asset the
        # stablecoin case study reads).
        ether = self.asset_key(0)
        if ether not in assets:
            assets[0] = ether
        return assets

    def asset_key(self, index: int) -> str:
        return "ETH-USD" if index == 0 else f"ASSET-{index:04d}-USD"

    def _encode_price(self, price: float, asset: str) -> bytes:
        cents = int(round(price * 100))
        payload = cents.to_bytes(16, "big") + asset.encode("utf-8")
        if len(payload) < self.record_size_bytes:
            payload = payload + b"\x00" * (self.record_size_bytes - len(payload))
        return payload[: self.record_size_bytes]
