"""Fleet-churn workload generator: tenants that come and go mid-run.

The multi-tenant gateway's elastic scheduler admits and evicts feeds at epoch
boundaries; this module generates the *schedules* that exercise it — a
resident base fleet plus seeded arrival/departure events — the way
:mod:`repro.workloads.synthetic` generates single-feed operation sequences.

Three tenant shapes are produced:

* **resident tenants** — present from epoch 0, mixed read/write synthetic
  workloads over private key ranges, heterogeneous decision algorithms; a
  configurable few carry tight per-epoch quotas (``max_ops_per_epoch`` /
  ``max_gas_per_epoch``) so quota deferral is always exercised;
* **joining tenants** — ordinary tenants that arrive at a mid-run epoch
  boundary with their whole workload;
* **NFT-mint burst tenants** — short-lived arrivals modelled on an NFT mint:
  a dense burst of writes (the mint) followed by heavy reads concentrated on
  the first few tokens (the trading frenzy), departing a few epochs later.
  These are the shard planner's stress case: a new tenant with no gas
  history whose real load is far above a resident feed's.

Every stochastic choice flows from one ``random.Random(seed)``, so a schedule
is reproducible from its seed — which is what the property harness and the
churn benchmark pin their invariants on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.common.errors import ConfigurationError
from repro.common.types import KVRecord, Operation
from repro.core.config import GrubConfig
from repro.gateway.registry import FeedSpec
from repro.workloads.synthetic import SyntheticWorkload


@dataclass(frozen=True)
class TenantJoin:
    """One tenant arrival: the spec plus the workload it brings along."""

    at_epoch: int
    spec: FeedSpec
    operations: Tuple[Operation, ...]

    @property
    def feed_id(self) -> str:
        return self.spec.feed_id


@dataclass(frozen=True)
class TenantLeave:
    """One tenant departure (the feed does not run epoch ``at_epoch``)."""

    at_epoch: int
    feed_id: str


@dataclass
class ChurnSchedule:
    """A complete elastic-fleet scenario: initial fleet + churn events."""

    epoch_size: int
    initial: List[TenantJoin] = field(default_factory=list)
    joins: List[TenantJoin] = field(default_factory=list)
    leaves: List[TenantLeave] = field(default_factory=list)
    #: With correlated hot keys: the epochs every resident feed bursts in,
    #: and the shared key suffixes the bursts read (empty otherwise).
    hot_burst_epochs: List[int] = field(default_factory=list)
    hot_suffixes: List[str] = field(default_factory=list)

    def install(self, registry, scheduler) -> Dict[str, List[Operation]]:
        """Create the initial fleet on ``registry``, queue every churn event
        on ``scheduler``, and return the initial workloads for ``run()``."""
        workloads: Dict[str, List[Operation]] = {}
        for join in self.initial:
            registry.create_feed(join.spec)
            workloads[join.feed_id] = list(join.operations)
        for join in self.joins:
            scheduler.admit(join.spec, join.operations, at_epoch=join.at_epoch)
        for leave in self.leaves:
            scheduler.evict(leave.feed_id, at_epoch=leave.at_epoch)
        return workloads

    def admitted_op_counts(self) -> Dict[str, int]:
        """feed id → total operations admitted (for conservation checks)."""
        counts = {join.feed_id: len(join.operations) for join in self.initial}
        counts.update({join.feed_id: len(join.operations) for join in self.joins})
        return counts

    def quota_feed_ids(self) -> List[str]:
        """Feeds carrying an ops or gas quota, in schedule order."""
        return [
            join.feed_id
            for join in (*self.initial, *self.joins)
            if join.spec.max_ops_per_epoch is not None
            or join.spec.max_gas_per_epoch is not None
        ]

    @property
    def departures(self) -> Dict[str, int]:
        """feed id → departure epoch."""
        return {leave.feed_id: leave.at_epoch for leave in self.leaves}


_ALGORITHM_POOL = ("memoryless", "memoryless", "adaptive-k1", "always", "memorizing")


@dataclass
class FleetChurnWorkload:
    """Seeded generator of :class:`ChurnSchedule` scenarios.

    Attributes:
        base_feeds: tenants resident from epoch 0.
        joins: mid-run arrivals (``burst_tenants`` of them are NFT-mint
            shaped; the rest are ordinary synthetic tenants).
        leaves: mid-run departures.  Burst tenants always depart (their
            leaves count toward this total); the remainder is drawn from the
            resident fleet, never from quota-carrying feeds so the
            deferred-then-executed path stays observable to the end.
        horizon_epochs: epoch range churn events are scheduled within.
        ops_per_feed: workload length of a resident tenant; arrivals get a
            length proportional to the epochs they have left.
        quota_feeds: resident tenants given ``max_ops_per_epoch`` (half the
            epoch size, so deferral always triggers); the first of them also
            gets a ``max_gas_per_epoch`` cap.
        correlated_hot_keys: give every resident tenant the same small *hot
            keyset* (one record per shared suffix, preloaded) and splice
            synchronized read bursts over it into every resident workload at
            the same epoch boundaries.  This is the cross-feed correlation
            stub from the roadmap: load spikes that hit all feeds in the same
            epochs (the shard planner sees every bin fill at once rather than
            independent noise averaging out) while the repeated hot reads
            exercise the replication decision and the read cache fleet-wide.
            Quota-carrying residents are *excluded* from the bursts: their
            per-epoch quotas defer operations, so a stream-offset splice would
            execute in a later epoch than the rest of the fleet — a burst
            that is not synchronized is exactly what this option must not
            silently produce.
        hot_keys: size of the shared hot keyset (per feed, same suffixes).
        hot_burst_epochs: how many synchronized burst epochs to schedule.
    """

    seed: int = 11
    base_feeds: int = 8
    joins: int = 4
    leaves: int = 4
    burst_tenants: int = 2
    horizon_epochs: int = 10
    epoch_size: int = 8
    ops_per_feed: int = 48
    quota_feeds: int = 1
    preload_keys: int = 8
    record_size_bytes: int = 32
    correlated_hot_keys: bool = False
    hot_keys: int = 4
    hot_burst_epochs: int = 2

    def __post_init__(self) -> None:
        if self.base_feeds <= 0:
            raise ConfigurationError("base_feeds must be positive")
        if self.horizon_epochs < 4:
            raise ConfigurationError("horizon_epochs must be at least 4")
        if self.burst_tenants > self.joins:
            raise ConfigurationError("burst_tenants cannot exceed joins")
        if self.burst_tenants > self.leaves:
            raise ConfigurationError(
                "every burst tenant departs, so leaves must be >= burst_tenants"
            )
        if self.quota_feeds > self.base_feeds:
            raise ConfigurationError("quota_feeds cannot exceed base_feeds")
        resident_leavers = self.leaves - self.burst_tenants
        if resident_leavers > self.base_feeds - self.quota_feeds:
            raise ConfigurationError(
                "not enough unquota'd resident feeds to supply the requested leaves"
            )
        if self.correlated_hot_keys:
            if self.hot_keys <= 0:
                raise ConfigurationError("hot_keys must be positive")
            if not 0 < self.hot_burst_epochs < self.horizon_epochs:
                raise ConfigurationError(
                    "hot_burst_epochs must fall inside the horizon"
                )
            if self.quota_feeds >= self.base_feeds:
                raise ConfigurationError(
                    "correlated hot keys need at least one unquota'd resident "
                    "(quota feeds are excluded from the synchronized bursts)"
                )

    # -- tenant builders ------------------------------------------------------

    def _config(self, rng: random.Random) -> GrubConfig:
        return GrubConfig(
            epoch_size=self.epoch_size,
            algorithm=rng.choice(_ALGORITHM_POOL),
            k=rng.choice((1, 2, 4)),
        )

    def _preload(self, prefix: str) -> List[KVRecord]:
        return [
            KVRecord.make(f"{prefix}-{index:05d}", bytes(self.record_size_bytes))
            for index in range(self.preload_keys)
        ]

    def _synthetic_ops(
        self, prefix: str, num_operations: int, rng: random.Random
    ) -> List[Operation]:
        return SyntheticWorkload(
            read_write_ratio=float(rng.choice((1, 2, 4, 8))),
            num_operations=num_operations,
            num_keys=max(2, self.preload_keys // 2),
            record_size_bytes=self.record_size_bytes,
            key_prefix=prefix,
            seed=rng.randrange(1, 1 << 30),
        ).operations()

    def _mint_burst_ops(self, prefix: str, rng: random.Random) -> List[Operation]:
        """The NFT-mint shape: mint writes, then hot reads of the early tokens."""
        mint_count = self.epoch_size + rng.randrange(self.epoch_size)
        reads = 2 * mint_count
        ops = [
            Operation.write(
                f"{prefix}-{index:04d}",
                index.to_bytes(self.record_size_bytes, "big"),
                sequence=index,
            )
            for index in range(mint_count)
        ]
        hot = max(1, mint_count // 4)
        for _ in range(reads):
            key = f"{prefix}-{rng.randrange(hot):04d}"
            ops.append(
                Operation.read(
                    key, size_bytes=self.record_size_bytes, sequence=len(ops)
                )
            )
        return ops

    def _hot_key(self, feed_id: str, suffix: str) -> str:
        """One feed's copy of a shared hot key (namespaced per feed, but the
        suffix — and therefore the access pattern — is fleet-wide)."""
        return f"{feed_id}-{suffix}"

    def _splice_hot_bursts(
        self,
        feed_id: str,
        operations: List[Operation],
        burst_epochs: List[int],
        burst_pattern: List[str],
    ) -> List[Operation]:
        """Insert one epoch-sized read burst over the hot keyset at every
        synchronized burst epoch (positions are epoch boundaries of the final
        spliced stream, so all feeds burst in the same lockstep epochs)."""
        spliced = list(operations)
        for burst_epoch in burst_epochs:
            position = min(burst_epoch * self.epoch_size, len(spliced))
            burst = [
                Operation.read(
                    self._hot_key(feed_id, suffix),
                    size_bytes=self.record_size_bytes,
                )
                for suffix in burst_pattern
            ]
            spliced[position:position] = burst
        return spliced

    # -- schedule generation --------------------------------------------------

    def generate(self) -> ChurnSchedule:
        rng = random.Random(self.seed)
        schedule = ChurnSchedule(epoch_size=self.epoch_size)

        # The shared hot keyset and its synchronized burst schedule: one
        # choice for the whole fleet, so every resident feed reads the same
        # suffixes in the same epochs (cross-feed correlated traffic).
        hot_suffixes: List[str] = []
        burst_epochs: List[int] = []
        burst_pattern: List[str] = []
        if self.correlated_hot_keys:
            hot_suffixes = [f"hot-{index:03d}" for index in range(self.hot_keys)]
            burst_epochs = sorted(
                rng.sample(range(1, self.horizon_epochs), self.hot_burst_epochs)
            )
            burst_pattern = [
                hot_suffixes[rng.randrange(len(hot_suffixes))]
                for _ in range(self.epoch_size)
            ]
            schedule.hot_burst_epochs = list(burst_epochs)
            schedule.hot_suffixes = list(hot_suffixes)

        # Resident fleet; the first `quota_feeds` carry tight quotas.
        for index in range(self.base_feeds):
            feed_id = f"res-{index:02d}"
            quota_ops = None
            quota_gas = None
            if index < self.quota_feeds:
                quota_ops = max(1, self.epoch_size // 2)
                if index == 0:
                    # A loose gas cap on top: high enough to let several ops
                    # through, low enough to bite on write-heavy epochs.
                    quota_gas = 400_000
            # Quota feeds are excluded from the synchronized bursts: their
            # ops/gas quotas defer operations to later epochs, so a splice at
            # a stream offset would *execute* epochs after the fleet-wide
            # spike (desynchronized by construction).
            in_burst_cohort = bool(burst_epochs) and quota_ops is None and quota_gas is None
            preload = self._preload(feed_id)
            if in_burst_cohort:
                preload.extend(
                    KVRecord.make(
                        self._hot_key(feed_id, suffix), bytes(self.record_size_bytes)
                    )
                    for suffix in hot_suffixes
                )
            spec = FeedSpec(
                feed_id=feed_id,
                config=self._config(rng),
                preload=preload,
                max_ops_per_epoch=quota_ops,
                max_gas_per_epoch=quota_gas,
            )
            operations = self._synthetic_ops(feed_id, self.ops_per_feed, rng)
            if in_burst_cohort:
                operations = self._splice_hot_bursts(
                    feed_id, operations, burst_epochs, burst_pattern
                )
            schedule.initial.append(
                TenantJoin(at_epoch=0, spec=spec, operations=tuple(operations))
            )

        # Mid-run arrivals: burst tenants first (each with a paired leave),
        # then ordinary joiners.
        last_join_epoch = max(1, self.horizon_epochs - 3)
        for index in range(self.joins):
            is_burst = index < self.burst_tenants
            feed_id = f"mint-{index:02d}" if is_burst else f"join-{index:02d}"
            at_epoch = rng.randint(1, last_join_epoch)
            spec = FeedSpec(feed_id=feed_id, config=self._config(rng))
            if is_burst:
                operations = self._mint_burst_ops(feed_id, rng)
                lifetime = rng.randint(2, 4)
                schedule.leaves.append(
                    TenantLeave(at_epoch=at_epoch + lifetime, feed_id=feed_id)
                )
            else:
                epochs_left = max(2, self.horizon_epochs - at_epoch)
                operations = self._synthetic_ops(
                    feed_id, epochs_left * self.epoch_size, rng
                )
            schedule.joins.append(
                TenantJoin(at_epoch=at_epoch, spec=spec, operations=tuple(operations))
            )

        # Resident departures, drawn without replacement from the unquota'd
        # residents so quota feeds survive to demonstrate eventual execution.
        candidates = [
            join.feed_id
            for join in schedule.initial[self.quota_feeds :]
        ]
        for feed_id in rng.sample(candidates, self.leaves - self.burst_tenants):
            schedule.leaves.append(
                TenantLeave(
                    at_epoch=rng.randint(2, self.horizon_epochs - 1), feed_id=feed_id
                )
            )
        return schedule
