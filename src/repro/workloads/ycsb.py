"""YCSB core workloads re-implemented for the GRuB macro-benchmarks.

The paper evaluates GRuB under mixes of the Yahoo! Cloud Serving Benchmark
core workloads (Cooper et al., SoCC 2010):

* **Workload A** — 50% reads / 50% updates, zipfian request distribution,
* **Workload B** — 95% reads / 5% updates, zipfian,
* **Workload E** — 95% scans / 5% inserts, zipfian start keys with uniform
  scan lengths,
* **Workload F** — 50% reads / 50% read-modify-writes, zipfian.

Each experiment preloads a record population, then runs four phases of
operations where each phase is produced by one of the mixed workloads
(e.g. A,B,A,B), reproducing the phase-shifting behaviour of Figures 9 and 13.

The zipfian generator follows the standard YCSB algorithm (Gray et al.'s
rejection-free zipfian with the scrambling step), so the popularity skew that
drives GRuB's replication decisions matches what the real benchmark would
produce.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.errors import ConfigurationError
from repro.common.types import KVRecord, Operation, OperationKind, ReplicationState


class ZipfianGenerator:
    """Zipfian-distributed integers in ``[0, item_count)`` (YCSB's algorithm)."""

    ZIPFIAN_CONSTANT = 0.99

    def __init__(self, item_count: int, rng: random.Random, constant: float = ZIPFIAN_CONSTANT) -> None:
        if item_count <= 0:
            raise ConfigurationError("zipfian item count must be positive")
        self.item_count = item_count
        self.rng = rng
        self.theta = constant
        self.alpha = 1.0 / (1.0 - self.theta)
        self.zetan = self._zeta(item_count)
        self.zeta2theta = self._zeta(2)
        self.eta = (1 - (2.0 / item_count) ** (1 - self.theta)) / (
            1 - self.zeta2theta / self.zetan
        )

    def _zeta(self, n: int) -> float:
        return sum(1.0 / (i ** self.theta) for i in range(1, n + 1))

    def next(self) -> int:
        u = self.rng.random()
        uz = u * self.zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5 ** self.theta:
            return 1
        return int(self.item_count * (self.eta * u - self.eta + 1) ** self.alpha)

    def next_scrambled(self) -> int:
        """YCSB's scrambled zipfian: spread the hot items across the key space."""
        raw = self.next()
        return _fnv_hash(raw) % self.item_count


def _fnv_hash(value: int) -> int:
    """64-bit FNV-1a over the integer's bytes (YCSB's scrambling hash)."""
    data = value.to_bytes(8, "big")
    hash_value = 0xCBF29CE484222325
    for byte in data:
        hash_value ^= byte
        hash_value = (hash_value * 0x100000001B3) % (1 << 64)
    return hash_value


class LatestGenerator:
    """YCSB's "latest" distribution: recent inserts are the most popular."""

    def __init__(self, item_count: int, rng: random.Random) -> None:
        self.item_count = item_count
        self.zipfian = ZipfianGenerator(item_count, rng)

    def next(self) -> int:
        offset = self.zipfian.next()
        return max(0, self.item_count - 1 - offset)

    def grow(self) -> None:
        self.item_count += 1
        self.zipfian = ZipfianGenerator(self.item_count, self.zipfian.rng)


@dataclass(frozen=True)
class YCSBConfig:
    """Operation mix of one YCSB core workload."""

    name: str
    read_proportion: float = 0.0
    update_proportion: float = 0.0
    insert_proportion: float = 0.0
    scan_proportion: float = 0.0
    read_modify_write_proportion: float = 0.0
    request_distribution: str = "zipfian"
    max_scan_length: int = 100

    def __post_init__(self) -> None:
        total = (
            self.read_proportion
            + self.update_proportion
            + self.insert_proportion
            + self.scan_proportion
            + self.read_modify_write_proportion
        )
        if not math.isclose(total, 1.0, abs_tol=1e-6):
            raise ConfigurationError(
                f"workload {self.name}: operation proportions must sum to 1, got {total}"
            )


#: The standard YCSB core workload definitions used by the paper.
WORKLOAD_PRESETS: Dict[str, YCSBConfig] = {
    "A": YCSBConfig(name="A", read_proportion=0.5, update_proportion=0.5),
    "B": YCSBConfig(name="B", read_proportion=0.95, update_proportion=0.05),
    "C": YCSBConfig(name="C", read_proportion=1.0),
    "D": YCSBConfig(
        name="D",
        read_proportion=0.95,
        insert_proportion=0.05,
        request_distribution="latest",
    ),
    "E": YCSBConfig(
        name="E",
        scan_proportion=0.95,
        insert_proportion=0.05,
        max_scan_length=16,
    ),
    "F": YCSBConfig(name="F", read_proportion=0.5, read_modify_write_proportion=0.5),
}


@dataclass
class YCSBWorkload:
    """One YCSB workload phase over a shared record population."""

    config: YCSBConfig
    record_count: int = 1024
    record_size_bytes: int = 1024
    operation_count: int = 4096
    seed: int = 42
    key_prefix: str = "user"
    _insert_cursor: int = field(default=0, init=False)

    def key_for(self, index: int) -> str:
        return f"{self.key_prefix}{index:012d}"

    def preload_records(self) -> List[KVRecord]:
        """The initial record population loaded before the measured run."""
        rng = random.Random(self.seed)
        records = []
        for index in range(self.record_count):
            records.append(
                KVRecord.make(
                    self.key_for(index),
                    self._payload(rng),
                    ReplicationState.NOT_REPLICATED,
                )
            )
        return records

    def operations(self, starting_population: Optional[int] = None) -> List[Operation]:
        """Generate one phase of operations against the current population."""
        rng = random.Random(self.seed + 1)
        population = starting_population or self.record_count
        self._insert_cursor = population
        if self.config.request_distribution == "latest":
            chooser: object = LatestGenerator(population, rng)
        elif self.config.request_distribution == "uniform":
            chooser = None
        else:
            chooser = ZipfianGenerator(population, rng)

        ops: List[Operation] = []
        for _ in range(self.operation_count):
            op_type = self._choose_operation(rng)
            if op_type == "insert":
                key = self.key_for(self._insert_cursor)
                self._insert_cursor += 1
                ops.append(Operation.write(key, self._payload(rng), sequence=len(ops)))
                continue
            index = self._choose_key_index(chooser, rng, population)
            key = self.key_for(index)
            if op_type == "read":
                ops.append(
                    Operation.read(key, size_bytes=self.record_size_bytes, sequence=len(ops))
                )
            elif op_type == "update":
                ops.append(Operation.write(key, self._payload(rng), sequence=len(ops)))
            elif op_type == "scan":
                length = rng.randint(1, self.config.max_scan_length)
                ops.append(
                    Operation.scan(
                        key, length, size_bytes=self.record_size_bytes, sequence=len(ops)
                    )
                )
            elif op_type == "read_modify_write":
                ops.append(
                    Operation.read(key, size_bytes=self.record_size_bytes, sequence=len(ops))
                )
                ops.append(Operation.write(key, self._payload(rng), sequence=len(ops)))
        return ops

    # -- internals ------------------------------------------------------------

    def _choose_operation(self, rng: random.Random) -> str:
        roll = rng.random()
        config = self.config
        thresholds = [
            ("read", config.read_proportion),
            ("update", config.update_proportion),
            ("insert", config.insert_proportion),
            ("scan", config.scan_proportion),
            ("read_modify_write", config.read_modify_write_proportion),
        ]
        cumulative = 0.0
        for name, proportion in thresholds:
            cumulative += proportion
            if roll < cumulative:
                return name
        return thresholds[-1][0]

    def _choose_key_index(self, chooser, rng: random.Random, population: int) -> int:
        if chooser is None:
            return rng.randrange(population)
        if isinstance(chooser, ZipfianGenerator):
            return chooser.next_scrambled()
        return chooser.next()

    def _payload(self, rng: random.Random) -> bytes:
        return bytes(rng.randrange(256) for _ in range(self.record_size_bytes))


@dataclass
class MixedYCSBWorkload:
    """The paper's phase mixer: alternate two YCSB workloads over four phases.

    ``phases`` names the workload run in each phase (the paper uses
    ``A,B,A,B``, ``A,E,A,E`` and ``A,F,A,F``); all phases share the same
    preloaded record population so replication decisions made in one phase
    carry into the next — which is exactly the effect Figure 9's Phase P4
    highlights (records replicated in P2 make P4 cheap).
    """

    phases: Sequence[str] = ("A", "B", "A", "B")
    record_count: int = 1024
    record_size_bytes: int = 1024
    operations_per_phase: int = 1024
    seed: int = 42

    def preload_records(self) -> List[KVRecord]:
        base = YCSBWorkload(
            config=WORKLOAD_PRESETS[self.phases[0]],
            record_count=self.record_count,
            record_size_bytes=self.record_size_bytes,
            operation_count=self.operations_per_phase,
            seed=self.seed,
        )
        return base.preload_records()

    def operations(self) -> List[Operation]:
        ops: List[Operation] = []
        population = self.record_count
        for phase_index, phase_name in enumerate(self.phases):
            workload = YCSBWorkload(
                config=WORKLOAD_PRESETS[phase_name],
                record_count=self.record_count,
                record_size_bytes=self.record_size_bytes,
                operation_count=self.operations_per_phase,
                seed=self.seed + phase_index * 101,
            )
            phase_ops = workload.operations(starting_population=population)
            population = max(population, workload._insert_cursor)
            for op in phase_ops:
                ops.append(
                    Operation(
                        kind=op.kind,
                        key=op.key,
                        value=op.value,
                        size_bytes=op.size_bytes,
                        scan_length=op.scan_length,
                        sequence=len(ops),
                    )
                )
        return ops

    def phase_markers(self) -> Dict[int, str]:
        """Operation index → phase label, for annotating per-epoch series."""
        markers: Dict[int, str] = {}
        cursor = 0
        for index, phase_name in enumerate(self.phases):
            markers[cursor] = f"P{index + 1}:{phase_name}"
            cursor += self.operations_per_phase
        return markers
