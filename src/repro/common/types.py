"""Core datatypes shared across the GRuB reproduction.

These types model the vocabulary of the paper:

* :class:`ReplicationState` — the per-record R / NR bit the control plane
  maintains and the data plane materialises,
* :class:`KVRecord` — a key-value record augmented with its replication state,
* :class:`Operation` / :class:`OperationKind` — one entry of a data-feed
  workload (a write from the data owner or a read from a consumer contract).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import NewType, Optional

from repro.common.encoding import Value, encode_value, words_for_value

Bytes32 = NewType("Bytes32", bytes)
"""A 32-byte digest (Merkle root, block hash, ...)."""


class ReplicationState(enum.Enum):
    """Whether a record currently has a replica in smart-contract storage.

    The paper prefixes every data key with this bit; the Merkle tree on the SP
    groups records by it (NR group first, then R group).
    """

    NOT_REPLICATED = "NR"
    REPLICATED = "R"

    @property
    def prefix(self) -> str:
        """The key prefix used in the authenticated layout (``"NR"`` / ``"R"``)."""
        return self.value

    def flipped(self) -> "ReplicationState":
        """Return the opposite state (used when actuating a transition)."""
        if self is ReplicationState.REPLICATED:
            return ReplicationState.NOT_REPLICATED
        return ReplicationState.REPLICATED

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class OperationKind(enum.Enum):
    """Kind of a workload operation."""

    READ = "read"
    WRITE = "write"
    SCAN = "scan"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Operation:
    """One operation of a data-feed workload.

    Attributes:
        kind: read, write or scan.
        key: the data key the operation touches.
        value: payload for writes (``None`` for reads).
        size_bytes: payload size used for gas accounting.  For reads this is
            the size of the record expected to be returned; workload
            generators fill it in so per-operation gas can be computed without
            consulting the store.
        scan_length: number of consecutive keys touched by a scan (YCSB
            workload E); 1 for point operations.
        sequence: position of the operation in the original trace, useful for
            joining results back to the workload.
    """

    kind: OperationKind
    key: str
    value: Optional[bytes] = None
    size_bytes: int = 32
    scan_length: int = 1
    sequence: int = 0

    @property
    def is_write(self) -> bool:
        return self.kind is OperationKind.WRITE

    @property
    def is_read(self) -> bool:
        return self.kind in (OperationKind.READ, OperationKind.SCAN)

    @property
    def size_words(self) -> int:
        """Payload size in 32-byte words (rounded up, at least one)."""
        return max(1, (self.size_bytes + 31) // 32)

    @staticmethod
    def write(key: str, value: Value, *, sequence: int = 0) -> "Operation":
        encoded = encode_value(value)
        return Operation(
            kind=OperationKind.WRITE,
            key=key,
            value=encoded,
            size_bytes=len(encoded),
            sequence=sequence,
        )

    @staticmethod
    def read(key: str, *, size_bytes: int = 32, sequence: int = 0) -> "Operation":
        return Operation(
            kind=OperationKind.READ,
            key=key,
            size_bytes=size_bytes,
            sequence=sequence,
        )

    @staticmethod
    def scan(
        key: str, scan_length: int, *, size_bytes: int = 32, sequence: int = 0
    ) -> "Operation":
        return Operation(
            kind=OperationKind.SCAN,
            key=key,
            size_bytes=size_bytes,
            scan_length=max(1, scan_length),
            sequence=sequence,
        )


@dataclass(frozen=True)
class KVRecord:
    """A key-value record augmented with its replication state.

    This is the unit the GRuB KV store manages: the primary copy always lives
    on the off-chain storage provider; when ``state`` is
    :attr:`ReplicationState.REPLICATED` a replica also lives in the
    storage-manager contract's storage.
    """

    key: str
    value: bytes
    state: ReplicationState = ReplicationState.NOT_REPLICATED
    version: int = 0

    @property
    def prefixed_key(self) -> str:
        """Key with the replication-state prefix, as laid out on the SP."""
        return f"{self.state.prefix}|{self.key}"

    @property
    def size_bytes(self) -> int:
        return len(self.value)

    @property
    def size_words(self) -> int:
        return max(1, words_for_value(self.value))

    def with_value(self, value: Value) -> "KVRecord":
        """Return a copy carrying a new value and a bumped version."""
        return replace(self, value=encode_value(value), version=self.version + 1)

    def with_state(self, state: ReplicationState) -> "KVRecord":
        """Return a copy carrying a new replication state."""
        return replace(self, state=state)

    @staticmethod
    def make(
        key: str,
        value: Value,
        state: ReplicationState = ReplicationState.NOT_REPLICATED,
        version: int = 0,
    ) -> "KVRecord":
        return KVRecord(key=key, value=encode_value(value), state=state, version=version)


@dataclass
class EpochSummary:
    """Aggregate of what happened to the feed during one epoch.

    Produced by the system facades (GRuB and baselines) so experiments can
    plot per-epoch gas series exactly like the paper's time-series figures.
    """

    index: int
    operations: int = 0
    reads: int = 0
    writes: int = 0
    gas_feed: int = 0
    gas_application: int = 0
    replications: int = 0
    evictions: int = 0
    deliveries: int = 0
    update_transactions: int = 0
    extras: dict = field(default_factory=dict)

    @property
    def gas_total(self) -> int:
        return self.gas_feed + self.gas_application

    @property
    def gas_per_operation(self) -> float:
        if self.operations == 0:
            return 0.0
        return self.gas_feed / self.operations
