"""Clocks: the deterministic simulated chain clock and the monotonic runtime
clock.

The consistency analysis in the paper (Theorems 3.1/3.2, Appendix E) reasons
about a hypothetical global clock shared by the data owner and every
blockchain node.  The simulator makes that clock explicit: every component
that needs time (epoch batching on the DO, block production, transaction
propagation, finality) reads the same :class:`SimulatedClock` so experiments
are fully deterministic and the freshness bounds can be checked exactly.

Separately, the observability plane (:mod:`repro.obs`) measures the *runtime
itself* — how long the engine's phases actually take on this host.  That is
wall time, not simulated time, and it must never feed back into any
scheduling or accounting decision (tracing is zero-entropy with respect to
correctness).  :data:`MonotonicClock` is the injectable contract for that
clock: any zero-argument callable returning monotonically non-decreasing
seconds.  Production uses :func:`time.perf_counter` (via
:data:`DEFAULT_MONOTONIC`); tests inject a :class:`ManualClock` to pin time
and make span durations exact.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Tuple

#: The injectable monotonic-clock contract: call it, get seconds.  Any
#: zero-argument callable returning non-decreasing floats qualifies.
MonotonicClock = Callable[[], float]

#: The production monotonic clock (wall time, unrelated to the chain clock).
DEFAULT_MONOTONIC: MonotonicClock = time.perf_counter


class ManualClock:
    """A pinnable :data:`MonotonicClock` for tests.

    Reads return the current pinned time; :meth:`advance` moves it forward
    explicitly, so a test can make a span last exactly 0.25s.  ``step`` makes
    every *read* auto-advance the clock by a fixed amount — handy for
    generating distinct, deterministic timestamps without sprinkling
    ``advance`` calls.
    """

    __slots__ = ("now", "step")

    def __init__(self, start: float = 0.0, step: float = 0.0) -> None:
        if start < 0 or step < 0:
            raise ValueError("ManualClock start/step must be non-negative")
        self.now = float(start)
        self.step = float(step)

    def __call__(self) -> float:
        value = self.now
        if self.step:
            self.now += self.step
        return value

    def advance(self, seconds: float) -> float:
        if seconds < 0:
            raise ValueError("cannot advance a monotonic clock backwards")
        self.now += seconds
        return self.now


@dataclass
class SimulatedClock:
    """Monotonic simulated time in abstract seconds."""

    now: float = 0.0
    _scheduled: List[Tuple[float, int, Callable[[], None]]] = field(
        default_factory=list, repr=False
    )
    _sequence: int = 0

    def advance(self, seconds: float) -> float:
        """Move time forward, firing any callbacks scheduled in the interval.

        Callbacks fire in timestamp order (ties broken by scheduling order) and
        may themselves schedule further callbacks, which also fire if they fall
        within the interval being advanced over.
        """
        if seconds < 0:
            raise ValueError("cannot advance the clock backwards")
        target = self.now + seconds
        while True:
            due = [entry for entry in self._scheduled if entry[0] <= target]
            if not due:
                break
            due.sort()
            timestamp, _, callback = due[0]
            self._scheduled.remove(due[0])
            self.now = max(self.now, timestamp)
            callback()
        self.now = target
        return self.now

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError("cannot schedule in the past")
        self._sequence += 1
        self._scheduled.append((self.now + delay, self._sequence, callback))

    @property
    def pending(self) -> int:
        """Number of callbacks that have not fired yet."""
        return len(self._scheduled)

    def reset(self) -> None:
        """Reset time to zero and drop all scheduled callbacks."""
        self.now = 0.0
        self._scheduled.clear()
        self._sequence = 0
