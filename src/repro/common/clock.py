"""A deterministic simulated clock.

The consistency analysis in the paper (Theorems 3.1/3.2, Appendix E) reasons
about a hypothetical global clock shared by the data owner and every
blockchain node.  The simulator makes that clock explicit: every component
that needs time (epoch batching on the DO, block production, transaction
propagation, finality) reads the same :class:`SimulatedClock` so experiments
are fully deterministic and the freshness bounds can be checked exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Tuple


@dataclass
class SimulatedClock:
    """Monotonic simulated time in abstract seconds."""

    now: float = 0.0
    _scheduled: List[Tuple[float, int, Callable[[], None]]] = field(
        default_factory=list, repr=False
    )
    _sequence: int = 0

    def advance(self, seconds: float) -> float:
        """Move time forward, firing any callbacks scheduled in the interval.

        Callbacks fire in timestamp order (ties broken by scheduling order) and
        may themselves schedule further callbacks, which also fire if they fall
        within the interval being advanced over.
        """
        if seconds < 0:
            raise ValueError("cannot advance the clock backwards")
        target = self.now + seconds
        while True:
            due = [entry for entry in self._scheduled if entry[0] <= target]
            if not due:
                break
            due.sort()
            timestamp, _, callback = due[0]
            self._scheduled.remove(due[0])
            self.now = max(self.now, timestamp)
            callback()
        self.now = target
        return self.now

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError("cannot schedule in the past")
        self._sequence += 1
        self._scheduled.append((self.now + delay, self._sequence, callback))

    @property
    def pending(self) -> int:
        """Number of callbacks that have not fired yet."""
        return len(self._scheduled)

    def reset(self) -> None:
        """Reset time to zero and drop all scheduled callbacks."""
        self.now = 0.0
        self._scheduled.clear()
        self._sequence = 0
