"""Shared primitives used across every GRuB subsystem.

The modules in this package are deliberately dependency-free (standard library
only) so that every other subsystem — the chain simulator, the off-chain store,
the ADS layer and the GRuB core — can rely on them without import cycles.
"""

from repro.common.types import (
    Bytes32,
    KVRecord,
    Operation,
    OperationKind,
    ReplicationState,
)
from repro.common.encoding import (
    WORD_SIZE_BYTES,
    words_for_bytes,
    words_for_value,
    encode_value,
    decode_value,
)
from repro.common.hashing import keccak, hash_pair, hash_record, hash_words
from repro.common.clock import SimulatedClock
from repro.common.errors import (
    ReproError,
    IntegrityError,
    FreshnessError,
    OutOfGasError,
    StorageError,
    ContractError,
)

__all__ = [
    "Bytes32",
    "KVRecord",
    "Operation",
    "OperationKind",
    "ReplicationState",
    "WORD_SIZE_BYTES",
    "words_for_bytes",
    "words_for_value",
    "encode_value",
    "decode_value",
    "keccak",
    "hash_pair",
    "hash_record",
    "hash_words",
    "SimulatedClock",
    "ReproError",
    "IntegrityError",
    "FreshnessError",
    "OutOfGasError",
    "StorageError",
    "ContractError",
]
