"""Word-level size accounting and value encoding.

Ethereum's gas schedule charges per 32-byte *word* (calldata, storage slots,
hash input).  Every component that needs to know "how many words does this
value occupy" goes through this module so the accounting is consistent across
the chain simulator, the ADS layer and the GRuB protocol.

Values flowing through GRuB are either ``bytes``, ``str`` or non-negative
``int``; :func:`encode_value` normalises them to ``bytes`` before sizing or
hashing.
"""

from __future__ import annotations

from typing import Union

Value = Union[bytes, str, int]

WORD_SIZE_BYTES = 32
"""Size of an EVM word in bytes; the unit of the gas schedule in Table 2."""


def words_for_bytes(num_bytes: int) -> int:
    """Return the number of 32-byte words needed to hold ``num_bytes`` bytes.

    Partial words round up, matching how the EVM charges calldata and storage.
    Zero bytes occupy zero words.
    """
    if num_bytes < 0:
        raise ValueError(f"byte count must be non-negative, got {num_bytes}")
    return (num_bytes + WORD_SIZE_BYTES - 1) // WORD_SIZE_BYTES


def encode_value(value: Value) -> bytes:
    """Normalise a value to its byte representation.

    * ``bytes`` pass through untouched,
    * ``str`` is UTF-8 encoded,
    * non-negative ``int`` is big-endian encoded in the minimal number of
      bytes (at least one word so that an integer price always occupies a
      single storage slot, as it would in Solidity).
    """
    if isinstance(value, bytes):
        return value
    if isinstance(value, str):
        return value.encode("utf-8")
    if isinstance(value, int):
        if value < 0:
            raise ValueError("only non-negative integers can be encoded")
        length = max(WORD_SIZE_BYTES, (value.bit_length() + 7) // 8)
        return value.to_bytes(length, "big")
    raise TypeError(f"cannot encode value of type {type(value).__name__}")


def decode_value(data: bytes, kind: type = bytes) -> Value:
    """Decode bytes previously produced by :func:`encode_value`.

    ``kind`` selects the target type (``bytes``, ``str`` or ``int``).
    """
    if kind is bytes:
        return data
    if kind is str:
        return data.decode("utf-8")
    if kind is int:
        return int.from_bytes(data, "big")
    raise TypeError(f"cannot decode to type {kind!r}")


def words_for_value(value: Value) -> int:
    """Number of 32-byte words a value occupies once encoded."""
    return words_for_bytes(len(encode_value(value)))


def pad_to_word(data: bytes) -> bytes:
    """Right-pad ``data`` with zero bytes to a whole number of words."""
    remainder = len(data) % WORD_SIZE_BYTES
    if remainder == 0:
        return data
    return data + b"\x00" * (WORD_SIZE_BYTES - remainder)
