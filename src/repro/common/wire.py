"""Compact, schema-versioned wire codec for process-boundary traffic.

The process execution backend ships per-epoch deltas between worker lanes and
the main process.  Generic pickling of those deltas re-serialises the same
feed ids, record keys, event names and gas-category strings every single
epoch, and wraps every small integer in pickle's per-object framing — at one
CPU the serialization tax alone made the process backend slower than serial.
This module is the replacement: a small binary format built from four ideas.

**Varint-packed integers.**  Counters, gas amounts, epoch indices and lengths
are LEB128 varints (:meth:`WireWriter.uvarint`) — one byte for the common
small values — with ZigZag encoding for signed deltas
(:meth:`WireWriter.svarint`), so a zero-omitting ledger delta costs a couple
of bytes per touched counter instead of a pickled tuple.

**Per-channel string interning.**  A wire *channel* is one direction of one
lane's conversation, and it is persistent: the encoder and decoder each keep
a string table that lives as long as the lane does.  The first time a string
crosses (a feed id, a record key, an event or category name) it is sent
inline and registered on both sides; every later occurrence is a varint
reference.  Steady-state epochs therefore carry almost no string bytes at
all.  The table is bounded (:data:`MAX_INTERNED_STRINGS`); once full, new
strings simply travel inline, so an adversarial workload of unique keys
degrades to uncompressed, never to unbounded memory.

**Out-of-band byte buffers.**  Bulk byte payloads (record values, proof
blobs) at or above :data:`OOB_THRESHOLD` are not copied into the frame body;
the encoder keeps a reference in :attr:`WireFrame.blobs` and writes only a
varint index.  The frame then crosses the process boundary as one small body
plus a flat tuple of buffers — the same out-of-band shape pickle protocol 5
uses for :class:`pickle.PickleBuffer` — so big payloads are serialised once,
as raw bytes, with no per-chunk framing.  (The rare value the schema has no
tag for falls back to an embedded protocol-5 pickle.)

**Explicit schema versioning.**  Every frame body starts with a magic byte
and :data:`WIRE_SCHEMA_VERSION`.  A decoder handed a frame from a different
schema raises :class:`WireSchemaError` immediately — a version skew between
a main process and its lanes must fail loudly at the first frame, not corrupt
a merge three epochs later.

Because interning is stateful, frames of one channel MUST be decoded exactly
once, in encode order.  The engine guarantees this by construction: each lane
is one channel per direction, epochs are submitted and merged in order.
"""

from __future__ import annotations

import pickle
import struct
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.common.errors import ReproError

#: Bump on any change to the frame layout or the type tags below.  Encoder
#: and decoder check it per frame; a mismatch is a hard error.
#: v2: lane epoch results carry per-feed settled gas (the main-side planner's
#: observation stream), and feed-snapshot frames (migration/install/teardown)
#: joined the vocabulary.
WIRE_SCHEMA_VERSION = 2

#: First byte of every frame body — catches "this is not a wire frame at all"
#: before a version comparison is even meaningful.
WIRE_MAGIC = 0xC7

#: Byte payloads at or above this size are shipped out-of-band as whole
#: buffers (one entry in :attr:`WireFrame.blobs`) instead of being copied
#: into the frame body.
OOB_THRESHOLD = 256

#: Cap on the per-channel intern table.  Strings past the cap travel inline.
MAX_INTERNED_STRINGS = 1 << 16

#: String markers (first varint of an encoded string).
_STR_DEF = 0      # definition: length + utf-8 bytes follow; register it
_STR_INLINE = 1   # inline: length + utf-8 bytes follow; do NOT register
_STR_REF_BASE = 2  # marker - 2 is the table index

#: Bytes markers.
_BYTES_INLINE = 0  # length + raw bytes follow in the body
_BYTES_OOB = 1     # varint blob index follows

#: Value type tags for :meth:`WireWriter.value`.
_T_NONE = 0
_T_TRUE = 1
_T_FALSE = 2
_T_INT = 3
_T_FLOAT = 4
_T_STR = 5
_T_BYTES = 6
_T_LIST = 7
_T_TUPLE = 8
_T_DICT = 9
_T_PICKLE = 10
#: String-keyed dicts intern their *key set* per channel, like strings do:
#: the first dict with a given key tuple defines a template
#: (:data:`_T_DICT_KEYS_DEF`: key count + keys), every later dict with the
#: same keys references it (:data:`_T_DICT_KEYS_REF`: template index) and
#: ships only its values.  Event payloads are overwhelmingly the same few
#: shapes, so steady-state dicts cost one byte of framing plus their values.
_T_DICT_KEYS_DEF = 11
_T_DICT_KEYS_REF = 12
#: Tag bytes at or above this encode a small non-negative int directly:
#: tag - _T_SMALL_BASE is the value.  Event payloads are mostly counters and
#: sequence numbers, so this turns the dominant value case into one byte.
_T_SMALL_BASE = 32
_T_SMALL_LIMIT = 256 - _T_SMALL_BASE

_pack_double = struct.Struct("<d").pack
_unpack_double = struct.Struct("<d").unpack_from


class WireError(ReproError):
    """A frame could not be encoded or decoded."""


class WireSchemaError(WireError):
    """A frame carries a different wire schema version than this codec."""


@dataclass(frozen=True)
class WireFrame:
    """One encoded message: a compact body plus out-of-band byte buffers."""

    body: bytes
    blobs: Tuple[bytes, ...] = ()

    @property
    def nbytes(self) -> int:
        """Total wire footprint: body plus every out-of-band buffer."""
        return len(self.body) + sum(len(blob) for blob in self.blobs)


class WireWriter:
    """Appends one frame's worth of primitives to a fresh body.

    Obtained from :meth:`WireEncoder.writer`; shares (and mutates) the
    channel's persistent intern table, so writers of one channel must be
    finished in creation order.
    """

    __slots__ = ("body", "blobs", "_table", "_keysets", "_append", "_extend")

    def __init__(
        self, table: Dict[str, int], keysets: Dict[Tuple[str, ...], int]
    ) -> None:
        self._table = table
        self._keysets = keysets
        self.body = bytearray((WIRE_MAGIC, WIRE_SCHEMA_VERSION))
        self.blobs: List[bytes] = []
        self._append = self.body.append
        self._extend = self.body.extend

    # -- integers ------------------------------------------------------------

    def uvarint(self, n: int) -> None:
        """LEB128 unsigned varint (one byte for n < 128, the common case)."""
        if n < 0x80:
            self._append(n)
            return
        append = self._append
        while n > 0x7F:
            append((n & 0x7F) | 0x80)
            n >>= 7
        append(n)

    def svarint(self, n: int) -> None:
        """ZigZag-mapped varint for possibly-negative integers."""
        if 0 <= n < 0x40:
            self._append(n << 1)
            return
        self.uvarint((n << 1) ^ (n >> 63) if -(1 << 62) <= n < (1 << 62)
                     else _zigzag_big(n))

    # -- strings and bytes ---------------------------------------------------

    def string(self, s: str) -> None:
        """Interned string: definition on first crossing, reference after."""
        table = self._table
        index = table.get(s)
        if index is not None:
            marker = index + _STR_REF_BASE
            if marker < 0x80:
                self._append(marker)
            else:
                self.uvarint(marker)
            return
        data = s.encode("utf-8")
        if len(table) < MAX_INTERNED_STRINGS:
            table[s] = len(table)
            self.uvarint(_STR_DEF)
        else:
            self.uvarint(_STR_INLINE)
        self.uvarint(len(data))
        self._extend(data)

    def bytes_(self, data: bytes) -> None:
        """Byte payload: inline when small, out-of-band buffer when bulk."""
        if len(data) >= OOB_THRESHOLD:
            self.uvarint(_BYTES_OOB)
            self.uvarint(len(self.blobs))
            self.blobs.append(data)
        else:
            self.uvarint(_BYTES_INLINE)
            self.uvarint(len(data))
            self._extend(data)

    def float_(self, x: float) -> None:
        self._extend(_pack_double(x))

    # -- tagged values ---------------------------------------------------------

    def value(self, v: object) -> None:
        """Type-tagged encoding of the payload values the runtime ships:
        None/bool/int/float/str/bytes and lists/tuples/dicts of the same.
        Anything else falls back to an embedded protocol-5 pickle."""
        if v is None:
            self._append(_T_NONE)
        elif v is True:
            self._append(_T_TRUE)
        elif v is False:
            self._append(_T_FALSE)
        else:
            kind = type(v)
            if kind is int:
                if 0 <= v < _T_SMALL_LIMIT:
                    self._append(_T_SMALL_BASE + v)
                else:
                    self._append(_T_INT)
                    self.svarint(v)
            elif kind is str:
                self._append(_T_STR)
                self.string(v)
            elif kind is bytes:
                self._append(_T_BYTES)
                self.bytes_(v)
            elif kind is float:
                self._append(_T_FLOAT)
                self.float_(v)
            elif kind is dict:
                if v:
                    keys = tuple(v)
                    keysets = self._keysets
                    index = keysets.get(keys)
                    if index is not None:
                        self._append(_T_DICT_KEYS_REF)
                        self.uvarint(index)
                        for item in v.values():
                            self.value(item)
                        return
                    if all(type(key) is str for key in keys):
                        if len(keysets) < MAX_INTERNED_STRINGS:
                            keysets[keys] = len(keysets)
                        self._append(_T_DICT_KEYS_DEF)
                        self.uvarint(len(keys))
                        for key in keys:
                            self.string(key)
                        for item in v.values():
                            self.value(item)
                        return
                self._append(_T_DICT)
                self.uvarint(len(v))
                for key, item in v.items():
                    self.value(key)
                    self.value(item)
            elif kind is list or kind is tuple:
                self._append(_T_LIST if kind is list else _T_TUPLE)
                self.uvarint(len(v))
                for item in v:
                    self.value(item)
            else:
                self._append(_T_PICKLE)
                try:
                    blob = pickle.dumps(v, protocol=5)
                except Exception as exc:
                    raise WireError(
                        f"value of type {kind.__name__} crossed the wire "
                        f"boundary but is not picklable: {exc}"
                    ) from exc
                self.bytes_(blob)

    # -- completion ------------------------------------------------------------

    def frame(self) -> WireFrame:
        return WireFrame(body=bytes(self.body), blobs=tuple(self.blobs))


def _zigzag_big(n: int) -> int:  # pragma: no cover - >62-bit amounts
    return (n << 1) ^ (n >> (max(n.bit_length(), 1) + 1)) if n < 0 else n << 1


class WireReader:
    """Decodes one frame; mirror of :class:`WireWriter`.

    Obtained from :meth:`WireDecoder.reader` (which validates the header);
    shares the channel's persistent decode-side string table.
    """

    __slots__ = ("_body", "_blobs", "_pos", "_table", "_keysets")

    def __init__(
        self,
        frame: WireFrame,
        table: List[str],
        keysets: List[Tuple[str, ...]],
    ) -> None:
        self._body = frame.body
        self._blobs = frame.blobs
        self._pos = 2  # past magic + version, validated by the channel
        self._table = table
        self._keysets = keysets

    # -- integers ------------------------------------------------------------

    def uvarint(self) -> int:
        body = self._body
        pos = self._pos
        try:
            byte = body[pos]
        except IndexError:
            raise WireError("truncated frame: varint ran past the body")
        if byte < 0x80:
            self._pos = pos + 1
            return byte
        shift = 0
        result = 0
        while True:
            try:
                byte = body[pos]
            except IndexError:
                raise WireError("truncated frame: varint ran past the body")
            pos += 1
            result |= (byte & 0x7F) << shift
            if byte < 0x80:
                break
            shift += 7
        self._pos = pos
        return result

    def svarint(self) -> int:
        raw = self.uvarint()
        return (raw >> 1) ^ -(raw & 1)

    # -- strings and bytes ---------------------------------------------------

    def string(self) -> str:
        body = self._body
        pos = self._pos
        try:
            marker = body[pos]
        except IndexError:
            raise WireError("truncated frame: string marker ran past the body")
        if _STR_REF_BASE <= marker < 0x80:
            self._pos = pos + 1
            try:
                return self._table[marker - _STR_REF_BASE]
            except IndexError:
                raise WireError(
                    f"string reference {marker - _STR_REF_BASE} is outside "
                    "this channel's table — frames decoded out of order?"
                )
        marker = self.uvarint()
        if marker >= _STR_REF_BASE:
            try:
                return self._table[marker - _STR_REF_BASE]
            except IndexError:
                raise WireError(
                    f"string reference {marker - _STR_REF_BASE} is outside "
                    "this channel's table — frames decoded out of order?"
                )
        length = self.uvarint()
        end = self._pos + length
        s = self._body[self._pos:end].decode("utf-8")
        self._pos = end
        if marker == _STR_DEF:
            self._table.append(s)
        return s

    def bytes_(self) -> bytes:
        marker = self.uvarint()
        if marker == _BYTES_OOB:
            index = self.uvarint()
            try:
                return self._blobs[index]
            except IndexError:
                raise WireError(f"out-of-band buffer {index} missing from frame")
        length = self.uvarint()
        end = self._pos + length
        data = self._body[self._pos:end]
        if len(data) != length:
            raise WireError("truncated frame: byte payload ran past the body")
        self._pos = end
        return data

    def float_(self) -> float:
        (x,) = _unpack_double(self._body, self._pos)
        self._pos += 8
        return x

    # -- tagged values ---------------------------------------------------------

    def value(self) -> object:
        try:
            tag = self._body[self._pos]
        except IndexError:
            raise WireError("truncated frame: value tag ran past the body")
        self._pos += 1
        if tag >= _T_SMALL_BASE:
            return tag - _T_SMALL_BASE
        if tag == _T_NONE:
            return None
        if tag == _T_TRUE:
            return True
        if tag == _T_FALSE:
            return False
        if tag == _T_INT:
            return self.svarint()
        if tag == _T_STR:
            return self.string()
        if tag == _T_BYTES:
            return self.bytes_()
        if tag == _T_FLOAT:
            return self.float_()
        if tag == _T_DICT_KEYS_REF:
            index = self.uvarint()
            try:
                keys = self._keysets[index]
            except IndexError:
                raise WireError(
                    f"dict key-set reference {index} is outside this "
                    "channel's table — frames decoded out of order?"
                )
            return {key: self.value() for key in keys}
        if tag == _T_DICT_KEYS_DEF:
            keys = tuple(self.string() for _ in range(self.uvarint()))
            if len(self._keysets) < MAX_INTERNED_STRINGS:
                self._keysets.append(keys)
            return {key: self.value() for key in keys}
        if tag == _T_DICT:
            return {self.value(): self.value() for _ in range(self.uvarint())}
        if tag == _T_LIST:
            return [self.value() for _ in range(self.uvarint())]
        if tag == _T_TUPLE:
            return tuple(self.value() for _ in range(self.uvarint()))
        if tag == _T_PICKLE:
            return pickle.loads(self.bytes_())
        raise WireError(f"unknown value tag {tag} at offset {self._pos - 1}")


@dataclass
class WireEncoder:
    """The encode side of one persistent channel (one lane, one direction)."""

    _table: Dict[str, int] = field(default_factory=dict)
    _keysets: Dict[Tuple[str, ...], int] = field(default_factory=dict)

    def writer(self) -> WireWriter:
        return WireWriter(self._table, self._keysets)

    @property
    def interned(self) -> int:
        """Strings registered so far (equals the peer decoder's table size)."""
        return len(self._table)


@dataclass
class WireDecoder:
    """The decode side of one persistent channel; validates every header."""

    _table: List[str] = field(default_factory=list)
    _keysets: List[Tuple[str, ...]] = field(default_factory=list)

    def reader(self, frame: WireFrame) -> WireReader:
        body = frame.body
        if len(body) < 2 or body[0] != WIRE_MAGIC:
            raise WireError("not a wire frame (bad magic byte)")
        if body[1] != WIRE_SCHEMA_VERSION:
            raise WireSchemaError(
                f"wire schema mismatch: frame carries version {body[1]}, "
                f"this codec speaks version {WIRE_SCHEMA_VERSION}; "
                "main process and worker lanes must run the same build"
            )
        return WireReader(frame, self._table, self._keysets)

    @property
    def interned(self) -> int:
        return len(self._table)
