"""Exception hierarchy for the GRuB reproduction.

Every error raised by this package derives from :class:`ReproError`, so callers
can catch a single base class at system boundaries (examples, benchmarks) while
tests can assert on the precise subclass.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class IntegrityError(ReproError):
    """Raised when an authenticated-data-structure check fails.

    This is the error the storage-manager contract raises when the untrusted
    storage provider presents a record, proof or digest that does not verify
    against the on-chain root hash (forged, replayed, omitted or forked data).
    """


class FreshnessError(ReproError):
    """Raised when a query result violates the epoch-bounded freshness guarantee."""


class OutOfGasError(ReproError):
    """Raised when a metered execution exceeds its gas allowance."""

    def __init__(self, requested: int, remaining: int) -> None:
        super().__init__(
            f"out of gas: requested {requested} with only {remaining} remaining"
        )
        self.requested = requested
        self.remaining = remaining


class StorageError(ReproError):
    """Raised by the off-chain key-value store on invalid operations."""


class ContractError(ReproError):
    """Raised when a simulated smart contract reverts.

    Mirrors a Solidity ``revert``: the enclosing transaction is aborted and its
    state changes are rolled back by the chain simulator.
    """


class ConfigurationError(ReproError):
    """Raised when a system or algorithm is configured with invalid parameters."""


class UnknownKeyError(StorageError, KeyError):
    """Raised when a key is looked up that neither the SP nor the chain holds."""
