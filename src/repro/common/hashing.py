"""Hashing helpers shared by the ADS layer and the chain simulator.

The real system uses keccak-256 inside the EVM and SHA-256 off chain; for the
reproduction both are modelled with SHA-256 (the security argument only needs a
collision-resistant hash).  The helper names keep the EVM terminology so the
contract code reads naturally.
"""

from __future__ import annotations

import hashlib
import hmac
from functools import lru_cache
from typing import Iterable

from repro.common.encoding import Value, encode_value

DIGEST_SIZE_BYTES = 32
EMPTY_DIGEST = b"\x00" * DIGEST_SIZE_BYTES

#: Entries kept by the leaf-serialization cache.  A feed's hot keys are
#: re-hashed every epoch (deliver verification, ADS updates, witness checks);
#: the bound keeps one gateway fleet's working set while letting cold entries
#: age out of very long runs.
LEAF_CACHE_SIZE = 65_536


def keccak(data: bytes) -> bytes:
    """Hash ``data`` to a 32-byte digest (SHA-256 stands in for keccak-256)."""
    return hashlib.sha256(data).digest()


def hash_pair(left: bytes, right: bytes) -> bytes:
    """Hash two child digests into a parent digest (Merkle interior node)."""
    return keccak(left + right)


def hash_words(*values: Value) -> bytes:
    """Hash a sequence of values after normalising each to bytes.

    A length prefix is added per field so that ``hash_words(b"ab", b"c")`` and
    ``hash_words(b"a", b"bc")`` differ (no ambiguity attacks on the leaf
    encoding).
    """
    hasher = hashlib.sha256()
    for value in values:
        encoded = encode_value(value)
        hasher.update(len(encoded).to_bytes(8, "big"))
        hasher.update(encoded)
    return hasher.digest()


@lru_cache(maxsize=LEAF_CACHE_SIZE)
def _hash_record_cached(key: Value, value: bytes, state_prefix: str) -> bytes:
    return hash_words(state_prefix, key, value)


def hash_record(key: Value, value: Value, state_prefix: str) -> bytes:
    """Hash a GRuB KV record leaf: ``(replication-state prefix, key, value)``.

    The replication state is part of the authenticated payload because GRuB
    prefixes every data key with its R/NR bit (Section 3.2 of the paper).

    The serialized leaf hash is memoized (the function is pure): the same
    record leaf is hashed repeatedly on the hot path — once when the DO
    applies the update to the ADS, again for every deliver verification of
    the record and every update witness over it — and only the first
    computation pays for the length-prefixed field encoding and the SHA-256.
    Unhashable values (plain ``bytes``/``str``/``int`` are all hashable) fall
    back to the direct computation.
    """
    try:
        return _hash_record_cached(key, value, state_prefix)
    except TypeError:
        return hash_words(state_prefix, key, value)


def clear_leaf_cache() -> None:
    """Drop every memoized leaf hash (used by tests to compare cold paths)."""
    _hash_record_cached.cache_clear()


def combine_digests(digests: Iterable[bytes]) -> bytes:
    """Fold an iterable of digests into one (used for epoch-level summaries)."""
    hasher = hashlib.sha256()
    for digest in digests:
        hasher.update(digest)
    return hasher.digest()


def sign_digest(secret_key: bytes, digest: bytes) -> bytes:
    """Produce the data owner's signature over a root digest.

    An HMAC stands in for the ECDSA signature the prototype would use; the
    property the protocol needs is that only the holder of ``secret_key`` can
    produce a value that verifies.
    """
    return hmac.new(secret_key, digest, hashlib.sha256).digest()


def verify_signature(secret_key: bytes, digest: bytes, signature: bytes) -> bool:
    """Check a signature produced by :func:`sign_digest` (constant time)."""
    expected = sign_digest(secret_key, digest)
    return hmac.compare_digest(expected, signature)
