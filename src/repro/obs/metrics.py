"""Metric instruments of the observability plane: counters, gauges, histograms.

A :class:`MetricsRegistry` hands out named instruments, each optionally
qualified by a small set of string labels (the Prometheus idiom — one logical
metric like ``gateway_phase_seconds`` fans out into one instrument per label
set, e.g. ``{phase="drive"}`` / ``{phase="settle"}``).  Instruments are
created lazily and cached, so call sites simply ask for
``registry.histogram("gateway_phase_seconds", phase="drive")`` every time and
always get the same object back.

:class:`Histogram` keeps **both** representations the exporters need:

* fixed **log-spaced bucket** counts (:func:`log_buckets`), the Prometheus
  cumulative-``le`` form — cheap to merge and render, coarse by design;
* the **exact sample list**, from which :meth:`Histogram.percentile` computes
  exact nearest-rank p50/p95/p99 — the numbers an operator report quotes must
  not be bucket-interpolation artifacts.  The engine's runs are epoch-bounded
  (observations arrive per phase per epoch, not per operation), so retaining
  samples is a few kilobytes per run, not a memory hazard.

**Disabled registries are free.**  A registry constructed with
``enabled=False`` hands out shared null instruments whose mutators are
no-ops, and the hot layers additionally guard on ``registry.enabled`` /
``obs is None`` so the serial hot path pays at most a pointer test.  Nothing
an instrument records ever feeds back into scheduling, gas or state — the
whole plane is observation-only, which is what keeps fingerprints
bit-identical with metrics on or off.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.common.errors import ConfigurationError

#: Label sets are canonicalised to a sorted tuple of (key, value) pairs.
LabelSet = Tuple[Tuple[str, str], ...]

#: The percentiles every latency report quotes.
REPORT_PERCENTILES = (50.0, 95.0, 99.0)


def log_buckets(start: float = 1e-5, factor: float = 2.0, count: int = 22) -> Tuple[float, ...]:
    """Fixed log-spaced bucket upper bounds: ``start * factor**i``.

    The default spans 10µs to ~40s in ×2 steps — wide enough for everything
    from a single cache probe to a full benchmark run, with bounded (22-way)
    cardinality.  Bounds are strictly increasing; the implicit ``+Inf``
    bucket is always appended by the histogram itself.
    """
    if start <= 0:
        raise ConfigurationError("log_buckets start must be positive")
    if factor <= 1.0:
        raise ConfigurationError("log_buckets factor must be > 1")
    if count <= 0:
        raise ConfigurationError("log_buckets count must be positive")
    return tuple(start * factor**index for index in range(count))


def _canonical_labels(labels: Dict[str, str]) -> LabelSet:
    return tuple(sorted((key, str(value)) for key, value in labels.items()))


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelSet = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ConfigurationError("counters only go up; use a gauge")
        self.value += amount


class Gauge:
    """A value that can go anywhere (queue depths, cache sizes, last-seen)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelSet = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def add(self, amount: float) -> None:
        self.value += amount


class Histogram:
    """Log-spaced bucket counts plus the exact samples behind them.

    ``observe`` is O(log buckets) (bisection) plus one list append;
    ``percentile`` sorts a copy of the samples — an export-time operation,
    never on the engine's hot path.
    """

    __slots__ = ("name", "labels", "bounds", "bucket_counts", "count", "total", "samples")

    def __init__(
        self,
        name: str,
        labels: LabelSet = (),
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        bounds = tuple(buckets) if buckets is not None else log_buckets()
        if not bounds:
            raise ConfigurationError("a histogram needs at least one bucket bound")
        if any(b <= a for a, b in zip(bounds, bounds[1:])):
            raise ConfigurationError("histogram bucket bounds must be strictly increasing")
        self.name = name
        self.labels = labels
        self.bounds = bounds
        #: Per-bucket (non-cumulative) counts; index ``len(bounds)`` is +Inf.
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.samples: List[float] = []

    def observe(self, value: float) -> None:
        value = float(value)
        if math.isnan(value):
            raise ConfigurationError("cannot observe NaN")
        # Bisect over the (small, fixed) bound tuple.
        lo, hi = 0, len(self.bounds)
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= self.bounds[mid]:
                hi = mid
            else:
                lo = mid + 1
        self.bucket_counts[lo] += 1
        self.count += 1
        self.total += value
        self.samples.append(value)

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """Prometheus-form cumulative counts: ``[(le, count≤le), …, (inf, n)]``."""
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, bucket in zip(self.bounds, self.bucket_counts):
            running += bucket
            out.append((bound, running))
        out.append((math.inf, running + self.bucket_counts[-1]))
        return out

    def percentile(self, q: float) -> Optional[float]:
        """Exact nearest-rank percentile of every observed sample.

        ``q`` in (0, 100].  Returns ``None`` when nothing was observed.  The
        nearest-rank definition — the smallest sample with at least ``q``% of
        samples at or below it — is the property-test reference
        (``sorted(samples)[ceil(q/100 * n) - 1]``).
        """
        if not 0.0 < q <= 100.0:
            raise ConfigurationError("percentile q must be in (0, 100]")
        if not self.samples:
            return None
        ordered = sorted(self.samples)
        rank = math.ceil(q / 100.0 * len(ordered))
        return ordered[max(rank, 1) - 1]

    @property
    def mean(self) -> Optional[float]:
        if self.count == 0:
            return None
        return self.total / self.count

    def report_percentiles(self) -> Dict[str, Optional[float]]:
        """The p50/p95/p99 dict every report and benchmark record uses."""
        return {f"p{q:g}": self.percentile(q) for q in REPORT_PERCENTILES}


class _NullCounter(Counter):
    """Shared no-op counter handed out by disabled registries."""

    __slots__ = ()

    def inc(self, amount: int = 1) -> None:  # noqa: D102 - intentionally inert
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def add(self, amount: float) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


_NULL_COUNTER = _NullCounter("disabled")
_NULL_GAUGE = _NullGauge("disabled")
_NULL_HISTOGRAM = _NullHistogram("disabled")


class MetricsRegistry:
    """Named, labelled instruments plus pull-style collectors.

    Collectors are callables registered by components whose counters already
    exist elsewhere (the read cache's :class:`~repro.gateway.cache.CacheStats`,
    an LSM store's flush/compaction totals).  They run once per
    :meth:`snapshot`, copying those numbers into gauges — the Prometheus
    "collect on scrape" idiom — so the component's own hot path stays
    untouched by the metrics plane.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._instruments: Dict[Tuple[str, LabelSet], object] = {}
        self._collectors: List[Callable[["MetricsRegistry"], None]] = []

    # -- instrument lookup ----------------------------------------------------

    def _get(self, kind: type, name: str, labels: Dict[str, str], **kwargs) -> object:
        key = (name, _canonical_labels(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = self._instruments[key] = kind(name, key[1], **kwargs)
        elif not isinstance(instrument, kind):
            raise ConfigurationError(
                f"metric {name!r} already registered as {type(instrument).__name__}"
            )
        return instrument

    def counter(self, name: str, **labels: str) -> Counter:
        if not self.enabled:
            return _NULL_COUNTER
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        if not self.enabled:
            return _NULL_GAUGE
        return self._get(Gauge, name, labels)

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None, **labels: str
    ) -> Histogram:
        if not self.enabled:
            return _NULL_HISTOGRAM
        return self._get(Histogram, name, labels, buckets=buckets)

    # -- collectors -----------------------------------------------------------

    def register_collector(self, collector: Callable[["MetricsRegistry"], None]) -> None:
        """Add a pull-style collector run at every snapshot (idempotent by
        identity, so re-running a scheduler never double-registers)."""
        if not self.enabled:
            return
        if all(existing is not collector for existing in self._collectors):
            self._collectors.append(collector)

    def collect(self) -> None:
        for collector in self._collectors:
            collector(self)

    # -- introspection --------------------------------------------------------

    def instruments(self) -> List[object]:
        """Every live instrument, sorted by (name, labels) for deterministic
        export order."""
        return [self._instruments[key] for key in sorted(self._instruments)]

    def find(self, name: str, **labels: str) -> Optional[object]:
        """Look an instrument up without creating it."""
        return self._instruments.get((name, _canonical_labels(labels)))

    def histograms(self, name: str) -> List[Histogram]:
        """Every labelled variant of one histogram name, sorted by labels."""
        return [
            instrument
            for instrument in self.instruments()
            if isinstance(instrument, Histogram) and instrument.name == name
        ]

    def snapshot(self) -> Dict[str, object]:
        """Plain-data dump of every instrument (collectors run first)."""
        self.collect()
        counters: Dict[str, int] = {}
        gauges: Dict[str, float] = {}
        histograms: Dict[str, dict] = {}
        for instrument in self.instruments():
            key = _render_key(instrument.name, instrument.labels)
            if isinstance(instrument, Histogram):
                histograms[key] = {
                    "count": instrument.count,
                    "sum": instrument.total,
                    "buckets": [
                        [bound, count] for bound, count in instrument.cumulative_buckets()
                    ],
                    **instrument.report_percentiles(),
                }
            elif isinstance(instrument, Counter):
                counters[key] = instrument.value
            elif isinstance(instrument, Gauge):
                gauges[key] = instrument.value
        return {"counters": counters, "gauges": gauges, "histograms": histograms}


def _render_key(name: str, labels: LabelSet) -> str:
    if not labels:
        return name
    rendered = ",".join(f'{key}="{value}"' for key, value in labels)
    return f"{name}{{{rendered}}}"


def percentile_reference(samples: Iterable[float], q: float) -> Optional[float]:
    """The sorted-list nearest-rank reference the property tests pin
    :meth:`Histogram.percentile` against."""
    ordered = sorted(samples)
    if not ordered:
        return None
    rank = math.ceil(q / 100.0 * len(ordered))
    return ordered[max(rank, 1) - 1]
