"""Per-run trace trees: spans over the epoch engine's phases.

A :class:`Span` is one timed region with string-keyed attributes and child
spans; a run's spans form a tree — run → epoch → phase → shard — rooted at
the :class:`Tracer`.  Time comes from an injectable
:data:`~repro.common.clock.MonotonicClock` (``time.perf_counter`` by
default, a :class:`~repro.common.clock.ManualClock` in tests), never from the
chain's simulated clock, and nothing downstream of a span ever reads it back:
tracing observes the run, it cannot steer it.

Two attachment disciplines, one tree:

* **Stack spans** (:meth:`Tracer.span`) — the context-manager form for code
  that runs on the orchestrating thread: each span opens under the innermost
  open span and closes in LIFO order.
* **Detached spans** (:meth:`Tracer.detached`) — spans measured *off* the
  orchestrating thread (a worker thread timing its shard, a worker process
  timing a phase).  They are created unattached, finished where the work
  ran, and adopted into a parent afterwards **in fixed shard order** — the
  same discipline the engine's deterministic merge applies to execution
  buffers, so the assembled tree is identical however the work interleaved.

Spans cross the process boundary the way every other per-epoch delta does:
:meth:`Span.to_wire` / :func:`span_from_wire` translate to and from plain
data (picklable dicts of primitives).  A wire span carries its duration and
its own clock's timestamps; timestamps from different processes share no
epoch, so cross-process ordering always comes from the merge discipline, not
from comparing clocks.  :func:`reassemble_shard_spans` is that discipline for
worker lanes: given each shard's wire spans, it grafts them under per-phase
parents sorted by shard index, whatever order the lanes returned in.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.common.clock import DEFAULT_MONOTONIC, MonotonicClock
from repro.common.errors import ReproError


class Span:
    """One timed region of a run, with attributes and children."""

    __slots__ = ("name", "attrs", "start", "end", "children")

    def __init__(
        self,
        name: str,
        attrs: Optional[Dict[str, object]] = None,
        start: float = 0.0,
        end: Optional[float] = None,
    ) -> None:
        self.name = name
        self.attrs: Dict[str, object] = dict(attrs) if attrs else {}
        self.start = start
        self.end = end
        self.children: List["Span"] = []

    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        """Seconds between start and end (0.0 while still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def child(self, name: str, **attrs: object) -> "Span":
        """Attach and return a new (unstarted) child span."""
        span = Span(name, attrs)
        self.children.append(span)
        return span

    def walk(self) -> Iterable["Span"]:
        """Depth-first pre-order over this span and every descendant."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str, **attrs: object) -> List["Span"]:
        """Every descendant (or self) matching ``name`` and all given attrs."""
        return [
            span
            for span in self.walk()
            if span.name == name
            and all(span.attrs.get(key) == value for key, value in attrs.items())
        ]

    # -- wire form (process boundary) -----------------------------------------

    def to_wire(self) -> dict:
        """Plain-data form: primitives and nested dicts only, picklable and
        JSON-serialisable, carrying exactly what the merge side needs."""
        return {
            "name": self.name,
            "attrs": dict(self.attrs),
            "start": self.start,
            "end": self.end,
            "children": [child.to_wire() for child in self.children],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, attrs={self.attrs}, "
            f"duration={self.duration:.6f}, children={len(self.children)})"
        )


def span_from_wire(payload: Mapping) -> Span:
    """Rebuild a span tree from :meth:`Span.to_wire` output."""
    span = Span(
        str(payload["name"]),
        dict(payload.get("attrs") or {}),
        start=float(payload.get("start") or 0.0),
        end=payload.get("end"),
    )
    span.children = [span_from_wire(child) for child in payload.get("children", ())]
    return span


class _SpanContext:
    """Context manager binding one stack span to a tracer."""

    __slots__ = ("tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self.tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, exc_type, exc, tb) -> None:
        self.tracer._close(self.span)


class _NullSpanContext:
    """The shared no-op context a disabled tracer hands out."""

    __slots__ = ()

    def __enter__(self) -> Optional[Span]:
        return None

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN_CONTEXT = _NullSpanContext()


class Tracer:
    """Builds a run's span tree against an injectable monotonic clock."""

    def __init__(
        self,
        clock: Optional[MonotonicClock] = None,
        enabled: bool = True,
    ) -> None:
        self.enabled = enabled
        self.clock: MonotonicClock = clock if clock is not None else DEFAULT_MONOTONIC
        #: Finished (or in-flight) top-level spans, in start order.
        self.roots: List[Span] = []
        self._stack: List[Span] = []

    # -- stack spans (orchestrating thread) ------------------------------------

    def span(self, name: str, **attrs: object):
        """Open a span under the innermost open span (context manager)."""
        if not self.enabled:
            return _NULL_SPAN_CONTEXT
        span = Span(name, attrs, start=self.clock())
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        return _SpanContext(self, span)

    def _close(self, span: Span) -> None:
        if not self._stack or self._stack[-1] is not span:
            raise ReproError(
                f"span {span.name!r} closed out of order; stack spans close LIFO"
            )
        self._stack.pop()
        span.end = self.clock()

    @property
    def current(self) -> Optional[Span]:
        """The innermost open stack span, if any."""
        return self._stack[-1] if self._stack else None

    # -- detached spans (worker threads / processes) ---------------------------

    def detached(self, name: str, **attrs: object) -> Optional[Span]:
        """Start an unattached span.

        Safe to call from worker threads: it touches no shared tracer state,
        only the clock.  Finish it with :meth:`finish`, then :meth:`adopt` it
        into a parent on the orchestrating thread, in deterministic order.
        Returns ``None`` when the tracer is disabled (callers pass it along
        unconditionally; ``finish``/``adopt`` ignore ``None``).
        """
        if not self.enabled:
            return None
        return Span(name, attrs, start=self.clock())

    def finish(self, span: Optional[Span]) -> None:
        """Stamp a detached span's end time (no-op on ``None``)."""
        if span is not None:
            span.end = self.clock()

    def adopt(self, parent: Optional[Span], span: Optional[Span]) -> None:
        """Attach a finished detached span under ``parent``.

        The caller owns the ordering: adopt in fixed shard order so the tree
        is identical whatever the execution interleaving was.
        """
        if span is None:
            return
        if parent is None:
            self.roots.append(span)
        else:
            parent.children.append(span)

    # -- whole-tree queries ----------------------------------------------------

    def find(self, name: str, **attrs: object) -> List[Span]:
        """Every span matching ``name``/attrs across all roots."""
        return [
            span for root in self.roots for span in root.find(name, **attrs)
        ]

    def reset(self) -> None:
        """Drop every recorded span (open stack included)."""
        self.roots.clear()
        self._stack.clear()


#: Fixed phase order of one engine epoch — the order phase spans appear in
#: under an epoch span, and the order lane wire spans are reassembled in.
PHASE_ORDER = ("drive", "deliver", "update", "settle", "merge")


def reassemble_shard_spans(
    epoch_span: Span,
    shard_wire_spans: Sequence[Tuple[int, Sequence[Mapping]]],
    *,
    phase_order: Sequence[str] = PHASE_ORDER,
    lane_of: Optional[Mapping[int, int]] = None,
) -> List[Span]:
    """Graft worker-lane wire spans under per-phase parents, in fixed shard
    order.

    ``shard_wire_spans`` maps shard index → that shard's finished wire spans
    (each tagged with a ``phase`` attr by the worker).  Lanes return results
    in whatever order the pool delivers; this function imposes the canonical
    structure: one ``phase`` span per phase (in ``phase_order``) whose
    children are the shards' spans sorted by shard index — exactly the tree a
    serial run produces, which is what makes trace output comparable across
    execution modes.  Phase spans carry no main-side timing of their own
    (``start == end == 0``): in process mode the phase's real time lives in
    the per-shard lane spans.  Returns the phase spans that received at least
    one child.
    """
    by_phase: Dict[str, List[Tuple[int, Span]]] = {}
    for shard_index, wire_spans in sorted(shard_wire_spans, key=lambda item: item[0]):
        for payload in wire_spans:
            span = span_from_wire(payload)
            span.attrs.setdefault("shard", shard_index)
            if lane_of is not None and shard_index in lane_of:
                span.attrs.setdefault("lane", lane_of[shard_index])
            phase = str(span.attrs.get("phase", span.name))
            by_phase.setdefault(phase, []).append((shard_index, span))
    grafted: List[Span] = []
    for phase in phase_order:
        shards = by_phase.pop(phase, None)
        if not shards:
            continue
        parent = epoch_span.child("phase", phase=phase, mode="process")
        parent.end = parent.start  # synthetic container: no main-side timing
        for _, span in sorted(shards, key=lambda item: item[0]):
            parent.children.append(span)
        grafted.append(parent)
    if by_phase:
        unknown = sorted(by_phase)
        raise ReproError(f"lane spans carry unknown phases: {unknown}")
    return grafted
