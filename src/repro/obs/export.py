"""Exporters for the observability plane: JSONL events, Prometheus text, and
the operator report.

Three consumers, three formats, one source of truth (a
:class:`~repro.obs.metrics.MetricsRegistry` plus a
:class:`~repro.obs.tracing.Tracer`):

* :func:`export_jsonl` — one JSON object per line, machine-diffable, the form
  the CI obs-smoke job validates with :func:`validate_jsonl_line`.  Spans are
  flattened depth-first with ``span_id``/``parent_id`` assigned **at export
  time** in deterministic pre-order — span identity is a property of the
  finished tree, not of creation order, so exporting never introduces
  run-order entropy.
* :func:`export_prometheus` — the Prometheus text exposition format
  (``# TYPE`` headers, cumulative ``le`` buckets, ``_sum``/``_count``),
  round-trippable through :func:`parse_prometheus`.
* :func:`render_report` — the human section, rendered through
  :mod:`repro.analysis.reporting` so it matches every other table this repo
  prints.

All three are export-time operations: they read finished instruments and
spans, never run inside an engine phase.
"""

from __future__ import annotations

import json
import math
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.common.errors import ReproError
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    _render_key,
)
from repro.obs.tracing import Span, Tracer

#: Every event type a JSONL stream may contain.
JSONL_EVENT_TYPES = ("meta", "span", "counter", "gauge", "histogram")

#: Required fields per event type (beyond ``type`` itself).
_JSONL_REQUIRED: Dict[str, Tuple[str, ...]] = {
    "meta": ("run",),
    "span": ("span_id", "parent_id", "name", "attrs", "duration"),
    "counter": ("name", "labels", "value"),
    "gauge": ("name", "labels", "value"),
    "histogram": ("name", "labels", "count", "sum", "buckets", "p50", "p95", "p99"),
}


def format_duration(seconds: Optional[float]) -> str:
    """Render a latency compactly (``µs``/``ms``/``s``), ``-`` for missing."""
    if seconds is None:
        return "-"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f}µs"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds:.3f}s"


def _labels_dict(labels: Tuple[Tuple[str, str], ...]) -> Dict[str, str]:
    return {key: value for key, value in labels}


# -- JSONL ---------------------------------------------------------------------


def _span_events(
    span: Span, parent_id: Optional[int], next_id: List[int], out: List[dict]
) -> None:
    span_id = next_id[0]
    next_id[0] += 1
    out.append(
        {
            "type": "span",
            "span_id": span_id,
            "parent_id": parent_id,
            "name": span.name,
            "attrs": dict(span.attrs),
            "duration": span.duration,
        }
    )
    for child in span.children:
        _span_events(child, span_id, next_id, out)


def export_jsonl(
    registry: MetricsRegistry,
    tracer: Optional[Tracer] = None,
    *,
    meta: Optional[Mapping[str, object]] = None,
) -> str:
    """Serialise everything as one JSON object per line.

    Line order is deterministic: one ``meta`` line, spans in depth-first
    pre-order across roots, then instruments in registry order (sorted by
    name and labels).
    """
    registry.collect()
    events: List[dict] = [{"type": "meta", "run": dict(meta) if meta else {}}]
    if tracer is not None:
        next_id = [0]
        for root in tracer.roots:
            _span_events(root, None, next_id, events)
    for instrument in registry.instruments():
        labels = _labels_dict(instrument.labels)
        if isinstance(instrument, Histogram):
            events.append(
                {
                    "type": "histogram",
                    "name": instrument.name,
                    "labels": labels,
                    "count": instrument.count,
                    "sum": instrument.total,
                    "buckets": [
                        [bound if math.isfinite(bound) else "+Inf", count]
                        for bound, count in instrument.cumulative_buckets()
                    ],
                    **instrument.report_percentiles(),
                }
            )
        elif isinstance(instrument, Counter):
            events.append(
                {
                    "type": "counter",
                    "name": instrument.name,
                    "labels": labels,
                    "value": instrument.value,
                }
            )
        elif isinstance(instrument, Gauge):
            events.append(
                {
                    "type": "gauge",
                    "name": instrument.name,
                    "labels": labels,
                    "value": instrument.value,
                }
            )
    return "\n".join(json.dumps(event, sort_keys=True) for event in events) + "\n"


def validate_jsonl_line(line: str) -> dict:
    """Parse one JSONL line and check it against the event schema.

    Raises :class:`ReproError` describing the first violation; returns the
    parsed event otherwise.  This is the check the CI obs-smoke job runs over
    every exported line.
    """
    try:
        event = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ReproError(f"invalid JSONL line: {exc}") from exc
    if not isinstance(event, dict):
        raise ReproError("JSONL event must be an object")
    event_type = event.get("type")
    if event_type not in _JSONL_REQUIRED:
        raise ReproError(f"unknown JSONL event type: {event_type!r}")
    missing = [field for field in _JSONL_REQUIRED[event_type] if field not in event]
    if missing:
        raise ReproError(f"{event_type} event missing fields: {missing}")
    if event_type == "span":
        if not isinstance(event["span_id"], int):
            raise ReproError("span_id must be an integer")
        parent = event["parent_id"]
        if parent is not None and (
            not isinstance(parent, int) or parent >= event["span_id"]
        ):
            raise ReproError("parent_id must be None or a smaller span_id (pre-order)")
        if not isinstance(event["duration"], (int, float)) or event["duration"] < 0:
            raise ReproError("span duration must be a non-negative number")
    if event_type == "histogram":
        buckets = event["buckets"]
        if not buckets or buckets[-1][0] != "+Inf":
            raise ReproError("histogram buckets must end with +Inf")
        counts = [count for _, count in buckets]
        if any(b < a for a, b in zip(counts, counts[1:])):
            raise ReproError("histogram cumulative bucket counts must be monotone")
        if counts[-1] != event["count"]:
            raise ReproError("histogram +Inf bucket must equal total count")
    return event


def validate_jsonl(text: str) -> List[dict]:
    """Validate a whole JSONL document line by line."""
    events = [validate_jsonl_line(line) for line in text.splitlines() if line]
    if not events or events[0].get("type") != "meta":
        raise ReproError("JSONL stream must start with a meta event")
    return events


# -- Prometheus text -----------------------------------------------------------


def _prom_labels(labels: Tuple[Tuple[str, str], ...], extra: str = "") -> str:
    parts = [f'{key}="{value}"' for key, value in labels]
    if extra:
        parts.append(extra)
    if not parts:
        return ""
    return "{" + ",".join(parts) + "}"


def _prom_number(value: float) -> str:
    if math.isinf(value):
        return "+Inf"
    return repr(float(value)) if isinstance(value, float) else str(value)


def export_prometheus(registry: MetricsRegistry) -> str:
    """Render every instrument in the Prometheus text exposition format."""
    registry.collect()
    by_name: Dict[str, List[object]] = {}
    for instrument in registry.instruments():
        by_name.setdefault(instrument.name, []).append(instrument)
    lines: List[str] = []
    for name in sorted(by_name):
        family = by_name[name]
        kind = type(family[0])
        if any(type(instrument) is not kind for instrument in family):
            raise ReproError(f"metric family {name!r} mixes instrument kinds")
        if issubclass(kind, Histogram):
            lines.append(f"# TYPE {name} histogram")
            for histogram in family:
                for bound, count in histogram.cumulative_buckets():
                    le = "+Inf" if math.isinf(bound) else _prom_number(bound)
                    bucket_labels = _prom_labels(histogram.labels, f'le="{le}"')
                    lines.append(f"{name}_bucket{bucket_labels} {count}")
                lines.append(
                    f"{name}_sum{_prom_labels(histogram.labels)} {_prom_number(histogram.total)}"
                )
                lines.append(
                    f"{name}_count{_prom_labels(histogram.labels)} {histogram.count}"
                )
        elif issubclass(kind, Counter):
            lines.append(f"# TYPE {name} counter")
            for counter in family:
                lines.append(f"{name}{_prom_labels(counter.labels)} {counter.value}")
        else:
            lines.append(f"# TYPE {name} gauge")
            for gauge in family:
                lines.append(
                    f"{name}{_prom_labels(gauge.labels)} {_prom_number(gauge.value)}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


def parse_prometheus(text: str) -> Dict[str, List[Tuple[Dict[str, str], float]]]:
    """Parse Prometheus text back into ``{metric: [(labels, value), …]}``.

    A deliberately strict parser for the formats :func:`export_prometheus`
    emits — the CI smoke job uses it to assert the snapshot is well-formed.
    Raises :class:`ReproError` on any malformed line.
    """
    samples: Dict[str, List[Tuple[Dict[str, str], float]]] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) < 4 or parts[1] != "TYPE" or parts[3] not in (
                "counter",
                "gauge",
                "histogram",
            ):
                raise ReproError(f"malformed Prometheus comment: {raw!r}")
            continue
        name_part, _, value_part = line.rpartition(" ")
        if not name_part:
            raise ReproError(f"malformed Prometheus sample: {raw!r}")
        if value_part == "+Inf":
            value = math.inf
        else:
            try:
                value = float(value_part)
            except ValueError as exc:
                raise ReproError(f"malformed Prometheus value: {raw!r}") from exc
        labels: Dict[str, str] = {}
        if name_part.endswith("}"):
            name, _, label_blob = name_part.partition("{")
            label_blob = label_blob[:-1]
            if label_blob:
                for pair in label_blob.split(","):
                    key, eq, quoted = pair.partition("=")
                    if not eq or len(quoted) < 2 or quoted[0] != '"' or quoted[-1] != '"':
                        raise ReproError(f"malformed Prometheus label: {raw!r}")
                    labels[key] = quoted[1:-1]
        else:
            name = name_part
        if not name or not name.replace("_", "").replace(":", "").isalnum():
            raise ReproError(f"malformed Prometheus metric name: {raw!r}")
        samples.setdefault(name, []).append((labels, value))
    return samples


# -- Operator report -----------------------------------------------------------


def render_report(
    registry: MetricsRegistry,
    tracer: Optional[Tracer] = None,
    *,
    title: str = "Observability report",
) -> str:
    """Render the operator section: latency tables, counters, gauges."""
    # Imported here, not at module top: repro.analysis reaches the gateway
    # through the workloads package, and the gateway scheduler imports this
    # package — a top-level import would make `import repro.obs` circular.
    from repro.analysis.reporting import format_table

    registry.collect()
    sections: List[str] = [f"{title}\n{'=' * len(title)}"]

    histograms = [
        instrument
        for instrument in registry.instruments()
        if isinstance(instrument, Histogram) and instrument.count > 0
    ]
    if histograms:
        rows = []
        for histogram in histograms:
            # Only *_seconds histograms carry a time unit; everything else
            # (bin utilization, plan widths) renders as a bare number.
            if histogram.name.endswith("_seconds"):
                render = format_duration
            else:
                render = lambda value: f"{value:g}" if value is not None else "-"
            pcts = histogram.report_percentiles()
            rows.append(
                (
                    _render_key(histogram.name, histogram.labels),
                    histogram.count,
                    render(pcts["p50"]),
                    render(pcts["p95"]),
                    render(pcts["p99"]),
                    render(histogram.mean),
                )
            )
        sections.append(
            format_table(
                ["histogram", "n", "p50", "p95", "p99", "mean"],
                rows,
                title="Latency distributions",
            )
        )

    counters = [
        instrument
        for instrument in registry.instruments()
        if type(instrument) is Counter
    ]
    if counters:
        sections.append(
            format_table(
                ["counter", "value"],
                [
                    (_render_key(counter.name, counter.labels), counter.value)
                    for counter in counters
                ],
                title="Counters",
            )
        )

    gauges = [
        instrument for instrument in registry.instruments() if type(instrument) is Gauge
    ]
    if gauges:
        sections.append(
            format_table(
                ["gauge", "value"],
                [
                    (_render_key(gauge.name, gauge.labels), gauge.value)
                    for gauge in gauges
                ],
                title="Gauges",
            )
        )

    if tracer is not None and tracer.roots:
        span_count = sum(1 for root in tracer.roots for _ in root.walk())
        epochs = len(tracer.find("epoch"))
        sections.append(
            f"Trace: {len(tracer.roots)} root(s), {epochs} epoch span(s), "
            f"{span_count} spans total"
        )

    return "\n\n".join(sections) + "\n"
