"""The observability plane: tracing + metrics for the gateway fleet.

:class:`Observability` bundles the two halves every instrumented layer needs —
a :class:`~repro.obs.metrics.MetricsRegistry` of counters/gauges/histograms
and a :class:`~repro.obs.tracing.Tracer` building the per-run span tree — and
adds the one convenience the engine uses everywhere: :meth:`Observability.phase`,
a context manager that opens a span *and* observes its duration into the
matching latency histogram when it closes.

The plane is strictly **zero-entropy with respect to correctness**: nothing
recorded here is ever read back by scheduling, gas accounting or state
transitions, so fingerprints, gas bills and chain state are bit-identical
with observability enabled or disabled, across every execution backend.
Disabled observability is near-free: instrumented layers hold ``obs = None``
or the shared :data:`DISABLED` instance, and every call site guards on one
attribute test before doing any work.

Usage::

    from repro.obs import Observability

    obs = Observability()                       # enabled, perf_counter clock
    scheduler = EpochScheduler(registry, ..., obs=obs)
    scheduler.run(epochs=8)
    print(obs.render_report())
    obs.export_jsonl_file("trace.jsonl", meta={"mode": "serial"})
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.common.clock import MonotonicClock
from repro.obs.export import (
    export_jsonl,
    export_prometheus,
    format_duration,
    parse_prometheus,
    render_report,
    validate_jsonl,
    validate_jsonl_line,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    REPORT_PERCENTILES,
    log_buckets,
    percentile_reference,
)
from repro.obs.tracing import (
    PHASE_ORDER,
    Span,
    Tracer,
    reassemble_shard_spans,
    span_from_wire,
)

__all__ = [
    "Observability",
    "DISABLED",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "log_buckets",
    "percentile_reference",
    "REPORT_PERCENTILES",
    "Tracer",
    "Span",
    "span_from_wire",
    "reassemble_shard_spans",
    "PHASE_ORDER",
    "export_jsonl",
    "export_prometheus",
    "parse_prometheus",
    "render_report",
    "validate_jsonl",
    "validate_jsonl_line",
    "format_duration",
]

#: Histogram name every engine phase span reports its duration into.
PHASE_HISTOGRAM = "gateway_phase_seconds"


class _PhaseContext:
    """Span-plus-histogram context: times a phase, records both views."""

    __slots__ = ("obs", "name", "attrs", "context", "span")

    def __init__(self, obs: "Observability", name: str, attrs: Dict[str, object]) -> None:
        self.obs = obs
        self.name = name
        self.attrs = attrs
        self.context = obs.tracer.span("phase", phase=name, **attrs)
        self.span = None

    def __enter__(self) -> Optional[Span]:
        self.span = self.context.__enter__()
        return self.span

    def __exit__(self, exc_type, exc, tb) -> None:
        self.context.__exit__(exc_type, exc, tb)
        if self.span is not None:
            self.obs.observe_phase(self.name, self.span.duration)


class Observability:
    """One registry + one tracer, sharing an enabled flag and a clock."""

    def __init__(
        self,
        enabled: bool = True,
        clock: Optional[MonotonicClock] = None,
    ) -> None:
        self.enabled = enabled
        self.registry = MetricsRegistry(enabled=enabled)
        self.tracer = Tracer(clock=clock, enabled=enabled)

    # -- instrument passthrough ------------------------------------------------

    def counter(self, name: str, **labels: str) -> Counter:
        return self.registry.counter(name, **labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self.registry.gauge(name, **labels)

    def histogram(self, name: str, buckets=None, **labels: str) -> Histogram:
        return self.registry.histogram(name, buckets=buckets, **labels)

    # -- spans -----------------------------------------------------------------

    def span(self, name: str, **attrs: object):
        return self.tracer.span(name, **attrs)

    def phase(self, name: str, **attrs: object):
        """Open a ``phase`` span and, on close, observe its duration into
        ``gateway_phase_seconds{phase=name}``."""
        if not self.enabled:
            return self.tracer.span(name)  # the shared null context
        return _PhaseContext(self, name, dict(attrs))

    def observe_phase(self, name: str, seconds: float) -> None:
        """Record one phase duration (used directly when the span was timed
        elsewhere — e.g. a worker lane across the process boundary)."""
        self.registry.histogram(PHASE_HISTOGRAM, phase=name).observe(seconds)

    # -- export ----------------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        return self.registry.snapshot()

    def export_jsonl(self, *, meta: Optional[Mapping[str, object]] = None) -> str:
        return export_jsonl(self.registry, self.tracer, meta=meta)

    def export_jsonl_file(
        self, path, *, meta: Optional[Mapping[str, object]] = None
    ) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.export_jsonl(meta=meta))

    def export_prometheus(self) -> str:
        return export_prometheus(self.registry)

    def render_report(self, *, title: str = "Observability report") -> str:
        return render_report(self.registry, self.tracer, title=title)

    def phase_percentiles(self) -> Dict[str, Dict[str, Optional[float]]]:
        """``{phase: {"p50": …, "p95": …, "p99": …}}`` for every instrumented
        phase — the record benchmarks embed next to ops/sec."""
        out: Dict[str, Dict[str, Optional[float]]] = {}
        for histogram in self.registry.histograms(PHASE_HISTOGRAM):
            labels = dict(histogram.labels)
            out[labels.get("phase", "?")] = {
                "count": histogram.count,
                **histogram.report_percentiles(),
            }
        return out


#: The shared disabled instance instrumented layers default to.
DISABLED = Observability(enabled=False)
