"""The elastic parallel epoch engine: drive a churning fleet of feeds
concurrently, settle deterministically, respect the block gas limit.

Single-feed GRuB already amortises transaction base cost across the requests
of one epoch.  The scheduler applies the same idea across *tenants*: feeds are
sharded into groups, and at every epoch boundary each shard's outstanding
work is coalesced into

* **one** batched ``deliver`` transaction per shard (the shared watchdog's
  pending requests of every feed in the shard, grouped per feed), and
* **one** grouped ``update`` transaction per shard (every feed's prepared
  epoch update),

both landed through the :class:`~repro.gateway.router.GatewayRouterContract`
and each mined into its own block, so a shard of S feeds pays one 21k
transaction base where S isolated deployments pay up to 2·S per epoch — and
so every settlement block's gas is exactly one shard's batch, the quantity
the shard planner budgets against ``ChainParameters.block_gas_limit``.

**Elastic fleets.** The scheduler is a fleet controller, not a fixed-fleet
loop: :meth:`EpochScheduler.admit` and :meth:`EpochScheduler.evict` queue
tenant arrivals and departures that are applied at epoch boundaries (feeds
never change mid-epoch, so per-epoch accounting stays exact).  An admitted
feed is created in the registry, given a cache shard and a telemetry row, and
joins the next shard plan; an evicted feed has its pending deliver requests
explicitly cancelled (after a final watchdog poll), its unexecuted workload
operations counted as cancelled, its registry entry removed (which deregisters
its watchdog route and tears down its cache shard via the removal listeners)
— while its telemetry row is retained as the tenant's final bill.  Feed ids
are unique within one run; a departed id may be reused in a later run.

**Shard planning and quotas.** Each epoch's shard plan comes from a
:class:`~repro.gateway.planner.ShardPlanner` — by default the original
round-robin plan, or a :class:`~repro.gateway.planner.GasAwareShardPlanner`
that estimates per-feed epoch gas from trailing telemetry and bin-packs
feeds so every settlement block stays under a configured fraction of the
block gas limit.  Per-tenant quotas live on the :class:`FeedSpec`:
``max_ops_per_epoch`` caps how many of a feed's operations one epoch may
drive, and ``max_gas_per_epoch`` stops driving a feed once its epoch's
driving-phase gas reaches the cap (checked after each operation, so at least
one operation always executes and a throttled tenant still terminates).
Over-quota operations are *deferred*: they stay at the head of the feed's
queue for later epochs and are surfaced as ``deferred_ops`` in telemetry.

**Parallel execution.** Feeds are independent between settlement points, so
within an epoch the off-chain work of every shard — driving its feeds'
operations, generating the SP's deliver proofs, running each DO's
``prepare_epoch_update`` — executes on a pluggable backend selected by
``execution_mode``: ``"serial"`` runs shards inline, ``"thread"`` (default)
overlaps them on a :class:`~concurrent.futures.ThreadPoolExecutor` with
``num_workers`` threads (CPython's GIL caps the speedup at ≈1× for this
pure-Python hot path), and ``"process"`` ships whole shards to persistent
worker processes (:class:`~repro.gateway.executor.ProcessEngine`) that host
full mirrors of their feeds and return per-epoch deltas — the mode that
actually multiplies throughput on multicore hosts.  Isolation is structural,
not locked: a worker owns whole shards (so every per-feed object —
contracts, SP store, control plane, cache shard, telemetry row, workload
queue — is touched by exactly one worker), and the two globally *ordered*
chain structures (the gas ledger and the event log) are deferred into
per-shard :class:`~repro.chain.chain.ExecutionBuffer`\\ s.  Settlement then
lands in a **deterministic merge phase**: buffers are absorbed, transactions
submitted (or, in process mode, recorded from the workers' pre-executed
results), and accounting folded in fixed shard order, so every backend
produces bit-identical telemetry, per-feed gas bills and chain state to a
serial run — which executes the very same phase code, shared through
:mod:`repro.gateway.executor`.  Churn processing and shard planning happen
on the main thread between epochs, from deterministic inputs, so the
guarantee extends to elastic runs (pinned by
``tests/gateway/test_elastic_properties.py`` over all three backends).  A
static process run — fixed fleet, round-robin plan, memory-backed stores —
keeps the pinned, pipelined :class:`~repro.gateway.executor.ProcessEngine`;
anything else (queued churn, a re-sharding gas-aware plan, LSM-backed SP
stores) routes to the :class:`~repro.gateway.executor.ElasticProcessEngine`,
which moves feeds between worker lanes as wire-encoded snapshot frames at
epoch boundaries and grows/shrinks the lane pool with the plan.

Reads are fronted by the consumer-side :class:`~repro.gateway.cache.ReadCache`
when one is configured: a read of a key whose verified replica the gateway has
already observed is served from the gateway's full node without re-executing
the on-chain ``gGet`` (cached reads therefore do not appear in the on-chain
read trace — exactly like a consumer that keeps its own memo of public chain
state).  The cache is additionally warmed straight from verified deliver
payloads: a record the chain just verified *and replicated* in a deliver batch
is public replicated state, so it is memoised immediately instead of waiting
for the first post-deliver read.  Writes and evictions invalidate the affected
entry; keys written during the current epoch are never memoised until their
epoch update lands.

The scheduler never consults a wall clock for scheduling decisions and uses
no randomness, so two runs over the same fleet, workloads and churn schedule
are identical — whatever ``num_workers`` says; ``time.perf_counter`` is only
sampled to report the runtime's own ops/sec.
"""

from __future__ import annotations

import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import (
    Callable,
    Deque,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.chain.gas import LAYER_APPLICATION, LAYER_FEED
from repro.chain.transaction import Transaction
from repro.common.errors import ConfigurationError, ReproError
from repro.common.types import EpochSummary, Operation, ReplicationState
from repro.common.wire import WireEncoder
from repro.gateway.cache import CacheStats, ReadCache
from repro.gateway.executor import (
    EXECUTION_MODES,
    GATEWAY_OPERATOR,
    ElasticProcessEngine,
    ProcessEngine,
    SettlementResult,
    ShardEnvironment,
    apply_feed_state,
    build_deliver_groups,
    deliver_transaction,
    drive_shard,
    encode_feed_snapshot,
    prepare_update_groups,
    settle_feed_epoch,
    settlement_buffer,
    update_transaction,
    warm_cache_from_deliveries,
)
from repro.gateway.metrics import FeedTelemetry, FleetTelemetry
from repro.gateway.planner import RoundRobinPlanner, ShardPlanner
from repro.gateway.registry import FeedRegistry, FeedSpec
from repro.gateway.router import DeliverGroup
from repro.obs import DISABLED, Observability
from repro.obs.metrics import log_buckets
from repro.obs.tracing import reassemble_shard_spans
from repro.storage.lsm import LSMStore


class RequestSource:
    """Protocol of the live ingestion seam (duck-typed; this base class only
    documents it — the canonical implementation is the front door in
    :mod:`repro.frontdoor`).

    The scheduler calls, always from its own run thread:

    * ``poll(epoch, wait=...)`` at every epoch boundary — return the eligible
      arrivals as ``{feed_id: [Operation, ...]}``.  With ``wait=True`` the
      gateway is idle: block until arrivals become eligible, a future epoch
      is scheduled, or the door closes (then return what there is, possibly
      nothing).
    * ``exhausted`` — ``True`` once the door is closed *and* every accepted
      request has been handed over; the run may then terminate.
    * ``next_epoch(after)`` — the earliest epoch > ``after`` with a scheduled
      arrival, or ``None``; lets an idle run fast-forward instead of spinning.
    * ``settled(epoch, feed_id, executed=…, deferred=…, gas=…)`` — after a
      feed's epoch settles: ``executed`` head-of-queue operations completed
      (resolve that many futures, FIFO), ``deferred`` were pushed to a later
      epoch by quotas, ``gas`` is the feed's settled epoch gas (feed +
      application layers) to attribute across the executed requests.
    * ``evicted(epoch, feed_id)`` — the churn boundary just evicted a tenant
      (its queued operations were dropped and counted as cancelled).  Cancel
      that tenant's outstanding requests *immediately* and reject later ones
      at admission — a client awaiting them would otherwise hold the door
      open for responses that can never settle.  Optional; defaults to a
      no-op for sources that never see churn.
    * ``run_finished(fleet)`` — the run is over (normally or not); fail any
      still-pending futures instead of leaving clients hanging.

    Everything is driven by epoch indices and queue positions — never a wall
    clock — so a scripted request sequence reproduces bit-identically.
    """

    def poll(self, epoch: int, *, wait: bool) -> Mapping[str, Sequence[Operation]]:
        raise NotImplementedError

    @property
    def exhausted(self) -> bool:
        raise NotImplementedError

    def next_epoch(self, after: int) -> Optional[int]:
        raise NotImplementedError

    def settled(
        self, epoch: int, feed_id: str, *, executed: int, deferred: int, gas: int
    ) -> None:
        raise NotImplementedError

    def evicted(self, epoch: int, feed_id: str) -> None:
        """Optional hook; sources that never face churn can ignore it."""

    def run_finished(self, fleet: FleetTelemetry) -> None:
        raise NotImplementedError


@dataclass(frozen=True)
class Admission:
    """One queued tenant arrival, applied at the first boundary ≥ ``at_epoch``."""

    spec: FeedSpec
    operations: Tuple[Operation, ...]
    at_epoch: int = 0


@dataclass(frozen=True)
class Eviction:
    """One queued tenant departure; the feed does not run epoch ``at_epoch``."""

    feed_id: str
    at_epoch: int = 0


class EpochScheduler:
    """Drives hosted feeds epoch-by-epoch with parallel off-chain execution,
    cross-feed batched settlement and epoch-boundary tenant churn."""

    def __init__(
        self,
        registry: FeedRegistry,
        *,
        num_shards: int = 1,
        num_workers: int = 1,
        epoch_size: Optional[int] = None,
        read_cache: Optional[ReadCache] = None,
        enable_cache: bool = True,
        planner: Optional[ShardPlanner] = None,
        execution_mode: str = "thread",
        obs: Optional[Observability] = None,
        ipc_profile: bool = False,
    ) -> None:
        if num_shards <= 0:
            raise ConfigurationError("num_shards must be positive")
        if num_workers <= 0:
            raise ConfigurationError("num_workers must be positive")
        if execution_mode not in EXECUTION_MODES:
            raise ConfigurationError(
                f"unknown execution_mode {execution_mode!r}; "
                f"expected one of {EXECUTION_MODES}"
            )
        if execution_mode == "serial" and num_workers != 1:
            raise ConfigurationError(
                "execution_mode='serial' runs every shard on the calling "
                "thread; num_workers must be 1"
            )
        if planner is not None and num_shards != 1:
            raise ConfigurationError(
                "num_shards only configures the default round-robin planner; "
                "with an explicit planner, configure sharding on the planner"
            )
        if epoch_size is not None and epoch_size <= 0:
            raise ConfigurationError("epoch_size must be positive when given")
        self.registry = registry
        self.num_shards = num_shards
        #: How the per-shard phases execute: ``"serial"`` runs them inline,
        #: ``"thread"`` overlaps them on a ``num_workers`` thread pool (wall
        #: clock only; the GIL caps the gain), ``"process"`` ships them to
        #: ``num_workers`` persistent worker processes (true multicore).  All
        #: three merge in fixed shard order and produce bit-identical output.
        self.execution_mode = execution_mode
        #: Worker threads (or process lanes) for the per-shard off-chain
        #: phases.  Results are always folded in shard order, so this only
        #: affects wall-clock speed, never any output.
        self.num_workers = num_workers
        self._epoch_size = epoch_size
        #: The per-epoch shard planner; defaults to the gas-oblivious
        #: round-robin plan over ``num_shards``.
        self.planner: ShardPlanner = (
            planner if planner is not None else RoundRobinPlanner(num_shards)
        )
        #: The observability plane (:mod:`repro.obs`).  Defaults to the shared
        #: disabled instance, so untraced schedulers pay only pointer tests.
        #: Strictly observation-only — nothing recorded through it feeds back
        #: into planning, gas or state, which keeps fingerprints bit-identical
        #: with it on or off, across every backend.
        self.obs = obs if obs is not None else DISABLED
        #: Process mode only: additionally measure what each epoch's lane
        #: results *would* cost as a generic protocol-5 pickle, so the wire
        #: codec's byte reduction is recorded per run (``FleetTelemetry.ipc``)
        #: rather than asserted.  Off by default — the comparison pickle is
        #: itself the overhead the codec exists to avoid.
        self.ipc_profile = ipc_profile
        if self.obs.enabled:
            self.registry.chain.obs = self.obs
            self.planner.obs = self.obs
        self.cache = read_cache if read_cache is not None else (ReadCache() if enable_cache else None)
        if self.obs.enabled and self.cache is not None:
            # Pull-style: cache counters are copied into gauges at snapshot
            # time, so the cache's own hot path stays untouched.
            self.obs.registry.register_collector(self._collect_cache_metrics)
        if self.cache is not None and self.cache.invalidate_feed not in registry.removal_listeners:
            # A leaving tenant's entries must not linger (or be served to a
            # later tenant that reuses the feed id).
            registry.removal_listeners.append(self.cache.invalidate_feed)
        #: Keys written this epoch, per feed: their on-chain replica is stale
        #: until the epoch update lands, so the cache must not re-memoise them
        #: mid-epoch (a later epoch would otherwise be served the old value).
        self._dirty: Dict[str, set] = {}
        self._pool: Optional[ThreadPoolExecutor] = None
        self._env: Optional[ShardEnvironment] = None
        self._admission_queue: List[Admission] = []
        self._eviction_queue: List[Eviction] = []
        self.epochs_run = 0

    # -- sharding -------------------------------------------------------------

    def shards(self, feed_ids: Sequence[str]) -> List[List[str]]:
        """The plan ``self.planner`` would produce for ``feed_ids`` right now.

        A convenience view over the configured planner (round-robin by
        default); the run itself asks the planner for a fresh plan every
        epoch, so this reflects what the next epoch would actually settle
        under — whatever planner is configured.
        """
        return self.planner.plan(
            feed_ids, block_gas_limit=self.registry.chain.parameters.block_gas_limit
        )

    def epoch_size_for(self, feed_ids: Sequence[str]) -> int:
        """The lockstep epoch size: explicit, or the largest feed epoch size
        across the initial fleet and every queued admission."""
        if self._epoch_size is not None:
            return self._epoch_size
        sizes = [
            self.registry.get(feed_id).system.config.epoch_size for feed_id in feed_ids
        ]
        sizes.extend(
            admission.spec.config.epoch_size for admission in self._admission_queue
        )
        return max(sizes) if sizes else 32

    # -- fleet controller (admission queue) -----------------------------------

    def admit(
        self,
        spec: FeedSpec,
        operations: Iterable[Operation],
        *,
        at_epoch: int = 0,
    ) -> None:
        """Queue a tenant arrival: the feed joins at the first epoch boundary
        with index ≥ ``at_epoch`` and runs its ``operations`` from there."""
        if at_epoch < 0:
            raise ConfigurationError("at_epoch must be non-negative")
        self._require_batch_deliver(spec)
        if any(a.spec.feed_id == spec.feed_id for a in self._admission_queue):
            # Feed ids are unique per run, so a second admission could never
            # apply — fail fast here instead of aborting mid-run.
            raise ConfigurationError(
                f"admission of {spec.feed_id!r} is already queued"
            )
        self._admission_queue.append(Admission(spec, tuple(operations), at_epoch))

    def evict(self, feed_id: str, *, at_epoch: int = 0) -> None:
        """Queue a tenant departure: the feed does not participate in epoch
        ``at_epoch`` or any later one.  Unexecuted workload operations are
        cancelled and counted; the final telemetry row and gas bill remain.

        An eviction dated before its feed's admission defers until the feed
        arrives (the tenant then joins and immediately leaves); evicting a
        feed the gateway never hosts fails the run loudly at apply time."""
        if at_epoch < 0:
            raise ConfigurationError("at_epoch must be non-negative")
        if any(eviction.feed_id == feed_id for eviction in self._eviction_queue):
            # Feed ids are unique per run, so a second eviction could never
            # apply — fail fast here instead of aborting mid-run.
            raise ConfigurationError(f"eviction of {feed_id!r} is already queued")
        self._eviction_queue.append(Eviction(feed_id, at_epoch))

    @property
    def pending_churn(self) -> int:
        """Queued admissions plus evictions not yet applied."""
        return len(self._admission_queue) + len(self._eviction_queue)

    def _next_churn_epoch(self) -> int:
        """The earliest epoch a queued churn event can fire at.

        Evictions whose feed has a queued admission are covered by that
        admission's epoch (they defer until the feed arrives); every other
        queued event contributes its own ``at_epoch``.  Only called while
        churn is pending.
        """
        admit_ids = {a.spec.feed_id for a in self._admission_queue}
        epochs = [a.at_epoch for a in self._admission_queue]
        epochs.extend(
            e.at_epoch for e in self._eviction_queue if e.feed_id not in admit_ids
        )
        return min(epochs)

    def _require_batch_deliver(self, spec: FeedSpec) -> None:
        if not spec.config.batch_deliver:
            raise ConfigurationError(
                f"feed {spec.feed_id!r}: the gateway settles delivers at epoch "
                "boundaries; per-request delivery (batch_deliver=False) is "
                "a single-feed ablation mode"
            )

    def _apply_churn(
        self,
        epoch: int,
        active: List[str],
        queues: Dict[str, Deque[Operation]],
        fleet: FleetTelemetry,
        source: Optional["RequestSource"] = None,
    ) -> None:
        """Apply every due arrival, then every due departure, in queue order.

        Arrivals first makes an admit/evict pair due at the same boundary
        well-defined: the tenant joins and immediately leaves (its whole
        workload cancelled) instead of the eviction failing on a feed that
        does not exist yet.
        """
        due_admissions = [a for a in self._admission_queue if a.at_epoch <= epoch]
        for admission in due_admissions:
            self._admission_queue.remove(admission)
            spec = admission.spec
            if spec.feed_id in fleet.feeds:
                raise ConfigurationError(
                    f"feed id {spec.feed_id!r} was already hosted in this run; "
                    "ids are unique per run (reuse is allowed across runs)"
                )
            self._require_batch_deliver(spec)
            self.registry.create_feed(spec)
            self._wire_feed_obs(spec.feed_id)
            queues[spec.feed_id] = deque(admission.operations)
            active.append(spec.feed_id)
            self._dirty[spec.feed_id] = set()
            if self.cache is not None:
                self.cache.ensure_shard(spec.feed_id)
            fleet.feeds[spec.feed_id] = FeedTelemetry(
                feed_id=spec.feed_id, admitted_epoch=epoch
            )
            fleet.admissions += 1
        due_evictions = [e for e in self._eviction_queue if e.at_epoch <= epoch]
        if due_evictions:
            # Pull any still-unrouted request events while the departing
            # feeds' routes exist, so their cancellation is explicit and
            # counted instead of events dangling toward a dead handle.
            self.registry.watchdog.poll()
        for eviction in due_evictions:
            feed_id = eviction.feed_id
            telemetry = fleet.feeds.get(feed_id)
            if (telemetry is not None and telemetry.departed) or feed_id not in self.registry:
                if any(a.spec.feed_id == feed_id for a in self._admission_queue):
                    # The eviction outran its feed's admission; leave it
                    # queued — it fires the boundary the feed arrives (the
                    # tenant joins and immediately leaves).
                    continue
                raise ConfigurationError(
                    f"cannot evict {feed_id!r}: "
                    + (
                        "the feed already departed this run"
                        if telemetry is not None and telemetry.departed
                        else "not hosted by the gateway"
                    )
                )
            self._eviction_queue.remove(eviction)
            if telemetry is None:
                # Registered but idle this run (no workload): still a real
                # departure — it gets a (empty) final bill like any tenant.
                telemetry = FeedTelemetry(feed_id=feed_id)
                fleet.feeds[feed_id] = telemetry
            handle = self.registry.get(feed_id)
            telemetry.cancelled_requests += self.registry.watchdog.cancel_pending(handle)
            queue = queues.pop(feed_id, None)
            if queue is not None:
                telemetry.cancelled_ops += len(queue)
            if feed_id in active:
                active.remove(feed_id)
            telemetry.departed_epoch = epoch
            fleet.departures += 1
            self.planner.forget(feed_id)
            self._dirty.pop(feed_id, None)
            # Deregisters the watchdog route, frees the on-chain addresses and
            # fires the removal listeners (cache shard teardown among them).
            self.registry.remove_feed(feed_id)
            if source is not None:
                # A live source must cancel the tenant's outstanding requests
                # now — their operations just left the queue for good.
                source.evicted(epoch, feed_id)

    # -- observability plumbing -----------------------------------------------

    def _collect_cache_metrics(self, registry) -> None:
        """Pull collector: snapshot the read cache's counters into gauges."""
        stats = self.cache.stats
        registry.gauge("cache_hits").set(stats.hits)
        registry.gauge("cache_misses").set(stats.misses)
        registry.gauge("cache_invalidations").set(stats.invalidations)
        registry.gauge("cache_evictions").set(stats.evictions)
        registry.gauge("cache_hit_rate").set(stats.hit_rate)
        registry.gauge("cache_entries").set(len(self.cache))

    def _wire_feed_obs(self, feed_id: str) -> None:
        """Attach the obs hook to a feed's LSM store backing (if it has one)."""
        if not self.obs.enabled:
            return
        backing = self.registry.get(feed_id).system.sp_store.backing
        if isinstance(backing, LSMStore):
            backing.obs = self.obs

    # -- worker-pool plumbing -------------------------------------------------

    def _map_shards(
        self,
        fn: Callable,
        shards: Sequence[List[str]],
        *args,
        phase: Optional[str] = None,
    ) -> List:
        """Apply ``fn(shard, *args)`` to every shard, returning results in
        shard order.

        With one worker (or one shard) this is a plain loop on the calling
        thread; otherwise shards run concurrently on the pool.  Either way the
        caller receives results in the fixed shard order, which is what makes
        the subsequent merge deterministic.

        With tracing on and a ``phase`` name given, each shard's call is timed
        in a detached span (safe off-thread: a worker only reads the clock)
        and the finished spans are adopted under the currently open phase span
        afterwards, on this thread, in fixed shard order — so the trace tree
        is identical whatever the thread interleaving was.
        """
        tracer = self.obs.tracer
        traced = phase is not None and tracer.enabled

        def timed(index: int, shard: List[str]):
            span = (
                tracer.detached("shard", phase=phase, shard=index)
                if traced
                else None
            )
            result = fn(shard, *args)
            if span is not None:
                tracer.finish(span)
            return result, span

        if self._pool is None or len(shards) <= 1:
            outcomes = [timed(index, shard) for index, shard in enumerate(shards)]
        else:
            futures = [
                self._pool.submit(timed, index, shard)
                for index, shard in enumerate(shards)
            ]
            outcomes = [future.result() for future in futures]
        if traced:
            parent = tracer.current
            for _, span in outcomes:
                tracer.adopt(parent, span)
        return [result for result, _ in outcomes]

    # -- the fleet run --------------------------------------------------------

    def run(
        self,
        workloads: Optional[Mapping[str, Sequence[Operation]]] = None,
        *,
        source: Optional["RequestSource"] = None,
    ) -> FleetTelemetry:
        """Drive the fleet through the gateway, epoch by epoch, until every
        workload (initial and admitted) is executed or cancelled and no churn
        events remain queued.

        ``workloads`` maps feed id → operation sequence for feeds registered
        before the run; tenants joining mid-run bring their workloads through
        :meth:`admit`.  All feeds advance in lockstep: each epoch takes up to
        ``epoch_size`` operations from the head of every active feed's queue
        (fewer under quota); feeds whose queue is exhausted simply stop
        contributing operations (their empty epochs send no transactions).

        ``source`` is the **live ingestion seam**: an object implementing the
        :class:`RequestSource` protocol (the front door in
        :mod:`repro.frontdoor` is the canonical one).  When given, every epoch
        boundary drains the source's eligible arrivals into the per-feed
        queues *before* the epoch runs, and after the epoch settles the source
        is told, per feed, how many head-of-queue operations executed and what
        the epoch's gas bill was — which is exactly what it needs to resolve
        request futures in FIFO order with per-request gas attribution.  An
        idle gateway with the door still open blocks on ``poll(wait=True)``
        instead of terminating, so live traffic can arrive at any boundary;
        the run ends once the source is exhausted, every queue is drained and
        no churn remains.  The seam replaces nothing: a source-less ``run``
        is the unchanged deterministic batch path.
        """
        if self.execution_mode == "process":
            return self._run_process(workloads, source=source)
        queues, epoch_size, active, fleet = self._prepare_run(
            workloads, source=source
        )

        # Pre-create every per-feed structure a worker will touch, so the
        # parallel phases never mutate a shared directory — workers only
        # operate on the interiors of structures their shard exclusively owns.
        self._dirty = {feed_id: set() for feed_id in active}
        if self.cache is not None:
            for feed_id in active:
                self.cache.ensure_shard(feed_id)
        for feed_id in active:
            self._wire_feed_obs(feed_id)

        blocks_before = self.registry.chain.height
        wall_start = time.perf_counter()

        # The environment the shard phases operate on: the same dict objects
        # the churn controller mutates, wrapped for the shared executor
        # functions (worker processes build their own, shard-local ones).
        self._env = ShardEnvironment(
            registry=self.registry,
            cache=self.cache,
            dirty=self._dirty,
            queues=queues,
            feeds=fleet.feeds,
        )
        pool = ThreadPoolExecutor(
            max_workers=self.num_workers, thread_name_prefix="epoch-worker"
        ) if self.execution_mode == "thread" and self.num_workers > 1 else None
        self._pool = pool
        epoch = 0
        try:
            with self.obs.span("run", mode=self.execution_mode):
                while True:
                    self._apply_churn(epoch, active, queues, fleet, source)
                    if source is not None:
                        # Drain eligible live arrivals into the queues.  An
                        # idle gateway (no queued work, no pending churn)
                        # blocks here until traffic arrives, a future epoch
                        # is scheduled, or the door closes — a live server
                        # waits for requests, it does not exit.
                        idle = not self.pending_churn and not any(
                            queues[f] for f in active
                        )
                        self._ingest(
                            source.poll(epoch, wait=idle), queues
                        )
                    has_work = any(queues[f] for f in active)
                    door_open = source is not None and not source.exhausted
                    if not self.pending_churn and not has_work and not door_open:
                        break
                    if not has_work:
                        # Every queue is idle; the run is only waiting out the
                        # epochs until the next churn event or the earliest
                        # scheduled live arrival.  Jump straight there (O(1)
                        # per wait, however far off) — no summaries, no
                        # polling, no blocks, no roster entries for the
                        # skipped span, whose membership cannot change.
                        targets = []
                        if self.pending_churn:
                            targets.append(self._next_churn_epoch())
                        if door_open:
                            scheduled = source.next_epoch(epoch)
                            if scheduled is not None:
                                targets.append(scheduled)
                        epoch = (
                            max(epoch + 1, min(targets)) if targets else epoch + 1
                        )
                        continue
                    shard_plan = self.planner.plan(
                        active,
                        block_gas_limit=self.registry.chain.parameters.block_gas_limit,
                    )
                    fleet.rosters.append((epoch, sorted(active)))
                    fleet.shards_per_epoch.append(len(shard_plan))
                    with self.obs.span("epoch", epoch=epoch):
                        self._run_epoch(
                            epoch, epoch_size, active, queues, shard_plan, fleet,
                            source=source,
                        )
                    epoch += 1
        finally:
            self._pool = None
            self._env = None
            if pool is not None:
                pool.shutdown(wait=True)
            if source is not None:
                source.run_finished(fleet)

        fleet.wall_seconds = time.perf_counter() - wall_start
        fleet.epochs_run = epoch
        fleet.blocks_mined = self.registry.chain.height - blocks_before
        self.epochs_run += epoch
        return fleet

    def _prepare_run(
        self,
        workloads: Optional[Mapping[str, Sequence[Operation]]],
        source: Optional["RequestSource"] = None,
    ) -> Tuple[Dict[str, Deque[Operation]], int, List[str], FleetTelemetry]:
        """Shared run prologue for every backend: validate the workload map
        against the registry and build the initial run state.  Validation
        added here applies to serial, thread *and* process runs.

        With a live ``source``, *every* registered feed is active from epoch 0
        (each may receive requests at any boundary), with an empty queue
        unless ``workloads`` pre-seeds it; the equivalent batch run passes a
        workloads map with one (possibly empty) entry per feed.
        """
        workloads = dict(workloads) if workloads else {}
        if source is not None:
            feed_ids = list(self.registry.feed_ids)
        else:
            feed_ids = [
                feed_id for feed_id in self.registry.feed_ids if feed_id in workloads
            ]
        missing = set(workloads) - set(feed_ids)
        if missing:
            raise ConfigurationError(
                f"workloads for unregistered feeds: {sorted(missing)}"
            )
        for feed_id in feed_ids:
            self._require_batch_deliver(self.registry.get(feed_id).spec)
        queues: Dict[str, Deque[Operation]] = {
            feed_id: deque(workloads.get(feed_id, ())) for feed_id in feed_ids
        }
        epoch_size = self.epoch_size_for(feed_ids)
        active = list(feed_ids)
        fleet = FleetTelemetry(
            feeds={feed_id: FeedTelemetry(feed_id=feed_id) for feed_id in active}
        )
        return queues, epoch_size, active, fleet

    def _ingest(
        self,
        arrivals: Mapping[str, Sequence[Operation]],
        queues: Dict[str, Deque[Operation]],
    ) -> None:
        """Append one boundary's live arrivals to the per-feed queues.

        Arrivals join at the *tail*, behind anything still queued (deferred or
        not-yet-scheduled operations), preserving each feed's FIFO order —
        the order the front door resolves request futures in.  A request for
        a feed the gateway does not currently host is a front-door bug (its
        middleware rejects unknown tenants), so it fails the run loudly.
        """
        for feed_id in sorted(arrivals):
            operations = arrivals[feed_id]
            if not operations:
                continue
            queue = queues.get(feed_id)
            if queue is None:
                raise ConfigurationError(
                    f"live request for feed {feed_id!r}, which the gateway "
                    "does not currently host — the request source must "
                    "reject unknown or departed tenants at admission"
                )
            queue.extend(operations)

    # -- one lockstep epoch ---------------------------------------------------

    def _run_epoch(
        self,
        epoch: int,
        epoch_size: int,
        active: List[str],
        queues: Dict[str, Deque[Operation]],
        shard_plan: List[List[str]],
        fleet: FleetTelemetry,
        source: Optional["RequestSource"] = None,
    ) -> None:
        ledger = self.registry.chain.ledger
        gas_before = {
            feed_id: (
                ledger.scope_total(feed_id, LAYER_FEED),
                ledger.scope_total(feed_id, LAYER_APPLICATION),
            )
            for feed_id in active
        }
        # Queue depths at the boundary: with a live source, the settled
        # callback derives each feed's planned slice (head-of-queue, capped
        # by the lockstep epoch size) from these.
        queued_before = (
            {feed_id: len(queues[feed_id]) for feed_id in active}
            if source is not None
            else None
        )

        # Phase 1 — every shard drives its feeds' slice of the epoch
        # concurrently (reads execute against per-feed contract state or hit
        # the feed's cache shard; writes buffer at the feed's DO).  Gas
        # charges and emitted events land in per-shard buffers, merged below
        # in shard order.
        with self.obs.phase("drive", epoch=epoch):
            drive_results = self._map_shards(
                self._drive_shard, shard_plan, epoch, epoch_size, phase="drive"
            )
            summaries: Dict[str, EpochSummary] = {}
            for buffer, shard_summaries in drive_results:
                self.registry.chain.absorb(buffer)
                summaries.update(shard_summaries)

        # Phase 2 — the shared watchdog scans the merged log once for the
        # whole fleet; each shard then builds its deliver groups (record
        # lookups + batched Merkle proof generation) concurrently, and each
        # shard's groups settle in one batched deliver transaction mined into
        # its own block, in shard order — one shard, one block, so the block
        # gas limit bounds exactly what the planner budgeted.
        with self.obs.phase("deliver", epoch=epoch):
            self.registry.watchdog.poll()
            deliveries: Dict[str, int] = {feed_id: 0 for feed_id in active}
            shard_deliver_groups = self._map_shards(
                self._build_deliver_groups, shard_plan, phase="deliver"
            )
            delivered_groups: List[DeliverGroup] = []
            for groups in shard_deliver_groups:
                if not groups:
                    continue
                transaction = self.registry.chain.submit(
                    deliver_transaction(self.registry.router.address, groups)
                )
                self.registry.chain.mine_block()
                self._check_settlement([transaction])
                fleet.deliver_batches += 1
                for group in groups:
                    deliveries[group.feed_id] += 1
                    fleet.feeds[group.feed_id].deliver_groups += 1
                    delivered_groups.append(group)
            warm_cache_from_deliveries(self._env, delivered_groups)

        # Phase 3 — every shard prepares its feeds' epoch updates (control
        # plane + ADS + root signing) concurrently; each shard's payloads
        # land in one grouped update transaction and its own block, in shard
        # order.
        with self.obs.phase("update", epoch=epoch):
            transitions: Dict[str, Dict[str, ReplicationState]] = {}
            updates: Dict[str, int] = {feed_id: 0 for feed_id in active}
            shard_update_results = self._map_shards(
                self._prepare_update_groups, shard_plan, phase="update"
            )
            for groups_u, shard_transitions in shard_update_results:
                transitions.update(shard_transitions)
                if not groups_u:
                    continue
                transaction = self.registry.chain.submit(
                    update_transaction(self.registry.router.address, groups_u)
                )
                self.registry.chain.mine_block()
                self._check_settlement([transaction])
                fleet.update_batches += 1
                for group in groups_u:
                    updates[group.feed_id] += 1
                    fleet.feeds[group.feed_id].update_groups += 1

        # Phase 4 — settle per-feed accounting for the epoch, apply
        # replication-keyed cache invalidation (an evicted replica must not be
        # served from the cache), and feed the settled gas back to the shard
        # planner's estimates.
        with self.obs.phase("settle", epoch=epoch):
            for feed_id in active:
                epoch_gas = settle_feed_epoch(
                    self._env,
                    feed_id,
                    summaries[feed_id],
                    deliveries=deliveries[feed_id],
                    update_transactions=updates[feed_id],
                    transitions=transitions.get(feed_id, {}),
                    gas_before=gas_before[feed_id],
                )
                self.planner.observe(feed_id, epoch_gas)
                if source is not None:
                    executed = summaries[feed_id].operations
                    planned = min(queued_before[feed_id], epoch_size)
                    source.settled(
                        epoch,
                        feed_id,
                        executed=executed,
                        deferred=planned - executed,
                        gas=epoch_gas,
                    )

    # -- per-shard work (runs on worker threads) ------------------------------
    #
    # The phase bodies live in :mod:`repro.gateway.executor` so the process
    # backend's workers execute the very same code against their own shard
    # environments; these thin wrappers bind the scheduler's environment.

    def _drive_shard(self, shard: List[str], epoch: int, epoch_size: int):
        return drive_shard(self._env, shard, epoch, epoch_size)

    def _build_deliver_groups(self, shard: List[str]) -> List[DeliverGroup]:
        return build_deliver_groups(self.registry, shard)

    def _prepare_update_groups(self, shard: List[str]):
        return prepare_update_groups(self.registry, shard)

    # -- settlement helpers (main thread only) --------------------------------

    def _check_settlement(self, batch_txs: List[Transaction]) -> None:
        """Fail loudly if any settlement batch reverted.

        The batched transaction reverts atomically on chain, but the hosted
        DOs' off-chain state (trusted roots, SP stores) has already advanced
        by the time the batch lands — continuing would leave those feeds
        diverged from their on-chain digests forever, so a reverted batch is
        a hosting-runtime bug worth stopping the run for.
        """
        for transaction in batch_txs:
            receipt = self.registry.chain.receipt_for(transaction.txid)
            if receipt is not None and not receipt.success:
                raise ReproError(
                    f"gateway {transaction.function} reverted "
                    f"(feeds {sorted(transaction.scopes or {})}): {receipt.error}"
                )

    # -- the process backend --------------------------------------------------

    def _run_process(
        self,
        workloads: Optional[Mapping[str, Sequence[Operation]]],
        source: Optional["RequestSource"] = None,
    ) -> FleetTelemetry:
        """Drive the fleet on the multicore process backend.

        Feeds are pinned to long-lived worker processes by the epoch-0 shard
        plan; each worker hosts full mirrors of its shards' feeds (built from
        the same :class:`FeedSpec`\\ s the main registry used) and executes
        whole epochs locally, shipping back only the per-epoch deltas — the
        driving phase's execution buffer and the pre-executed settlement
        transactions — which the main chain records in fixed shard order.
        Output is bit-identical to the serial backend.

        Runs the static pinning can't serve — queued churn (tenants join and
        leave lanes mid-run), a re-sharding planner (a feed's shard, hence
        its lane, moves between epochs), or LSM-backed SP stores (a feed's
        directory must follow it between processes) — route to
        :meth:`_run_process_elastic`, where feeds migrate between lanes as
        snapshot frames.

        With a live ``source`` the run is **lockstep** instead of pipelined:
        an epoch's arrivals must reach each lane's worker-local queues before
        that lane drives the epoch, so the scheduler ships one epoch order at
        a time with the boundary's arrivals wire-packed alongside it
        (:meth:`ProcessEngine.submit_live_epoch`).  Determinism over
        pipelining — the batch path keeps its submit-ahead throughput.
        """
        queues, epoch_size, active, fleet = self._prepare_run(
            workloads, source=source
        )
        if (
            self.pending_churn
            or not isinstance(self.planner, RoundRobinPlanner)
            or any(
                self.registry.get(feed_id).spec.store_backend != "memory"
                for feed_id in active
            )
        ):
            return self._run_process_elastic(
                queues, epoch_size, active, fleet, source=source
            )
        chain = self.registry.chain
        blocks_before = chain.height
        wall_start = time.perf_counter()

        # The plan is computed once and reused every epoch: round-robin over
        # a static fleet is per-epoch stable, so this matches what the serial
        # run's per-epoch plan() calls would produce.
        shard_plan = self.planner.plan(
            active, block_gas_limit=chain.parameters.block_gas_limit
        )
        engine = ProcessEngine(self.num_workers, ipc_profile=self.ipc_profile)
        if source is not None:
            return self._run_process_live(
                engine,
                source,
                queues,
                epoch_size,
                active,
                fleet,
                shard_plan,
                blocks_before,
                wall_start,
            )
        remaining = {feed_id: len(queues[feed_id]) for feed_id in active}

        def guaranteed_epochs() -> int:
            """How many more epochs are certain to run, from the remaining
            workload counts alone.  A feed with ``r`` queued operations needs
            at least ``ceil(r / epoch_size)`` more epochs — quotas and gas
            caps can only *reduce* per-epoch consumption, never raise it, so
            this is a lower bound the scheduler may safely submit ahead."""
            return max(
                (-(-count // epoch_size) for count in remaining.values() if count),
                default=0,
            )

        # Pipelined run: keep every lane's queue primed with all epochs the
        # remaining workloads guarantee, and merge results behind the lanes.
        # After each merge the bound can shrink by at most one (the epoch just
        # merged), so ``target`` never drops below what is already submitted
        # — every submitted epoch is merged, and the loop ends with
        # ``submitted == merged`` (no orphaned lane work).
        submitted = 0
        merged = 0
        target = guaranteed_epochs()
        try:
            engine.start(
                self.registry,
                shard_plan,
                queues,
                cache_enabled=self.cache is not None,
                cache_capacity=self.cache.capacity if self.cache is not None else None,
                obs_enabled=self.obs.enabled,
            )
            with self.obs.span("run", mode="process"):
                while merged < target:
                    if submitted < target:
                        engine.submit_epochs(submitted, target - submitted, epoch_size)
                        submitted = target
                    fleet.rosters.append((merged, sorted(active)))
                    fleet.shards_per_epoch.append(len(shard_plan))
                    self._merge_lane_epoch(engine, merged, fleet, remaining)
                    merged += 1
                    target = merged + guaranteed_epochs()
            # Run over: pull every worker's final feed state back into the
            # main registry's mirrors, so post-run inspection (contract
            # storage, roots, reports, cache) sees serial-identical state.
            for state in engine.collect():
                apply_feed_state(self.registry, self.cache, state)
                fleet.feeds[state.feed_id] = state.telemetry
        finally:
            engine.shutdown()

        fleet.wall_seconds = time.perf_counter() - wall_start
        fleet.epochs_run = merged
        fleet.blocks_mined = chain.height - blocks_before
        fleet.ipc = engine.meter.summary()
        self.epochs_run += merged
        return fleet

    def _merge_lane_epoch(
        self,
        engine,
        epoch: int,
        fleet: FleetTelemetry,
        remaining: Dict[str, int],
    ) -> List:
        """Merge one submitted epoch's lane results into the main chain.

        Deterministic merge, mirroring the serial phase order: every shard's
        drive buffer (events stamped at this epoch's starting height), then
        one recorded block per shard deliver, then one per shard update — all
        in fixed shard order.  The lanes' per-shard phase spans graft under
        this epoch in fixed shard order, before the merge span, so the trace
        tree reads in canonical phase order.  ``remaining`` is updated with
        the lanes' post-epoch queue depths (run termination, and the live
        path's executed-count attribution).  Returns the decoded shard
        results in shard order (the elastic path reads each shard's settled
        per-feed gas off them; either engine flavour works).
        """
        chain = self.registry.chain
        with self.obs.span("epoch", epoch=epoch) as epoch_span:
            results, samples = engine.results(epoch)
            self._graft_lane_spans(epoch_span, results, engine)
            with self.obs.phase("merge", epoch=epoch):
                height = chain.height
                for result in results:
                    chain.absorb_wire(result.drive, height)
                for result in results:
                    if result.deliver is not None:
                        self._record_settlement(result.deliver, fleet)
                for result in results:
                    if result.update is not None:
                        self._record_settlement(result.update, fleet)
        self._observe_ipc(samples)
        for result in results:
            remaining.update(result.remaining)
        return results

    def _run_process_live(
        self,
        engine: ProcessEngine,
        source: "RequestSource",
        queues: Dict[str, Deque[Operation]],
        epoch_size: int,
        active: List[str],
        fleet: FleetTelemetry,
        shard_plan: List[List[str]],
        blocks_before: int,
        wall_start: float,
    ) -> FleetTelemetry:
        """The live (lockstep) half of the process backend.

        Mirrors the serial live loop epoch for epoch: poll the source at each
        boundary (blocking when the fleet is idle but the door is open), ship
        the boundary's arrivals to the lanes with the epoch order itself,
        merge the epoch exactly as the batch path does, then fire the per-feed
        ``settled`` callbacks.  Executed counts come from the lanes' reported
        queue-depth deltas and gas attribution from the main ledger's
        per-feed scope totals around the merge — both bit-identical to what
        the serial path's ``settle_feed_epoch`` observes, because the merge
        replays the lanes' exact gas deltas in the same order.
        """
        chain = self.registry.chain
        ledger = chain.ledger
        remaining = {feed_id: len(queues[feed_id]) for feed_id in active}
        epoch = 0
        try:
            engine.start(
                self.registry,
                shard_plan,
                queues,
                cache_enabled=self.cache is not None,
                cache_capacity=self.cache.capacity if self.cache is not None else None,
                obs_enabled=self.obs.enabled,
            )
            with self.obs.span("run", mode="process"):
                while True:
                    idle = not any(remaining.values())
                    arrivals = self._absorb_arrivals(
                        source.poll(epoch, wait=idle), remaining
                    )
                    has_work = any(remaining.values())
                    if not has_work:
                        if source.exhausted:
                            break
                        # Idle but open: jump to the earliest scheduled
                        # arrival (the serial loop's fast-forward).
                        scheduled = source.next_epoch(epoch)
                        epoch = (
                            max(epoch + 1, scheduled)
                            if scheduled is not None
                            else epoch + 1
                        )
                        continue
                    queued_before = dict(remaining)
                    gas_before = {
                        feed_id: (
                            ledger.scope_total(feed_id, LAYER_FEED)
                            + ledger.scope_total(feed_id, LAYER_APPLICATION)
                        )
                        for feed_id in active
                    }
                    fleet.rosters.append((epoch, sorted(active)))
                    fleet.shards_per_epoch.append(len(shard_plan))
                    engine.submit_live_epoch(epoch, epoch_size, arrivals)
                    self._merge_lane_epoch(engine, epoch, fleet, remaining)
                    for feed_id in active:
                        executed = queued_before[feed_id] - remaining[feed_id]
                        planned = min(queued_before[feed_id], epoch_size)
                        gas = (
                            ledger.scope_total(feed_id, LAYER_FEED)
                            + ledger.scope_total(feed_id, LAYER_APPLICATION)
                            - gas_before[feed_id]
                        )
                        source.settled(
                            epoch,
                            feed_id,
                            executed=executed,
                            deferred=planned - executed,
                            gas=gas,
                        )
                    epoch += 1
            for state in engine.collect():
                apply_feed_state(self.registry, self.cache, state)
                fleet.feeds[state.feed_id] = state.telemetry
        finally:
            engine.shutdown()
            source.run_finished(fleet)

        fleet.wall_seconds = time.perf_counter() - wall_start
        fleet.epochs_run = epoch
        fleet.blocks_mined = chain.height - blocks_before
        fleet.ipc = engine.meter.summary()
        self.epochs_run += epoch
        return fleet

    # -- the elastic process backend (feed migration) --------------------------

    def _run_process_elastic(
        self,
        queues: Dict[str, Deque[Operation]],
        epoch_size: int,
        active: List[str],
        fleet: FleetTelemetry,
        source: Optional["RequestSource"] = None,
    ) -> FleetTelemetry:
        """The full-feature process backend: churn, gas-aware re-sharding and
        LSM-backed stores over an elastic pool of worker lanes.

        Mirrors the serial loop boundary for boundary — churn, live ingest,
        fast-forward, per-epoch plan — but executes each epoch on
        :class:`~repro.gateway.executor.ElasticProcessEngine` lanes.  Lanes
        start empty; every feed reaches its lane as a wire-encoded snapshot
        frame (:func:`~repro.gateway.executor.encode_feed_snapshot`):

        * **initial placement / admission** — the main process creates the
          feed (running its preload against the main chain, exactly like
          serial), then serialises the mirror into the lane the plan assigns
          and releases any exclusive LSM opener so the lane can take the
          directory over;
        * **re-shard migration** — when a fresh plan moves a feed to a
          different lane, the source lane snapshots it out (closing its LSM
          opener first) and the destination installs the frame, which passes
          through the main process raw;
        * **eviction** — the owning lane polls, cancels and counts exactly
          like a serial churn boundary and returns the tenant's final bill;
        * **elasticity** — the pool grows to the plan's lane demand
          (``min(num_workers, shards)``) and retires drained lanes once the
          demand shrinks.

        Epochs are lockstep (the next plan depends on this epoch's settled
        gas, shipped per feed on each shard result), so the planner and a
        live source observe byte-identical sequences to serial.  Migration
        traffic is metered per run (``FleetTelemetry.ipc``) and per epoch
        (the ``migrations_per_epoch`` histogram) — never fingerprinted.
        """
        chain = self.registry.chain
        blocks_before = chain.height
        wall_start = time.perf_counter()

        self._dirty = {feed_id: set() for feed_id in active}
        if self.cache is not None:
            for feed_id in active:
                self.cache.ensure_shard(feed_id)
        for feed_id in active:
            self._wire_feed_obs(feed_id)

        engine = ElasticProcessEngine(self.num_workers, ipc_profile=self.ipc_profile)
        #: Feeds the main process still hosts (created, but not yet installed
        #: into any lane): initial feeds before their first executed epoch,
        #: and admissions awaiting their first plan.
        pending_install = set(active)
        #: feed id → the lane currently hosting its mirror.
        feed_lane: Dict[str, int] = {}
        remaining = {feed_id: len(queues[feed_id]) for feed_id in active}
        epoch = 0
        try:
            engine.start(
                self.registry,
                cache_enabled=self.cache is not None,
                cache_capacity=self.cache.capacity if self.cache is not None else None,
                obs_enabled=self.obs.enabled,
            )
            with self.obs.span("run", mode="process"):
                while True:
                    self._apply_churn_process(
                        epoch, active, queues, remaining, fleet,
                        engine, pending_install, feed_lane, source,
                    )
                    arrivals_installed: Dict[str, Sequence[Operation]] = {}
                    if source is not None:
                        idle = not self.pending_churn and not any(
                            remaining[f] for f in active
                        )
                        arrivals_installed = self._ingest_process(
                            source.poll(epoch, wait=idle),
                            queues,
                            remaining,
                            pending_install,
                        )
                    has_work = any(remaining[f] for f in active)
                    door_open = source is not None and not source.exhausted
                    if not self.pending_churn and not has_work and not door_open:
                        break
                    if not has_work:
                        # Same fast-forward as the serial loop: jump to the
                        # next churn event or scheduled live arrival.
                        targets = []
                        if self.pending_churn:
                            targets.append(self._next_churn_epoch())
                        if door_open:
                            scheduled = source.next_epoch(epoch)
                            if scheduled is not None:
                                targets.append(scheduled)
                        epoch = (
                            max(epoch + 1, min(targets)) if targets else epoch + 1
                        )
                        continue
                    shard_plan = self.planner.plan(
                        active, block_gas_limit=chain.parameters.block_gas_limit
                    )
                    fleet.rosters.append((epoch, sorted(active)))
                    fleet.shards_per_epoch.append(len(shard_plan))
                    # Elasticity: lanes 0..desired-1 serve this epoch; spawn
                    # what's missing now, retire the surplus once drained.
                    desired = max(1, min(self.num_workers, len(shard_plan)))
                    spawned = engine.ensure_lanes(desired)
                    assignments: Dict[int, List[Tuple[int, List[str]]]] = {}
                    migrations = 0
                    for shard_index, shard in enumerate(shard_plan):
                        lane = shard_index % desired
                        assignments.setdefault(lane, []).append(
                            (shard_index, list(shard))
                        )
                        for feed_id in shard:
                            if feed_id in pending_install:
                                self._install_feed(engine, lane, feed_id, queues, fleet)
                                pending_install.discard(feed_id)
                                feed_lane[feed_id] = lane
                            elif feed_lane[feed_id] != lane:
                                engine.migrate(
                                    feed_id,
                                    feed_lane[feed_id],
                                    lane,
                                    self.registry.get(feed_id).spec,
                                )
                                feed_lane[feed_id] = lane
                                migrations += 1
                    retired = engine.retire_lanes(desired)
                    self._observe_migrations(len(spawned), len(retired), migrations)
                    arrivals_by_lane: Dict[int, List[Tuple[str, Sequence[Operation]]]] = {}
                    for feed_id in sorted(arrivals_installed):
                        arrivals_by_lane.setdefault(feed_lane[feed_id], []).append(
                            (feed_id, arrivals_installed[feed_id])
                        )
                    queued_before = dict(remaining) if source is not None else None
                    engine.submit_epoch(
                        epoch, epoch_size, assignments, arrivals_by_lane
                    )
                    results = self._merge_lane_epoch(engine, epoch, fleet, remaining)
                    epoch_gas: Dict[str, int] = {}
                    for result in results:
                        epoch_gas.update(result.epoch_gas)
                    # Settle feedback in serial order: the planner's estimates
                    # and a live source's per-request attribution both consume
                    # the very gas each lane's settle phase computed.
                    for feed_id in active:
                        self.planner.observe(feed_id, epoch_gas[feed_id])
                        if source is not None:
                            executed = queued_before[feed_id] - remaining[feed_id]
                            planned = min(queued_before[feed_id], epoch_size)
                            source.settled(
                                epoch,
                                feed_id,
                                executed=executed,
                                deferred=planned - executed,
                                gas=epoch_gas[feed_id],
                            )
                    epoch += 1
            # Run over: every surviving lane feed's final state folds back
            # into the main mirrors.  An LSM-backed feed's main opener was
            # released when the feed left for its lane — take the directory
            # back (the lane closed its opener in ``collect``).
            for state in engine.collect():
                backing = self.registry.get(state.feed_id).system.sp_store.backing
                if isinstance(backing, LSMStore) and backing.closed:
                    backing.reopen()
                apply_feed_state(self.registry, self.cache, state)
                fleet.feeds[state.feed_id] = state.telemetry
        finally:
            engine.shutdown()
            if source is not None:
                source.run_finished(fleet)

        fleet.wall_seconds = time.perf_counter() - wall_start
        fleet.epochs_run = epoch
        fleet.blocks_mined = chain.height - blocks_before
        fleet.ipc = engine.meter.summary()
        self.epochs_run += epoch
        return fleet

    def _apply_churn_process(
        self,
        epoch: int,
        active: List[str],
        queues: Dict[str, Deque[Operation]],
        remaining: Dict[str, int],
        fleet: FleetTelemetry,
        engine: ElasticProcessEngine,
        pending_install: set,
        feed_lane: Dict[str, int],
        source: Optional["RequestSource"] = None,
    ) -> None:
        """:meth:`_apply_churn`, adapted to lane-hosted feeds.

        Admissions are pure main-side (the feed is created — preload and all —
        against the main chain exactly as serial does, and waits in
        ``pending_install`` for its first plan).  An eviction of a lane-hosted
        feed is a teardown order to the owning lane, whose boundary poll and
        cancellation accounting mirror the serial ones; a still-main-hosted
        feed is evicted with the serial accounting directly.  No main-side
        watchdog poll happens here: the merged lane events were already routed
        and consumed inside the lanes, so a main poll would stuff main-side
        mirrors with requests that can never be delivered.
        """
        due_admissions = [a for a in self._admission_queue if a.at_epoch <= epoch]
        for admission in due_admissions:
            self._admission_queue.remove(admission)
            spec = admission.spec
            if spec.feed_id in fleet.feeds:
                raise ConfigurationError(
                    f"feed id {spec.feed_id!r} was already hosted in this run; "
                    "ids are unique per run (reuse is allowed across runs)"
                )
            self._require_batch_deliver(spec)
            self.registry.create_feed(spec)
            self._wire_feed_obs(spec.feed_id)
            queues[spec.feed_id] = deque(admission.operations)
            remaining[spec.feed_id] = len(admission.operations)
            active.append(spec.feed_id)
            self._dirty[spec.feed_id] = set()
            if self.cache is not None:
                self.cache.ensure_shard(spec.feed_id)
            fleet.feeds[spec.feed_id] = FeedTelemetry(
                feed_id=spec.feed_id, admitted_epoch=epoch
            )
            fleet.admissions += 1
            pending_install.add(spec.feed_id)
        due_evictions = [e for e in self._eviction_queue if e.at_epoch <= epoch]
        for eviction in due_evictions:
            feed_id = eviction.feed_id
            telemetry = fleet.feeds.get(feed_id)
            if (telemetry is not None and telemetry.departed) or feed_id not in self.registry:
                if any(a.spec.feed_id == feed_id for a in self._admission_queue):
                    # The eviction outran its feed's admission; leave it
                    # queued — it fires the boundary the feed arrives.
                    continue
                raise ConfigurationError(
                    f"cannot evict {feed_id!r}: "
                    + (
                        "the feed already departed this run"
                        if telemetry is not None and telemetry.departed
                        else "not hosted by the gateway"
                    )
                )
            self._eviction_queue.remove(eviction)
            if telemetry is None:
                # Registered but idle this run (no workload): still a real
                # departure — it gets a (empty) final bill like any tenant.
                telemetry = FeedTelemetry(feed_id=feed_id)
                fleet.feeds[feed_id] = telemetry
            if feed_id in feed_lane:
                # Lane-hosted: the lane owns the live mirror — its boundary
                # poll, request cancellation and queue counting happen there,
                # and the returned row is the tenant's final bill.
                fleet.feeds[feed_id] = engine.teardown(
                    feed_lane.pop(feed_id), feed_id, epoch
                )
            else:
                # Still main-hosted (admitted this very boundary, or never
                # ran an epoch): serial accounting on the main structures.
                # ``cancel_pending`` needs no poll first — the main chain's
                # absorbed events were consumed inside the lanes already.
                handle = self.registry.get(feed_id)
                telemetry.cancelled_requests += self.registry.watchdog.cancel_pending(
                    handle
                )
                queue = queues.get(feed_id)
                if queue:
                    telemetry.cancelled_ops += len(queue)
                telemetry.departed_epoch = epoch
                pending_install.discard(feed_id)
            queues.pop(feed_id, None)
            remaining.pop(feed_id, None)
            if feed_id in active:
                active.remove(feed_id)
            fleet.departures += 1
            self.planner.forget(feed_id)
            self._dirty.pop(feed_id, None)
            # Deregisters the watchdog route, frees the on-chain addresses and
            # fires the removal listeners (cache shard teardown among them).
            self.registry.remove_feed(feed_id)
            if source is not None:
                # A live source must cancel the tenant's outstanding requests
                # now — their operations just left the queue for good.
                source.evicted(epoch, feed_id)

    def _ingest_process(
        self,
        arrivals: Mapping[str, Sequence[Operation]],
        queues: Dict[str, Deque[Operation]],
        remaining: Dict[str, int],
        pending_install: set,
    ) -> Dict[str, Sequence[Operation]]:
        """Fold one boundary's live arrivals into the elastic fleet.

        A feed the main process still hosts takes them straight onto its
        queue (they ship inside its install snapshot); a lane-hosted feed's
        arrivals are returned for shipping alongside the epoch order — the
        elastic counterpart of :meth:`_ingest` / :meth:`_absorb_arrivals`.
        """
        shipped: Dict[str, Sequence[Operation]] = {}
        for feed_id in sorted(arrivals):
            operations = arrivals[feed_id]
            if not operations:
                continue
            if feed_id not in remaining:
                raise ConfigurationError(
                    f"live request for feed {feed_id!r}, which the gateway "
                    "does not currently host — the request source must "
                    "reject unknown or departed tenants at admission"
                )
            remaining[feed_id] += len(operations)
            if feed_id in pending_install:
                queues[feed_id].extend(operations)
            else:
                shipped[feed_id] = operations
        return shipped

    def _install_feed(
        self,
        engine: ElasticProcessEngine,
        lane: int,
        feed_id: str,
        queues: Dict[str, Deque[Operation]],
        fleet: FleetTelemetry,
    ) -> None:
        """Ship a main-hosted feed's mirror into ``lane`` as a snapshot frame.

        The main mirror stays registered (the merge path records settlements
        against its addresses), but its queue empties — the lane's copy is
        the live one now — and an exclusive LSM opener is released so the
        lane can take over the directory (single-opener rule).
        """
        handle = self.registry.get(feed_id)
        if self.cache is not None:
            shard_obj = self.cache._shards.get(feed_id)
            entries = tuple(shard_obj.entries.items()) if shard_obj else ()
            stats = shard_obj.stats if shard_obj else CacheStats()
        else:
            entries, stats = (), None
        frame = encode_feed_snapshot(
            WireEncoder(),
            handle,
            queue=queues[feed_id],
            dirty=self._dirty[feed_id],
            telemetry=fleet.feeds[feed_id],
            cache_entries=entries,
            cache_stats=stats,
        )
        backing = handle.system.sp_store.backing
        if isinstance(backing, LSMStore):
            backing.close()
        engine.install(lane, handle.spec, frame)
        queues[feed_id].clear()

    #: Migration-count histogram bounds (counts, not latencies).
    _MIGRATION_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128)

    def _observe_migrations(self, spawned: int, retired: int, migrations: int) -> None:
        """Record one epoch's feed-mobility activity on the obs plane."""
        if not self.obs.enabled:
            return
        self.obs.histogram(
            "migrations_per_epoch", buckets=self._MIGRATION_BUCKETS
        ).observe(float(migrations))
        if migrations:
            self.obs.counter("migrations_total").inc(migrations)
        if spawned:
            self.obs.counter("lane_spawns_total").inc(spawned)
        if retired:
            self.obs.counter("lane_retirements_total").inc(retired)

    def _absorb_arrivals(
        self,
        arrivals: Mapping[str, Sequence[Operation]],
        remaining: Dict[str, int],
    ) -> Dict[str, Sequence[Operation]]:
        """Validate one boundary's live arrivals against the hosted fleet and
        fold their counts into the main-side queue-depth mirror, returning
        the normalized map to ship to the lanes (the process-mode counterpart
        of :meth:`_ingest` — the operations themselves live in the lanes)."""
        shipped: Dict[str, Sequence[Operation]] = {}
        for feed_id in sorted(arrivals):
            operations = arrivals[feed_id]
            if not operations:
                continue
            if feed_id not in remaining:
                raise ConfigurationError(
                    f"live request for feed {feed_id!r}, which the gateway "
                    "does not currently host — the request source must "
                    "reject unknown or departed tenants at admission"
                )
            remaining[feed_id] += len(operations)
            shipped[feed_id] = operations
        return shipped

    #: Byte-count histograms need byte-scaled buckets — the default log
    #: buckets are seconds-oriented (10µs–40s).  64 B–128 MB, doubling.
    _IPC_BYTE_BUCKETS = log_buckets(start=64.0, factor=2.0, count=22)

    def _observe_ipc(self, samples) -> None:
        """Feed one epoch's per-lane IPC samples into the obs histograms
        (``ipc_bytes_per_epoch`` / ``ipc_encode_seconds`` /
        ``ipc_decode_seconds``, labelled by lane)."""
        if not self.obs.enabled:
            return
        for sample in samples:
            lane = str(sample.lane)
            self.obs.histogram(
                "ipc_bytes_per_epoch", buckets=self._IPC_BYTE_BUCKETS, lane=lane
            ).observe(float(sample.wire_bytes))
            self.obs.histogram("ipc_encode_seconds", lane=lane).observe(
                sample.encode_seconds
            )
            self.obs.histogram("ipc_decode_seconds", lane=lane).observe(
                sample.decode_seconds
            )

    def _graft_lane_spans(self, epoch_span, results, engine: ProcessEngine) -> None:
        """Fold the lanes' per-shard phase spans into the main trace tree.

        Spans arrive as plain-data wire deltas on each :class:`ShardEpochResult`
        (like the drive buffers); they are grafted under per-phase parents in
        fixed shard order, and each shard span's duration feeds the phase
        latency histograms — in process mode the phase's real time lives in
        the lanes, so that is where the percentiles must come from.
        """
        if epoch_span is None:
            return
        phase_parents = reassemble_shard_spans(
            epoch_span,
            [(result.shard_index, result.spans) for result in results],
            lane_of=engine.lane_of,
        )
        for parent in phase_parents:
            for span in parent.children:
                self.obs.observe_phase(
                    str(span.attrs.get("phase", span.name)), span.duration
                )

    def _record_settlement(self, result: SettlementResult, fleet: FleetTelemetry) -> None:
        """Record one worker-executed settlement on the main chain: mine its
        block (receipt, events, block-gas accounting), absorb its exact gas
        delta, and fail loudly on a reverted batch — the same contract
        :meth:`_check_settlement` enforces for locally executed batches."""
        chain = self.registry.chain
        transaction = Transaction(
            sender=GATEWAY_OPERATOR,
            contract=self.registry.router.address,
            function=result.function,
            args={},
            calldata_bytes=result.calldata_bytes,
            layer=LAYER_FEED,
            scopes=dict(result.scopes),
        )
        chain.mine_recorded_block(
            transaction,
            gas_used=result.gas_used,
            success=result.success,
            error=result.error,
            events=list(result.events),
        )
        chain.absorb(settlement_buffer(result))
        if not result.success:
            raise ReproError(
                f"gateway {result.function} reverted "
                f"(feeds {sorted(result.scopes)}): {result.error}"
            )
        if result.function == "deliver_batch":
            fleet.deliver_batches += 1
        else:
            fleet.update_batches += 1
