"""The parallel epoch engine: drive a fleet of feeds concurrently, settle
deterministically.

Single-feed GRuB already amortises transaction base cost across the requests
of one epoch.  The scheduler applies the same idea across *tenants*: feeds are
sharded into groups, and at every epoch boundary each shard's outstanding
work is coalesced into

* **one** batched ``deliver`` transaction per shard (the shared watchdog's
  pending requests of every feed in the shard, grouped per feed), and
* **one** grouped ``update`` transaction per shard (every feed's prepared
  epoch update),

both landed through the :class:`~repro.gateway.router.GatewayRouterContract`,
so a shard of S feeds pays one 21k transaction base where S isolated
deployments pay up to 2·S per epoch.

**Parallel execution.** Feeds are independent between settlement points, so
within an epoch the off-chain work of every shard — driving its feeds'
operations, generating the SP's deliver proofs, running each DO's
``prepare_epoch_update`` — executes concurrently on a
:class:`~concurrent.futures.ThreadPoolExecutor` with ``num_workers`` threads.
Isolation is structural, not locked: a worker owns whole shards (so every
per-feed object — contracts, SP store, control plane, cache shard, telemetry
row — is touched by exactly one thread), and the two globally *ordered*
chain structures (the gas ledger and the event log) are deferred into
per-shard :class:`~repro.chain.chain.ExecutionBuffer`\\ s.  Settlement then
lands in a **deterministic merge phase**: buffers are absorbed, transactions
submitted, and accounting folded in fixed shard order, so a parallel run
produces bit-identical telemetry, per-feed gas bills and chain state to a
serial (``num_workers=1``) run — which executes the very same buffered code
path.

Reads are fronted by the consumer-side :class:`~repro.gateway.cache.ReadCache`
when one is configured: a read of a key whose verified replica the gateway has
already observed is served from the gateway's full node without re-executing
the on-chain ``gGet`` (cached reads therefore do not appear in the on-chain
read trace — exactly like a consumer that keeps its own memo of public chain
state).  The cache is additionally warmed straight from verified deliver
payloads: a record the chain just verified *and replicated* in a deliver batch
is public replicated state, so it is memoised immediately instead of waiting
for the first post-deliver read.  Writes and evictions invalidate the affected
entry; keys written during the current epoch are never memoised until their
epoch update lands.

The scheduler never consults a wall clock for scheduling decisions and uses
no randomness, so two runs over the same fleet and workloads are identical —
whatever ``num_workers`` says; ``time.perf_counter`` is only sampled to report
the runtime's own ops/sec.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.chain.chain import ExecutionBuffer
from repro.chain.gas import LAYER_APPLICATION, LAYER_FEED
from repro.chain.transaction import Transaction
from repro.common.errors import ConfigurationError, ReproError
from repro.common.types import EpochSummary, Operation, OperationKind, ReplicationState
from repro.gateway.cache import ReadCache
from repro.gateway.metrics import FeedTelemetry, FleetTelemetry
from repro.gateway.registry import FeedHandle, FeedRegistry
from repro.gateway.router import (
    DeliverGroup,
    UpdateGroup,
    scope_weights_for_deliver,
    scope_weights_for_update,
)

#: Externally-owned account the gateway runtime submits batched transactions
#: from (it operates the hosted DOs and the shared watchdog).
GATEWAY_OPERATOR = "gateway-operator"


class EpochScheduler:
    """Drives hosted feeds epoch-by-epoch with parallel off-chain execution
    and cross-feed batched settlement."""

    def __init__(
        self,
        registry: FeedRegistry,
        *,
        num_shards: int = 1,
        num_workers: int = 1,
        epoch_size: Optional[int] = None,
        read_cache: Optional[ReadCache] = None,
        enable_cache: bool = True,
    ) -> None:
        if num_shards <= 0:
            raise ConfigurationError("num_shards must be positive")
        if num_workers <= 0:
            raise ConfigurationError("num_workers must be positive")
        self.registry = registry
        self.num_shards = num_shards
        #: Worker threads for the per-shard off-chain phases.  Results are
        #: always folded in shard order, so this only affects wall-clock
        #: speed, never any output.
        self.num_workers = num_workers
        self._epoch_size = epoch_size
        self.cache = read_cache if read_cache is not None else (ReadCache() if enable_cache else None)
        if self.cache is not None and self.cache.invalidate_feed not in registry.removal_listeners:
            # A leaving tenant's entries must not linger (or be served to a
            # later tenant that reuses the feed id).
            registry.removal_listeners.append(self.cache.invalidate_feed)
        #: Keys written this epoch, per feed: their on-chain replica is stale
        #: until the epoch update lands, so the cache must not re-memoise them
        #: mid-epoch (a later epoch would otherwise be served the old value).
        self._dirty: Dict[str, set] = {}
        self._pool: Optional[ThreadPoolExecutor] = None
        self.epochs_run = 0

    # -- sharding -------------------------------------------------------------

    def shards(self, feed_ids: Sequence[str]) -> List[List[str]]:
        """Partition feeds round-robin into at most ``num_shards`` groups."""
        groups = [list(feed_ids[index :: self.num_shards]) for index in range(self.num_shards)]
        return [group for group in groups if group]

    def epoch_size_for(self, feed_ids: Sequence[str]) -> int:
        """The lockstep epoch size: explicit, or the largest feed epoch size."""
        if self._epoch_size is not None:
            return self._epoch_size
        sizes = [
            self.registry.get(feed_id).system.config.epoch_size for feed_id in feed_ids
        ]
        return max(sizes) if sizes else 32

    # -- worker-pool plumbing -------------------------------------------------

    def _map_shards(self, fn: Callable, shards: Sequence[List[str]], *args) -> List:
        """Apply ``fn(shard, *args)`` to every shard, returning results in
        shard order.

        With one worker (or one shard) this is a plain loop on the calling
        thread; otherwise shards run concurrently on the pool.  Either way the
        caller receives results in the fixed shard order, which is what makes
        the subsequent merge deterministic.
        """
        if self._pool is None or len(shards) <= 1:
            return [fn(shard, *args) for shard in shards]
        futures = [self._pool.submit(fn, shard, *args) for shard in shards]
        return [future.result() for future in futures]

    # -- the fleet run --------------------------------------------------------

    def run(self, workloads: Mapping[str, Sequence[Operation]]) -> FleetTelemetry:
        """Drive every feed's workload through the gateway, epoch by epoch.

        ``workloads`` maps feed id → operation sequence.  All feeds advance in
        lockstep: epoch ``e`` takes each feed's operations
        ``[e * epoch_size, (e + 1) * epoch_size)``; feeds whose workload is
        exhausted simply stop contributing operations (their empty epochs
        send no transactions).
        """
        feed_ids = [feed_id for feed_id in self.registry.feed_ids if feed_id in workloads]
        missing = set(workloads) - set(feed_ids)
        if missing:
            raise ConfigurationError(f"workloads for unregistered feeds: {sorted(missing)}")
        for feed_id in feed_ids:
            config = self.registry.get(feed_id).system.config
            if not config.batch_deliver:
                raise ConfigurationError(
                    f"feed {feed_id!r}: the gateway settles delivers at epoch "
                    "boundaries; per-request delivery (batch_deliver=False) is "
                    "a single-feed ablation mode"
                )

        operations = {feed_id: list(workloads[feed_id]) for feed_id in feed_ids}
        epoch_size = self.epoch_size_for(feed_ids)
        total_epochs = max(
            (len(ops) + epoch_size - 1) // epoch_size for ops in operations.values()
        ) if operations else 0
        shard_plan = self.shards(feed_ids)

        # Pre-create every per-feed structure a worker will touch, so the
        # parallel phases never mutate a shared directory — workers only
        # operate on the interiors of structures their shard exclusively owns.
        self._dirty = {feed_id: set() for feed_id in feed_ids}
        if self.cache is not None:
            for feed_id in feed_ids:
                self.cache.ensure_shard(feed_id)

        fleet = FleetTelemetry(
            feeds={feed_id: FeedTelemetry(feed_id=feed_id) for feed_id in feed_ids}
        )
        blocks_before = self.registry.chain.height
        wall_start = time.perf_counter()

        use_pool = self.num_workers > 1 and len(shard_plan) > 1
        pool = ThreadPoolExecutor(
            max_workers=self.num_workers, thread_name_prefix="epoch-worker"
        ) if use_pool else None
        self._pool = pool
        try:
            for epoch in range(total_epochs):
                self._run_epoch(epoch, epoch_size, operations, shard_plan, fleet)
        finally:
            self._pool = None
            if pool is not None:
                pool.shutdown(wait=True)

        fleet.wall_seconds = time.perf_counter() - wall_start
        fleet.epochs_run = total_epochs
        fleet.blocks_mined = self.registry.chain.height - blocks_before
        self.epochs_run += total_epochs
        return fleet

    # -- one lockstep epoch ---------------------------------------------------

    def _run_epoch(
        self,
        epoch: int,
        epoch_size: int,
        operations: Mapping[str, List[Operation]],
        shard_plan: List[List[str]],
        fleet: FleetTelemetry,
    ) -> None:
        ledger = self.registry.chain.ledger
        gas_before = {
            feed_id: (
                ledger.scope_total(feed_id, LAYER_FEED),
                ledger.scope_total(feed_id, LAYER_APPLICATION),
            )
            for feed_id in operations
        }

        # Phase 1 — every shard drives its feeds' slice of the epoch
        # concurrently (reads execute against per-feed contract state or hit
        # the feed's cache shard; writes buffer at the feed's DO).  Gas
        # charges and emitted events land in per-shard buffers, merged below
        # in shard order.
        drive_results = self._map_shards(
            self._drive_shard, shard_plan, epoch, epoch_size, operations, fleet
        )
        summaries: Dict[str, EpochSummary] = {}
        for buffer, shard_summaries in drive_results:
            self.registry.chain.absorb(buffer)
            summaries.update(shard_summaries)

        # Phase 2 — the shared watchdog scans the merged log once for the
        # whole fleet; each shard then builds its deliver groups (record
        # lookups + batched Merkle proof generation) concurrently, and the
        # groups settle in one batched deliver transaction per shard, in
        # shard order.
        self.registry.watchdog.poll()
        deliveries: Dict[str, int] = {feed_id: 0 for feed_id in operations}
        shard_deliver_groups = self._map_shards(self._build_deliver_groups, shard_plan)
        batch_txs: List[Transaction] = []
        delivered_groups: List[DeliverGroup] = []
        for groups in shard_deliver_groups:
            if not groups:
                continue
            batch_txs.append(
                self.registry.chain.submit(
                    Transaction(
                        sender=GATEWAY_OPERATOR,
                        contract=self.registry.router.address,
                        function="deliver_batch",
                        args={"groups": groups},
                        calldata_bytes=sum(group.calldata_bytes for group in groups),
                        layer=LAYER_FEED,
                        scopes=scope_weights_for_deliver(groups),
                    )
                )
            )
            fleet.deliver_batches += 1
            for group in groups:
                deliveries[group.feed_id] += 1
                fleet.feeds[group.feed_id].deliver_groups += 1
                delivered_groups.append(group)
        if batch_txs:
            self.registry.chain.mine_block()
        self._check_settlement(batch_txs)
        self._warm_cache_from_deliveries(delivered_groups)

        # Phase 3 — every shard prepares its feeds' epoch updates (control
        # plane + ADS + root signing) concurrently; each shard's payloads
        # land in one grouped update transaction, in shard order.
        transitions: Dict[str, Dict[str, ReplicationState]] = {}
        updates: Dict[str, int] = {feed_id: 0 for feed_id in operations}
        shard_update_results = self._map_shards(self._prepare_update_groups, shard_plan)
        update_txs: List[Transaction] = []
        for groups_u, shard_transitions in shard_update_results:
            transitions.update(shard_transitions)
            if not groups_u:
                continue
            update_txs.append(
                self.registry.chain.submit(
                    Transaction(
                        sender=GATEWAY_OPERATOR,
                        contract=self.registry.router.address,
                        function="update_batch",
                        args={"groups": groups_u},
                        calldata_bytes=sum(group.calldata_bytes for group in groups_u),
                        layer=LAYER_FEED,
                        scopes=scope_weights_for_update(groups_u),
                    )
                )
            )
            fleet.update_batches += 1
            for group in groups_u:
                updates[group.feed_id] += 1
                fleet.feeds[group.feed_id].update_groups += 1
        if update_txs:
            self.registry.chain.mine_block()
        self._check_settlement(update_txs)

        # Phase 4 — settle per-feed accounting for the epoch and apply
        # replication-keyed cache invalidation (an evicted replica must not be
        # served from the cache).
        for feed_id in operations:
            handle = self.registry.get(feed_id)
            telemetry = fleet.feeds[feed_id]
            summary = summaries[feed_id]
            feed_transitions = transitions.get(feed_id, {})
            if self.cache is not None:
                for key, state in feed_transitions.items():
                    if state is ReplicationState.NOT_REPLICATED:
                        self.cache.invalidate(feed_id, key)
                # The epoch update has landed: written keys' replicas are
                # fresh again and may be memoised from the next read on.
                self._dirty[feed_id].clear()
            feed_after = ledger.scope_total(feed_id, LAYER_FEED)
            app_after = ledger.scope_total(feed_id, LAYER_APPLICATION)
            handle.system.record_epoch(
                summary,
                handle.report,
                deliveries=deliveries[feed_id],
                update_transactions=updates[feed_id],
                transitions=feed_transitions,
                gas_feed=feed_after - gas_before[feed_id][0],
                gas_application=app_after - gas_before[feed_id][1],
            )
            telemetry.epochs.append(summary)
            telemetry.operations += summary.operations
            telemetry.reads += summary.reads
            telemetry.writes += summary.writes
            telemetry.gas_feed += summary.gas_feed
            telemetry.gas_application += summary.gas_application
            telemetry.replications += summary.replications
            telemetry.evictions += summary.evictions

    # -- per-shard work (runs on worker threads) ------------------------------

    def _drive_shard(
        self,
        shard: List[str],
        epoch: int,
        epoch_size: int,
        operations: Mapping[str, List[Operation]],
        fleet: FleetTelemetry,
    ) -> Tuple[ExecutionBuffer, Dict[str, EpochSummary]]:
        """Phase-1 worker: drive every feed of one shard through its epoch
        slice, buffering chain side effects for the ordered merge."""
        chain = self.registry.chain
        shard_summaries: Dict[str, EpochSummary] = {}
        with chain.isolated_execution() as buffer:
            for feed_id in shard:
                if feed_id not in operations:
                    continue
                handle = self.registry.get(feed_id)
                telemetry = fleet.feeds[feed_id]
                ops = operations[feed_id]
                epoch_ops = ops[epoch * epoch_size : (epoch + 1) * epoch_size]
                summary = handle.system.begin_epoch(epoch, len(epoch_ops))
                shard_summaries[feed_id] = summary
                for operation in epoch_ops:
                    self._drive(handle, operation, summary, telemetry)
        return buffer, shard_summaries

    def _build_deliver_groups(self, shard: List[str]) -> List[DeliverGroup]:
        """Phase-2 worker: drain one shard's pending requests into deliver
        groups (record lookups plus batched proof generation, no chain I/O)."""
        groups: List[DeliverGroup] = []
        for feed_id in shard:
            handle = self.registry.get(feed_id)
            items = handle.service_provider.drain_pending_items()
            if not items:
                continue
            groups.append(
                DeliverGroup(
                    feed_id=feed_id,
                    manager=handle.storage_manager.address,
                    items=items,
                )
            )
        return groups

    def _prepare_update_groups(
        self, shard: List[str]
    ) -> Tuple[List[UpdateGroup], Dict[str, Dict[str, ReplicationState]]]:
        """Phase-3 worker: run one shard's control planes and ADS updates,
        returning the prepared update groups plus per-feed transitions."""
        groups: List[UpdateGroup] = []
        shard_transitions: Dict[str, Dict[str, ReplicationState]] = {}
        for feed_id in shard:
            handle = self.registry.get(feed_id)
            prepared = handle.data_owner.prepare_epoch_update()
            shard_transitions[feed_id] = prepared.transitions
            if not prepared.has_payload:
                continue
            assert prepared.signed_root is not None
            handle.data_owner.note_epoch_submitted()
            groups.append(
                UpdateGroup(
                    feed_id=feed_id,
                    manager=handle.storage_manager.address,
                    entries=prepared.entries,
                    digest=prepared.signed_root.root,
                )
            )
        return groups, shard_transitions

    # -- settlement helpers (main thread only) --------------------------------

    def _warm_cache_from_deliveries(self, groups: List[DeliverGroup]) -> None:
        """Memoise records the deliver batches just verified *and* replicated.

        Once the chain has verified a delivered record's proof and stored it
        as a replica, its value is public replicated state — exactly what the
        cache serves — so it is memoised immediately instead of waiting for
        the first post-deliver read to do it.  Keys written during the current
        epoch are skipped (their replica is about to be superseded by the
        pending epoch update), preserving the dirty-key invalidation rules.
        """
        if self.cache is None:
            return
        for group in groups:
            dirty = self._dirty.get(group.feed_id, ())
            for item in group.items:
                if item.replicate and item.key not in dirty:
                    self.cache.put(group.feed_id, item.key, item.value)

    def _check_settlement(self, batch_txs: List[Transaction]) -> None:
        """Fail loudly if any settlement batch reverted.

        The batched transaction reverts atomically on chain, but the hosted
        DOs' off-chain state (trusted roots, SP stores) has already advanced
        by the time the batch lands — continuing would leave those feeds
        diverged from their on-chain digests forever, so a reverted batch is
        a hosting-runtime bug worth stopping the run for.
        """
        for transaction in batch_txs:
            receipt = self.registry.chain.receipt_for(transaction.txid)
            if receipt is not None and not receipt.success:
                raise ReproError(
                    f"gateway {transaction.function} reverted "
                    f"(feeds {sorted(transaction.scopes or {})}): {receipt.error}"
                )

    # -- one operation --------------------------------------------------------

    def _drive(
        self,
        handle: FeedHandle,
        operation: Operation,
        summary: EpochSummary,
        telemetry: FeedTelemetry,
    ) -> None:
        """Route one operation: cache front for point reads, system otherwise."""
        cache = self.cache
        if cache is not None and operation.kind is OperationKind.READ:
            cached = cache.get(handle.feed_id, operation.key)
            if cached is not None:
                # Served from the gateway's memo of verified chain state: no
                # on-chain call, no gas, and no entry in the on-chain trace.
                telemetry.cache_hits += 1
                summary.reads += 1
                handle.report.reads += 1
                handle.report.operations += 1
                return
            telemetry.cache_misses += 1
            handle.system.drive_operation(operation, summary, handle.report)
            replica = handle.storage_manager.replica_of(operation.key)
            if replica is not None and operation.key not in self._dirty[handle.feed_id]:
                # The read was served by a verified on-chain replica and no
                # buffered write is about to supersede it; memoise it for
                # subsequent reads of the same key.
                cache.put(handle.feed_id, operation.key, replica)
            return
        if operation.is_write and cache is not None:
            cache.invalidate(handle.feed_id, operation.key)
            self._dirty[handle.feed_id].add(operation.key)
        handle.system.drive_operation(operation, summary, handle.report)
