"""Consumer-side read cache with replication-keyed write invalidation.

The gateway fronts every consumer read.  Once a record is replicated on chain
its value is public, verified state; the gateway's full node can therefore
memoise it and serve repeated reads without re-executing the ``gGet`` internal
call (no ``sload``, no callback gas).  The cache is only ever populated from
verified replicated state — a read that hit an on-chain replica, or a deliver
payload the chain just verified and replicated — never from the untrusted SP
directly, so a cache hit returns exactly what the chain would have returned.

Invalidation is keyed on the feed's replication state machine:

* a data-owner write to a key invalidates the (feed, key) entry — the next
  read goes back to the chain (and, post-update, re-populates the cache),
* an R→NR transition (eviction) invalidates the entry — the replica is gone,
  so reads must pay the request/deliver path again,
* removing a feed drops all of its entries.

The cache is internally sharded per feed: every feed owns a private LRU map
and private hit/miss counters, and the optional ``capacity`` bounds each
feed's shard.  Sharding is what lets the parallel epoch engine drive feeds
concurrently — a feed's cache state depends only on that feed's own access
sequence, never on how accesses of *other* feeds interleave with it — so a
parallel fleet run touches each shard from exactly one worker and produces
bit-identical cache behaviour to a serial run.  (It is also the multi-tenant
fairness property: one noisy feed can no longer evict every other tenant's
entries.)
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional


@dataclass
class CacheStats:
    """Hit/miss/invalidation counters (per feed shard, or aggregated)."""

    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups

    def merge(self, other: "CacheStats") -> None:
        """Fold another counter set into this one (the single folding site —
        a counter added to the class only needs updating here)."""
        self.hits += other.hits
        self.misses += other.misses
        self.invalidations += other.invalidations
        self.evictions += other.evictions


class _FeedShard:
    """One feed's private LRU map and counters."""

    __slots__ = ("entries", "stats")

    def __init__(self) -> None:
        self.entries: "OrderedDict[str, bytes]" = OrderedDict()
        self.stats = CacheStats()


class ReadCache:
    """Per-feed-sharded LRU cache of verified replicated records."""

    def __init__(self, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError("cache capacity must be positive when given")
        #: Maximum entries held *per feed shard* (``None`` = unbounded).
        self.capacity = capacity
        self._shards: Dict[str, _FeedShard] = {}
        #: Counters folded in from shards that have been retired (feed
        #: removed, cache cleared), so aggregate statistics survive tenant
        #: churn while a reused feed id starts from zero.
        self._retired = CacheStats()

    def __len__(self) -> int:
        return sum(len(shard.entries) for shard in self._shards.values())

    @property
    def stats(self) -> CacheStats:
        """Aggregated counters: every live feed shard plus retired shards."""
        total = CacheStats()
        total.merge(self._retired)
        for shard in self._shards.values():
            total.merge(shard.stats)
        return total

    def _retire(self, shard: _FeedShard) -> None:
        self._retired.merge(shard.stats)

    def shard_stats(self, feed_id: str) -> CacheStats:
        """One feed's private counters (zeros if the feed never touched it)."""
        shard = self._shards.get(feed_id)
        return shard.stats if shard is not None else CacheStats()

    def ensure_shard(self, feed_id: str) -> None:
        """Pre-create a feed's shard.

        The parallel scheduler calls this for every fleet feed before fanning
        out, so worker threads never mutate the shard *directory* — each only
        touches the interior of shards it exclusively owns.
        """
        if feed_id not in self._shards:
            self._shards[feed_id] = _FeedShard()

    def _shard(self, feed_id: str) -> _FeedShard:
        shard = self._shards.get(feed_id)
        if shard is None:
            shard = self._shards[feed_id] = _FeedShard()
        return shard

    def get(self, feed_id: str, key: str) -> Optional[bytes]:
        """Return the cached value, counting a hit or a miss."""
        shard = self._shards.get(feed_id)
        if shard is None:
            # A probe of a feed that never cached anything must not allocate
            # a shard; the miss still counts toward the aggregate.
            self._retired.misses += 1
            return None
        entry = shard.entries.get(key)
        if entry is None:
            shard.stats.misses += 1
            return None
        shard.entries.move_to_end(key)
        shard.stats.hits += 1
        return entry

    def put(self, feed_id: str, key: str, value: bytes) -> None:
        """Memoise a value backed by a verified on-chain replica."""
        shard = self._shard(feed_id)
        shard.entries[key] = value
        shard.entries.move_to_end(key)
        if self.capacity is not None:
            while len(shard.entries) > self.capacity:
                shard.entries.popitem(last=False)
                shard.stats.evictions += 1

    def invalidate(self, feed_id: str, key: str) -> bool:
        """Drop one entry (a write or an R→NR transition touched the key)."""
        shard = self._shards.get(feed_id)
        if shard is None:
            return False
        removed = shard.entries.pop(key, None) is not None
        if removed:
            shard.stats.invalidations += 1
        return removed

    def install_shard(
        self, feed_id: str, entries, stats: Optional[CacheStats] = None
    ) -> None:
        """Replace one feed's shard with externally computed contents.

        The process execution backend runs each feed's cache shard inside the
        worker process that owns the feed; at run end the worker ships the
        shard back — ``entries`` in LRU order (oldest first) plus its
        counters — so the main cache ends up exactly as a serial run would
        have left it.

        A replaced shard's counters retire into the cache-wide aggregate
        first: the installed counters cover only what the *worker* observed,
        so anything the main-side shard counted before the install (a fresh
        run's pre-created shard counts nothing; a reused cache's shard may)
        would otherwise vanish from :attr:`stats`.  Worker counters are never
        folded into the replaced shard, so nothing is double-counted either.
        """
        replaced = self._shards.get(feed_id)
        if replaced is not None:
            self._retire(replaced)
        shard = _FeedShard()
        for key, value in entries:
            shard.entries[key] = value
        if stats is not None:
            shard.stats = stats
        self._shards[feed_id] = shard

    def invalidate_feed(self, feed_id: str) -> int:
        """Drop one feed's whole shard (the feed was removed).

        The shard is deregistered — a long-lived gateway with tenant churn
        must not accumulate ghost shards, and a later tenant reusing the feed
        id starts with fresh counters — while its statistics (plus one
        invalidation per dropped entry) fold into the cache-wide aggregate.
        """
        shard = self._shards.pop(feed_id, None)
        if shard is None:
            return 0
        stale = len(shard.entries)
        shard.stats.invalidations += stale
        self._retire(shard)
        return stale

    def clear(self) -> None:
        """Drop every entry and shard; aggregate statistics are preserved."""
        for shard in self._shards.values():
            self._retire(shard)
        self._shards.clear()
