"""Consumer-side read cache with replication-keyed write invalidation.

The gateway fronts every consumer read.  Once a record is replicated on chain
its value is public, verified state; the gateway's full node can therefore
memoise it and serve repeated reads without re-executing the ``gGet`` internal
call (no ``sload``, no callback gas).  The cache is only ever populated from
reads that *hit an on-chain replica* — never from the untrusted SP — so a
cache hit returns exactly what the chain would have returned.

Invalidation is keyed on the feed's replication state machine:

* a data-owner write to a key invalidates the (feed, key) entry — the next
  read goes back to the chain (and, post-update, re-populates the cache),
* an R→NR transition (eviction) invalidates the entry — the replica is gone,
  so reads must pay the request/deliver path again,
* removing a feed drops all of its entries.

Entries are bounded by an optional LRU capacity so a gateway hosting many
large feeds keeps a predictable memory footprint.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Optional, Tuple


@dataclass
class CacheStats:
    """Hit/miss/invalidation counters of one cache instance."""

    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups


class ReadCache:
    """LRU cache of verified replicated records, keyed by (feed id, key)."""

    def __init__(self, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError("cache capacity must be positive when given")
        self.capacity = capacity
        self._entries: "OrderedDict[Tuple[str, str], bytes]" = OrderedDict()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, feed_id: str, key: str) -> Optional[bytes]:
        """Return the cached value, counting a hit or a miss."""
        entry = self._entries.get((feed_id, key))
        if entry is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end((feed_id, key))
        self.stats.hits += 1
        return entry

    def put(self, feed_id: str, key: str, value: bytes) -> None:
        """Memoise a value read from an on-chain replica."""
        cache_key = (feed_id, key)
        self._entries[cache_key] = value
        self._entries.move_to_end(cache_key)
        if self.capacity is not None:
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def invalidate(self, feed_id: str, key: str) -> bool:
        """Drop one entry (a write or an R→NR transition touched the key)."""
        removed = self._entries.pop((feed_id, key), None) is not None
        if removed:
            self.stats.invalidations += 1
        return removed

    def invalidate_feed(self, feed_id: str) -> int:
        """Drop every entry of one feed (feed removed or root rolled over)."""
        stale = [entry for entry in self._entries if entry[0] == feed_id]
        for entry in stale:
            del self._entries[entry]
        self.stats.invalidations += len(stale)
        return len(stale)

    def clear(self) -> None:
        self._entries.clear()
