"""One watchdog for the whole fleet.

In a single-feed deployment the SP's watchdog tails the event log with its own
cursor.  Hosting N feeds that way would scan the shared log N times per cycle
(each SP filtering for its own contract).  The shared watchdog keeps *one*
cursor over the shared chain's event log, scans each new event exactly once,
and routes ``request`` / ``request_range`` events to the feed that owns the
emitting storage-manager contract — the per-feed
:class:`~repro.core.service_provider.ServiceProvider` objects then only do
what is genuinely per-feed work: looking records up in their own store and
attaching proofs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict

from repro.chain.chain import Blockchain
from repro.core.service_provider import PendingRequest

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.gateway.registry import FeedHandle


@dataclass
class SharedWatchdog:
    """Single-cursor event-log tail shared by every hosted feed."""

    chain: Blockchain
    _cursor: int = 0
    #: storage-manager address → the handle of the feed it belongs to.
    _routes: Dict[str, "FeedHandle"] = field(default_factory=dict)
    events_scanned: int = 0
    requests_routed: int = 0
    requests_cancelled: int = 0

    def register(self, handle: "FeedHandle") -> None:
        self._routes[handle.storage_manager.address] = handle

    def deregister(self, handle: "FeedHandle") -> None:
        self._routes.pop(handle.storage_manager.address, None)

    def cancel_pending(self, handle: "FeedHandle") -> int:
        """Explicitly cancel a departing feed's undelivered requests.

        The fleet controller calls this (after a final :meth:`poll`) before a
        feed is removed: any request the watchdog routed to the feed's SP but
        the scheduler has not yet settled is dropped *visibly* — counted here
        and in the feed's telemetry — instead of being silently routed to a
        dead handle once the feed's contracts are undeployed.  Returns the
        number of requests cancelled.
        """
        cancelled = len(handle.service_provider.pending)
        handle.service_provider.pending.clear()
        self.requests_cancelled += cancelled
        return cancelled

    def poll(self) -> int:
        """Scan new events once, routing requests to their feeds' SPs.

        Returns how many pending requests were enqueued across the fleet.
        The per-feed SP's own log cursor is advanced past the scanned range so
        a feed later driven standalone does not re-answer old requests.
        """
        events = self.chain.event_log.since(self._cursor)
        self._cursor = len(self.chain.event_log)
        routed = 0
        for event in events:
            self.events_scanned += 1
            handle = self._routes.get(event.contract)
            if handle is None:
                continue
            requests = PendingRequest.from_event(event)
            handle.service_provider.pending.extend(requests)
            routed += len(requests)
        for handle in self._routes.values():
            handle.service_provider._log_cursor = self._cursor
        self.requests_routed += routed
        return routed
