"""Execution backends for the epoch engine: shared phase logic + process pool.

The :class:`~repro.gateway.scheduler.EpochScheduler` orchestrates epochs; this
module owns *how a shard's work actually executes*.  It has two halves:

**Shared phase logic.**  The per-shard phase bodies — driving a shard's
operations (cache front, quotas, deferral), building deliver groups, preparing
update groups, warming the cache, settling a feed's epoch accounting — are
plain functions over a :class:`ShardEnvironment` (registry + cache + queues +
telemetry + dirty-key sets).  The scheduler's serial and thread backends call
them against the fleet-wide environment on the main process; the process
backend calls the very same functions inside worker processes against
worker-local environments.  One implementation, three execution modes, which
is what makes the bit-identical guarantee a property of the code path rather
than a property of careful duplication.

**Process backend.**  CPython's GIL means the thread backend can only overlap
the hash/storage work of one interpreter; on a multicore host it never
multiplies throughput (``BENCH_hotpath.json`` records speedup ≈ 1× however
many threads run).  :class:`ProcessEngine` instead ships each shard's epoch
work to a persistent pool of long-lived worker processes:

* every worker **lane** is a single-process :class:`ProcessPoolExecutor`;
  shards are pinned to lanes (``shard_index % num_lanes``), so the worker-side
  state of a shard — its feeds' contracts on a worker-local chain, SP stores,
  control planes, cache shards, telemetry rows, workload queues — persists
  across epochs and only *per-epoch deltas* cross the process boundary;
* per epoch, a lane receives one tiny :class:`ShardTask` (epoch index, epoch
  size, the main chain's current height) and returns one
  :class:`ShardEpochResult` per shard: the driving phase's
  :class:`~repro.chain.chain.ExecutionBuffer` in wire form, plus the shard's
  settlement transactions *pre-executed* against the worker's mirror of the
  shard's contracts (:class:`SettlementResult`: gas used, receipt outcome,
  emitted events, exact ledger delta);
* the main process merges results in **fixed shard order** — absorb every
  drive buffer, then mine one recorded block per shard deliver, then one per
  shard update (:meth:`~repro.chain.chain.Blockchain.mine_recorded_block`) —
  reproducing the serial merge exactly, so fingerprints, per-feed gas bills
  and chain state are bit-identical to a serial run;
* at run end the workers ship their final feed state back
  (:class:`FeedStateResult`) and the engine folds it into the main registry's
  mirrors, so post-run inspection (contract storage, roots, replica counts,
  reports, cache contents) sees exactly what a serial run would have left.

Worker processes rebuild their feeds from the :class:`FeedSpec`s (pickled to
the worker once, at start), so the construction is deterministic and identical
to the main registry's own mirrors.  Constraints the backend enforces rather
than silently mis-handling: no tenant churn (shard pinning needs a static
fleet), a stable shard plan (round-robin; a gas-aware plan would re-shard
mid-run), and memory-backed SP stores (two processes must not open one LSM
directory).
"""

from __future__ import annotations

import pickle
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.chain.chain import ChainParameters, ExecutionBuffer, buffer_from_wire
from repro.chain.gas import (
    GasSchedule,
    LAYER_APPLICATION,
    LAYER_FEED,
    ledger_delta_wire,
    ledger_from_wire,
    ledger_to_wire,
)
from repro.chain.transaction import Transaction
from repro.common.errors import ConfigurationError, ReproError
from repro.common.types import EpochSummary, Operation, OperationKind, ReplicationState
from repro.core.grub import RunReport
from repro.gateway.cache import CacheStats, ReadCache
from repro.gateway.metrics import FeedTelemetry
from repro.gateway.registry import FeedRegistry, FeedSpec
from repro.gateway.router import (
    DeliverGroup,
    UpdateGroup,
    scope_weights_for_deliver,
    scope_weights_for_update,
)
from repro.obs.tracing import Tracer

#: Externally-owned account the gateway runtime submits batched transactions
#: from (defined here so the worker side needs no scheduler import).
GATEWAY_OPERATOR = "gateway-operator"

#: The scheduler's execution backends.
EXECUTION_MODES = ("serial", "thread", "process")


# ---------------------------------------------------------------------------
# Shared phase logic (serial, thread and process backends all run this)
# ---------------------------------------------------------------------------


@dataclass
class ShardEnvironment:
    """Everything the shard phases mutate, owned by exactly one interpreter.

    The scheduler builds one for the whole fleet (serial/thread modes); each
    worker process builds one for the feeds of its pinned shards (process
    mode).  Phases only ever touch entries for the feeds they were handed, so
    a worker's environment never needs entries for other lanes' feeds.
    """

    registry: FeedRegistry
    cache: Optional[ReadCache]
    dirty: Dict[str, set] = field(default_factory=dict)
    queues: Dict[str, Deque[Operation]] = field(default_factory=dict)
    feeds: Dict[str, FeedTelemetry] = field(default_factory=dict)


def drive_shard(
    env: ShardEnvironment,
    shard: Sequence[str],
    epoch: int,
    epoch_size: int,
) -> Tuple[ExecutionBuffer, Dict[str, EpochSummary]]:
    """Phase 1: drive every feed of one shard through its epoch slice.

    Chain side effects land in the returned isolation buffer for the ordered
    merge.  Each feed consumes from the head of its own queue — up to
    ``epoch_size`` operations, capped by ``max_ops_per_epoch``, cut short once
    ``max_gas_per_epoch`` is reached (checked after each operation against the
    feed's scoped gas in this shard's buffer).  Whatever the epoch could not
    take stays queued and is counted as deferred.

    The loop is deliberately flat: per-feed attribute lookups are hoisted out
    of the per-operation path (this is the scheduler's hottest loop), and the
    read route — cache probe, miss drive, replica memoisation — is inlined
    rather than dispatched per operation.
    """
    registry = env.registry
    chain = registry.chain
    cache = env.cache
    shard_summaries: Dict[str, EpochSummary] = {}
    with chain.isolated_execution() as buffer:
        by_scope = buffer.ledger.by_scope
        for feed_id in shard:
            handle = registry.get(feed_id)
            telemetry = env.feeds[feed_id]
            queue = env.queues[feed_id]
            spec = handle.spec
            system = handle.system
            report = handle.report
            planned = min(len(queue), epoch_size)
            take = planned
            if spec.max_ops_per_epoch is not None:
                take = min(take, spec.max_ops_per_epoch)
            summary = system.begin_epoch(epoch, take)
            shard_summaries[feed_id] = summary
            executed = 0
            gas_cap = spec.max_gas_per_epoch
            popleft = queue.popleft
            drive_op = system.drive_operation
            dirty = env.dirty[feed_id]
            replica_of = handle.storage_manager.replica_of
            for _ in range(take):
                operation = popleft()
                kind = operation.kind
                if cache is not None and kind is OperationKind.READ:
                    key = operation.key
                    if cache.get(feed_id, key) is not None:
                        # Served from the gateway's memo of verified chain
                        # state: no on-chain call, no gas, no trace entry.
                        telemetry.cache_hits += 1
                        summary.reads += 1
                        report.reads += 1
                        report.operations += 1
                    else:
                        telemetry.cache_misses += 1
                        drive_op(operation, summary, report)
                        replica = replica_of(key)
                        if replica is not None and key not in dirty:
                            # Served by a verified on-chain replica with no
                            # buffered write about to supersede it: memoise.
                            cache.put(feed_id, key, replica)
                else:
                    if kind is OperationKind.WRITE and cache is not None:
                        cache.invalidate(feed_id, operation.key)
                        dirty.add(operation.key)
                    drive_op(operation, summary, report)
                executed += 1
                if (
                    gas_cap is not None
                    and executed < take
                    # O(1) per-op: the feed's two layer buckets, not a scan
                    # of every scope in the shard buffer.
                    and by_scope.get((feed_id, LAYER_FEED), 0)
                    + by_scope.get((feed_id, LAYER_APPLICATION), 0)
                    >= gas_cap
                ):
                    break
            summary.operations = executed
            deferred = planned - executed
            if deferred:
                telemetry.deferred_ops += deferred
    return buffer, shard_summaries


def build_deliver_groups(
    registry: FeedRegistry, shard: Sequence[str]
) -> List[DeliverGroup]:
    """Phase 2 (build): drain one shard's pending requests into deliver groups
    (record lookups plus batched proof generation, no chain I/O)."""
    groups: List[DeliverGroup] = []
    for feed_id in shard:
        handle = registry.get(feed_id)
        items = handle.service_provider.drain_pending_items()
        if not items:
            continue
        groups.append(
            DeliverGroup(
                feed_id=feed_id,
                manager=handle.storage_manager.address,
                items=items,
            )
        )
    return groups


def prepare_update_groups(
    registry: FeedRegistry, shard: Sequence[str]
) -> Tuple[List[UpdateGroup], Dict[str, Dict[str, ReplicationState]]]:
    """Phase 3 (build): run one shard's control planes and ADS updates,
    returning the prepared update groups plus per-feed transitions."""
    groups: List[UpdateGroup] = []
    shard_transitions: Dict[str, Dict[str, ReplicationState]] = {}
    for feed_id in shard:
        handle = registry.get(feed_id)
        prepared = handle.data_owner.prepare_epoch_update()
        shard_transitions[feed_id] = prepared.transitions
        if not prepared.has_payload:
            continue
        assert prepared.signed_root is not None
        handle.data_owner.note_epoch_submitted()
        groups.append(
            UpdateGroup(
                feed_id=feed_id,
                manager=handle.storage_manager.address,
                entries=prepared.entries,
                digest=prepared.signed_root.root,
            )
        )
    return groups, shard_transitions


def deliver_transaction(router_address: str, groups: List[DeliverGroup]) -> Transaction:
    """The batched cross-feed deliver transaction for one shard's groups."""
    return Transaction(
        sender=GATEWAY_OPERATOR,
        contract=router_address,
        function="deliver_batch",
        args={"groups": groups},
        calldata_bytes=sum(group.calldata_bytes for group in groups),
        layer=LAYER_FEED,
        scopes=scope_weights_for_deliver(groups),
    )


def update_transaction(router_address: str, groups: List[UpdateGroup]) -> Transaction:
    """The grouped cross-feed update transaction for one shard's groups."""
    return Transaction(
        sender=GATEWAY_OPERATOR,
        contract=router_address,
        function="update_batch",
        args={"groups": groups},
        calldata_bytes=sum(group.calldata_bytes for group in groups),
        layer=LAYER_FEED,
        scopes=scope_weights_for_update(groups),
    )


def warm_cache_from_deliveries(
    env: ShardEnvironment, groups: Sequence[DeliverGroup]
) -> None:
    """Memoise records the deliver batches just verified *and* replicated.

    Once the chain has verified a delivered record's proof and stored it as a
    replica, its value is public replicated state — exactly what the cache
    serves — so it is memoised immediately instead of waiting for the first
    post-deliver read.  Keys written during the current epoch are skipped
    (their replica is about to be superseded by the pending epoch update).
    """
    cache = env.cache
    if cache is None:
        return
    for group in groups:
        dirty = env.dirty.get(group.feed_id, ())
        for item in group.items:
            if item.replicate and item.key not in dirty:
                cache.put(group.feed_id, item.key, item.value)


def settle_feed_epoch(
    env: ShardEnvironment,
    feed_id: str,
    summary: EpochSummary,
    *,
    deliveries: int,
    update_transactions: int,
    transitions: Dict[str, ReplicationState],
    gas_before: Tuple[int, int],
) -> int:
    """Phase 4 (per feed): settle epoch accounting and cache invalidation.

    Applies replication-keyed cache invalidation, clears the feed's dirty-key
    set (the epoch update has landed, replicas are fresh again), folds the
    epoch into the feed's system report and telemetry row, and returns the
    epoch's total gas (the planner's observation input).
    """
    registry = env.registry
    ledger = registry.chain.ledger
    handle = registry.get(feed_id)
    telemetry = env.feeds[feed_id]
    cache = env.cache
    if cache is not None:
        for key, state in transitions.items():
            if state is ReplicationState.NOT_REPLICATED:
                cache.invalidate(feed_id, key)
        env.dirty[feed_id].clear()
    feed_after = ledger.scope_total(feed_id, LAYER_FEED)
    app_after = ledger.scope_total(feed_id, LAYER_APPLICATION)
    handle.system.record_epoch(
        summary,
        handle.report,
        deliveries=deliveries,
        update_transactions=update_transactions,
        transitions=transitions,
        gas_feed=feed_after - gas_before[0],
        gas_application=app_after - gas_before[1],
    )
    telemetry.epochs.append(summary)
    telemetry.operations += summary.operations
    telemetry.reads += summary.reads
    telemetry.writes += summary.writes
    telemetry.gas_feed += summary.gas_feed
    telemetry.gas_application += summary.gas_application
    telemetry.replications += summary.replications
    telemetry.evictions += summary.evictions
    return summary.gas_total


# ---------------------------------------------------------------------------
# Process backend: wire envelopes
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FeedSeed:
    """One feed a worker lane must host: its spec plus its whole workload."""

    spec: FeedSpec
    operations: Tuple[Operation, ...]


@dataclass(frozen=True)
class LaneConfig:
    """Everything one worker process needs to rebuild its pinned shards."""

    schedule: GasSchedule
    parameters: ChainParameters
    router_address: str
    cache_enabled: bool
    cache_capacity: Optional[int]
    #: shard index → that shard's feeds, in shard order.
    shards: Dict[int, Tuple[FeedSeed, ...]]
    #: When set, the lane times per-shard phase spans (its own monotonic
    #: clock) and ships them back in :attr:`ShardEpochResult.spans`.
    obs_enabled: bool = False


@dataclass(frozen=True)
class ShardTask:
    """One epoch's marching orders for a lane: everything that crosses the
    boundary *into* a worker per epoch (the workloads already live there)."""

    epoch: int
    epoch_size: int
    #: Main-chain height at the epoch start; the worker pads its local chain
    #: to it so request events carry the same block stamps as a serial run.
    chain_height: int


@dataclass(frozen=True)
class SettlementResult:
    """One settlement transaction pre-executed inside a worker.

    Carries exactly what the main chain needs to record the outcome without
    re-executing: the transaction's shape (scope weights, calldata), the
    receipt outcome, the events it emitted (in emission order, unstamped —
    the main chain assigns block numbers when it mines the recorded block),
    and the exact gas-ledger delta its execution charged.
    """

    function: str
    feed_ids: Tuple[str, ...]
    scopes: Dict[str, int]
    calldata_bytes: int
    gas_used: int
    success: bool
    error: Optional[str]
    events: Tuple[tuple, ...]
    ledger_delta: dict


@dataclass(frozen=True)
class ShardEpochResult:
    """One shard's epoch, as shipped back from its worker lane."""

    shard_index: int
    #: Phase-1 side effects (gas + request events), ExecutionBuffer wire form.
    drive: dict
    deliver: Optional[SettlementResult]
    update: Optional[SettlementResult]
    #: feed id → operations still queued after this epoch (run termination).
    remaining: Dict[str, int]
    #: This shard's finished phase spans in wire form (empty when the lane
    #: runs untraced).  Durations are from the *lane's* clock; the main
    #: process grafts them into its trace tree in fixed shard order
    #: (:func:`repro.obs.tracing.reassemble_shard_spans`) and never compares
    #: their timestamps across processes.
    spans: Tuple[dict, ...] = ()


@dataclass(frozen=True)
class FeedStateResult:
    """A feed's final state, shipped back at run end so the main registry's
    mirrors match what a serial run would have left behind."""

    feed_id: str
    telemetry: FeedTelemetry
    report: RunReport
    manager_attrs: dict
    manager_slots: Dict[str, bytes]
    consumer_attrs: dict
    consumer_slots: Dict[str, bytes]
    sp_store_state: Optional[dict]
    do_trusted_root: bytes
    do_epochs_submitted: int
    sp_deliveries_sent: int
    sp_records_delivered: int
    cache_entries: Tuple[Tuple[str, bytes], ...]
    cache_stats: Optional[CacheStats]


#: Contract attributes that must not cross the process boundary: the chain
#: back-reference (worker-local), the storage (shipped as slots), and the
#: storage manager's weak cursor registry (rebuilt by the main-side monitor).
_CONTRACT_ATTR_EXCLUDES = ("chain", "storage", "_history_cursors")


def _contract_state(contract) -> Tuple[dict, Dict[str, bytes]]:
    attrs = {
        key: value
        for key, value in vars(contract).items()
        if key not in _CONTRACT_ATTR_EXCLUDES
    }
    return attrs, dict(contract.storage.slots)


def _apply_contract_state(contract, attrs: dict, slots: Dict[str, bytes]) -> None:
    contract.__dict__.update(attrs)
    contract.storage.slots.clear()
    contract.storage.slots.update(slots)


# ---------------------------------------------------------------------------
# Process backend: the worker side (runs inside each lane process)
# ---------------------------------------------------------------------------


class _LaneWorker:
    """A worker process's resident runtime: full mirrors of its shards' feeds.

    Built once per lane from the shipped :class:`LaneConfig`; lives for the
    whole run.  Every epoch it executes the complete epoch for each of its
    shards — drive, watchdog poll, deliver settlement, cache warm-up, update
    settlement, per-feed accounting — against its *local* chain, in the same
    per-feed order a serial run uses, and ships back only the deltas the main
    chain must record.
    """

    def __init__(self, config: LaneConfig) -> None:
        self.registry = FeedRegistry(
            schedule=config.schedule,
            parameters=config.parameters,
            router_address=config.router_address,
        )
        #: Lane-local tracer (own process, own clock).  It only ever creates
        #: detached spans; the finished spans ship back as wire dicts and the
        #: main process owns the tree they end up in.
        self.tracer = Tracer(enabled=config.obs_enabled)
        cache = ReadCache(capacity=config.cache_capacity) if config.cache_enabled else None
        self.env = ShardEnvironment(registry=self.registry, cache=cache)
        self.shards: List[Tuple[int, List[str]]] = []
        for shard_index in sorted(config.shards):
            feed_ids: List[str] = []
            for seed in config.shards[shard_index]:
                self.registry.create_feed(seed.spec)
                feed_id = seed.spec.feed_id
                feed_ids.append(feed_id)
                self.env.queues[feed_id] = deque(seed.operations)
                self.env.dirty[feed_id] = set()
                self.env.feeds[feed_id] = FeedTelemetry(feed_id=feed_id)
                if cache is not None:
                    cache.ensure_shard(feed_id)
            self.shards.append((shard_index, feed_ids))

    # -- one epoch -----------------------------------------------------------

    def run_epoch(self, task: ShardTask) -> List[ShardEpochResult]:
        env = self.env
        chain = self.registry.chain
        ledger = chain.ledger
        # Pad the local chain to the main chain's height so events emitted
        # while driving carry the very block stamps a serial run records
        # (other lanes' settlement blocks exist only on the main chain).
        while chain.height < task.chain_height:
            chain.mine_block()

        active = [feed_id for _, shard in self.shards for feed_id in shard]
        gas_before = {
            feed_id: (
                ledger.scope_total(feed_id, LAYER_FEED),
                ledger.scope_total(feed_id, LAYER_APPLICATION),
            )
            for feed_id in active
        }

        # Per-shard finished wire spans, shipped back with each shard's
        # result.  ``_span``/``_ship`` are no-ops on an untraced lane (the
        # tracer hands out None spans).
        tracer = self.tracer
        wire_spans: Dict[int, List[dict]] = {index: [] for index, _ in self.shards}

        def _ship(shard_index: int, span) -> None:
            if span is not None:
                tracer.finish(span)
                wire_spans[shard_index].append(span.to_wire())

        # Phase 1: drive every shard, wire the buffers *before* the local
        # absorb clears their event lists, then merge locally in shard order
        # (the worker's own watchdog needs the events in its log).
        drives: List[Tuple[int, List[str], ExecutionBuffer, Dict[str, EpochSummary]]] = []
        for shard_index, shard in self.shards:
            span = tracer.detached("shard", phase="drive", shard=shard_index)
            buffer, summaries = drive_shard(env, shard, task.epoch, task.epoch_size)
            _ship(shard_index, span)
            drives.append((shard_index, shard, buffer, summaries))
        drive_wires = {index: buffer.to_wire() for index, _, buffer, _ in drives}
        for _, _, buffer, _ in drives:
            chain.absorb(buffer)
        self.registry.watchdog.poll()

        # Phase 2: per shard, build deliver groups and settle them locally in
        # one batched transaction mined into its own local block.
        delivers: Dict[int, Optional[SettlementResult]] = {}
        deliveries: Dict[str, int] = {feed_id: 0 for feed_id in active}
        for shard_index, shard in self.shards:
            span = tracer.detached("shard", phase="deliver", shard=shard_index)
            groups = build_deliver_groups(self.registry, shard)
            if not groups:
                delivers[shard_index] = None
                _ship(shard_index, span)
                continue
            result = self._settle(deliver_transaction(self.registry.router.address, groups),
                                  [group.feed_id for group in groups])
            for group in groups:
                deliveries[group.feed_id] += 1
                env.feeds[group.feed_id].deliver_groups += 1
            warm_cache_from_deliveries(env, groups)
            delivers[shard_index] = result
            _ship(shard_index, span)

        # Phase 3: per shard, prepare epoch updates and settle them locally.
        updates: Dict[int, Optional[SettlementResult]] = {}
        update_counts: Dict[str, int] = {feed_id: 0 for feed_id in active}
        transitions: Dict[str, Dict[str, ReplicationState]] = {}
        for shard_index, shard in self.shards:
            span = tracer.detached("shard", phase="update", shard=shard_index)
            groups_u, shard_transitions = prepare_update_groups(self.registry, shard)
            transitions.update(shard_transitions)
            if not groups_u:
                updates[shard_index] = None
                _ship(shard_index, span)
                continue
            result = self._settle(update_transaction(self.registry.router.address, groups_u),
                                  [group.feed_id for group in groups_u])
            for group in groups_u:
                update_counts[group.feed_id] += 1
                env.feeds[group.feed_id].update_groups += 1
            updates[shard_index] = result
            _ship(shard_index, span)

        # Phase 4: per-feed epoch accounting, in shard order.
        results: List[ShardEpochResult] = []
        for shard_index, shard in self.shards:
            span = tracer.detached("shard", phase="settle", shard=shard_index)
            summaries = next(s for i, _, _, s in drives if i == shard_index)
            for feed_id in shard:
                settle_feed_epoch(
                    env,
                    feed_id,
                    summaries[feed_id],
                    deliveries=deliveries[feed_id],
                    update_transactions=update_counts[feed_id],
                    transitions=transitions.get(feed_id, {}),
                    gas_before=gas_before[feed_id],
                )
            _ship(shard_index, span)
            results.append(
                ShardEpochResult(
                    shard_index=shard_index,
                    drive=drive_wires[shard_index],
                    deliver=delivers[shard_index],
                    update=updates[shard_index],
                    remaining={feed_id: len(env.queues[feed_id]) for feed_id in shard},
                    spans=tuple(wire_spans[shard_index]),
                )
            )
        return results

    def _settle(self, transaction: Transaction, feed_ids: List[str]) -> SettlementResult:
        """Execute one settlement transaction on the local chain, capturing
        the exact ledger delta, receipt outcome and emitted events."""
        chain = self.registry.chain
        before = ledger_to_wire(chain.ledger)
        chain.submit(transaction)
        chain.mine_block()
        receipt = chain.receipt_for(transaction.txid)
        assert receipt is not None
        ledger_delta = ledger_delta_wire(before, chain.ledger)
        # Block-gas-limit overflow is *derived* accounting: the worker's local
        # mine_block recorded it from this block's gas, and the main chain's
        # mine_recorded_block re-derives it from the shipped gas_used.
        # Shipping it in the delta too would double-count it.
        ledger_delta["by_category"].pop("block_gas_limit_overflow", None)
        return SettlementResult(
            function=transaction.function,
            feed_ids=tuple(feed_ids),
            scopes=dict(transaction.scopes or {}),
            calldata_bytes=transaction.calldata_bytes,
            gas_used=receipt.gas_used,
            success=receipt.success,
            error=receipt.error,
            events=tuple(
                (event.contract, event.name, event.payload)
                for event in receipt.events
            ),
            ledger_delta=ledger_delta,
        )

    # -- run-end state shipping ----------------------------------------------

    def collect(self) -> List[FeedStateResult]:
        results: List[FeedStateResult] = []
        cache = self.env.cache
        for _, shard in self.shards:
            for feed_id in shard:
                handle = self.registry.get(feed_id)
                manager_attrs, manager_slots = _contract_state(handle.storage_manager)
                consumer_attrs, consumer_slots = _contract_state(handle.consumer)
                sp_store_state: Optional[dict] = vars(handle.system.sp_store).copy()
                try:
                    pickle.dumps(sp_store_state)
                except Exception:  # pragma: no cover - non-picklable backing
                    sp_store_state = None
                if cache is not None:
                    shard_obj = cache._shards.get(feed_id)
                    entries = tuple(shard_obj.entries.items()) if shard_obj else ()
                    stats = shard_obj.stats if shard_obj else CacheStats()
                else:
                    entries, stats = (), None
                results.append(
                    FeedStateResult(
                        feed_id=feed_id,
                        telemetry=self.env.feeds[feed_id],
                        report=handle.report,
                        manager_attrs=manager_attrs,
                        manager_slots=manager_slots,
                        consumer_attrs=consumer_attrs,
                        consumer_slots=consumer_slots,
                        sp_store_state=sp_store_state,
                        do_trusted_root=handle.data_owner.trusted_root,
                        do_epochs_submitted=handle.data_owner.epochs_submitted,
                        sp_deliveries_sent=handle.service_provider.deliveries_sent,
                        sp_records_delivered=handle.service_provider.records_delivered,
                        cache_entries=entries,
                        cache_stats=stats,
                    )
                )
        return results


#: The lane's resident worker, one per process (set by :func:`_lane_start`).
_LANE_WORKER: Optional[_LaneWorker] = None


def _lane_start(config: LaneConfig) -> int:
    global _LANE_WORKER
    _LANE_WORKER = _LaneWorker(config)
    return len(_LANE_WORKER.shards)


def _lane_epoch(task: ShardTask) -> List[ShardEpochResult]:
    assert _LANE_WORKER is not None, "lane worker not started"
    return _LANE_WORKER.run_epoch(task)


def _lane_collect() -> List[FeedStateResult]:
    assert _LANE_WORKER is not None, "lane worker not started"
    return _LANE_WORKER.collect()


# ---------------------------------------------------------------------------
# Process backend: the main-process engine
# ---------------------------------------------------------------------------


class ProcessEngine:
    """Persistent multi-process execution backend for the epoch scheduler.

    One single-worker :class:`ProcessPoolExecutor` per lane keeps each lane's
    worker process alive (and its shard state resident) for the whole run;
    shards are pinned ``shard_index % num_lanes``.
    """

    def __init__(self, num_lanes: int) -> None:
        if num_lanes <= 0:
            raise ConfigurationError("process backend needs at least one lane")
        self.num_lanes = num_lanes
        self._pools: List[ProcessPoolExecutor] = []
        self._lane_shards: Dict[int, List[int]] = {}

    # -- lifecycle -----------------------------------------------------------

    def start(
        self,
        registry: FeedRegistry,
        shard_plan: Sequence[Sequence[str]],
        queues: Dict[str, Deque[Operation]],
        *,
        cache_enabled: bool,
        cache_capacity: Optional[int],
        obs_enabled: bool = False,
    ) -> None:
        """Spawn the lanes and ship each its pinned shards' specs/workloads."""
        lanes_used = min(self.num_lanes, max(1, len(shard_plan)))
        lane_shards: Dict[int, Dict[int, Tuple[FeedSeed, ...]]] = {
            lane: {} for lane in range(lanes_used)
        }
        for shard_index, shard in enumerate(shard_plan):
            lane = shard_index % lanes_used
            seeds = []
            for feed_id in shard:
                spec = registry.get(feed_id).spec
                seeds.append(FeedSeed(spec=spec, operations=tuple(queues[feed_id])))
            lane_shards[lane][shard_index] = tuple(seeds)
        self._lane_shards = {
            lane: sorted(shards) for lane, shards in lane_shards.items() if shards
        }
        configs = {
            lane: LaneConfig(
                schedule=registry.schedule,
                parameters=registry.parameters,
                router_address=registry.router.address,
                cache_enabled=cache_enabled,
                cache_capacity=cache_capacity,
                shards=lane_shards[lane],
                obs_enabled=obs_enabled,
            )
            for lane in self._lane_shards
        }
        for lane, config in configs.items():
            try:
                pickle.dumps(config)
            except Exception as exc:
                self.shutdown()
                raise ConfigurationError(
                    "process execution mode ships feed specs and workloads to "
                    f"worker processes, but lane {lane}'s payload is not "
                    f"picklable: {exc}"
                ) from exc
        self._pools = [ProcessPoolExecutor(max_workers=1) for _ in self._lane_shards]
        startups = [
            pool.submit(_lane_start, configs[lane])
            for pool, lane in zip(self._pools, sorted(self._lane_shards))
        ]
        for future in startups:
            future.result()

    @property
    def lane_of(self) -> Dict[int, int]:
        """shard index → lane index, for labelling grafted lane spans."""
        return {
            shard: lane
            for lane, shards in self._lane_shards.items()
            for shard in shards
        }

    def run_epoch(
        self, epoch: int, epoch_size: int, chain_height: int
    ) -> List[ShardEpochResult]:
        """Run one epoch on every lane concurrently; results in shard order."""
        task = ShardTask(epoch=epoch, epoch_size=epoch_size, chain_height=chain_height)
        futures = [pool.submit(_lane_epoch, task) for pool in self._pools]
        results: List[ShardEpochResult] = []
        for future in futures:
            results.extend(future.result())
        results.sort(key=lambda result: result.shard_index)
        return results

    def collect(self) -> List[FeedStateResult]:
        """Fetch every lane's final feed state (run end)."""
        futures = [pool.submit(_lane_collect) for pool in self._pools]
        results: List[FeedStateResult] = []
        for future in futures:
            results.extend(future.result())
        return results

    def shutdown(self) -> None:
        for pool in self._pools:
            pool.shutdown(wait=False, cancel_futures=True)
        self._pools = []


def apply_feed_state(
    registry: FeedRegistry,
    cache: Optional[ReadCache],
    state: FeedStateResult,
) -> None:
    """Fold a worker's final feed state into the main registry's mirror.

    After this, the main-side handle's contracts (storage slots, counters,
    call history), report, SP store contents, DO root and SP counters match
    what a serial run would have produced — which is what the equivalence
    suite inspects and what post-run analysis reads.  The mirror's control
    plane is *not* rewound to match (its state lives in the worker's decision
    algorithm); a registry that ran in process mode is done, not resumable.
    """
    handle = registry.get(state.feed_id)
    _apply_contract_state(handle.storage_manager, state.manager_attrs, state.manager_slots)
    _apply_contract_state(handle.consumer, state.consumer_attrs, state.consumer_slots)
    handle.report.__dict__.update(state.report.__dict__)
    if state.sp_store_state is not None:
        handle.system.sp_store.__dict__.update(state.sp_store_state)
    handle.data_owner.trusted_root = state.do_trusted_root
    handle.data_owner.epochs_submitted = state.do_epochs_submitted
    handle.service_provider.deliveries_sent = state.sp_deliveries_sent
    handle.service_provider.records_delivered = state.sp_records_delivered
    if cache is not None and state.cache_stats is not None:
        cache.install_shard(state.feed_id, state.cache_entries, state.cache_stats)


def settlement_buffer(result: SettlementResult) -> ExecutionBuffer:
    """The ledger-only absorb payload of a pre-executed settlement."""
    return ExecutionBuffer(ledger=ledger_from_wire(result.ledger_delta))


def drive_buffer(result: ShardEpochResult) -> ExecutionBuffer:
    """The phase-1 absorb payload of one shard's epoch result."""
    return buffer_from_wire(result.drive)
