"""Execution backends for the epoch engine: shared phase logic + process pool.

The :class:`~repro.gateway.scheduler.EpochScheduler` orchestrates epochs; this
module owns *how a shard's work actually executes*.  It has two halves:

**Shared phase logic.**  The per-shard phase bodies — driving a shard's
operations (cache front, quotas, deferral), building deliver groups, preparing
update groups, warming the cache, settling a feed's epoch accounting — are
plain functions over a :class:`ShardEnvironment` (registry + cache + queues +
telemetry + dirty-key sets).  The scheduler's serial and thread backends call
them against the fleet-wide environment on the main process; the process
backend calls the very same functions inside worker processes against
worker-local environments.  One implementation, three execution modes, which
is what makes the bit-identical guarantee a property of the code path rather
than a property of careful duplication.

**Process backend.**  CPython's GIL means the thread backend can only overlap
the hash/storage work of one interpreter; on a multicore host it never
multiplies throughput (``BENCH_hotpath.json`` records speedup ≈ 1× however
many threads run).  :class:`ProcessEngine` instead ships each shard's epoch
work to a persistent pool of long-lived worker processes:

* every worker **lane** is a single-process :class:`ProcessPoolExecutor`;
  shards are pinned to lanes (``shard_index % num_lanes``), so the worker-side
  state of a shard — its feeds' contracts on a worker-local chain, SP stores,
  control planes, cache shards, telemetry rows, workload queues — persists
  across epochs and only *per-epoch deltas* cross the process boundary;
* per epoch, a lane receives a tiny ``(epoch, epoch_size)`` order and returns
  **one contiguous wire frame** (:class:`LaneEpochEnvelope`) covering all of
  its shards' phases: each shard's driving-phase
  :class:`~repro.chain.chain.ExecutionBuffer` as a packed ledger delta plus
  unstamped events, and the shard's settlement transactions *pre-executed*
  against the worker's mirror of the shard's contracts
  (:class:`SettlementResult`: gas used, receipt outcome, emitted events,
  exact ledger delta);
* the main process merges results in **fixed shard order** — stamp and absorb
  every drive buffer at the epoch-start height, then mine one recorded block
  per shard deliver, then one per shard update
  (:meth:`~repro.chain.chain.Blockchain.mine_recorded_block`) — reproducing
  the serial merge exactly, so fingerprints, per-feed gas bills and chain
  state are bit-identical to a serial run;
* because event stamps are assigned by the *main* chain at merge time,
  workers never wait for the previous epoch's merge: the scheduler submits
  every epoch the remaining workloads already guarantee, and lanes run
  epochs back-to-back while the main process merges behind them;
* at run end the workers ship their final feed state back
  (:class:`FeedStateResult`) and the engine folds it into the main registry's
  mirrors, so post-run inspection (contract storage, roots, replica counts,
  reports, cache contents) sees exactly what a serial run would have left.

Everything that crosses a lane boundary per epoch is encoded with the compact
codec in :mod:`repro.common.wire` — varint-packed counters, feed ids / record
keys / category names interned into the lane's persistent string table (only
first occurrences cross), bulk byte payloads out-of-band, one schema-versioned
frame per lane per epoch — and metered by :class:`IpcMeter`
(``ipc_bytes_per_epoch`` / ``ipc_encode_seconds`` / ``ipc_decode_seconds``
per lane, surfaced through the obs plane and ``FleetTelemetry.ipc``).  This
file owns the *schema* (what the fields mean); ``repro.common.wire`` owns the
*format* (how primitives are packed).

Worker processes rebuild their feeds from the shipped :class:`FeedSpec`s plus
a wire-packed seed frame of workload operations and preload records (sent
once, at start), so the construction is deterministic and identical to the
main registry's own mirrors.

**Feed migration.**  Feeds are not pinned to the lane that first hosted them:
a feed's complete mirror — contract attrs and storage slots, the SP store's
records, slot layout and Merkle tree, DO root/signer state, SP counters,
control-plane and monitor state, cache shard, workload queue, dirty keys,
telemetry row — serialises into one self-contained snapshot frame
(:func:`encode_feed_snapshot`; a fresh wire channel per frame, so no lane's
persistent intern table leaks into the move) and installs into another lane
(:func:`decode_feed_snapshot` + :func:`install_feed_snapshot`).
:class:`ElasticProcessEngine` builds on those frames: lanes start *empty* and
every feed — initial placement included — arrives by snapshot install, so
admission, eviction, gas-aware re-sharding and lane spawn/retire all reduce to
the same three lane operations (install / migrate-out / teardown).  LSM-backed
SP stores migrate by closing the source lane's exclusive directory opener
before the destination lane re-opens it (single-opener enforced by
:class:`~repro.storage.lsm.LSMStore`).  The static
:class:`ProcessEngine` path — fixed fleet, round-robin plan, memory stores —
keeps its fork/wire seeding and pipelined multi-epoch orders.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import time
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Deque, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.chain.chain import ChainParameters, ExecutionBuffer, buffer_from_wire
from repro.chain.gas import (
    GasSchedule,
    LAYER_APPLICATION,
    LAYER_FEED,
    ledger_delta_wire,
    ledger_from_wire,
    ledger_to_wire,
)
from repro.chain.transaction import Transaction
from repro.ads.authenticated_kv import TOMBSTONE_LEAF
from repro.common.errors import ConfigurationError, ReproError
from repro.common.hashing import EMPTY_DIGEST
from repro.common.types import (
    EpochSummary,
    KVRecord,
    Operation,
    OperationKind,
    ReplicationState,
)
from repro.common.wire import (
    WireDecoder,
    WireEncoder,
    WireError,
    WireFrame,
    WireReader,
    WireWriter,
)
from repro.core.grub import RunReport
from repro.gateway.cache import CacheStats, ReadCache
from repro.gateway.metrics import FeedTelemetry
from repro.gateway.registry import FeedRegistry, FeedSpec
from repro.gateway.router import (
    DeliverGroup,
    UpdateGroup,
    scope_weights_for_deliver,
    scope_weights_for_update,
)
from repro.obs.tracing import Tracer
from repro.storage.lsm import LSMStore

#: Externally-owned account the gateway runtime submits batched transactions
#: from (defined here so the worker side needs no scheduler import).
GATEWAY_OPERATOR = "gateway-operator"

#: The scheduler's execution backends.
EXECUTION_MODES = ("serial", "thread", "process")


# ---------------------------------------------------------------------------
# Shared phase logic (serial, thread and process backends all run this)
# ---------------------------------------------------------------------------


@dataclass
class ShardEnvironment:
    """Everything the shard phases mutate, owned by exactly one interpreter.

    The scheduler builds one for the whole fleet (serial/thread modes); each
    worker process builds one for the feeds of its pinned shards (process
    mode).  Phases only ever touch entries for the feeds they were handed, so
    a worker's environment never needs entries for other lanes' feeds.
    """

    registry: FeedRegistry
    cache: Optional[ReadCache]
    dirty: Dict[str, set] = field(default_factory=dict)
    queues: Dict[str, Deque[Operation]] = field(default_factory=dict)
    feeds: Dict[str, FeedTelemetry] = field(default_factory=dict)


def drive_shard(
    env: ShardEnvironment,
    shard: Sequence[str],
    epoch: int,
    epoch_size: int,
) -> Tuple[ExecutionBuffer, Dict[str, EpochSummary]]:
    """Phase 1: drive every feed of one shard through its epoch slice.

    Chain side effects land in the returned isolation buffer for the ordered
    merge.  Each feed consumes from the head of its own queue — up to
    ``epoch_size`` operations, capped by ``max_ops_per_epoch``, cut short once
    ``max_gas_per_epoch`` is reached (checked after each operation against the
    feed's scoped gas in this shard's buffer).  Whatever the epoch could not
    take stays queued and is counted as deferred.

    The loop is deliberately flat: per-feed attribute lookups are hoisted out
    of the per-operation path (this is the scheduler's hottest loop), and the
    read route — cache probe, miss drive, replica memoisation — is inlined
    rather than dispatched per operation.
    """
    registry = env.registry
    chain = registry.chain
    cache = env.cache
    shard_summaries: Dict[str, EpochSummary] = {}
    with chain.isolated_execution() as buffer:
        by_scope = buffer.ledger.by_scope
        for feed_id in shard:
            handle = registry.get(feed_id)
            telemetry = env.feeds[feed_id]
            queue = env.queues[feed_id]
            spec = handle.spec
            system = handle.system
            report = handle.report
            planned = min(len(queue), epoch_size)
            take = planned
            if spec.max_ops_per_epoch is not None:
                take = min(take, spec.max_ops_per_epoch)
            summary = system.begin_epoch(epoch, take)
            shard_summaries[feed_id] = summary
            executed = 0
            gas_cap = spec.max_gas_per_epoch
            popleft = queue.popleft
            drive_op = system.drive_operation
            dirty = env.dirty[feed_id]
            replica_of = handle.storage_manager.replica_of
            for _ in range(take):
                operation = popleft()
                kind = operation.kind
                if cache is not None and kind is OperationKind.READ:
                    key = operation.key
                    if cache.get(feed_id, key) is not None:
                        # Served from the gateway's memo of verified chain
                        # state: no on-chain call, no gas, no trace entry.
                        telemetry.cache_hits += 1
                        summary.reads += 1
                        report.reads += 1
                        report.operations += 1
                    else:
                        telemetry.cache_misses += 1
                        drive_op(operation, summary, report)
                        replica = replica_of(key)
                        if replica is not None and key not in dirty:
                            # Served by a verified on-chain replica with no
                            # buffered write about to supersede it: memoise.
                            cache.put(feed_id, key, replica)
                else:
                    if kind is OperationKind.WRITE and cache is not None:
                        cache.invalidate(feed_id, operation.key)
                        dirty.add(operation.key)
                    drive_op(operation, summary, report)
                executed += 1
                if (
                    gas_cap is not None
                    and executed < take
                    # O(1) per-op: the feed's two layer buckets, not a scan
                    # of every scope in the shard buffer.
                    and by_scope.get((feed_id, LAYER_FEED), 0)
                    + by_scope.get((feed_id, LAYER_APPLICATION), 0)
                    >= gas_cap
                ):
                    break
            summary.operations = executed
            deferred = planned - executed
            if deferred:
                telemetry.deferred_ops += deferred
    return buffer, shard_summaries


def build_deliver_groups(
    registry: FeedRegistry, shard: Sequence[str]
) -> List[DeliverGroup]:
    """Phase 2 (build): drain one shard's pending requests into deliver groups
    (record lookups plus batched proof generation, no chain I/O)."""
    groups: List[DeliverGroup] = []
    for feed_id in shard:
        handle = registry.get(feed_id)
        items = handle.service_provider.drain_pending_items()
        if not items:
            continue
        groups.append(
            DeliverGroup(
                feed_id=feed_id,
                manager=handle.storage_manager.address,
                items=items,
            )
        )
    return groups


def prepare_update_groups(
    registry: FeedRegistry, shard: Sequence[str]
) -> Tuple[List[UpdateGroup], Dict[str, Dict[str, ReplicationState]]]:
    """Phase 3 (build): run one shard's control planes and ADS updates,
    returning the prepared update groups plus per-feed transitions."""
    groups: List[UpdateGroup] = []
    shard_transitions: Dict[str, Dict[str, ReplicationState]] = {}
    for feed_id in shard:
        handle = registry.get(feed_id)
        prepared = handle.data_owner.prepare_epoch_update()
        shard_transitions[feed_id] = prepared.transitions
        if not prepared.has_payload:
            continue
        assert prepared.signed_root is not None
        handle.data_owner.note_epoch_submitted()
        groups.append(
            UpdateGroup(
                feed_id=feed_id,
                manager=handle.storage_manager.address,
                entries=prepared.entries,
                digest=prepared.signed_root.root,
            )
        )
    return groups, shard_transitions


def deliver_transaction(router_address: str, groups: List[DeliverGroup]) -> Transaction:
    """The batched cross-feed deliver transaction for one shard's groups."""
    return Transaction(
        sender=GATEWAY_OPERATOR,
        contract=router_address,
        function="deliver_batch",
        args={"groups": groups},
        calldata_bytes=sum(group.calldata_bytes for group in groups),
        layer=LAYER_FEED,
        scopes=scope_weights_for_deliver(groups),
    )


def update_transaction(router_address: str, groups: List[UpdateGroup]) -> Transaction:
    """The grouped cross-feed update transaction for one shard's groups."""
    return Transaction(
        sender=GATEWAY_OPERATOR,
        contract=router_address,
        function="update_batch",
        args={"groups": groups},
        calldata_bytes=sum(group.calldata_bytes for group in groups),
        layer=LAYER_FEED,
        scopes=scope_weights_for_update(groups),
    )


def warm_cache_from_deliveries(
    env: ShardEnvironment, groups: Sequence[DeliverGroup]
) -> None:
    """Memoise records the deliver batches just verified *and* replicated.

    Once the chain has verified a delivered record's proof and stored it as a
    replica, its value is public replicated state — exactly what the cache
    serves — so it is memoised immediately instead of waiting for the first
    post-deliver read.  Keys written during the current epoch are skipped
    (their replica is about to be superseded by the pending epoch update).
    """
    cache = env.cache
    if cache is None:
        return
    for group in groups:
        dirty = env.dirty.get(group.feed_id, ())
        for item in group.items:
            if item.replicate and item.key not in dirty:
                cache.put(group.feed_id, item.key, item.value)


def settle_feed_epoch(
    env: ShardEnvironment,
    feed_id: str,
    summary: EpochSummary,
    *,
    deliveries: int,
    update_transactions: int,
    transitions: Dict[str, ReplicationState],
    gas_before: Tuple[int, int],
) -> int:
    """Phase 4 (per feed): settle epoch accounting and cache invalidation.

    Applies replication-keyed cache invalidation, clears the feed's dirty-key
    set (the epoch update has landed, replicas are fresh again), folds the
    epoch into the feed's system report and telemetry row, and returns the
    epoch's total gas (the planner's observation input).
    """
    registry = env.registry
    ledger = registry.chain.ledger
    handle = registry.get(feed_id)
    telemetry = env.feeds[feed_id]
    cache = env.cache
    if cache is not None:
        for key, state in transitions.items():
            if state is ReplicationState.NOT_REPLICATED:
                cache.invalidate(feed_id, key)
        env.dirty[feed_id].clear()
    feed_after = ledger.scope_total(feed_id, LAYER_FEED)
    app_after = ledger.scope_total(feed_id, LAYER_APPLICATION)
    handle.system.record_epoch(
        summary,
        handle.report,
        deliveries=deliveries,
        update_transactions=update_transactions,
        transitions=transitions,
        gas_feed=feed_after - gas_before[0],
        gas_application=app_after - gas_before[1],
    )
    telemetry.epochs.append(summary)
    telemetry.operations += summary.operations
    telemetry.reads += summary.reads
    telemetry.writes += summary.writes
    telemetry.gas_feed += summary.gas_feed
    telemetry.gas_application += summary.gas_application
    telemetry.replications += summary.replications
    telemetry.evictions += summary.evictions
    return summary.gas_total


# ---------------------------------------------------------------------------
# Process backend: boundary types
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LaneConfig:
    """Everything one worker process needs to rebuild its pinned shards.

    Crosses the boundary exactly once, at lane start.  The bulky, regular
    parts — every feed's workload operations and preload records — travel in
    :attr:`seed_frame`, wire-packed; only the small irregular remainder (the
    specs' configs, consumer factories and quota fields) rides on the pickled
    dataclass itself.
    """

    schedule: GasSchedule
    parameters: ChainParameters
    router_address: str
    cache_enabled: bool
    cache_capacity: Optional[int]
    #: shard index → that shard's feeds' specs (preload stripped — it travels
    #: in :attr:`seed_frame`), in shard order.
    shards: Dict[int, Tuple[FeedSpec, ...]]
    #: Wire-packed workloads + preloads for every feed of every shard, in the
    #: same sorted-shard / per-shard feed order as :attr:`shards`.
    seed_frame: WireFrame
    #: When set, the lane times per-shard phase spans (its own monotonic
    #: clock) and ships them back in :attr:`ShardEpochResult.spans`.
    obs_enabled: bool = False
    #: When set, the lane additionally measures what each epoch's results
    #: *would* have cost as a generic protocol-5 pickle
    #: (:attr:`LaneEpochEnvelope.legacy_pickle_bytes`), so the codec's
    #: reduction is a recorded before/after, not an estimate.
    ipc_profile: bool = False


@dataclass(frozen=True)
class ForkLaneConfig:
    """Lane startup order for **fork-seeded** lanes (the ``inherit`` seed mode).

    On a fork start method the worker process is a copy-on-write clone of the
    main process taken at pool startup — the fully built registry and the
    workload queues are already in its address space, bit-for-bit the state a
    dedicated mirror would have to be rebuilt into.  Shipping specs and
    workloads again (and re-running every feed's Merkle build in the worker)
    would only re-derive what the fork already copied, so this config carries
    nothing but the lane's shard→feed pinning and the runtime flags; the
    worker adopts the inherited registry via :data:`_FORK_SEED` and drives
    only its own shards against it.
    """

    #: shard index → that shard's feed ids, in shard order.
    shard_feeds: Dict[int, Tuple[str, ...]]
    cache_enabled: bool
    cache_capacity: Optional[int]
    obs_enabled: bool = False
    ipc_profile: bool = False


@dataclass(frozen=True)
class SettlementResult:
    """One settlement transaction pre-executed inside a worker.

    Carries exactly what the main chain needs to record the outcome without
    re-executing: the transaction's shape (scope weights, calldata), the
    receipt outcome, the events it emitted (in emission order, unstamped —
    the main chain assigns block numbers when it mines the recorded block),
    and the exact gas-ledger delta its execution charged.
    """

    function: str
    feed_ids: Tuple[str, ...]
    scopes: Dict[str, int]
    calldata_bytes: int
    gas_used: int
    success: bool
    error: Optional[str]
    events: Tuple[tuple, ...]
    ledger_delta: dict


@dataclass(frozen=True)
class ShardEpochResult:
    """One shard's epoch, as shipped back from its worker lane."""

    shard_index: int
    #: Phase-1 side effects (gas + unstamped request events),
    #: :meth:`ExecutionBuffer.to_wire` form; the main chain stamps the events
    #: with its own epoch-start height at merge time.
    drive: dict
    deliver: Optional[SettlementResult]
    update: Optional[SettlementResult]
    #: feed id → operations still queued after this epoch (run termination).
    remaining: Dict[str, int]
    #: feed id → the epoch's settled gas total (what
    #: :func:`settle_feed_epoch` returned on the lane) — the planner's
    #: observation input and the live request source's ``gas`` argument, so
    #: the main process feeds both exactly what a serial run would have.
    epoch_gas: Dict[str, int] = field(default_factory=dict)
    #: This shard's finished phase spans in wire form (empty when the lane
    #: runs untraced).  Durations are from the *lane's* clock; the main
    #: process grafts them into its trace tree in fixed shard order
    #: (:func:`repro.obs.tracing.reassemble_shard_spans`) and never compares
    #: their timestamps across processes.
    spans: Tuple[dict, ...] = ()


@dataclass(frozen=True)
class LaneEpochEnvelope:
    """One lane's whole epoch on the wire: a single contiguous frame.

    The frame body packs every :class:`ShardEpochResult` of the lane's shards
    (drive delta, settlements, remaining counts, spans) through the lane's
    persistent wire channel; crossing the pool boundary then costs one pickle
    of ``(bytes, tuple-of-bytes, float, int)`` instead of a recursive object
    graph.
    """

    frame: WireFrame
    #: Worker-side wall time spent encoding the frame (the IPC meter's
    #: ``ipc_encode_seconds``).
    encode_seconds: float
    #: What this epoch's results measured as a generic protocol-5 pickle —
    #: the pre-codec wire format.  0 unless :attr:`LaneConfig.ipc_profile`.
    legacy_pickle_bytes: int = 0


@dataclass(frozen=True)
class FeedStateResult:
    """A feed's final state, shipped back at run end so the main registry's
    mirrors match what a serial run would have left behind."""

    feed_id: str
    telemetry: FeedTelemetry
    report: RunReport
    manager_attrs: dict
    manager_slots: Dict[str, bytes]
    consumer_attrs: dict
    consumer_slots: Dict[str, bytes]
    sp_store_state: Optional[dict]
    do_trusted_root: bytes
    do_epochs_submitted: int
    sp_deliveries_sent: int
    sp_records_delivered: int
    cache_entries: Tuple[Tuple[str, bytes], ...]
    cache_stats: Optional[CacheStats]
    #: When set, :attr:`sp_store_state` is a delta against an *empty* store
    #: (the feed was snapshot-installed into its lane, so the lane never saw
    #: the main mirror's seed state): the main side resets its mirror's store
    #: before applying, instead of patching the seed state in place.
    store_reset: bool = False


# ---------------------------------------------------------------------------
# Process backend: the wire schema
#
# ``repro.common.wire`` defines the *format* (varints, interned strings,
# out-of-band bytes, frames); the functions here define the *schema* — the
# exact field order of everything the gateway ships across a lane boundary.
# Encoder and decoder of one channel must execute mirrored call sequences, so
# every encode function below has its decode twin directly underneath.
# ---------------------------------------------------------------------------

#: Enum members are encoded as their index in these fixed tuples (declaration
#: order is part of the wire schema; reordering requires a version bump).
_OPERATION_KINDS: Tuple[OperationKind, ...] = tuple(OperationKind)
_KIND_INDEX: Dict[OperationKind, int] = {
    kind: index for index, kind in enumerate(_OPERATION_KINDS)
}
_REPLICATION_STATES: Tuple[ReplicationState, ...] = tuple(ReplicationState)
_STATE_INDEX: Dict[ReplicationState, int] = {
    state: index for index, state in enumerate(_REPLICATION_STATES)
}


def _encode_operation(w: WireWriter, operation: Operation) -> None:
    w.uvarint(_KIND_INDEX[operation.kind])
    w.string(operation.key)
    if operation.value is None:
        w.uvarint(0)
    else:
        w.uvarint(1)
        w.bytes_(operation.value)
    w.uvarint(operation.size_bytes)
    w.uvarint(operation.scan_length)
    w.svarint(operation.sequence)


def _decode_operation(r: WireReader) -> Operation:
    kind = _OPERATION_KINDS[r.uvarint()]
    key = r.string()
    value = r.bytes_() if r.uvarint() else None
    return Operation(
        kind=kind,
        key=key,
        value=value,
        size_bytes=r.uvarint(),
        scan_length=r.uvarint(),
        sequence=r.svarint(),
    )


def _encode_record(w: WireWriter, record: KVRecord) -> None:
    w.string(record.key)
    w.bytes_(record.value)
    w.uvarint(_STATE_INDEX[record.state])
    w.uvarint(record.version)


def _decode_record(r: WireReader) -> KVRecord:
    return KVRecord(
        key=r.string(),
        value=r.bytes_(),
        state=_REPLICATION_STATES[r.uvarint()],
        version=r.uvarint(),
    )


def _encode_ledger_wire(w: WireWriter, payload: dict) -> None:
    """Pack a :func:`ledger_to_wire` / :func:`ledger_delta_wire` dict.

    Category, layer and scope names intern into the channel's string table,
    so a steady-state epoch's ledger delta is almost entirely varints.
    """
    w.svarint(payload["total"])
    w.svarint(payload["refunded"])
    by_category = payload["by_category"]
    w.uvarint(len(by_category))
    for category, amount in by_category.items():
        w.string(category)
        w.svarint(amount)
    by_layer = payload["by_layer"]
    w.uvarint(len(by_layer))
    for layer, amount in by_layer.items():
        w.string(layer)
        w.svarint(amount)
    by_scope = payload["by_scope"]
    w.uvarint(len(by_scope))
    for scope, layer, amount in by_scope:
        w.string(scope)
        w.string(layer)
        w.svarint(amount)


def _decode_ledger_wire(r: WireReader) -> dict:
    total = r.svarint()
    refunded = r.svarint()
    by_category = {r.string(): r.svarint() for _ in range(r.uvarint())}
    by_layer = {r.string(): r.svarint() for _ in range(r.uvarint())}
    by_scope = [
        (r.string(), r.string(), r.svarint()) for _ in range(r.uvarint())
    ]
    return {
        "total": total,
        "refunded": refunded,
        "by_category": by_category,
        "by_layer": by_layer,
        "by_scope": by_scope,
    }


def _encode_events(w: WireWriter, events: Sequence[tuple]) -> None:
    """Unstamped events: ``(contract, name, payload)`` triples.  Contract
    addresses and event names repeat every epoch — both intern."""
    w.uvarint(len(events))
    string = w.string
    value = w.value
    for contract, name, payload in events:
        string(contract)
        string(name)
        value(payload)


def _decode_events(r: WireReader) -> List[tuple]:
    string = r.string
    value = r.value
    return [(string(), string(), value()) for _ in range(r.uvarint())]


def _encode_settlement(w: WireWriter, result: Optional[SettlementResult]) -> None:
    if result is None:
        w.uvarint(0)
        return
    w.uvarint(1)
    w.string(result.function)
    w.uvarint(len(result.feed_ids))
    for feed_id in result.feed_ids:
        w.string(feed_id)
    w.uvarint(len(result.scopes))
    for scope, weight in result.scopes.items():
        w.string(scope)
        w.svarint(weight)
    w.uvarint(result.calldata_bytes)
    w.uvarint(result.gas_used)
    w.uvarint(1 if result.success else 0)
    if result.error is None:
        w.uvarint(0)
    else:
        w.uvarint(1)
        w.string(result.error)
    _encode_events(w, result.events)
    _encode_ledger_wire(w, result.ledger_delta)


def _decode_settlement(r: WireReader) -> Optional[SettlementResult]:
    if not r.uvarint():
        return None
    return SettlementResult(
        function=r.string(),
        feed_ids=tuple(r.string() for _ in range(r.uvarint())),
        scopes={r.string(): r.svarint() for _ in range(r.uvarint())},
        calldata_bytes=r.uvarint(),
        gas_used=r.uvarint(),
        success=bool(r.uvarint()),
        error=r.string() if r.uvarint() else None,
        events=tuple(_decode_events(r)),
        ledger_delta=_decode_ledger_wire(r),
    )


def encode_lane_seed(
    encoder: WireEncoder,
    seed_items: Sequence[Tuple[int, Sequence[Tuple[Sequence[Operation], Optional[Sequence[KVRecord]]]]]],
) -> WireFrame:
    """Pack one lane's complete startup payload: per shard (sorted order),
    per feed, the workload operations and the optional preload records."""
    w = encoder.writer()
    w.uvarint(len(seed_items))
    for shard_index, feeds in seed_items:
        w.uvarint(shard_index)
        w.uvarint(len(feeds))
        for operations, preload in feeds:
            w.uvarint(len(operations))
            for operation in operations:
                _encode_operation(w, operation)
            if preload is None:
                w.uvarint(0)
            else:
                w.uvarint(len(preload) + 1)
                for record in preload:
                    _encode_record(w, record)
    return w.frame()


def decode_lane_seed(
    decoder: WireDecoder, frame: WireFrame
) -> Dict[int, List[Tuple[List[Operation], Optional[List[KVRecord]]]]]:
    """Decode :func:`encode_lane_seed`: shard index → per-feed
    ``(operations, preload)`` in the shard's feed order."""
    r = decoder.reader(frame)
    shards: Dict[int, List[Tuple[List[Operation], Optional[List[KVRecord]]]]] = {}
    for _ in range(r.uvarint()):
        shard_index = r.uvarint()
        feeds: List[Tuple[List[Operation], Optional[List[KVRecord]]]] = []
        for _ in range(r.uvarint()):
            operations = [_decode_operation(r) for _ in range(r.uvarint())]
            marker = r.uvarint()
            preload = (
                None
                if marker == 0
                else [_decode_record(r) for _ in range(marker - 1)]
            )
            feeds.append((operations, preload))
        shards[shard_index] = feeds
    return shards


def encode_lane_arrivals(
    encoder: WireEncoder, arrivals: Sequence[Tuple[str, Sequence[Operation]]]
) -> WireFrame:
    """Pack one epoch boundary's live arrivals for one lane: per feed (in
    the caller's sorted order), the operations joining the tail of that
    feed's worker-local queue.

    Arrivals frames use a fresh channel per boundary, like the seed frame:
    they flow main → worker, opposite the lane's persistent epoch-result
    channel, and a boundary's batch is small enough that cross-boundary
    interning would buy nothing.
    """
    w = encoder.writer()
    w.uvarint(len(arrivals))
    for feed_id, operations in arrivals:
        w.string(feed_id)
        w.uvarint(len(operations))
        for operation in operations:
            _encode_operation(w, operation)
    return w.frame()


def decode_lane_arrivals(
    decoder: WireDecoder, frame: WireFrame
) -> List[Tuple[str, List[Operation]]]:
    """Decode :func:`encode_lane_arrivals`: ``(feed_id, operations)`` pairs
    in encoded (sorted-by-feed) order."""
    r = decoder.reader(frame)
    arrivals: List[Tuple[str, List[Operation]]] = []
    for _ in range(r.uvarint()):
        feed_id = r.string()
        operations = [_decode_operation(r) for _ in range(r.uvarint())]
        arrivals.append((feed_id, operations))
    return arrivals


def encode_lane_epoch(
    encoder: WireEncoder, epoch: int, results: Sequence[ShardEpochResult]
) -> WireFrame:
    """Pack one lane's whole epoch — every pinned shard's result — into one
    contiguous frame on the lane's persistent channel."""
    w = encoder.writer()
    w.uvarint(epoch)
    w.uvarint(len(results))
    for result in results:
        w.uvarint(result.shard_index)
        _encode_ledger_wire(w, result.drive["ledger"])
        _encode_events(w, result.drive["events"])
        _encode_settlement(w, result.deliver)
        _encode_settlement(w, result.update)
        w.uvarint(len(result.remaining))
        for feed_id, count in result.remaining.items():
            w.string(feed_id)
            w.uvarint(count)
        w.uvarint(len(result.epoch_gas))
        for feed_id, gas in result.epoch_gas.items():
            w.string(feed_id)
            w.uvarint(gas)
        w.uvarint(len(result.spans))
        for span in result.spans:
            w.value(span)
    return w.frame()


def decode_lane_epoch(
    decoder: WireDecoder, frame: WireFrame
) -> Tuple[int, List[ShardEpochResult]]:
    """Decode :func:`encode_lane_epoch` back into the epoch index and the
    lane's :class:`ShardEpochResult`\\ s (in the lane's shard order)."""
    r = decoder.reader(frame)
    epoch = r.uvarint()
    results: List[ShardEpochResult] = []
    for _ in range(r.uvarint()):
        shard_index = r.uvarint()
        drive = {"ledger": _decode_ledger_wire(r), "events": _decode_events(r)}
        deliver = _decode_settlement(r)
        update = _decode_settlement(r)
        remaining = {r.string(): r.uvarint() for _ in range(r.uvarint())}
        epoch_gas = {r.string(): r.uvarint() for _ in range(r.uvarint())}
        spans = tuple(r.value() for _ in range(r.uvarint()))
        results.append(
            ShardEpochResult(
                shard_index=shard_index,
                drive=drive,
                deliver=deliver,
                update=update,
                remaining=remaining,
                epoch_gas=epoch_gas,
                spans=spans,
            )
        )
    return epoch, results


# ---------------------------------------------------------------------------
# Feed snapshot frames (migration / admission / eviction across lanes)
# ---------------------------------------------------------------------------


@dataclass
class FeedSnapshot:
    """One feed's complete mirror, decoded from a snapshot frame.

    Everything a lane needs to continue the feed exactly where another
    interpreter left it: the workload queue and dirty keys, the telemetry row
    and run report, both contracts' attrs and storage slots, the SP store's
    full contents (records in dict order, slot layout, free-slot stack,
    Merkle leaves + interior levels), the DO's trusted root and signer state,
    the SP's counters and pending requests, the control plane (algorithm,
    actuator, monitor counters and history-cursor position), and the feed's
    cache shard.  The SP's ``_log_cursor`` deliberately does *not* travel —
    it indexes the source lane's private event log; the installer re-bases it
    against the destination chain.
    """

    feed_id: str
    queue: List[Operation]
    dirty: set
    telemetry: FeedTelemetry
    report: RunReport
    manager_attrs: dict
    manager_slots: Dict[str, bytes]
    consumer_attrs: dict
    consumer_slots: Dict[str, bytes]
    #: ``(key, value, state_index, version, slot)`` in the source store's
    #: dict order (insertion order is reproduced on install, so a later
    #: run-end delta computes identically to a never-migrated run).
    records: List[Tuple[str, bytes, int, int, int]]
    slot_count: int
    free_slots: List[int]
    #: Every Merkle leaf, 32 bytes each — including :data:`TOMBSTONE_LEAF`
    #: at freed slots, which a changed-records delta could not reconstruct.
    leaves_blob: bytes
    upper_blob: bytes
    do_trusted_root: bytes
    do_epochs_submitted: int
    signer_secret: bytes
    signer_epoch: int
    sp_deliveries_sent: int
    sp_records_delivered: int
    sp_pending: list
    cp_epochs_run: int
    cp_algorithm: object
    cp_actuator: object
    monitor_observed_reads: int
    monitor_observed_writes: int
    #: Absolute call-history index of the monitor's cursor.  Its coordinate
    #: space is the storage manager's call history, which travels with the
    #: contract attrs — so the position stays valid across the move.
    monitor_cursor_position: int
    monitor_local_writes: list
    cache_entries: List[Tuple[str, bytes]]
    cache_stats: Optional[CacheStats]


def encode_feed_snapshot(
    encoder: WireEncoder,
    handle,
    *,
    queue: Sequence[Operation],
    dirty: set,
    telemetry: FeedTelemetry,
    cache_entries: Sequence[Tuple[str, bytes]] = (),
    cache_stats: Optional[CacheStats] = None,
) -> WireFrame:
    """Serialise one feed's mirror out of its current interpreter.

    Snapshot frames always use a **fresh** channel (pass a new
    :class:`WireEncoder`): the frame moves between interpreters whose
    persistent epoch channels have diverged intern tables, so it must be
    self-contained.  Regular bulk state — store records, Merkle digests —
    packs compactly; the irregular object graphs (telemetry, report,
    contract attrs, control-plane algorithm/actuator) ride the codec's
    tagged-value fallback.
    """
    system = handle.system
    store = system.sp_store
    data_owner = handle.data_owner
    provider = handle.service_provider
    control_plane = data_owner.control_plane
    monitor = control_plane.monitor
    w = encoder.writer()
    w.string(handle.feed_id)
    w.uvarint(len(queue))
    for operation in queue:
        _encode_operation(w, operation)
    w.uvarint(len(dirty))
    for key in sorted(dirty):
        w.string(key)
    w.value(telemetry)
    w.value(handle.report)
    manager_attrs, manager_slots = _contract_state(handle.storage_manager)
    consumer_attrs, consumer_slots = _contract_state(handle.consumer)
    w.value(manager_attrs)
    w.value(manager_slots)
    w.value(consumer_attrs)
    w.value(consumer_slots)
    records = store._records
    slot_of = store._slot_of
    w.uvarint(len(records))
    for key, record in records.items():
        w.string(key)
        w.bytes_(record.value)
        w.uvarint(_STATE_INDEX[record.state])
        w.uvarint(record.version)
        w.uvarint(slot_of[key])
    w.uvarint(len(store._slots))
    w.uvarint(len(store._free_slots))
    for slot in store._free_slots:
        w.uvarint(slot)
    tree = store._tree
    w.bytes_(b"".join(tree._leaves))
    w.bytes_(b"".join(digest for level in tree._levels[1:] for digest in level))
    w.bytes_(data_owner.trusted_root)
    w.uvarint(data_owner.epochs_submitted)
    w.bytes_(data_owner.signer._secret)
    w.uvarint(data_owner.signer._epoch)
    w.uvarint(provider.deliveries_sent)
    w.uvarint(provider.records_delivered)
    w.value(list(provider.pending))
    w.uvarint(control_plane.epochs_run)
    w.value(control_plane.algorithm)
    w.value(control_plane.actuator)
    w.uvarint(monitor.observed_reads)
    w.uvarint(monitor.observed_writes)
    w.uvarint(monitor._cursor.position)
    w.value(list(monitor._local_writes))
    w.uvarint(len(cache_entries))
    for key, value in cache_entries:
        w.string(key)
        w.bytes_(value)
    if cache_stats is None:
        w.uvarint(0)
    else:
        w.uvarint(1)
        w.value(cache_stats)
    return w.frame()


def decode_feed_snapshot(decoder: WireDecoder, frame: WireFrame) -> FeedSnapshot:
    """Decode :func:`encode_feed_snapshot` (mirrored field order; pass a
    fresh :class:`WireDecoder` — snapshot channels are one frame long)."""
    r = decoder.reader(frame)
    feed_id = r.string()
    queue = [_decode_operation(r) for _ in range(r.uvarint())]
    dirty = {r.string() for _ in range(r.uvarint())}
    telemetry = r.value()
    report = r.value()
    manager_attrs = r.value()
    manager_slots = r.value()
    consumer_attrs = r.value()
    consumer_slots = r.value()
    records = [
        (r.string(), r.bytes_(), r.uvarint(), r.uvarint(), r.uvarint())
        for _ in range(r.uvarint())
    ]
    slot_count = r.uvarint()
    free_slots = [r.uvarint() for _ in range(r.uvarint())]
    leaves_blob = r.bytes_()
    upper_blob = r.bytes_()
    return FeedSnapshot(
        feed_id=feed_id,
        queue=queue,
        dirty=dirty,
        telemetry=telemetry,
        report=report,
        manager_attrs=manager_attrs,
        manager_slots=manager_slots,
        consumer_attrs=consumer_attrs,
        consumer_slots=consumer_slots,
        records=records,
        slot_count=slot_count,
        free_slots=free_slots,
        leaves_blob=leaves_blob,
        upper_blob=upper_blob,
        do_trusted_root=r.bytes_(),
        do_epochs_submitted=r.uvarint(),
        signer_secret=r.bytes_(),
        signer_epoch=r.uvarint(),
        sp_deliveries_sent=r.uvarint(),
        sp_records_delivered=r.uvarint(),
        sp_pending=r.value(),
        cp_epochs_run=r.uvarint(),
        cp_algorithm=r.value(),
        cp_actuator=r.value(),
        monitor_observed_reads=r.uvarint(),
        monitor_observed_writes=r.uvarint(),
        monitor_cursor_position=r.uvarint(),
        monitor_local_writes=r.value(),
        cache_entries=[(r.string(), r.bytes_()) for _ in range(r.uvarint())],
        cache_stats=r.value() if r.uvarint() else None,
    )


def _rebuild_tree_levels(leaves: List[bytes], upper: bytes) -> List[List[bytes]]:
    """Reassemble a Merkle tree's levels from its leaves and the shipped
    interior blob (32 bytes per node, root last)."""
    size = 1
    while size < max(1, len(leaves)):
        size *= 2
    level0 = list(leaves)
    level0.extend([EMPTY_DIGEST] * (size - len(level0)))
    levels = [level0]
    blob = memoryview(upper)
    offset = 0
    width = size // 2
    while width >= 1:
        levels.append(
            [
                bytes(blob[offset + index * 32 : offset + index * 32 + 32])
                for index in range(width)
            ]
        )
        offset += width * 32
        width //= 2
    return levels


def install_feed_snapshot(handle, snapshot: FeedSnapshot) -> None:
    """Install a decoded snapshot into a freshly created feed handle.

    The handle must come from ``create_feed`` with the feed's preload
    stripped (the preload's records travel inside the snapshot's store
    contents).  Contract state, store, DO, SP and control plane are rebuilt
    in place; the caller wires the environment side (queue, dirty set,
    telemetry row, cache shard).
    """
    if handle.feed_id != snapshot.feed_id:
        raise WireError(
            f"snapshot frame is for feed {snapshot.feed_id!r}, but the "
            f"destination handle hosts {handle.feed_id!r}"
        )
    _apply_contract_state(handle.storage_manager, snapshot.manager_attrs, snapshot.manager_slots)
    _apply_contract_state(handle.consumer, snapshot.consumer_attrs, snapshot.consumer_slots)
    handle.report.__dict__.update(snapshot.report.__dict__)
    store = handle.system.sp_store
    records: Dict[str, KVRecord] = {}
    slot_of: Dict[str, int] = {}
    slots: List[Optional[str]] = [None] * snapshot.slot_count
    replicated = set()
    backing = store.backing
    for key, value, state_index, version, slot in snapshot.records:
        record = KVRecord(
            key=key,
            value=value,
            state=_REPLICATION_STATES[state_index],
            version=version,
        )
        records[key] = record
        slot_of[key] = slot
        slots[slot] = key
        if record.state is ReplicationState.REPLICATED:
            replicated.add(key)
        backing.put(record.prefixed_key, record.value)
    store._records = records
    store._slot_of = slot_of
    store._slots = slots
    store._free_slots = list(snapshot.free_slots)
    store._sorted_keys = sorted(records)
    store._replicated_keys = replicated
    blob = snapshot.leaves_blob
    leaves = [bytes(blob[index : index + 32]) for index in range(0, len(blob), 32)]
    tree = store._tree
    tree._leaves = leaves
    tree._levels = _rebuild_tree_levels(leaves, snapshot.upper_blob)
    data_owner = handle.data_owner
    data_owner.trusted_root = snapshot.do_trusted_root
    data_owner.epochs_submitted = snapshot.do_epochs_submitted
    data_owner.signer._secret = snapshot.signer_secret
    data_owner.signer._epoch = snapshot.signer_epoch
    data_owner._write_buffer = []
    provider = handle.service_provider
    provider.deliveries_sent = snapshot.sp_deliveries_sent
    provider.records_delivered = snapshot.sp_records_delivered
    provider.pending = list(snapshot.sp_pending)
    # The source lane's log cursor indexes *its* chain; re-base against the
    # destination chain so a later watchdog-less poll never replays history.
    provider._log_cursor = len(handle.system.chain.event_log)
    # Mutate the control plane *in place*: the SP's ``decision_lookup``
    # binding (wired at construction) must keep pointing at this object.
    control_plane = data_owner.control_plane
    control_plane.epochs_run = snapshot.cp_epochs_run
    control_plane.algorithm = snapshot.cp_algorithm
    control_plane.actuator = snapshot.cp_actuator
    monitor = control_plane.monitor
    monitor.observed_reads = snapshot.monitor_observed_reads
    monitor.observed_writes = snapshot.monitor_observed_writes
    monitor._local_writes = list(snapshot.monitor_local_writes)
    monitor._read_ops = {}
    # The cursor itself is destination-local (a weak ref held by the manager
    # we just rebuilt); only its position crosses.
    monitor._cursor.position = snapshot.monitor_cursor_position


# ---------------------------------------------------------------------------
# Process backend: IPC metering
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class IpcSample:
    """One lane's IPC cost for one epoch (the obs histograms' unit)."""

    lane: int
    epoch: int
    #: Frame body plus out-of-band blobs, in bytes.
    wire_bytes: int
    #: Worker-side encode wall time.
    encode_seconds: float
    #: Main-side decode wall time.
    decode_seconds: float
    #: Same results as a generic protocol-5 pickle (0 unless profiling).
    legacy_pickle_bytes: int = 0


class IpcMeter:
    """Per-lane IPC totals for a process-mode run.

    Always on — recording costs a handful of adds per lane epoch — so every
    process run can report its boundary traffic, not just profiled ones.
    """

    def __init__(self) -> None:
        self.epochs = 0
        self.lanes: Dict[int, Dict[str, float]] = {}
        #: Cross-lane feed moves (source snapshot → destination install).
        self.migrations = 0
        self.migration_bytes = 0
        #: Main→lane snapshot installs (initial elastic placement and
        #: admissions — every elastic feed arrives by one of these).
        self.installs = 0
        self.install_bytes = 0
        #: Lane pool elasticity events (spawned / drained-and-retired lanes).
        self.lane_spawns = 0
        self.lane_retirements = 0

    def record_migration(self, nbytes: int) -> None:
        self.migrations += 1
        self.migration_bytes += nbytes

    def record_install(self, nbytes: int) -> None:
        self.installs += 1
        self.install_bytes += nbytes

    def record(self, samples: Sequence[IpcSample]) -> None:
        self.epochs += 1
        for sample in samples:
            row = self.lanes.setdefault(
                sample.lane,
                {
                    "epochs": 0,
                    "wire_bytes": 0,
                    "encode_seconds": 0.0,
                    "decode_seconds": 0.0,
                    "legacy_pickle_bytes": 0,
                },
            )
            row["epochs"] += 1
            row["wire_bytes"] += sample.wire_bytes
            row["encode_seconds"] += sample.encode_seconds
            row["decode_seconds"] += sample.decode_seconds
            row["legacy_pickle_bytes"] += sample.legacy_pickle_bytes

    def summary(self) -> dict:
        """Plain-data totals (the shape ``FleetTelemetry.ipc`` carries and the
        benchmark records): fleet-wide bytes/epoch, encode/decode seconds,
        per-lane rows, and — when profiled — the legacy-pickle comparison."""
        wire_total = int(sum(row["wire_bytes"] for row in self.lanes.values()))
        legacy_total = int(
            sum(row["legacy_pickle_bytes"] for row in self.lanes.values())
        )
        out: dict = {
            "epochs": self.epochs,
            "wire_bytes_total": wire_total,
            "bytes_per_epoch": wire_total / self.epochs if self.epochs else 0.0,
            "encode_seconds": sum(row["encode_seconds"] for row in self.lanes.values()),
            "decode_seconds": sum(row["decode_seconds"] for row in self.lanes.values()),
            "lanes": {
                str(lane): dict(self.lanes[lane]) for lane in sorted(self.lanes)
            },
            "migrations_total": self.migrations,
            "migration_bytes_total": self.migration_bytes,
            "migration_bytes_per_epoch": (
                self.migration_bytes / self.epochs if self.epochs else 0.0
            ),
            "installs_total": self.installs,
            "install_bytes_total": self.install_bytes,
            "lane_spawns_total": self.lane_spawns,
            "lane_retirements_total": self.lane_retirements,
        }
        if legacy_total:
            out["legacy_pickle_bytes_total"] = legacy_total
            out["legacy_bytes_per_epoch"] = (
                legacy_total / self.epochs if self.epochs else 0.0
            )
            out["reduction_vs_pickle"] = 1.0 - wire_total / legacy_total
        return out


# ---------------------------------------------------------------------------
# Process backend: the worker side (runs inside each lane process)
# ---------------------------------------------------------------------------


class _LaneWorker:
    """A worker process's resident runtime: full mirrors of its shards' feeds.

    Built once per lane from the shipped :class:`LaneConfig`; lives for the
    whole run.  Every epoch it executes the complete epoch for each of its
    shards — drive, watchdog poll, deliver settlement, cache warm-up, update
    settlement, per-feed accounting — against its *local* chain, in the same
    per-feed order a serial run uses, and ships back only the deltas the main
    chain must record, as one wire frame per epoch on the lane's persistent
    channel.

    The local chain's heights are private bookkeeping: drive events cross
    unstamped (the main chain stamps them at merge time) and settlement
    events are stamped by ``mine_recorded_block`` on the main side, so the
    worker neither tracks nor pads toward the main chain's height — which is
    what allows it to run epochs ahead of the main process's merge.
    """

    def __init__(self, config: Union[LaneConfig, ForkLaneConfig]) -> None:
        #: Lane-local tracer (own process, own clock).  It only ever creates
        #: detached spans; the finished spans ship back as wire dicts and the
        #: main process owns the tree they end up in.
        self.tracer = Tracer(enabled=config.obs_enabled)
        self.ipc_profile = config.ipc_profile
        #: The lane's epoch-result channel (worker → main); persistent, so
        #: feed ids and keys intern once for the whole run.
        self.encoder = WireEncoder()
        cache = ReadCache(capacity=config.cache_capacity) if config.cache_enabled else None
        self.shards: List[Tuple[int, List[str]]] = []
        #: Feeds that arrived via :meth:`install_feed` — their run-end store
        #: state ships as a full-from-empty delta (``store_reset``).
        self._installed: set = set()
        if isinstance(config, ForkLaneConfig):
            seed = _FORK_SEED
            if seed is None:
                raise ConfigurationError(
                    "fork-seeded lane started without an inherited seed — "
                    "the pool's start method is not 'fork'; use the 'wire' "
                    "seed mode instead"
                )
            registry, queues = seed
            #: The forked copy of the main registry: every feed's contracts,
            #: stores and control planes exactly as the main process built
            #: them, for free via copy-on-write.  The lane only ever drives
            #: its own shards against it; the chain's obs hook is severed
            #: (metrics belong to the main process, and worker-side mining
            #: must not pay for them).
            self.registry = registry
            self.registry.chain.obs = None
            self.env = ShardEnvironment(registry=self.registry, cache=cache)
            for shard_index in sorted(config.shard_feeds):
                feed_ids = list(config.shard_feeds[shard_index])
                for feed_id in feed_ids:
                    self.env.queues[feed_id] = queues[feed_id]
                    self.env.dirty[feed_id] = set()
                    self.env.feeds[feed_id] = FeedTelemetry(feed_id=feed_id)
                    if cache is not None:
                        cache.ensure_shard(feed_id)
                self.shards.append((shard_index, feed_ids))
            self._snapshot_store_baselines()
            return
        self.registry = FeedRegistry(
            schedule=config.schedule,
            parameters=config.parameters,
            router_address=config.router_address,
        )
        self.env = ShardEnvironment(registry=self.registry, cache=cache)
        seeds = decode_lane_seed(WireDecoder(), config.seed_frame)
        for shard_index in sorted(config.shards):
            specs = config.shards[shard_index]
            shard_seeds = seeds[shard_index]
            if len(shard_seeds) != len(specs):
                raise WireError(
                    f"lane seed frame carries {len(shard_seeds)} feeds for "
                    f"shard {shard_index}, config names {len(specs)}"
                )
            feed_ids: List[str] = []
            for spec, (operations, preload) in zip(specs, shard_seeds):
                self.registry.create_feed(
                    replace(spec, preload=preload) if preload is not None else spec
                )
                feed_id = spec.feed_id
                feed_ids.append(feed_id)
                self.env.queues[feed_id] = deque(operations)
                self.env.dirty[feed_id] = set()
                self.env.feeds[feed_id] = FeedTelemetry(feed_id=feed_id)
                if cache is not None:
                    cache.ensure_shard(feed_id)
            self.shards.append((shard_index, feed_ids))
        self._snapshot_store_baselines()

    def _snapshot_store_baselines(self) -> None:
        """Record each feed's SP-store state at seed time.

        Both seed modes leave the worker's stores identical to the main
        registry's (fork copies them; wire rebuilds them from the same
        preloads), so at run end :meth:`_pack_store` only needs to ship what
        *diverged* from this snapshot — the main side patches its own copy.
        """
        self._store_baseline: Dict[str, tuple] = {}
        for _, shard in self.shards:
            for feed_id in shard:
                store = self.registry.get(feed_id).system.sp_store
                self._store_baseline[feed_id] = (
                    {
                        key: (record.version, record.state, record.value)
                        for key, record in store._records.items()
                    },
                    len(store._slots),
                    list(store._free_slots),
                )

    # -- one epoch -----------------------------------------------------------

    def ingest(self, frame: WireFrame) -> None:
        """Append one epoch boundary's live arrivals to this lane's queues.

        Called (via :func:`_lane_live_epoch`) immediately before the epoch
        the arrivals join: the scheduler ships each boundary's arrivals with
        the epoch order itself, so by drive time the worker-local queues
        hold exactly what the serial path's ``_ingest`` would have appended
        at the same boundary.
        """
        for feed_id, operations in decode_lane_arrivals(WireDecoder(), frame):
            queue = self.env.queues.get(feed_id)
            if queue is None:
                raise WireError(
                    f"arrivals frame names feed {feed_id!r}, which this lane "
                    "does not host — the engine's feed→lane split is broken"
                )
            queue.extend(operations)

    # -- elastic lane operations (migration / admission / eviction) ----------

    def set_assignment(self, shards: Sequence[Tuple[int, Sequence[str]]]) -> None:
        """Adopt this epoch's shard→feed assignment (elastic mode re-plans
        every epoch, so the pinning is per-order, not per-run)."""
        for _, feed_ids in shards:
            for feed_id in feed_ids:
                if feed_id not in self.env.queues:
                    raise WireError(
                        f"epoch assignment names feed {feed_id!r}, which this "
                        "lane does not host — the engine's migration "
                        "bookkeeping is broken"
                    )
        self.shards = [(index, list(feed_ids)) for index, feed_ids in shards]

    def install_feed(self, spec: FeedSpec, frame: WireFrame) -> None:
        """Create the feed from ``spec`` (preload stripped) and restore its
        state from a snapshot frame (fresh decode channel per frame)."""
        snapshot = decode_feed_snapshot(WireDecoder(), frame)
        if spec.feed_id != snapshot.feed_id:
            raise WireError(
                f"install order pairs spec {spec.feed_id!r} with a snapshot "
                f"of {snapshot.feed_id!r}"
            )
        handle = self.registry.create_feed(spec)
        install_feed_snapshot(handle, snapshot)
        feed_id = snapshot.feed_id
        self.env.queues[feed_id] = deque(snapshot.queue)
        self.env.dirty[feed_id] = set(snapshot.dirty)
        self.env.feeds[feed_id] = snapshot.telemetry
        cache = self.env.cache
        if cache is not None:
            cache.ensure_shard(feed_id)
            if snapshot.cache_stats is not None:
                cache.install_shard(
                    feed_id, snapshot.cache_entries, snapshot.cache_stats
                )
        # Every installed feed's store baseline is *empty*: the lane never
        # saw the main mirror's seed state, so the run-end delta ships the
        # whole store and the main side resets before applying.
        self._store_baseline[feed_id] = ({}, 0, [])
        self._installed.add(feed_id)

    def migrate_out(self, feed_id: str) -> WireFrame:
        """Snapshot the feed, release its resources, and return the frame.

        Closes an LSM-backed store's directory *before* returning, so by the
        time the destination lane's install order runs, the single-opener
        lock is free.
        """
        handle = self.registry.get(feed_id)
        cache = self.env.cache
        if cache is not None:
            shard_obj = cache._shards.get(feed_id)
            entries = tuple(shard_obj.entries.items()) if shard_obj else ()
            stats = shard_obj.stats if shard_obj else CacheStats()
        else:
            entries, stats = (), None
        frame = encode_feed_snapshot(
            WireEncoder(),
            handle,
            queue=self.env.queues[feed_id],
            dirty=self.env.dirty[feed_id],
            telemetry=self.env.feeds[feed_id],
            cache_entries=entries,
            cache_stats=stats,
        )
        backing = handle.system.sp_store.backing
        if isinstance(backing, LSMStore):
            backing.close()
        self.registry.remove_feed(feed_id)
        del self.env.queues[feed_id]
        del self.env.dirty[feed_id]
        del self.env.feeds[feed_id]
        if cache is not None:
            cache.invalidate_feed(feed_id)
        self._store_baseline.pop(feed_id, None)
        self._installed.discard(feed_id)
        self.shards = [
            (index, [fid for fid in feed_ids if fid != feed_id])
            for index, feed_ids in self.shards
        ]
        return frame

    def teardown_feed(self, feed_id: str, epoch: int) -> FeedTelemetry:
        """Evict the feed from this lane, returning its final telemetry row.

        Mirrors the serial eviction boundary: one watchdog poll routes the
        lane chain's unconsumed request events to their SPs' pending lists
        (all of this lane's feeds — other lanes route theirs at their next
        epoch's poll, with identical per-feed content), then the departing
        feed's pending requests and queued operations are cancelled and
        counted on its bill.
        """
        self.registry.watchdog.poll()
        handle = self.registry.get(feed_id)
        telemetry = self.env.feeds.pop(feed_id)
        telemetry.cancelled_requests += self.registry.watchdog.cancel_pending(handle)
        queue = self.env.queues.pop(feed_id, None)
        if queue:
            telemetry.cancelled_ops += len(queue)
        telemetry.departed_epoch = epoch
        backing = handle.system.sp_store.backing
        if isinstance(backing, LSMStore):
            backing.close()
        self.registry.remove_feed(feed_id)
        self.env.dirty.pop(feed_id, None)
        if self.env.cache is not None:
            self.env.cache.invalidate_feed(feed_id)
        self._store_baseline.pop(feed_id, None)
        self._installed.discard(feed_id)
        self.shards = [
            (index, [fid for fid in feed_ids if fid != feed_id])
            for index, feed_ids in self.shards
        ]
        return telemetry

    def run_epoch(self, epoch: int, epoch_size: int) -> LaneEpochEnvelope:
        env = self.env
        chain = self.registry.chain
        ledger = chain.ledger

        active = [feed_id for _, shard in self.shards for feed_id in shard]
        gas_before = {
            feed_id: (
                ledger.scope_total(feed_id, LAYER_FEED),
                ledger.scope_total(feed_id, LAYER_APPLICATION),
            )
            for feed_id in active
        }

        # Per-shard finished wire spans, shipped back with each shard's
        # result.  ``_span``/``_ship`` are no-ops on an untraced lane (the
        # tracer hands out None spans).
        tracer = self.tracer
        wire_spans: Dict[int, List[dict]] = {index: [] for index, _ in self.shards}

        def _ship(shard_index: int, span) -> None:
            if span is not None:
                tracer.finish(span)
                wire_spans[shard_index].append(span.to_wire())

        # Phase 1: drive every shard, wire the buffers *before* the local
        # absorb clears their event lists, then merge locally in shard order
        # (the worker's own watchdog needs the events in its log).
        drives: List[Tuple[int, List[str], ExecutionBuffer, Dict[str, EpochSummary]]] = []
        for shard_index, shard in self.shards:
            span = tracer.detached("shard", phase="drive", shard=shard_index)
            buffer, summaries = drive_shard(env, shard, epoch, epoch_size)
            _ship(shard_index, span)
            drives.append((shard_index, shard, buffer, summaries))
        drive_wires = {index: buffer.to_wire() for index, _, buffer, _ in drives}
        for _, _, buffer, _ in drives:
            chain.absorb(buffer)
        self.registry.watchdog.poll()

        # Phase 2: per shard, build deliver groups and settle them locally in
        # one batched transaction mined into its own local block.
        delivers: Dict[int, Optional[SettlementResult]] = {}
        deliveries: Dict[str, int] = {feed_id: 0 for feed_id in active}
        for shard_index, shard in self.shards:
            span = tracer.detached("shard", phase="deliver", shard=shard_index)
            groups = build_deliver_groups(self.registry, shard)
            if not groups:
                delivers[shard_index] = None
                _ship(shard_index, span)
                continue
            result = self._settle(deliver_transaction(self.registry.router.address, groups),
                                  [group.feed_id for group in groups])
            for group in groups:
                deliveries[group.feed_id] += 1
                env.feeds[group.feed_id].deliver_groups += 1
            warm_cache_from_deliveries(env, groups)
            delivers[shard_index] = result
            _ship(shard_index, span)

        # Phase 3: per shard, prepare epoch updates and settle them locally.
        updates: Dict[int, Optional[SettlementResult]] = {}
        update_counts: Dict[str, int] = {feed_id: 0 for feed_id in active}
        transitions: Dict[str, Dict[str, ReplicationState]] = {}
        for shard_index, shard in self.shards:
            span = tracer.detached("shard", phase="update", shard=shard_index)
            groups_u, shard_transitions = prepare_update_groups(self.registry, shard)
            transitions.update(shard_transitions)
            if not groups_u:
                updates[shard_index] = None
                _ship(shard_index, span)
                continue
            result = self._settle(update_transaction(self.registry.router.address, groups_u),
                                  [group.feed_id for group in groups_u])
            for group in groups_u:
                update_counts[group.feed_id] += 1
                env.feeds[group.feed_id].update_groups += 1
            updates[shard_index] = result
            _ship(shard_index, span)

        # Phase 4: per-feed epoch accounting, in shard order.
        results: List[ShardEpochResult] = []
        for shard_index, shard in self.shards:
            span = tracer.detached("shard", phase="settle", shard=shard_index)
            summaries = next(s for i, _, _, s in drives if i == shard_index)
            epoch_gas: Dict[str, int] = {}
            for feed_id in shard:
                epoch_gas[feed_id] = settle_feed_epoch(
                    env,
                    feed_id,
                    summaries[feed_id],
                    deliveries=deliveries[feed_id],
                    update_transactions=update_counts[feed_id],
                    transitions=transitions.get(feed_id, {}),
                    gas_before=gas_before[feed_id],
                )
            _ship(shard_index, span)
            results.append(
                ShardEpochResult(
                    shard_index=shard_index,
                    drive=drive_wires[shard_index],
                    deliver=delivers[shard_index],
                    update=updates[shard_index],
                    remaining={feed_id: len(env.queues[feed_id]) for feed_id in shard},
                    epoch_gas=epoch_gas,
                    spans=tuple(wire_spans[shard_index]),
                )
            )

        legacy_bytes = (
            len(pickle.dumps(results, protocol=5)) if self.ipc_profile else 0
        )
        started = time.perf_counter()
        frame = encode_lane_epoch(self.encoder, epoch, results)
        return LaneEpochEnvelope(
            frame=frame,
            encode_seconds=time.perf_counter() - started,
            legacy_pickle_bytes=legacy_bytes,
        )

    def _settle(self, transaction: Transaction, feed_ids: List[str]) -> SettlementResult:
        """Execute one settlement transaction on the local chain, capturing
        the exact ledger delta, receipt outcome and emitted events."""
        chain = self.registry.chain
        before = ledger_to_wire(chain.ledger)
        chain.submit(transaction)
        chain.mine_block()
        receipt = chain.receipt_for(transaction.txid)
        assert receipt is not None
        ledger_delta = ledger_delta_wire(before, chain.ledger)
        # Block-gas-limit overflow is *derived* accounting: the worker's local
        # mine_block recorded it from this block's gas, and the main chain's
        # mine_recorded_block re-derives it from the shipped gas_used.
        # Shipping it in the delta too would double-count it.
        ledger_delta["by_category"].pop("block_gas_limit_overflow", None)
        return SettlementResult(
            function=transaction.function,
            feed_ids=tuple(feed_ids),
            scopes=dict(transaction.scopes or {}),
            calldata_bytes=transaction.calldata_bytes,
            gas_used=receipt.gas_used,
            success=receipt.success,
            error=receipt.error,
            events=tuple(
                (event.contract, event.name, event.payload)
                for event in receipt.events
            ),
            ledger_delta=ledger_delta,
        )

    # -- run-end state shipping ----------------------------------------------

    def _pack_store(self, feed_id: str, store) -> dict:
        """The feed's SP store as a delta against the seed-time snapshot.

        Ships only the records whose ``(version, state, value)`` diverged,
        the keys that vanished, the slot-layout change (appended tail in the
        common insert-only case, the full layout after deletes), and the
        Merkle tree's current shape — changed leaves by slot plus the interior
        levels as one flat digest blob (32 bytes per node, no per-object
        framing).  Everything else the main process already holds.
        """
        base_records, base_nslots, base_free = self._store_baseline[feed_id]
        records = store._records
        slot_of = store._slot_of
        tree = store._tree
        leaves = tree._leaves
        changed = []
        for key, record in records.items():
            if base_records.get(key) != (record.version, record.state, record.value):
                slot = slot_of[key]
                changed.append(
                    (key, record.value, record.state.value, record.version,
                     slot, leaves[slot])
                )
        deleted = [key for key in base_records if key not in records]
        if not deleted and store._free_slots == base_free:
            layout: tuple = ("tail", list(store._slots[base_nslots:]))
        else:
            layout = ("full", list(store._slots), list(store._free_slots))
        return {
            "changed": changed,
            "deleted": deleted,
            "layout": layout,
            "leaf_count": len(leaves),
            "upper": b"".join(
                digest for level in tree._levels[1:] for digest in level
            ),
        }

    def collect(self) -> List[FeedStateResult]:
        results: List[FeedStateResult] = []
        cache = self.env.cache
        for _, shard in self.shards:
            for feed_id in shard:
                handle = self.registry.get(feed_id)
                manager_attrs, manager_slots = _contract_state(handle.storage_manager)
                consumer_attrs, consumer_slots = _contract_state(handle.consumer)
                sp_store_state: Optional[dict] = self._pack_store(
                    feed_id, handle.system.sp_store
                )
                # Hand an LSM directory back to the main process: it reopens
                # the feed's own (closed) backing before applying this state.
                backing = handle.system.sp_store.backing
                if isinstance(backing, LSMStore):
                    backing.close()
                if cache is not None:
                    shard_obj = cache._shards.get(feed_id)
                    entries = tuple(shard_obj.entries.items()) if shard_obj else ()
                    stats = shard_obj.stats if shard_obj else CacheStats()
                else:
                    entries, stats = (), None
                results.append(
                    FeedStateResult(
                        feed_id=feed_id,
                        telemetry=self.env.feeds[feed_id],
                        report=handle.report,
                        manager_attrs=manager_attrs,
                        manager_slots=manager_slots,
                        consumer_attrs=consumer_attrs,
                        consumer_slots=consumer_slots,
                        sp_store_state=sp_store_state,
                        do_trusted_root=handle.data_owner.trusted_root,
                        do_epochs_submitted=handle.data_owner.epochs_submitted,
                        sp_deliveries_sent=handle.service_provider.deliveries_sent,
                        sp_records_delivered=handle.service_provider.records_delivered,
                        cache_entries=entries,
                        cache_stats=stats,
                        store_reset=feed_id in self._installed,
                    )
                )
        return results


#: Contract attributes that must not cross the process boundary: the chain
#: back-reference (worker-local), the storage (shipped as slots), and the
#: storage manager's weak cursor registry (rebuilt by the main-side monitor).
_CONTRACT_ATTR_EXCLUDES = ("chain", "storage", "_history_cursors")


def _contract_state(contract) -> Tuple[dict, Dict[str, bytes]]:
    attrs = {
        key: value
        for key, value in vars(contract).items()
        if key not in _CONTRACT_ATTR_EXCLUDES
    }
    return attrs, dict(contract.storage.slots)


def _apply_contract_state(contract, attrs: dict, slots: Dict[str, bytes]) -> None:
    contract.__dict__.update(attrs)
    contract.storage.slots.clear()
    contract.storage.slots.update(slots)


#: The lane's resident worker, one per process (set by :func:`_lane_start`).
_LANE_WORKER: Optional[_LaneWorker] = None

#: Fork-seeding handoff: the parent sets this to ``(registry, queues)``
#: immediately before spawning fork-seeded lanes and clears it once they have
#: started; each lane's forked copy keeps its own private reference.  Only
#: meaningful under a ``fork`` start method — it is the parent's built state
#: that the fork duplicates into the worker for free.
_FORK_SEED: Optional[Tuple[FeedRegistry, Dict[str, Deque[Operation]]]] = None


def _lane_start(config: Union[LaneConfig, ForkLaneConfig]) -> int:
    global _LANE_WORKER
    _LANE_WORKER = _LaneWorker(config)
    return len(_LANE_WORKER.shards)


def _lane_epochs(start: int, count: int, epoch_size: int) -> List[LaneEpochEnvelope]:
    """Run ``count`` consecutive epochs back-to-back, one wire frame each.

    Epochs are ordered in batches (the scheduler submits every epoch the
    remaining workloads guarantee as one order) so the per-task pool overhead
    — argument pickling, queue wakeups, result marshalling — is paid once per
    batch instead of once per epoch."""
    assert _LANE_WORKER is not None, "lane worker not started"
    run_epoch = _LANE_WORKER.run_epoch
    return [run_epoch(epoch, epoch_size) for epoch in range(start, start + count)]


def _lane_live_epoch(
    epoch: int, epoch_size: int, arrivals_frame: Optional[WireFrame]
) -> List[LaneEpochEnvelope]:
    """Run one live epoch: ingest the boundary's arrivals (when any reached
    this lane), then drive the epoch.  Live runs are lockstep — the
    scheduler cannot submit ahead of arrivals it has not yet seen — so each
    order carries exactly one epoch."""
    assert _LANE_WORKER is not None, "lane worker not started"
    if arrivals_frame is not None:
        _LANE_WORKER.ingest(arrivals_frame)
    return [_LANE_WORKER.run_epoch(epoch, epoch_size)]


def _lane_collect() -> List[FeedStateResult]:
    assert _LANE_WORKER is not None, "lane worker not started"
    return _LANE_WORKER.collect()


def _lane_install(spec: FeedSpec, frame: WireFrame) -> None:
    """Install one feed into this lane from a snapshot frame."""
    assert _LANE_WORKER is not None, "lane worker not started"
    _LANE_WORKER.install_feed(spec, frame)


def _lane_migrate_out(feed_id: str) -> WireFrame:
    """Snapshot one feed out of this lane (release its resources)."""
    assert _LANE_WORKER is not None, "lane worker not started"
    return _LANE_WORKER.migrate_out(feed_id)


def _lane_teardown(feed_id: str, epoch: int) -> FeedTelemetry:
    """Evict one feed from this lane; returns its final telemetry row."""
    assert _LANE_WORKER is not None, "lane worker not started"
    return _LANE_WORKER.teardown_feed(feed_id, epoch)


def _lane_elastic_epoch(
    epoch: int,
    epoch_size: int,
    shards: Sequence[Tuple[int, Sequence[str]]],
    arrivals_frame: Optional[WireFrame],
) -> List[LaneEpochEnvelope]:
    """Run one elastic epoch: adopt this epoch's shard assignment, ingest
    the boundary's arrivals, then drive the epoch.  Elastic runs are
    lockstep — the next plan needs this epoch's observed gas — so each
    order carries exactly one epoch."""
    assert _LANE_WORKER is not None, "lane worker not started"
    _LANE_WORKER.set_assignment(shards)
    if arrivals_frame is not None:
        _LANE_WORKER.ingest(arrivals_frame)
    return [_LANE_WORKER.run_epoch(epoch, epoch_size)]


# ---------------------------------------------------------------------------
# Process backend: the main-process engine
# ---------------------------------------------------------------------------

#: How lanes receive their feeds at startup.  ``inherit`` adopts the main
#: process's built registry via fork copy-on-write (no re-derivation, no
#: startup shipping — but fork only); ``wire`` ships preload-stripped specs
#: plus a wire-packed seed frame and rebuilds mirrors in the worker (any
#: start method); ``auto`` picks by the platform's start method.
SEED_MODES = ("auto", "inherit", "wire")


def _resolve_seed_mode(requested: str) -> str:
    """Resolve the effective seed mode (``GRUB_PROCESS_SEED`` overrides)."""
    mode = os.environ.get("GRUB_PROCESS_SEED", requested)
    if mode not in SEED_MODES:
        raise ConfigurationError(
            f"unknown process seed mode {mode!r}; expected one of {SEED_MODES}"
        )
    if mode == "auto":
        return "inherit" if multiprocessing.get_start_method() == "fork" else "wire"
    return mode


class _PendingBatch:
    """One in-flight multi-epoch order on one lane."""

    __slots__ = ("future", "start", "count", "envelopes", "taken")

    def __init__(self, future, start: int, count: int) -> None:
        self.future = future
        self.start = start
        self.count = count
        self.envelopes: Optional[List[LaneEpochEnvelope]] = None
        self.taken = 0


class ProcessEngine:
    """Persistent multi-process execution backend for the epoch scheduler.

    One single-worker :class:`ProcessPoolExecutor` per lane keeps each lane's
    worker process alive (and its shard state resident) for the whole run;
    shards are pinned ``shard_index % num_lanes``.

    Epoch execution is **pipelined**: :meth:`submit_epoch` queues an epoch on
    every lane (each lane's single-worker pool runs its queue back-to-back),
    and :meth:`results` blocks for — and decodes — one specific epoch's
    frames.  The scheduler submits as many epochs ahead as the remaining
    workloads guarantee will run, so lanes never idle waiting for the main
    process's merge.  Because each lane's frames are produced and decoded
    strictly in epoch order, the persistent per-lane wire channels
    (:class:`~repro.common.wire.WireEncoder` / ``WireDecoder``) stay in sync
    by construction.
    """

    def __init__(
        self, num_lanes: int, *, ipc_profile: bool = False, seed_mode: str = "auto"
    ) -> None:
        if num_lanes <= 0:
            raise ConfigurationError("process backend needs at least one lane")
        self.num_lanes = num_lanes
        self.ipc_profile = ipc_profile
        self.seed_mode = _resolve_seed_mode(seed_mode)
        #: Per-lane IPC totals for the run (always metered).
        self.meter = IpcMeter()
        self._pools: List[ProcessPoolExecutor] = []
        self._lane_shards: Dict[int, List[int]] = {}
        self._lane_ids: List[int] = []
        self._feed_lane: Dict[str, int] = {}
        self._pending: List[Deque[_PendingBatch]] = []
        self._decoders: List[WireDecoder] = []

    # -- lifecycle -----------------------------------------------------------

    def start(
        self,
        registry: FeedRegistry,
        shard_plan: Sequence[Sequence[str]],
        queues: Dict[str, Deque[Operation]],
        *,
        cache_enabled: bool,
        cache_capacity: Optional[int],
        obs_enabled: bool = False,
    ) -> None:
        """Spawn the lanes and hand each its pinned shards.

        In ``inherit`` seed mode (fork platforms) the worker adopts the main
        process's built registry and workload queues via the fork's
        copy-on-write duplication — the startup order carries only the lane's
        shard→feed pinning.  In ``wire`` mode the bulky startup payload —
        every feed's operations and preload — crosses wire-packed
        (:func:`encode_lane_seed`) and the specs themselves (configs,
        factories, quotas) ride on the pickled :class:`LaneConfig`; the
        worker rebuilds dedicated mirrors from them.
        """
        lanes_used = min(self.num_lanes, max(1, len(shard_plan)))
        lane_shards: Dict[int, Dict[int, Tuple[str, ...]]] = {
            lane: {} for lane in range(lanes_used)
        }
        for shard_index, shard in enumerate(shard_plan):
            lane_shards[shard_index % lanes_used][shard_index] = tuple(shard)
        self._lane_shards = {
            lane: sorted(shards) for lane, shards in lane_shards.items() if shards
        }
        self._lane_ids = sorted(self._lane_shards)
        self._feed_lane = {
            feed_id: lane
            for lane, shards in lane_shards.items()
            for feeds in shards.values()
            for feed_id in feeds
        }
        configs: Dict[int, Union[LaneConfig, ForkLaneConfig]] = {}
        if self.seed_mode == "inherit":
            for lane in self._lane_ids:
                configs[lane] = ForkLaneConfig(
                    shard_feeds=lane_shards[lane],
                    cache_enabled=cache_enabled,
                    cache_capacity=cache_capacity,
                    obs_enabled=obs_enabled,
                    ipc_profile=self.ipc_profile,
                )
        else:
            for lane in self._lane_ids:
                shard_specs: Dict[int, Tuple[FeedSpec, ...]] = {}
                lane_seeds = []
                for shard_index in self._lane_shards[lane]:
                    specs = []
                    seeds = []
                    for feed_id in lane_shards[lane][shard_index]:
                        spec = registry.get(feed_id).spec
                        seeds.append((tuple(queues[feed_id]), spec.preload))
                        if spec.preload is not None:
                            spec = replace(spec, preload=None)
                        specs.append(spec)
                    shard_specs[shard_index] = tuple(specs)
                    lane_seeds.append((shard_index, seeds))
                configs[lane] = LaneConfig(
                    schedule=registry.schedule,
                    parameters=registry.parameters,
                    router_address=registry.router.address,
                    cache_enabled=cache_enabled,
                    cache_capacity=cache_capacity,
                    shards=shard_specs,
                    seed_frame=encode_lane_seed(WireEncoder(), lane_seeds),
                    obs_enabled=obs_enabled,
                    ipc_profile=self.ipc_profile,
                )
        self._pending = [deque() for _ in self._lane_ids]
        self._decoders = [WireDecoder() for _ in self._lane_ids]
        global _FORK_SEED
        if self.seed_mode == "inherit":
            _FORK_SEED = (registry, queues)
        try:
            # Pool workers fork at first submit, so the seed handoff above is
            # visible to every fork-seeded lane; the startup barrier below
            # guarantees all lanes have forked before the seed is cleared.
            self._pools = [ProcessPoolExecutor(max_workers=1) for _ in self._lane_ids]
            startups = [
                pool.submit(_lane_start, configs[lane])
                for pool, lane in zip(self._pools, self._lane_ids)
            ]
            for lane, future in zip(self._lane_ids, startups):
                try:
                    future.result()
                except ConfigurationError:
                    self.shutdown()
                    raise
                except Exception as exc:
                    # The dominant startup failure is an unpicklable spec
                    # payload (a consumer factory closing over live chain
                    # objects, say); surface it as the configuration error it
                    # is instead of a broken-pool traceback.
                    self.shutdown()
                    raise ConfigurationError(
                        "process execution mode hands feed specs and "
                        f"workloads to worker processes, but lane {lane} "
                        f"failed to start (unpicklable spec payload?): {exc!r}"
                    ) from exc
        finally:
            _FORK_SEED = None

    @property
    def lane_of(self) -> Dict[int, int]:
        """shard index → lane index, for labelling grafted lane spans."""
        return {
            shard: lane
            for lane, shards in self._lane_shards.items()
            for shard in shards
        }

    # -- pipelined epochs ------------------------------------------------------

    def submit_epochs(self, start: int, count: int, epoch_size: int) -> None:
        """Queue ``count`` epochs from ``start`` on every lane as one order
        (returns immediately).  Each lane's single worker executes the batch
        back-to-back — one wire frame per epoch — so submitting ahead of the
        merge keeps every lane busy and pays pool overhead once per batch."""
        for pending, pool in zip(self._pending, self._pools):
            pending.append(
                _PendingBatch(
                    pool.submit(_lane_epochs, start, count, epoch_size), start, count
                )
            )

    def submit_live_epoch(
        self,
        epoch: int,
        epoch_size: int,
        arrivals: Mapping[str, Sequence[Operation]],
    ) -> None:
        """Queue one live epoch on every lane, shipping each lane the slice
        of this boundary's arrivals destined for feeds it hosts (returns
        immediately; :meth:`results` for the epoch blocks as usual).

        Live epochs are lockstep — submitted one at a time, because an
        epoch's arrivals cannot exist before the previous epoch settled and
        its futures resolved — so every order is a one-epoch batch.  Lanes
        without arrivals still receive the order: every lane runs every
        epoch, exactly as in the batch path.
        """
        per_lane: Dict[int, List[Tuple[str, Sequence[Operation]]]] = {
            lane: [] for lane in self._lane_ids
        }
        for feed_id in sorted(arrivals):
            operations = arrivals[feed_id]
            if not operations:
                continue
            lane = self._feed_lane.get(feed_id)
            if lane is None:
                raise ConfigurationError(
                    f"live arrivals for feed {feed_id!r}, which no lane hosts"
                )
            per_lane[lane].append((feed_id, operations))
        for lane, pending, pool in zip(self._lane_ids, self._pending, self._pools):
            items = per_lane[lane]
            frame = encode_lane_arrivals(WireEncoder(), items) if items else None
            pending.append(
                _PendingBatch(
                    pool.submit(_lane_live_epoch, epoch, epoch_size, frame),
                    epoch,
                    1,
                )
            )

    def results(self, epoch: int) -> Tuple[List[ShardEpochResult], List[IpcSample]]:
        """Wait for — and decode — every lane's frame for ``epoch``.

        Must be called for epochs in submission order (the per-lane wire
        channels are stateful); returns the shard results in fixed shard
        order plus one :class:`IpcSample` per lane.
        """
        results: List[ShardEpochResult] = []
        samples: List[IpcSample] = []
        for lane, pending, decoder in zip(self._lane_ids, self._pending, self._decoders):
            batch = pending[0]
            if batch.envelopes is None:
                batch.envelopes = batch.future.result()
            if batch.start + batch.taken != epoch:
                raise WireError(
                    f"lane {lane} results requested for epoch {epoch}, but "
                    f"the next in-flight epoch is {batch.start + batch.taken}"
                )
            envelope: LaneEpochEnvelope = batch.envelopes[batch.taken]
            batch.taken += 1
            if batch.taken == batch.count:
                pending.popleft()
            started = time.perf_counter()
            frame_epoch, lane_results = decode_lane_epoch(decoder, envelope.frame)
            decode_seconds = time.perf_counter() - started
            if frame_epoch != epoch:
                raise WireError(
                    f"lane {lane} frame is for epoch {frame_epoch}, expected "
                    f"{epoch}; lane frames must be decoded in submission order"
                )
            samples.append(
                IpcSample(
                    lane=lane,
                    epoch=epoch,
                    wire_bytes=envelope.frame.nbytes,
                    encode_seconds=envelope.encode_seconds,
                    decode_seconds=decode_seconds,
                    legacy_pickle_bytes=envelope.legacy_pickle_bytes,
                )
            )
            results.extend(lane_results)
        results.sort(key=lambda result: result.shard_index)
        self.meter.record(samples)
        return results, samples

    def collect(self) -> List[FeedStateResult]:
        """Fetch every lane's final feed state (run end)."""
        futures = [pool.submit(_lane_collect) for pool in self._pools]
        results: List[FeedStateResult] = []
        for future in futures:
            results.extend(future.result())
        return results

    def shutdown(self) -> None:
        # wait=True: lanes are idle here (results already merged), and an
        # unwaited shutdown races the interpreter-exit wakeup of the pool's
        # management thread ("Exception ignored ... Bad file descriptor").
        for pool in self._pools:
            pool.shutdown(wait=True, cancel_futures=True)
        self._pools = []
        self._pending = []
        self._decoders = []


class _ElasticLane:
    """One live elastic lane: its single-worker pool, the persistent decoder
    for its epoch-result channel, and its in-flight one-epoch orders."""

    __slots__ = ("pool", "decoder", "pending")

    def __init__(self, pool: ProcessPoolExecutor) -> None:
        self.pool = pool
        self.decoder = WireDecoder()
        self.pending: Deque[_PendingBatch] = deque()


class ElasticProcessEngine:
    """Process backend with feed mobility: lanes are spawned empty and feeds
    move between them as snapshot frames.

    Where :class:`ProcessEngine` pins shards to lanes for the run and seeds
    each lane's mirrors at startup, this engine starts every lane **empty**
    and installs each feed — initial placement, admissions, and per-epoch
    re-shard moves alike — through :func:`encode_feed_snapshot` frames.  One
    mechanism covers the whole feed lifecycle:

    * ``install``: main encodes a feed's mirror and a lane adopts it;
    * ``migrate``: a source lane snapshots a feed out (closing any exclusive
      LSM directory opener) and a destination lane adopts the frame — the
      frame passes *through* the main process raw, never decoded there;
    * ``teardown``: an eviction order; the lane returns the feed's final
      telemetry row (poll + cancel accounting identical to a serial boundary);
    * ``ensure_lanes`` / ``retire_lanes``: the pool grows to the plan's lane
      count and shrinks once a drained lane hosts nothing.

    Epochs are lockstep one-epoch orders (the next plan depends on this
    epoch's observed gas), each carrying the lane's shard assignment for the
    epoch — the pinned-shard invariant of the static engine does not exist
    here.
    """

    def __init__(self, max_lanes: int, *, ipc_profile: bool = False) -> None:
        if max_lanes <= 0:
            raise ConfigurationError("process backend needs at least one lane")
        self.max_lanes = max_lanes
        self.ipc_profile = ipc_profile
        self.meter = IpcMeter()
        self._lanes: Dict[int, _ElasticLane] = {}
        self._template: Optional[LaneConfig] = None
        #: epoch → the sorted lane ids that received that epoch's order.
        self._participants: Dict[int, List[int]] = {}
        #: shard index → lane, for the *latest* submitted epoch (span labels).
        self._shard_lane: Dict[int, int] = {}

    # -- lifecycle -----------------------------------------------------------

    def start(
        self,
        registry: FeedRegistry,
        *,
        cache_enabled: bool,
        cache_capacity: Optional[int],
        obs_enabled: bool = False,
    ) -> None:
        """Capture the empty-lane template.  No lanes spawn here —
        :meth:`ensure_lanes` spawns them as the plan demands."""
        self._template = LaneConfig(
            schedule=registry.schedule,
            parameters=registry.parameters,
            router_address=registry.router.address,
            cache_enabled=cache_enabled,
            cache_capacity=cache_capacity,
            shards={},
            seed_frame=encode_lane_seed(WireEncoder(), []),
            obs_enabled=obs_enabled,
            ipc_profile=self.ipc_profile,
        )

    def ensure_lanes(self, count: int) -> List[int]:
        """Spawn empty lanes until lanes ``0..count-1`` are all live;
        returns the lane ids spawned by this call."""
        assert self._template is not None, "engine not started"
        spawned: List[int] = []
        for lane in range(count):
            if lane in self._lanes:
                continue
            pool = ProcessPoolExecutor(max_workers=1)
            try:
                pool.submit(_lane_start, self._template).result()
            except Exception:
                pool.shutdown(wait=False, cancel_futures=True)
                self.shutdown()
                raise
            self._lanes[lane] = _ElasticLane(pool)
            self.meter.lane_spawns += 1
            spawned.append(lane)
        return spawned

    def retire_lanes(self, keep: int) -> List[int]:
        """Shut down every lane with index ``>= keep``.  The caller must have
        drained them first (migrated every hosted feed away)."""
        retired = sorted(lane for lane in self._lanes if lane >= keep)
        for lane in retired:
            # wait=True: the lane is drained and idle, and an unwaited
            # shutdown races the interpreter-exit wakeup of the pool's
            # management thread.
            self._lanes.pop(lane).pool.shutdown(wait=True, cancel_futures=True)
            self.meter.lane_retirements += 1
        return retired

    # -- feed lifecycle ------------------------------------------------------

    def install(self, lane: int, spec: FeedSpec, frame: WireFrame) -> None:
        """Install a main-encoded feed snapshot into ``lane`` (blocking)."""
        if spec.preload is not None:
            spec = replace(spec, preload=None)
        self._lanes[lane].pool.submit(_lane_install, spec, frame).result()
        self.meter.record_install(frame.nbytes)

    def migrate(self, feed_id: str, source: int, destination: int, spec: FeedSpec) -> int:
        """Move one feed between lanes; returns the snapshot frame's bytes.

        Blocking and strictly ordered: the source's ``migrate_out`` resolves
        (its LSM opener closed, its mirror released) before the destination's
        install is even submitted.
        """
        frame = (
            self._lanes[source].pool.submit(_lane_migrate_out, feed_id).result()
        )
        if spec.preload is not None:
            spec = replace(spec, preload=None)
        self._lanes[destination].pool.submit(_lane_install, spec, frame).result()
        self.meter.record_migration(frame.nbytes)
        return frame.nbytes

    def teardown(self, lane: int, feed_id: str, epoch: int) -> FeedTelemetry:
        """Evict one feed from its lane; returns its final telemetry row."""
        return self._lanes[lane].pool.submit(_lane_teardown, feed_id, epoch).result()

    # -- lockstep epochs -----------------------------------------------------

    def submit_epoch(
        self,
        epoch: int,
        epoch_size: int,
        assignments: Mapping[int, Sequence[Tuple[int, Sequence[str]]]],
        arrivals_by_lane: Mapping[int, Sequence[Tuple[str, Sequence[Operation]]]],
    ) -> None:
        """Queue one epoch on every assigned lane, shipping each lane its
        ``(shard_index, feed_ids)`` list for the epoch plus its slice of the
        boundary's arrivals (returns immediately)."""
        participants = sorted(assignments)
        self._participants[epoch] = participants
        self._shard_lane = {
            shard_index: lane
            for lane in participants
            for shard_index, _ in assignments[lane]
        }
        for lane in participants:
            items = list(arrivals_by_lane.get(lane, ()))
            frame = encode_lane_arrivals(WireEncoder(), items) if items else None
            entry = self._lanes[lane]
            entry.pending.append(
                _PendingBatch(
                    entry.pool.submit(
                        _lane_elastic_epoch,
                        epoch,
                        epoch_size,
                        [
                            (shard_index, list(feed_ids))
                            for shard_index, feed_ids in assignments[lane]
                        ],
                        frame,
                    ),
                    epoch,
                    1,
                )
            )

    @property
    def lane_of(self) -> Dict[int, int]:
        """shard index → lane, for the latest submitted epoch (span labels)."""
        return dict(self._shard_lane)

    def results(self, epoch: int) -> Tuple[List[ShardEpochResult], List[IpcSample]]:
        """Wait for — and decode — every participating lane's frame for
        ``epoch``, in fixed shard order (same contract as the static
        engine's :meth:`ProcessEngine.results`)."""
        results: List[ShardEpochResult] = []
        samples: List[IpcSample] = []
        for lane in self._participants.pop(epoch):
            entry = self._lanes[lane]
            batch = entry.pending.popleft()
            envelopes = batch.future.result()
            envelope: LaneEpochEnvelope = envelopes[0]
            started = time.perf_counter()
            frame_epoch, lane_results = decode_lane_epoch(entry.decoder, envelope.frame)
            decode_seconds = time.perf_counter() - started
            if frame_epoch != epoch:
                raise WireError(
                    f"lane {lane} frame is for epoch {frame_epoch}, expected "
                    f"{epoch}; lane frames must be decoded in submission order"
                )
            samples.append(
                IpcSample(
                    lane=lane,
                    epoch=epoch,
                    wire_bytes=envelope.frame.nbytes,
                    encode_seconds=envelope.encode_seconds,
                    decode_seconds=decode_seconds,
                    legacy_pickle_bytes=envelope.legacy_pickle_bytes,
                )
            )
            results.extend(lane_results)
        results.sort(key=lambda result: result.shard_index)
        self.meter.record(samples)
        return results, samples

    def collect(self) -> List[FeedStateResult]:
        """Fetch every live lane's final feed state (run end)."""
        futures = [
            self._lanes[lane].pool.submit(_lane_collect)
            for lane in sorted(self._lanes)
        ]
        results: List[FeedStateResult] = []
        for future in futures:
            results.extend(future.result())
        return results

    def shutdown(self) -> None:
        # wait=True for the same reason as the pipelined engine's shutdown:
        # lanes are idle by now, and unwaited pools race interpreter exit.
        for entry in self._lanes.values():
            entry.pool.shutdown(wait=True, cancel_futures=True)
        self._lanes = {}
        self._participants = {}


def apply_feed_state(
    registry: FeedRegistry,
    cache: Optional[ReadCache],
    state: FeedStateResult,
) -> None:
    """Fold a worker's final feed state into the main registry's mirror.

    After this, the main-side handle's contracts (storage slots, counters,
    call history), report, SP store contents, DO root and SP counters match
    what a serial run would have produced — which is what the equivalence
    suite inspects and what post-run analysis reads.  The mirror's control
    plane is *not* rewound to match (its state lives in the worker's decision
    algorithm); a registry that ran in process mode is done, not resumable.
    """
    handle = registry.get(state.feed_id)
    _apply_contract_state(handle.storage_manager, state.manager_attrs, state.manager_slots)
    _apply_contract_state(handle.consumer, state.consumer_attrs, state.consumer_slots)
    handle.report.__dict__.update(state.report.__dict__)
    if state.sp_store_state is not None:
        if state.store_reset:
            # The lane's baseline was an empty store (snapshot-installed
            # feed): the shipped delta is the whole store, so the mirror's
            # seed state must go first — patching it would leave ghosts.
            _reset_store(handle.system.sp_store)
        _apply_store_delta(handle.system.sp_store, state.sp_store_state)
    handle.data_owner.trusted_root = state.do_trusted_root
    handle.data_owner.epochs_submitted = state.do_epochs_submitted
    handle.service_provider.deliveries_sent = state.sp_deliveries_sent
    handle.service_provider.records_delivered = state.sp_records_delivered
    if cache is not None and state.cache_stats is not None:
        cache.install_shard(state.feed_id, state.cache_entries, state.cache_stats)


def _reset_store(store) -> None:
    """Empty a main-side SP store mirror before a full-from-empty apply.

    Clears the wrapper's structures and removes its stale records from the
    backing (idempotent against a backing that already holds the lane's
    final contents — the apply re-puts every live record's value).
    """
    from repro.ads.merkle import MerkleTree

    for record in store._records.values():
        store.backing.delete(record.prefixed_key)
    store._records = {}
    store._slot_of = {}
    store._slots = []
    store._free_slots = []
    store._sorted_keys = []
    store._replicated_keys = set()
    store._tree = MerkleTree([])


def _apply_store_delta(store, delta: dict) -> None:
    """Patch the main registry's SP store with a worker's run-end delta.

    The inverse of :meth:`_LaneWorker._pack_store`: the main store starts
    from the same seed state the worker did, so deletions, the slot-layout
    change, the changed records and the tree patch reproduce the worker's
    final store exactly — including the records' dict order (updates replace
    in place, inserts append in the worker's op order, same as a serial run).
    """
    records = store._records
    slot_of = store._slot_of
    tree = store._tree
    leaves = tree._leaves
    for key in delta["deleted"]:
        old = records.pop(key)
        slot = slot_of.pop(key)
        store._replicated_keys.discard(key)
        store.backing.delete(old.prefixed_key)
        leaves[slot] = TOMBSTONE_LEAF
    layout = delta["layout"]
    if layout[0] == "tail":
        tail = layout[1]
        base = len(store._slots)
        store._slots.extend(tail)
        for slot, key in enumerate(tail, start=base):
            if key is not None:
                slot_of[key] = slot
    else:
        _, slots, free_slots = layout
        store._slots = list(slots)
        store._free_slots = list(free_slots)
        store._slot_of = slot_of = {
            key: slot for slot, key in enumerate(slots) if key is not None
        }
    count = delta["leaf_count"]
    if len(leaves) < count:
        leaves.extend([EMPTY_DIGEST] * (count - len(leaves)))
    if layout[0] == "full":
        # A slot without a key was freed by a delete at some point; its leaf
        # is the tombstone digest.  The changed-record list cannot carry
        # these (no record remains), and a full-from-empty apply
        # (``store_reset``) has no seed-time tombstones to inherit.
        for slot, key in enumerate(store._slots):
            if key is None:
                leaves[slot] = TOMBSTONE_LEAF
    membership_changed = bool(delta["deleted"])
    backing = store.backing
    replicated = store._replicated_keys
    for key, value, state_value, version, slot, leaf in delta["changed"]:
        record = KVRecord(
            key=key,
            value=value,
            state=ReplicationState(state_value),
            version=version,
        )
        old = records.get(key)
        if old is None:
            membership_changed = True
            slot_of[key] = slot
        elif old.prefixed_key != record.prefixed_key:
            backing.delete(old.prefixed_key)
        records[key] = record
        backing.put(record.prefixed_key, record.value)
        if record.state is ReplicationState.REPLICATED:
            replicated.add(key)
        else:
            replicated.discard(key)
        leaves[slot] = leaf
    if membership_changed:
        store._sorted_keys = sorted(records)
    # Interior tree levels come over as one flat digest blob; level 0 is the
    # leaf list padded to the tree's power-of-two width.
    size = 1
    while size < max(1, count):
        size *= 2
    level0 = list(leaves)
    level0.extend([EMPTY_DIGEST] * (size - len(level0)))
    levels = [level0]
    upper = memoryview(delta["upper"])
    offset = 0
    width = size // 2
    while width >= 1:
        levels.append(
            [
                bytes(upper[offset + index * 32 : offset + index * 32 + 32])
                for index in range(width)
            ]
        )
        offset += width * 32
        width //= 2
    tree._levels = levels


def settlement_buffer(result: SettlementResult) -> ExecutionBuffer:
    """The ledger-only absorb payload of a pre-executed settlement."""
    return ExecutionBuffer(ledger=ledger_from_wire(result.ledger_delta))


def drive_buffer(result: ShardEpochResult, block_number: int) -> ExecutionBuffer:
    """The phase-1 absorb payload of one shard's epoch result, with its
    events stamped at the absorbing chain's epoch-start height."""
    return buffer_from_wire(result.drive, block_number=block_number)
