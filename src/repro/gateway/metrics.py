"""Per-feed and fleet-wide telemetry of the multi-tenant gateway.

The gateway bills every unit of gas to the feed that caused it (via the gas
ledger's scopes, including each feed's exact share of batched cross-feed
transactions), counts cache traffic per feed, and clocks the fleet's
wall-time, so operators get the numbers a hosted service is run on: per-feed
gas and gas/op, fleet ops/sec, cache hit rate and replication churn.

:class:`FeedTelemetry` is one tenant's bill; :class:`FleetTelemetry`
aggregates the fleet and renders the operator report through the shared
:mod:`repro.analysis.reporting` helpers so gateway output matches the paper
benchmarks' formatting.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional

from repro.analysis.reporting import format_gas, format_rate, format_table
from repro.common.types import EpochSummary


@dataclass
class FeedTelemetry:
    """One hosted feed's bill: gas, traffic, cache and churn counters."""

    feed_id: str
    operations: int = 0
    reads: int = 0
    writes: int = 0
    gas_feed: int = 0
    gas_application: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    replications: int = 0
    evictions: int = 0
    deliver_groups: int = 0
    update_groups: int = 0
    #: Epoch at which the tenant joined the run (0 = present from the start).
    admitted_epoch: int = 0
    #: Epoch boundary at which the tenant left, or ``None`` while hosted.  A
    #: departed feed's telemetry row is retained — this is its final bill.
    departed_epoch: Optional[int] = None
    #: Operations pushed to a later epoch by the tenant's ops/gas quotas
    #: (counted once per deferral, so an op deferred twice counts twice).
    deferred_ops: int = 0
    #: Workload operations dropped because the tenant departed before they ran.
    cancelled_ops: int = 0
    #: Pending deliver requests cancelled when the tenant departed.
    cancelled_requests: int = 0
    epochs: List[EpochSummary] = field(default_factory=list)

    @property
    def departed(self) -> bool:
        return self.departed_epoch is not None

    @property
    def gas_total(self) -> int:
        return self.gas_feed + self.gas_application

    @property
    def gas_per_operation(self) -> float:
        if self.operations == 0:
            return 0.0
        return self.gas_feed / self.operations

    @property
    def cache_lookups(self) -> int:
        return self.cache_hits + self.cache_misses

    @property
    def cache_hit_rate(self) -> float:
        if self.cache_lookups == 0:
            return 0.0
        return self.cache_hits / self.cache_lookups

    @property
    def replication_churn(self) -> float:
        """Replication-state transitions per epoch (R→NR plus NR→R)."""
        if not self.epochs:
            return 0.0
        return (self.replications + self.evictions) / len(self.epochs)

    def epoch_series(self) -> List[float]:
        """Per-epoch feed gas per operation (same series as RunReport)."""
        return [epoch.gas_per_operation for epoch in self.epochs]

    def fingerprint(self) -> Dict[str, Any]:
        """Every deterministic field as plain data (epoch summaries included).

        Two runs of the same fleet configuration must produce equal
        fingerprints regardless of ``num_workers`` — this is the object the
        parallel-vs-serial equivalence tests and the CI perf-smoke compare.
        """
        return {
            "feed_id": self.feed_id,
            "operations": self.operations,
            "reads": self.reads,
            "writes": self.writes,
            "gas_feed": self.gas_feed,
            "gas_application": self.gas_application,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "replications": self.replications,
            "evictions": self.evictions,
            "deliver_groups": self.deliver_groups,
            "update_groups": self.update_groups,
            "admitted_epoch": self.admitted_epoch,
            "departed_epoch": self.departed_epoch,
            "deferred_ops": self.deferred_ops,
            "cancelled_ops": self.cancelled_ops,
            "cancelled_requests": self.cancelled_requests,
            "epochs": [asdict(epoch) for epoch in self.epochs],
        }


@dataclass
class FleetTelemetry:
    """Fleet-wide aggregate over every hosted feed's telemetry."""

    feeds: Dict[str, FeedTelemetry] = field(default_factory=dict)
    wall_seconds: float = 0.0
    epochs_run: int = 0
    deliver_batches: int = 0
    update_batches: int = 0
    blocks_mined: int = 0
    #: Mid-run tenant arrivals and departures applied by the fleet controller.
    admissions: int = 0
    departures: int = 0
    #: One ``(epoch, sorted feed ids)`` entry per *executed* epoch (idle
    #: spans the scheduler fast-forwards over are not recorded — their
    #: membership cannot change).  The churn invariants ("an evicted feed
    #: never appears in a later epoch") are checked against this record.
    rosters: List[tuple] = field(default_factory=list)
    #: How many shards the planner produced, parallel to ``rosters``.
    shards_per_epoch: List[int] = field(default_factory=list)
    #: Process mode only: the run's IPC meter summary (wire bytes per epoch,
    #: encode/decode seconds, per-lane rows; see
    #: :class:`repro.gateway.executor.IpcMeter`).  Wall-clock measurement,
    #: not fleet state — deliberately outside :meth:`fingerprint`.
    ipc: Optional[dict] = None

    def feed(self, feed_id: str) -> FeedTelemetry:
        return self.feeds[feed_id]

    # -- fleet aggregates ----------------------------------------------------

    @property
    def operations(self) -> int:
        return sum(feed.operations for feed in self.feeds.values())

    @property
    def gas_feed(self) -> int:
        return sum(feed.gas_feed for feed in self.feeds.values())

    @property
    def gas_application(self) -> int:
        return sum(feed.gas_application for feed in self.feeds.values())

    @property
    def gas_total(self) -> int:
        return self.gas_feed + self.gas_application

    @property
    def gas_per_operation(self) -> float:
        if self.operations == 0:
            return 0.0
        return self.gas_feed / self.operations

    @property
    def ops_per_second(self) -> float:
        """Wall-clock throughput of the gateway runtime itself."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.operations / self.wall_seconds

    @property
    def cache_hits(self) -> int:
        return sum(feed.cache_hits for feed in self.feeds.values())

    @property
    def cache_lookups(self) -> int:
        return sum(feed.cache_lookups for feed in self.feeds.values())

    @property
    def cache_hit_rate(self) -> float:
        if self.cache_lookups == 0:
            return 0.0
        return self.cache_hits / self.cache_lookups

    @property
    def deferred_ops(self) -> int:
        return sum(feed.deferred_ops for feed in self.feeds.values())

    @property
    def cancelled_ops(self) -> int:
        return sum(feed.cancelled_ops for feed in self.feeds.values())

    @property
    def cancelled_requests(self) -> int:
        return sum(feed.cancelled_requests for feed in self.feeds.values())

    @property
    def replications(self) -> int:
        return sum(feed.replications for feed in self.feeds.values())

    @property
    def evictions(self) -> int:
        return sum(feed.evictions for feed in self.feeds.values())

    @property
    def replication_churn(self) -> float:
        if self.epochs_run == 0:
            return 0.0
        return (self.replications + self.evictions) / self.epochs_run

    def fingerprint(self) -> Dict[str, Any]:
        """Deterministic fleet state as plain data (wall-clock excluded).

        ``wall_seconds`` — the only nondeterministic field — is deliberately
        left out, so fingerprint equality is exactly the "bit-identical
        telemetry" guarantee of the parallel epoch engine.
        """
        return {
            "epochs_run": self.epochs_run,
            "deliver_batches": self.deliver_batches,
            "update_batches": self.update_batches,
            "blocks_mined": self.blocks_mined,
            "admissions": self.admissions,
            "departures": self.departures,
            "rosters": [[epoch, list(roster)] for epoch, roster in self.rosters],
            "shards_per_epoch": list(self.shards_per_epoch),
            "feeds": {
                feed_id: telemetry.fingerprint()
                for feed_id, telemetry in sorted(self.feeds.items())
            },
        }

    # -- reporting -----------------------------------------------------------

    def per_feed_rows(self) -> List[tuple]:
        """One report row per feed, sorted by feed id."""
        rows = []
        for feed_id in sorted(self.feeds):
            feed = self.feeds[feed_id]
            if feed.departed:
                tenancy = f"e{feed.admitted_epoch}–e{feed.departed_epoch}"
            elif feed.admitted_epoch:
                tenancy = f"e{feed.admitted_epoch}–"
            else:
                tenancy = "resident"
            rows.append(
                (
                    feed_id,
                    feed.operations,
                    format_gas(feed.gas_feed),
                    round(feed.gas_per_operation),
                    f"{feed.cache_hit_rate * 100:.1f}%",
                    feed.replications,
                    feed.evictions,
                    feed.deferred_ops,
                    tenancy,
                )
            )
        return rows

    def format_report(self, title: Optional[str] = None) -> str:
        """Operator report: per-feed table plus the fleet summary lines."""
        lines = [
            format_table(
                [
                    "feed",
                    "ops",
                    "feed gas",
                    "gas/op",
                    "cache hit",
                    "repl",
                    "evict",
                    "deferred",
                    "tenancy",
                ],
                self.per_feed_rows(),
                title=title or f"Gateway fleet — {len(self.feeds)} feeds",
            ),
            (
                f"fleet: {self.operations:,} ops in {self.epochs_run} epochs, "
                f"{format_gas(self.gas_feed)} feed gas "
                f"({self.gas_per_operation:,.1f} gas/op), "
                f"{format_rate(self.ops_per_second, 'ops/s')}, "
                f"cache hit rate {self.cache_hit_rate * 100:.1f}%, "
                f"churn {self.replication_churn:.2f} transitions/epoch"
            ),
            (
                f"batching: {self.deliver_batches} deliver batches, "
                f"{self.update_batches} update batches, "
                f"{self.blocks_mined} blocks mined"
            ),
        ]
        if self.admissions or self.departures:
            lines.append(
                f"elastic: {self.admissions} admissions, "
                f"{self.departures} departures, "
                f"{self.deferred_ops} ops deferred by quotas, "
                f"{self.cancelled_ops} ops / {self.cancelled_requests} pending "
                "requests cancelled at departure"
            )
        return "\n".join(lines)
