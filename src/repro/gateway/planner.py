"""Shard planning for the elastic gateway fleet.

A shard is the unit of settlement: every epoch each shard lands **one**
batched ``deliver_batch`` and **one** grouped ``update_batch`` transaction,
and each of those transactions is mined into its own block.  How feeds are
grouped into shards therefore decides two things at once:

* **batching efficiency** — the more feeds share a shard, the further the 21k
  transaction base cost is amortised;
* **block feasibility** — a shard's settlement transaction must fit inside
  the chain's ``block_gas_limit``; a plan that packs too much verification,
  replication and callback work into one shard produces blocks no real chain
  would accept (the simulator surfaces this as the
  ``block_gas_limit_overflow`` ledger category).

:class:`RoundRobinPlanner` is the original fixed plan (deal feeds into
``num_shards`` groups and hope they fit).  :class:`GasAwareShardPlanner`
replaces hope with accounting: it keeps an EWMA of every feed's trailing
per-epoch gas (straight from the gas ledger's per-feed scopes, via the
scheduler's epoch summaries) and bin-packs feeds first-fit-decreasing into
shards whose estimated load stays under ``block_gas_fraction`` of the block
gas limit.  The per-epoch estimate usually *over*-states the settlement
transaction's gas (it also contains the feed's driving-phase internal-call
gas, which never lands in a block), but it is still an estimate: a freshly
admitted burst tenant's EWMA lags its real load, so a block can exceed the
planned budget by a modest factor.  The protection against the *limit* is
therefore the fraction itself — the default budgets only half the block, and
the churn benchmark records the realised worst case (a ~12% budget excursion
under a 2% fraction, leaving 49× headroom to the limit).

Every planner must be deterministic: given the same feed list and the same
observation history it must return the same plan, whatever ``num_workers``
the scheduler runs with, because the plan shapes batching and therefore the
fingerprint-pinned telemetry.  Both planners only use exact arithmetic over
deterministic inputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.common.errors import ConfigurationError

#: Bin-utilization histogram bounds: fraction of the per-shard gas budget one
#: packed bin's estimated load occupies (>1 = the packer accepted an
#: over-budget single-feed bin).
_UTILIZATION_BUCKETS = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0, 1.25, 1.5, 2.0, 4.0)

#: Shards-per-plan histogram bounds (a count, not a latency).
_SHARD_COUNT_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256)


class ShardPlanner:
    """Strategy interface: partition the active fleet into settlement shards."""

    #: Optional :class:`repro.obs.Observability` hook (set by the hosting
    #: scheduler).  Observation-only: planners may record what they decided,
    #: never read anything back — plans depend only on feed lists and
    #: observed gas, which keeps every backend's plans identical.
    obs = None

    def plan(self, feed_ids: Sequence[str], *, block_gas_limit: int) -> List[List[str]]:
        """Group ``feed_ids`` (admission order) into shards for one epoch."""
        raise NotImplementedError

    def observe(self, feed_id: str, epoch_gas: int) -> None:
        """Fold one settled epoch's per-feed gas into the planner's history."""

    def forget(self, feed_id: str) -> None:
        """Drop a departed feed's history (its id may be reused later)."""


@dataclass
class RoundRobinPlanner(ShardPlanner):
    """The fixed plan of the original engine: deal feeds into ``num_shards``.

    Gas-oblivious but stable — a fixed fleet keeps the same plan every epoch —
    so it remains the default for workloads that are known to fit.
    """

    num_shards: int = 1

    def __post_init__(self) -> None:
        if self.num_shards <= 0:
            raise ConfigurationError("num_shards must be positive")

    def plan(self, feed_ids: Sequence[str], *, block_gas_limit: int) -> List[List[str]]:
        groups = [
            list(feed_ids[index :: self.num_shards]) for index in range(self.num_shards)
        ]
        return [group for group in groups if group]


@dataclass
class GasAwareShardPlanner(ShardPlanner):
    """First-fit-decreasing bin packing under a per-shard block gas budget.

    Attributes:
        block_gas_fraction: the fraction of ``block_gas_limit`` one shard's
            estimated epoch gas may occupy.  The default leaves half the block
            as headroom for estimate error and replication bursts.
        ewma_alpha: weight of the newest observation in the per-feed EWMA.
        bootstrap_gas: estimate used for a feed with no history yet (a freshly
            admitted tenant); deliberately generous so new tenants start in
            roomy shards and earn denser packing as their history accrues.
        migration_stickiness: migration-cost awareness.  In process mode a
            feed that changes *shard* may also change *lane*, and moving a
            lane means serialising the feed's whole mirror across the process
            boundary.  Before the FFD pass places a feed, the packer first
            tries the bin index the feed occupied in the previous plan and
            keeps it there while that bin's load stays within
            ``migration_stickiness × budget``.  ``1.0`` (default) makes
            staying free whenever it fits the normal budget; values ``> 1``
            tolerate a modest overshoot to avoid a move; ``0`` disables
            stickiness (pure FFD, the pre-migration behaviour).  Stickiness
            only consults the planner's own previous plan, so every execution
            backend computes the identical plan sequence.
    """

    block_gas_fraction: float = 0.5
    ewma_alpha: float = 0.25
    bootstrap_gas: int = 250_000
    migration_stickiness: float = 1.0
    _estimates: Dict[str, float] = field(default_factory=dict, repr=False)
    #: Bin index each feed occupied in the previous plan (the stickiness
    #: anchor); dropped on :meth:`forget`.
    _previous_bins: Dict[str, int] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 < self.block_gas_fraction <= 1.0:
            raise ConfigurationError("block_gas_fraction must be in (0, 1]")
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ConfigurationError("ewma_alpha must be in (0, 1]")
        if self.bootstrap_gas <= 0:
            raise ConfigurationError("bootstrap_gas must be positive")
        if self.migration_stickiness < 0.0:
            raise ConfigurationError("migration_stickiness must be >= 0")

    def estimate(self, feed_id: str) -> float:
        """The feed's current per-epoch gas estimate (bootstrap if unseen)."""
        return self._estimates.get(feed_id, float(self.bootstrap_gas))

    def observe(self, feed_id: str, epoch_gas: int) -> None:
        previous = self._estimates.get(feed_id)
        if previous is None:
            # First real observation replaces the bootstrap outright; blending
            # it would let an arbitrary constant linger for many epochs.
            self._estimates[feed_id] = float(epoch_gas)
        else:
            self._estimates[feed_id] = (
                self.ewma_alpha * epoch_gas + (1.0 - self.ewma_alpha) * previous
            )

    def forget(self, feed_id: str) -> None:
        self._estimates.pop(feed_id, None)
        self._previous_bins.pop(feed_id, None)

    def plan(self, feed_ids: Sequence[str], *, block_gas_limit: int) -> List[List[str]]:
        if not feed_ids:
            return []
        budget = self.block_gas_fraction * block_gas_limit
        sticky_budget = budget * self.migration_stickiness
        previous_bins = self._previous_bins
        # Heaviest feeds first (feed id breaks ties) — the classic FFD
        # ordering, which keeps the shard count near optimal.
        ranked = sorted(feed_ids, key=lambda feed_id: (-self.estimate(feed_id), feed_id))
        shards: List[List[str]] = []
        loads: List[float] = []
        for feed_id in ranked:
            estimate = self.estimate(feed_id)
            # Stickiness: keep the feed in last plan's bin while that bin's
            # load stays within the (possibly relaxed) sticky budget, so a
            # process-mode fleet doesn't thrash mirrors between lanes.
            previous = previous_bins.get(feed_id)
            if (
                previous is not None
                and self.migration_stickiness > 0.0
                and previous < len(shards)
                and loads[previous] + estimate <= sticky_budget
            ):
                shards[previous].append(feed_id)
                loads[previous] += estimate
                continue
            for index in range(len(shards)):
                if loads[index] + estimate <= budget:
                    shards[index].append(feed_id)
                    loads[index] += estimate
                    break
            else:
                # A feed estimated above the budget still gets a shard of its
                # own — shards cannot split below feed granularity, and the
                # estimate overstates the actual settlement transaction.
                shards.append([feed_id])
                loads.append(estimate)
        self._previous_bins = {
            feed_id: index for index, shard in enumerate(shards) for feed_id in shard
        }
        obs = self.obs
        if obs is not None:
            obs.counter("planner_plans_total").inc()
            obs.histogram(
                "planner_shards_per_plan", buckets=_SHARD_COUNT_BUCKETS
            ).observe(len(shards))
            overflow_bins = 0
            for load in loads:
                utilization = load / budget if budget > 0 else 0.0
                obs.histogram(
                    "planner_bin_utilization", buckets=_UTILIZATION_BUCKETS
                ).observe(utilization)
                if load > budget:
                    overflow_bins += 1
            if overflow_bins:
                # Bins whose *estimate* already exceeds the budget: feeds the
                # packer had to give a dedicated over-budget shard.
                obs.counter("planner_overflow_bins_total").inc(overflow_bins)
        return shards
