"""Multi-tenant GRuB hosting runtime: many feeds, one chain, one watchdog.

The seed reproduces the paper's single-feed deployment (one DO, one SP, one
storage-manager contract).  This package turns that into a hosted service:

* :mod:`repro.gateway.registry` — :class:`FeedRegistry` instantiates and
  namespaces many independent feeds (each with its own data owner, storage
  provider, decision algorithm and :class:`~repro.core.config.GrubConfig`)
  over a **shared** blockchain;
* :mod:`repro.gateway.router` — the on-chain
  :class:`GatewayRouterContract` that fans batched cross-feed ``deliver`` /
  ``update`` transactions out to each feed's storage-manager contract,
  amortising the transaction base cost across tenants the same way the paper
  amortises it across requests;
* :mod:`repro.gateway.watchdog` — one :class:`SharedWatchdog` tailing the
  shared event log once per cycle and routing request events to the feed they
  belong to;
* :mod:`repro.gateway.scheduler` — the :class:`EpochScheduler`, an elastic
  parallel epoch engine: each shard's off-chain work (operation driving,
  proof generation, epoch-update preparation) runs on a pluggable execution
  backend (``execution_mode="serial" | "thread" | "process"``), settlement
  lands in a deterministic merge phase (fixed shard order), one batched
  deliver plus one grouped update settles per shard in its own block — every
  backend is bit-identical to serial — and tenants join
  (:meth:`EpochScheduler.admit`) and leave (:meth:`EpochScheduler.evict`)
  at epoch boundaries, with per-tenant ops/gas quotas deferring over-quota
  operations to later epochs;
* :mod:`repro.gateway.executor` — the backends themselves: the shared
  per-shard phase logic every mode runs, plus the :class:`ProcessEngine`
  (shards pinned to persistent worker processes hosting full feed mirrors,
  only per-epoch deltas crossing the process boundary) that gives the
  engine true multicore scaling where CPython's GIL caps the thread pool;
* :mod:`repro.gateway.planner` — shard planning strategies: the fixed
  :class:`RoundRobinPlanner` and the :class:`GasAwareShardPlanner`, which
  EWMA-estimates per-feed epoch gas from trailing telemetry and bin-packs
  feeds so every settlement block stays under a configured fraction of the
  chain's block gas limit;
* :mod:`repro.gateway.cache` — the consumer-side :class:`ReadCache`,
  sharded per feed, with write-invalidation keyed on each record's
  replication state and immediate warm-up from verified deliver payloads,
  so repeated reads of replicated records short-circuit;
* :mod:`repro.gateway.metrics` — per-feed and fleet-wide telemetry (gas,
  wall-clock throughput, cache hit rate, replication churn).

Quickstart::

    from repro.gateway import FeedRegistry, FeedSpec, EpochScheduler
    from repro.core.config import GrubConfig
    from repro.workloads.synthetic import SyntheticWorkload

    registry = FeedRegistry()
    for i in range(8):
        registry.create_feed(FeedSpec(feed_id=f"feed-{i:02d}", config=GrubConfig(epoch_size=16)))
    scheduler = EpochScheduler(registry, num_shards=2, num_workers=4)
    fleet = scheduler.run({
        f"feed-{i:02d}": SyntheticWorkload(read_write_ratio=4, num_operations=128, seed=i).operations()
        for i in range(8)
    })
    print(fleet.format_report())
"""

from repro.gateway.cache import ReadCache
from repro.gateway.executor import EXECUTION_MODES, ProcessEngine, ShardEnvironment
from repro.gateway.metrics import FeedTelemetry, FleetTelemetry
from repro.gateway.planner import GasAwareShardPlanner, RoundRobinPlanner, ShardPlanner
from repro.gateway.registry import FeedHandle, FeedRegistry, FeedSpec
from repro.gateway.router import DeliverGroup, GatewayRouterContract, UpdateGroup
from repro.gateway.scheduler import Admission, EpochScheduler, Eviction
from repro.gateway.watchdog import SharedWatchdog

__all__ = [
    "Admission",
    "DeliverGroup",
    "EXECUTION_MODES",
    "EpochScheduler",
    "Eviction",
    "FeedHandle",
    "FeedRegistry",
    "FeedSpec",
    "FeedTelemetry",
    "FleetTelemetry",
    "GasAwareShardPlanner",
    "GatewayRouterContract",
    "ProcessEngine",
    "ReadCache",
    "RoundRobinPlanner",
    "ShardEnvironment",
    "ShardPlanner",
    "SharedWatchdog",
    "UpdateGroup",
]
